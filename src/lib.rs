//! # snapify-repro — reproduction of *Snapify* (HPDC 2014) in Rust
//!
//! Snapify captures **consistent snapshots of Xeon Phi offload
//! applications** — the coordinated state of a host process, the COI
//! daemon, and the offload process — and uses them to provide
//! checkpoint/restart, process swapping, and process migration, plus
//! **Snapify-IO**, an RDMA-based remote file access service for storing
//! the snapshots on the host.
//!
//! The original hardware/software stack (Xeon Phi "Knights Corner", MPSS,
//! SCIF, BLCR) is discontinued, so this reproduction implements the whole
//! platform as a deterministic virtual-time simulation and the Snapify
//! system itself on top — see `DESIGN.md` for the substitution inventory
//! and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! This crate is the façade: it re-exports every layer and hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`).
//!
//! ## Layers (bottom-up)
//!
//! | crate | role |
//! |---|---|
//! | [`simkernel`] | deterministic virtual-time scheduler, locks, channels, bandwidth resources |
//! | [`phi_platform`] | simulated host + Phi cards: memory, file systems, PCIe |
//! | [`simproc`] | process model: memory regions, signals, byte streams |
//! | [`scif_sim`] | SCIF: connection-oriented messages + RDMA windows |
//! | [`blcr_sim`] | BLCR-style single-process checkpoint/restart |
//! | [`coi_sim`] | COI offload runtime with the Snapify modifications |
//! | [`snapify_io`] | Snapify-IO + NFS/scp/local snapshot transports |
//! | [`snapify`] | the Snapify API, CR/swap/migration scenarios, CLI |
//! | [`mpi_sim`] | MPI runtime + coordinated checkpointing |
//! | [`workloads`] | the benchmark suite (8 OpenMP apps + NAS-MZ) |
//!
//! ## Quick start
//!
//! ```
//! use snapify_repro::prelude::*;
//!
//! Kernel::run_root(|| {
//!     let registry = FunctionRegistry::new();
//!     registry.register(DeviceBinary::new("hello.so", 1 << 20, 8 << 20)
//!         .simple_function("hello", |ctx| {
//!             ctx.compute(1e9, 60);
//!             b"hi from the phi".to_vec()
//!         }));
//!     let world = SnapifyWorld::boot(registry);
//!     let host = world.coi().create_host_process("app");
//!     let proc = world.coi().create_process(&host, 0, "hello.so").unwrap();
//!     let ret = proc.run_sync("hello", Vec::new(), &[]).unwrap();
//!     assert_eq!(ret, b"hi from the phi");
//!     proc.destroy().unwrap();
//! });
//! ```

#![warn(missing_docs)]

pub use blcr_sim;
pub use coi_sim;
pub use mpi_sim;
pub use phi_platform;
pub use scif_sim;
pub use serving;
pub use simkernel;
pub use simproc;
pub use snapify;
pub use snapify_io;
pub use snapstore;
pub use workloads;

/// Everything a typical example or test needs, in one import.
pub mod prelude {
    pub use coi_sim::{
        CoiBuffer, CoiConfig, CoiProcessHandle, CoiWorld, DeviceBinary, FunctionRegistry,
        OffloadCtx, OffloadFn, StepOutcome,
    };
    pub use phi_platform::{
        FaultKind, FaultSchedule, FaultTarget, NodeId, Payload, PhiServer, PlatformParams, GB, KB,
        MB,
    };
    pub use simkernel::{now, sleep, spawn, Kernel, SchedPolicy, SimDuration, SimTime};
    pub use simproc::IoError;
    pub use snapify::{
        checkpoint_application, restart_application, snapify_capture, snapify_migrate,
        snapify_pause, snapify_restore, snapify_resume, snapify_swapin, snapify_swapout,
        snapify_wait, SnapifyError, SnapifyT, SnapifyWorld, SwapScheduler,
    };
    pub use snapstore::{Dedup, DedupConfig, StoreStats};
    pub use workloads::{suite, WorkloadRun, WorkloadSpec};
}
