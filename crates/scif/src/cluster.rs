//! Cross-domain cluster links: node-to-node [`Payload`] transport for
//! multi-domain simulations.
//!
//! When a cluster is partitioned node-per-domain (see
//! `phi_platform::domains`), SCIF endpoints and PCIe DMA stay inside
//! their domain and keep working unchanged — but traffic between
//! *nodes* crosses time domains and must flow through the conservative
//! sync layer. [`cluster_link`] is that path: a unidirectional SPSC
//! message link carrying [`Payload`]s with the platform's node-to-node
//! network latency, built on `simkernel::domain`'s [`PortTx`]/[`PortRx`]
//! so deliveries are timestamped and merged deterministically at window
//! barriers.
//!
//! The same constructor works when both endpoints land in the same
//! domain (fewer domains than nodes, or `domains = 1`): the port then
//! delivers directly, with identical virtual timing, so cluster
//! topologies are domain-count-agnostic.

use phi_platform::domains::cluster_lookahead;
use phi_platform::{Payload, PlatformParams};
use simkernel::domain::{DomainId, MultiKernel, PortRx, PortTx};
use simkernel::{obs, RecvError, SendError, SimTime};

/// Sending half of a cluster link (lives in the source node's domain).
pub struct ClusterTx {
    tx: PortTx<Payload>,
}

/// Receiving half of a cluster link (lives in the destination node's
/// domain).
pub struct ClusterRx {
    rx: PortRx<Payload>,
}

/// Create a node-to-node link from a node in domain `src` to a node in
/// domain `dst`. The link delay is the platform's network latency, or
/// the multi-kernel's lookahead if that is larger (a cross-domain link
/// may never undercut the sync bound).
pub fn cluster_link(
    mk: &MultiKernel,
    name: impl Into<String>,
    src: DomainId,
    dst: DomainId,
    params: &PlatformParams,
) -> (ClusterTx, ClusterRx) {
    let delay = cluster_lookahead(params).max(mk.lookahead());
    let (tx, rx) = mk.port::<Payload>(name, src, dst, delay);
    (ClusterTx { tx }, ClusterRx { rx })
}

impl ClusterTx {
    /// Send a payload down the link (arrives one network latency
    /// later). Never blocks; counted as `cluster.msgs_sent` /
    /// `cluster.bytes_sent` when observability recording is on.
    pub fn send(&self, msg: Payload) -> Result<(), SendError> {
        if obs::is_enabled() {
            obs::counter_add("cluster.msgs_sent", 1);
            obs::counter_add("cluster.bytes_sent", msg.len());
        }
        self.tx.send(msg)
    }

    /// Close the link; the close marker travels with the link latency.
    pub fn close(&self) {
        self.tx.close();
    }
}

impl ClusterRx {
    /// Receive the next payload, blocking in virtual time.
    pub fn recv(&self) -> Result<Payload, RecvError> {
        self.rx.recv()
    }

    /// Receive with a virtual-time deadline (`Ok(None)` = timed out).
    pub fn recv_deadline(&self, deadline: SimTime) -> Result<Option<Payload>, RecvError> {
        self.rx.recv_deadline(deadline)
    }

    /// Payloads queued or in flight on the link.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }

    /// Cumulative `(arrived, received)` counters.
    pub fn stats(&self) -> (u64, u64) {
        self.rx.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::domain::MultiDomainConfig;
    use simkernel::time::us;
    use simkernel::SimTime;

    #[test]
    fn payloads_cross_domains_with_net_latency() {
        let params = PlatformParams::default();
        let mk = MultiKernel::new(MultiDomainConfig::new(2, cluster_lookahead(&params)));
        let (tx, rx) = cluster_link(&mk, "n0-n1", 0, 1, &params);
        let h = mk.domain(1).spawn("rx", move || {
            let p = rx.recv().unwrap();
            (p.digest(), simkernel::now())
        });
        let sent = Payload::synthetic(7, 4096);
        let want = sent.digest();
        mk.domain(0).spawn("tx", move || {
            tx.send(sent).unwrap();
            tx.close();
        });
        mk.run();
        let (digest, at) = h.take_result().unwrap();
        assert_eq!(digest, want, "payload must survive the crossing intact");
        assert_eq!(at, SimTime::ZERO + params.net_latency);
    }

    #[test]
    fn same_domain_link_has_identical_timing() {
        let params = PlatformParams::default();
        let arrival = |domains: u32| {
            let mk = MultiKernel::new(MultiDomainConfig::new(domains, cluster_lookahead(&params)));
            let dst = domains - 1;
            let (tx, rx) = cluster_link(&mk, "n0-n1", 0, dst, &params);
            let h = mk.domain(dst).spawn("rx", move || {
                rx.recv().unwrap();
                simkernel::now()
            });
            mk.domain(0).spawn("tx", move || {
                simkernel::sleep(us(30));
                tx.send(Payload::synthetic(1, 64)).unwrap();
            });
            mk.run();
            h.take_result().unwrap()
        };
        assert_eq!(
            arrival(1),
            arrival(2),
            "domain count must not change link timing"
        );
    }
}
