//! # scif-sim — the Symmetric Communications Interface, simulated
//!
//! SCIF is MPSS's low-level transport between the host and the Xeon Phi
//! coprocessors (and among coprocessors). This crate reproduces the two
//! API families Snapify depends on (§2):
//!
//! * **connection-oriented messages** — [`Scif::listen`] / [`Scif::connect`]
//!   / [`ScifEndpoint::send`] / [`ScifEndpoint::recv`], latency-dominated,
//!   used for COI's command/control channels;
//! * **one-sided RDMA** — [`Scif::register`] turns a process memory region
//!   into a [`RdmaAddr`] window; [`ScifEndpoint::rdma_write`] /
//!   [`ScifEndpoint::rdma_read`] move bulk data through the PCIe DMA
//!   engine (`scif_vwriteto` / `scif_vreadfrom`).
//!
//! Two properties matter for Snapify's correctness argument and are
//! first-class here:
//!
//! * every endpoint exposes its **in-flight message count**
//!   ([`ScifEndpoint::inbound_pending`]), so a test can *prove* that a
//!   pause really drained every channel before a snapshot was taken;
//! * **registration is per-process-lifetime**: windows die with the
//!   process, and re-registering after a restore yields a *different*
//!   [`RdmaAddr`] — which is why Snapify must keep an (old, new) address
//!   lookup table (§4.3).

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use phi_platform::{NodeId, Payload, PhiServer};
use simkernel::obs;
use simkernel::{RecvError, SimChannel, SimDuration, SimMutex};
use simproc::SimProcess;

pub mod cluster;
pub use cluster::{cluster_link, ClusterRx, ClusterTx};

/// Well-known SCIF ports (mirroring MPSS conventions).
pub mod ports {
    /// The COI daemon's listening port on every coprocessor.
    pub const COI_DAEMON: u16 = 100;
    /// The Snapify-IO daemon's listening port on every node.
    pub const SNAPIFY_IO: u16 = 200;
    /// First port available for dynamically-allocated endpoints.
    pub const EPHEMERAL_BASE: u16 = 1024;
}

/// Errors from SCIF operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScifError {
    /// No listener on the target `(node, port)`.
    ConnectionRefused(NodeId, u16),
    /// The peer endpoint (or the listener) was closed.
    Closed,
    /// RDMA against an address that is not (or no longer) registered.
    BadAddress(RdmaAddr),
    /// RDMA range outside the registered window.
    OutOfRange {
        /// Target window.
        addr: RdmaAddr,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Window size.
        window: u64,
    },
}

impl fmt::Display for ScifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScifError::ConnectionRefused(n, p) => write!(f, "connection refused: {n}:{p}"),
            ScifError::Closed => write!(f, "endpoint closed"),
            ScifError::BadAddress(a) => write!(f, "bad RDMA address {a}"),
            ScifError::OutOfRange {
                addr,
                offset,
                len,
                window,
            } => write!(
                f,
                "RDMA [{offset}, {offset}+{len}) outside window {addr} of {window} bytes"
            ),
        }
    }
}

impl std::error::Error for ScifError {}

/// An RDMA window address returned by [`Scif::register`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RdmaAddr(pub u64);

impl fmt::Debug for RdmaAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rdma:{:#x}", self.0)
    }
}

impl fmt::Display for RdmaAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

struct Window {
    /// Owning process — the window dies with it.
    proc: SimProcess,
    /// The region the window maps.
    region: String,
}

struct ScifState {
    listeners: HashMap<(NodeId, u16), SimChannel<ScifEndpoint>>,
    windows: HashMap<RdmaAddr, Window>,
    next_conn: u64,
    next_addr: u64,
    next_port: u16,
}

struct ScifInner {
    server: PhiServer,
    state: SimMutex<ScifState>,
}

/// The SCIF driver instance for one simulated server. Cheap to clone.
#[derive(Clone)]
pub struct Scif {
    inner: Arc<ScifInner>,
}

impl Scif {
    /// Create the SCIF driver for `server`.
    pub fn new(server: &PhiServer) -> Scif {
        Scif {
            inner: Arc::new(ScifInner {
                server: server.clone(),
                state: SimMutex::new(
                    "scif",
                    ScifState {
                        listeners: HashMap::new(),
                        windows: HashMap::new(),
                        next_conn: 1,
                        next_addr: 0x1000,
                        next_port: ports::EPHEMERAL_BASE,
                    },
                ),
            }),
        }
    }

    /// The server this driver runs on.
    pub fn server(&self) -> &PhiServer {
        &self.inner.server
    }

    /// Bind a listener at `(node, port)`. Returns the listener handle.
    /// Panics if the port is already bound (driver misuse, not a runtime
    /// condition in MPSS either).
    pub fn listen(&self, node: NodeId, port: u16) -> ScifListener {
        let backlog = SimChannel::unbounded(format!("scif-listen-{node}:{port}"));
        let mut st = self.inner.state.lock();
        let prev = st.listeners.insert((node, port), backlog.clone());
        assert!(prev.is_none(), "port {node}:{port} already bound");
        ScifListener {
            scif: self.clone(),
            node,
            port,
            backlog,
        }
    }

    /// Allocate an unused ephemeral port.
    pub fn ephemeral_port(&self) -> u16 {
        let mut st = self.inner.state.lock();
        let p = st.next_port;
        st.next_port += 1;
        p
    }

    /// Connect from `local` to a listener at `(peer, port)`. Blocks for
    /// the connection-setup round trip; fails if no listener is bound.
    pub fn connect(
        &self,
        local: NodeId,
        peer: NodeId,
        port: u16,
    ) -> Result<ScifEndpoint, ScifError> {
        let (conn_id, backlog) = {
            let mut st = self.inner.state.lock();
            let backlog = st
                .listeners
                .get(&(peer, port))
                .cloned()
                .ok_or(ScifError::ConnectionRefused(peer, port))?;
            let id = st.next_conn;
            st.next_conn += 1;
            (id, backlog)
        };
        let latency = self.channel_latency(local, peer);
        let a_to_b =
            SimChannel::with_options(format!("scif#{conn_id} {local}->{peer}"), None, latency);
        let b_to_a =
            SimChannel::with_options(format!("scif#{conn_id} {peer}->{local}"), None, latency);
        let my_end = ScifEndpoint {
            scif: self.clone(),
            conn_id,
            local,
            peer,
            tx: a_to_b.clone(),
            rx: b_to_a.clone(),
        };
        let peer_end = ScifEndpoint {
            scif: self.clone(),
            conn_id,
            local: peer,
            peer: local,
            tx: b_to_a,
            rx: a_to_b,
        };
        backlog.send(peer_end).map_err(|_| ScifError::Closed)?;
        // Connection setup costs one round trip on the message path.
        simkernel::sleep(latency * 2);
        Ok(my_end)
    }

    /// Register `region` of `proc` as an RDMA window. Returns the window
    /// address. Re-registration after a restore yields a new address.
    pub fn register(&self, proc: &SimProcess, region: &str) -> RdmaAddr {
        assert!(
            proc.memory().has_region(region),
            "registering unmapped region '{region}' of {}",
            proc.pid()
        );
        let mut st = self.inner.state.lock();
        let addr = RdmaAddr(st.next_addr);
        // Leave address space between windows, like a real allocator.
        st.next_addr += 1 << 20;
        st.windows.insert(
            addr,
            Window {
                proc: proc.clone(),
                region: region.to_string(),
            },
        );
        addr
    }

    /// Unregister a window. Idempotent.
    pub fn unregister(&self, addr: RdmaAddr) {
        self.inner.state.lock().windows.remove(&addr);
    }

    /// Drop every window owned by `proc` (called on process teardown —
    /// registrations do not survive the process, §4.3).
    pub fn unregister_process(&self, proc: &SimProcess) {
        let mut st = self.inner.state.lock();
        st.windows.retain(|_, w| w.proc.pid() != proc.pid());
    }

    /// Number of live windows (diagnostics).
    pub fn window_count(&self) -> usize {
        self.inner.state.lock().windows.len()
    }

    fn channel_latency(&self, a: NodeId, b: NodeId) -> SimDuration {
        if a == b {
            SimDuration::from_micros(2) // loopback
        } else {
            self.inner.server.link_between(a, b).msg_latency()
        }
    }

    fn resolve_window(&self, addr: RdmaAddr) -> Result<(SimProcess, String), ScifError> {
        let st = self.inner.state.lock();
        let w = st.windows.get(&addr).ok_or(ScifError::BadAddress(addr))?;
        if !w.proc.is_alive() {
            return Err(ScifError::BadAddress(addr));
        }
        Ok((w.proc.clone(), w.region.clone()))
    }

    /// RDMA-write `data` into the window at `addr` at `offset`, initiated
    /// from `local` (endpoint-free variant used by the COI library, which
    /// tracks its own connections).
    pub fn rdma_write_from(
        &self,
        local: NodeId,
        addr: RdmaAddr,
        offset: u64,
        data: Payload,
    ) -> Result<(), ScifError> {
        let (proc, region) = self.resolve_window(addr)?;
        // The region can be unmapped between window resolution and the
        // DMA (process teardown racing a transfer): a typed error, not
        // a panic.
        let window = proc
            .memory()
            .region(&region)
            .map_err(|_| ScifError::BadAddress(addr))?;
        let len = data.len();
        if offset + len > window.len() {
            return Err(ScifError::OutOfRange {
                addr,
                offset,
                len,
                window: window.len(),
            });
        }
        self.charge_rdma(local, proc.node().id(), len.max(1));
        let updated = window.replace(offset, data);
        proc.memory()
            .update_region(&region, updated)
            .map_err(|_| ScifError::BadAddress(addr))?;
        Ok(())
    }

    /// RDMA-read `len` bytes at `offset` from the window at `addr`,
    /// initiated from `local`.
    pub fn rdma_read_from(
        &self,
        local: NodeId,
        addr: RdmaAddr,
        offset: u64,
        len: u64,
    ) -> Result<Payload, ScifError> {
        let (proc, region) = self.resolve_window(addr)?;
        let window = proc
            .memory()
            .region(&region)
            .map_err(|_| ScifError::BadAddress(addr))?;
        if offset + len > window.len() {
            return Err(ScifError::OutOfRange {
                addr,
                offset,
                len,
                window: window.len(),
            });
        }
        self.charge_rdma(local, proc.node().id(), len.max(1));
        Ok(window.slice(offset, len))
    }

    fn charge_rdma(&self, a: NodeId, b: NodeId, bytes: u64) {
        obs::counter_add("scif.rdma_bytes", bytes);
        obs::histogram_observe("scif.rdma_transfer_bytes", bytes);
        if a == b {
            obs::counter_add("scif.loopback_bytes", bytes);
            self.inner.server.node(a).memcpy(bytes);
        } else {
            // Bulk data crossing PCIe through the DMA engine.
            obs::counter_add("pcie.dma_bytes", bytes);
            self.inner.server.rdma_between(a, b, bytes);
        }
    }
}

impl fmt::Debug for Scif {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scif")
            .field("windows", &self.window_count())
            .finish()
    }
}

/// A bound listener. Accept connections with [`ScifListener::accept`].
pub struct ScifListener {
    scif: Scif,
    node: NodeId,
    port: u16,
    backlog: SimChannel<ScifEndpoint>,
}

impl ScifListener {
    /// Accept the next incoming connection (blocking).
    pub fn accept(&self) -> Result<ScifEndpoint, ScifError> {
        self.backlog.recv().map_err(|_| ScifError::Closed)
    }

    /// The `(node, port)` this listener is bound to.
    pub fn local(&self) -> (NodeId, u16) {
        (self.node, self.port)
    }

    /// Stop listening: unbinds the port and wakes blocked accepts.
    pub fn close(&self) {
        self.scif
            .inner
            .state
            .lock()
            .listeners
            .remove(&(self.node, self.port));
        self.backlog.close();
    }
}

/// One end of a SCIF connection.
#[derive(Clone)]
pub struct ScifEndpoint {
    scif: Scif,
    conn_id: u64,
    local: NodeId,
    peer: NodeId,
    tx: SimChannel<Payload>,
    rx: SimChannel<Payload>,
}

impl ScifEndpoint {
    /// Send a message (`scif_send`): occupies the link's message path for
    /// the wire time, then delivers after the link latency.
    pub fn send(&self, msg: Payload) -> Result<(), ScifError> {
        let bytes = msg.len().max(1);
        obs::counter_add("scif.bytes_sent", bytes);
        obs::counter_add("scif.msgs_sent", 1);
        if self.local != self.peer {
            self.scif
                .inner
                .server
                .link_between(self.local, self.peer)
                .message_transfer(bytes);
        }
        self.tx.send(msg).map_err(|_| ScifError::Closed)
    }

    /// Receive the next message (`scif_recv`), blocking.
    pub fn recv(&self) -> Result<Payload, ScifError> {
        let msg = self.rx.recv().map_err(|_: RecvError| ScifError::Closed)?;
        obs::counter_add("scif.bytes_recv", msg.len().max(1));
        Ok(msg)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Payload> {
        self.rx.try_recv()
    }

    /// RDMA-write `data` into the window at `addr` starting at `offset`
    /// (`scif_vwriteto`). Blocks for the DMA time.
    pub fn rdma_write(&self, addr: RdmaAddr, offset: u64, data: Payload) -> Result<(), ScifError> {
        let (proc, region) = self.scif.resolve_window(addr)?;
        let window = proc
            .memory()
            .region(&region)
            .map_err(|_| ScifError::BadAddress(addr))?;
        let len = data.len();
        if offset + len > window.len() {
            return Err(ScifError::OutOfRange {
                addr,
                offset,
                len,
                window: window.len(),
            });
        }
        self.scif
            .charge_rdma(self.local, proc.node().id(), len.max(1));
        let updated = window.replace(offset, data);
        proc.memory()
            .update_region(&region, updated)
            .map_err(|_| ScifError::BadAddress(addr))?;
        Ok(())
    }

    /// RDMA-read `len` bytes at `offset` from the window at `addr`
    /// (`scif_vreadfrom`). Blocks for the DMA time.
    pub fn rdma_read(&self, addr: RdmaAddr, offset: u64, len: u64) -> Result<Payload, ScifError> {
        let (proc, region) = self.scif.resolve_window(addr)?;
        let window = proc
            .memory()
            .region(&region)
            .map_err(|_| ScifError::BadAddress(addr))?;
        if offset + len > window.len() {
            return Err(ScifError::OutOfRange {
                addr,
                offset,
                len,
                window: window.len(),
            });
        }
        self.scif
            .charge_rdma(self.local, proc.node().id(), len.max(1));
        Ok(window.slice(offset, len))
    }

    /// Messages sent to this endpoint but not yet received (queued or in
    /// flight). Zero ⇔ this direction of the channel is *drained*.
    pub fn inbound_pending(&self) -> usize {
        self.rx.len()
    }

    /// Cumulative (sent, received) counters of the inbound direction.
    /// `received` counts completed `recv()` calls on this endpoint.
    pub fn inbound_stats(&self) -> (u64, u64) {
        self.rx.stats()
    }

    /// Messages this endpoint sent that the peer has not yet received.
    pub fn outbound_pending(&self) -> usize {
        self.tx.len()
    }

    /// Close both directions. Pending messages remain receivable by the
    /// peer; further sends fail on both sides.
    pub fn close(&self) {
        self.tx.close();
        self.rx.close();
    }

    /// Whether the endpoint has been closed.
    pub fn is_closed(&self) -> bool {
        self.tx.is_closed()
    }

    /// Local node.
    pub fn local_node(&self) -> NodeId {
        self.local
    }

    /// Peer node.
    pub fn peer_node(&self) -> NodeId {
        self.peer
    }

    /// Connection identifier (diagnostics).
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }
}

impl fmt::Debug for ScifEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ScifEndpoint#{}({}<->{})",
            self.conn_id, self.local, self.peer
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::MB;
    use simkernel::{now, sleep, spawn, time::ms, Kernel};
    use simproc::Pid;

    fn world() -> (Scif, PhiServer) {
        let server = PhiServer::default_server();
        (Scif::new(&server), server)
    }

    #[test]
    fn connect_refused_without_listener() {
        Kernel::run_root(|| {
            let (scif, _) = world();
            let err = scif
                .connect(NodeId::HOST, NodeId::device(0), ports::COI_DAEMON)
                .unwrap_err();
            assert_eq!(
                err,
                ScifError::ConnectionRefused(NodeId::device(0), ports::COI_DAEMON)
            );
        });
    }

    #[test]
    fn send_recv_across_pcie() {
        Kernel::run_root(|| {
            let (scif, _) = world();
            let listener = scif.listen(NodeId::device(0), ports::COI_DAEMON);
            let s2 = scif.clone();
            let h = spawn("daemon", move || {
                let ep = listener.accept().unwrap();
                let msg = ep.recv().unwrap();
                ep.send(Payload::bytes(b"ack".to_vec())).unwrap();
                (msg.to_bytes(), listener)
            });
            let ep = s2
                .connect(NodeId::HOST, NodeId::device(0), ports::COI_DAEMON)
                .unwrap();
            ep.send(Payload::bytes(b"hello".to_vec())).unwrap();
            let reply = ep.recv().unwrap();
            assert_eq!(reply.to_bytes(), b"ack");
            let (msg, _listener) = h.join();
            assert_eq!(msg, b"hello");
            // Crossing PCIe twice plus setup: some latency elapsed.
            assert!(now().as_nanos() > 0);
        });
    }

    #[test]
    fn in_flight_counts_expose_drain_state() {
        Kernel::run_root(|| {
            let (scif, _) = world();
            let listener = scif.listen(NodeId::device(0), 7);
            let s2 = scif.clone();
            let h = spawn("peer", move || listener.accept().unwrap());
            let ep = s2.connect(NodeId::HOST, NodeId::device(0), 7).unwrap();
            let peer = h.join();
            assert_eq!(ep.outbound_pending(), 0);
            ep.send(Payload::bytes(vec![1])).unwrap();
            ep.send(Payload::bytes(vec![2])).unwrap();
            assert_eq!(ep.outbound_pending(), 2);
            assert_eq!(peer.inbound_pending(), 2);
            peer.recv().unwrap();
            peer.recv().unwrap();
            assert_eq!(ep.outbound_pending(), 0);
            assert_eq!(peer.inbound_pending(), 0);
        });
    }

    #[test]
    fn rdma_write_and_read_window() {
        Kernel::run_root(|| {
            let (scif, server) = world();
            let proc = SimProcess::new(Pid(1), "offload", server.device(0));
            proc.memory()
                .map_region("coibuf", Payload::bytes(vec![0u8; 8]))
                .unwrap();
            let addr = scif.register(&proc, "coibuf");

            let listener = scif.listen(NodeId::device(0), 9);
            let s2 = scif.clone();
            let h = spawn("srv", move || listener.accept().unwrap());
            let ep = s2.connect(NodeId::HOST, NodeId::device(0), 9).unwrap();
            let _peer = h.join();

            ep.rdma_write(addr, 2, Payload::bytes(vec![7, 8, 9]))
                .unwrap();
            assert_eq!(
                proc.memory().region("coibuf").unwrap().to_bytes(),
                vec![0, 0, 7, 8, 9, 0, 0, 0]
            );
            let read = ep.rdma_read(addr, 1, 4).unwrap();
            assert_eq!(read.to_bytes(), vec![0, 7, 8, 9]);
        });
    }

    #[test]
    fn rdma_bad_address_and_range() {
        Kernel::run_root(|| {
            let (scif, server) = world();
            let proc = SimProcess::new(Pid(1), "p", server.device(0));
            proc.memory()
                .map_region("w", Payload::bytes(vec![0u8; 4]))
                .unwrap();
            let addr = scif.register(&proc, "w");
            let listener = scif.listen(NodeId::device(0), 9);
            let s2 = scif.clone();
            let h = spawn("srv", move || listener.accept().unwrap());
            let ep = s2.connect(NodeId::HOST, NodeId::device(0), 9).unwrap();
            let _peer = h.join();

            assert!(matches!(
                ep.rdma_read(RdmaAddr(0xdead), 0, 1),
                Err(ScifError::BadAddress(_))
            ));
            assert!(matches!(
                ep.rdma_write(addr, 2, Payload::bytes(vec![0u8; 4])),
                Err(ScifError::OutOfRange { .. })
            ));
        });
    }

    #[test]
    fn windows_die_with_process_and_reregistration_differs() {
        Kernel::run_root(|| {
            let (scif, server) = world();
            let proc = SimProcess::new(Pid(1), "p", server.device(0));
            proc.memory()
                .map_region("w", Payload::bytes(vec![1, 2, 3]))
                .unwrap();
            let addr1 = scif.register(&proc, "w");

            let listener = scif.listen(NodeId::device(0), 9);
            let s2 = scif.clone();
            let h = spawn("srv", move || listener.accept().unwrap());
            let ep = s2.connect(NodeId::HOST, NodeId::device(0), 9).unwrap();
            let _peer = h.join();

            proc.exit();
            assert!(matches!(
                ep.rdma_read(addr1, 0, 1),
                Err(ScifError::BadAddress(_))
            ));

            // "Restored" process: same logical buffer, new registration.
            let proc2 = SimProcess::new(Pid(2), "p-restored", server.device(0));
            proc2
                .memory()
                .map_region("w", Payload::bytes(vec![1, 2, 3]))
                .unwrap();
            scif.unregister_process(&proc);
            let addr2 = scif.register(&proc2, "w");
            assert_ne!(addr1, addr2, "re-registration must yield a new address");
            assert_eq!(ep.rdma_read(addr2, 0, 3).unwrap().to_bytes(), vec![1, 2, 3]);
        });
    }

    #[test]
    fn rdma_time_scales_with_size() {
        Kernel::run_root(|| {
            let (scif, server) = world();
            let proc = SimProcess::new(Pid(1), "p", server.device(0));
            proc.memory()
                .map_region("w", Payload::synthetic(1, 64 * MB))
                .unwrap();
            let addr = scif.register(&proc, "w");
            let listener = scif.listen(NodeId::device(0), 9);
            let s2 = scif.clone();
            let h = spawn("srv", move || listener.accept().unwrap());
            let ep = s2.connect(NodeId::HOST, NodeId::device(0), 9).unwrap();
            let _peer = h.join();

            let t0 = now();
            ep.rdma_write(addr, 0, Payload::synthetic(2, 64 * MB))
                .unwrap();
            let big = now() - t0;
            let t1 = now();
            ep.rdma_write(addr, 0, Payload::synthetic(3, MB)).unwrap();
            let small = now() - t1;
            assert!(big.as_nanos() > 50 * small.as_nanos());
            // 64 MiB at 6 GB/s ≈ 11 ms.
            assert!((big.as_secs_f64() - 0.0112).abs() < 0.002, "big = {big}");
        });
    }

    #[test]
    fn close_propagates_to_peer() {
        Kernel::run_root(|| {
            let (scif, _) = world();
            let listener = scif.listen(NodeId::device(0), 9);
            let s2 = scif.clone();
            let h = spawn("srv", move || {
                let ep = listener.accept().unwrap();
                // Block until the peer closes.
                ep.recv()
            });
            let ep = s2.connect(NodeId::HOST, NodeId::device(0), 9).unwrap();
            sleep(ms(1));
            ep.close();
            assert_eq!(h.join(), Err(ScifError::Closed));
            assert!(matches!(ep.send(Payload::empty()), Err(ScifError::Closed)));
        });
    }

    #[test]
    fn listener_close_unbinds_port() {
        Kernel::run_root(|| {
            let (scif, _) = world();
            let listener = scif.listen(NodeId::device(0), 9);
            listener.close();
            assert!(scif.connect(NodeId::HOST, NodeId::device(0), 9).is_err());
            // Port can be rebound after close.
            let _l2 = scif.listen(NodeId::device(0), 9);
        });
    }

    #[test]
    fn same_node_connection_works() {
        Kernel::run_root(|| {
            let (scif, _) = world();
            let listener = scif.listen(NodeId::device(0), 9);
            let s2 = scif.clone();
            let h = spawn("srv", move || {
                let ep = listener.accept().unwrap();
                ep.recv().unwrap().to_bytes()
            });
            // The offload process connecting to its local COI daemon.
            let ep = s2.connect(NodeId::device(0), NodeId::device(0), 9).unwrap();
            ep.send(Payload::bytes(b"local".to_vec())).unwrap();
            assert_eq!(h.join(), b"local");
        });
    }

    #[test]
    fn ephemeral_ports_unique() {
        Kernel::run_root(|| {
            let (scif, _) = world();
            let a = scif.ephemeral_port();
            let b = scif.ephemeral_port();
            assert_ne!(a, b);
            assert!(a >= ports::EPHEMERAL_BASE);
        });
    }
}
