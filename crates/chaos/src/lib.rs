//! `simchaos` — the seeded schedule + fault explorer.
//!
//! Every component of the reproduction is deterministic: the kernel's
//! scheduler, the platform's fault plane, the transports' retry loops.
//! This crate composes them into an *explorer*: a single `u64` seed
//! expands into a complete chaos case — which workload to run, which
//! snapshot operation to perform, when to perform it, which faults to
//! inject and when — and [`run_case`] executes that case under
//! [`SchedPolicy::Random`] with the same seed.
//!
//! The payoff is the **one-line repro contract**: a failing case prints
//!
//! ```text
//! SIMCHAOS_SEED=1599094 SIMCHAOS_FAULTS='0:scp:connreset' cargo test --test chaos_explorer
//! ```
//!
//! and re-running with those environment variables (see
//! [`ChaosCase::from_env`]) replays the *byte-identical* execution:
//! same virtual timings, same scheduler decisions, same fault firings,
//! same trace digest. There is no "flaky chaos test" — only a case that
//! fails everywhere or passes everywhere.
//!
//! ## What a generated case asserts
//!
//! Workload cases ([`ChaosOp::Checkpoint`], [`ChaosOp::SwapCycle`],
//! [`ChaosOp::Migrate`], [`ChaosOp::Restart`]) drive a full snapshot
//! lifecycle through the public Snapify API at a seed-chosen virtual
//! time and require the paper's §3 consistency outcome: the disturbed
//! run and the restarted run both verify their output. Their generated
//! fault schedules draw only from the kinds the platform contract
//! survives *transparently* (PCIe CRC replays and latency spikes), so
//! a green sweep is meaningful: any failure is a real protocol bug,
//! not an injected hard error.
//!
//! Transport-soak cases ([`ChaosOp::NfsSoak`], [`ChaosOp::ScpSoak`])
//! stream a payload through a fault-ridden transport and require the
//! retry/backoff layer to absorb every transient fault (NFS timeouts,
//! scp connection resets) with a lossless round trip — never silent
//! corruption. Disabling the retry layer (the deliberately re-injected
//! bug, [`ChaosCase::disable_retries`]) makes exactly these cases fail
//! with a typed error and a replayable repro line.
//!
//! Harder fault kinds (`diskfull`, `shortwrite`, `oom`) are not drawn
//! by the generator — the stack surfaces them as typed errors rather
//! than surviving them, so they live in targeted unit tests — but a
//! hand-written `SIMCHAOS_FAULTS` override may inject any kind at any
//! target for ad-hoc exploration.

#![warn(missing_docs)]

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use coi_sim::{CoiConfig, DeviceBinary, FunctionRegistry};
use phi_platform::{
    cluster_lookahead, FaultKind, FaultSchedule, FaultTarget, NodeId, Payload, PhiServer,
    PlatformParams, MB,
};
use scif_sim::cluster_link;
use simkernel::domain::{MultiDomainConfig, MultiKernel};
use simkernel::obs;
use simkernel::obs::SloSpec;
use simkernel::time::{ms, us};
use simkernel::{SchedPolicy, SimDuration, SimTime};
use simproc::SnapshotStorage;
use snapify::{
    checkpoint_application, restart_application, snapify_migrate, snapify_swapin, snapify_swapout,
    FleetConfig, FleetReport, FleetScheduler, SnapifyWorld, SwapScheduler,
};
use snapify_io::{Nfs, NfsConfig, NfsMode, RetryPolicy, Scp, ScpConfig};
use snapstore::DedupConfig;
use workloads::{by_name, register_suite, WorkloadRun};

/// The workload names a seed may draw (the full suite).
const WORKLOADS: [&str; 8] = ["MD", "MC", "SS", "SG", "JAC", "KM", "FFT", "NB"];

/// Livelock threshold for chaos runs: far above any legitimate case
/// (the busiest generated case schedules a few million events), so a
/// hit means a real no-progress loop.
const LIVELOCK_EVENTS: u64 = 50_000_000;

/// A splitmix64 stream: the same generator the kernel's random
/// scheduler uses, so case expansion is stable across platforms and
/// needs no external crate.
#[derive(Clone, Debug)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "ChaosRng::below(0)");
        self.next_u64() % n
    }
}

/// The snapshot operation a case performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChaosOp {
    /// Mid-run checkpoint, then kill + restart on a seed-chosen device.
    Checkpoint,
    /// Mid-run swap-out (device memory must drop to zero) + swap-in.
    SwapCycle,
    /// Mid-run live migration to the other coprocessor.
    Migrate,
    /// Checkpoint, crash the card out-of-band, restart on the survivor.
    Restart,
    /// Stream a payload through an NFS mount under injected timeouts.
    NfsSoak,
    /// Stream a payload through scp under injected connection resets.
    ScpSoak,
    /// Two tenants time-share one card through [`snapify::SwapScheduler`]
    /// (park / rotate / retire through the dedup store), exercising the
    /// scheduler's error paths and the warm restore fast path. Not drawn
    /// by [`ChaosCase::from_seed`] (that would re-roll every historical
    /// seed); built with [`ChaosCase::swap_rotate_from_seed`].
    SwapRotate,
    /// An open-loop multi-tenant serving run (`serving::run_scenario`)
    /// under injected bus faults: seed-chosen eviction policy, arrival
    /// process, and Zipf skew, with the invariant that every admitted
    /// request reaches first-compute and residency never exceeds device
    /// capacity. Like [`ChaosOp::SwapRotate`], never drawn by
    /// [`ChaosCase::from_seed`]; built with
    /// [`ChaosCase::serve_from_seed`].
    Serve,
    /// A whole fleet run ([`snapify::FleetScheduler`]) — skewed
    /// placement, swap bin-packing, and cross-node migrations through
    /// the shared snapstore pool — under injected pool-NIC connection
    /// resets. A reset mid-migration must fail the in-migration at the
    /// destination and roll the tenant back to its source, leaving it
    /// resumable with nothing leaked in the pool. Like
    /// [`ChaosOp::SwapRotate`], never drawn by [`ChaosCase::from_seed`];
    /// built with [`ChaosCase::fleet_migrate_from_seed`].
    FleetMigrate,
}

impl ChaosOp {
    /// Short label for logs and repro lines.
    pub fn label(self) -> &'static str {
        match self {
            ChaosOp::Checkpoint => "checkpoint",
            ChaosOp::SwapCycle => "swap",
            ChaosOp::Migrate => "migrate",
            ChaosOp::Restart => "restart",
            ChaosOp::NfsSoak => "nfs-soak",
            ChaosOp::ScpSoak => "scp-soak",
            ChaosOp::SwapRotate => "swap-rotate",
            ChaosOp::Serve => "serve",
            ChaosOp::FleetMigrate => "fleet-migrate",
        }
    }

    /// Parse a [`ChaosOp::label`] back into the op (the `SIMCHAOS_OP`
    /// repro override).
    pub fn parse(label: &str) -> Result<ChaosOp, String> {
        [
            ChaosOp::Checkpoint,
            ChaosOp::SwapCycle,
            ChaosOp::Migrate,
            ChaosOp::Restart,
            ChaosOp::NfsSoak,
            ChaosOp::ScpSoak,
            ChaosOp::SwapRotate,
            ChaosOp::Serve,
            ChaosOp::FleetMigrate,
        ]
        .into_iter()
        .find(|op| op.label() == label)
        .ok_or_else(|| format!("unknown chaos op '{label}'"))
    }

    /// Whether this op is a transport soak (no COI world involved).
    pub fn is_soak(self) -> bool {
        matches!(self, ChaosOp::NfsSoak | ChaosOp::ScpSoak)
    }
}

impl fmt::Display for ChaosOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One fully-expanded chaos case. Every field is a pure function of
/// [`ChaosCase::from_seed`]'s seed; `faults` and `disable_retries` may
/// then be overridden (that is how a repro line re-injects a schedule
/// and how the retry-bug demo disables the absorption layer).
#[derive(Clone, Debug)]
pub struct ChaosCase {
    /// The seed this case expanded from; also the scheduler seed.
    pub seed: u64,
    /// Suite workload driven by the workload ops.
    pub workload: &'static str,
    /// The operation under test.
    pub op: ChaosOp,
    /// Virtual time at which the snapshot operation fires.
    pub snapshot_time: SimDuration,
    /// Device the restarted/swapped process lands on (0 or 1).
    pub device: usize,
    /// Payload size of a transport soak, in MiB.
    pub payload_mb: u64,
    /// The fault schedule injected at world boot.
    pub faults: FaultSchedule,
    /// The deliberately re-injectable bug: run the transports with
    /// `RetryPolicy::disabled()`, so transient faults surface instead
    /// of being absorbed.
    pub disable_retries: bool,
    /// Latency objective evaluated while the case runs. Ops that drive
    /// the [`SwapScheduler`] attach it to the scheduler's SLO monitor
    /// and [`ChaosOutcome::slo_breaches`] reports every violated
    /// window, so a sweep distinguishes "seed crashed" from "seed blew
    /// the latency budget". `None` for ops with no swap plane.
    pub slo: Option<SloSpec>,
    /// Time domains the case runs on (≥ 1). Never drawn by
    /// [`ChaosCase::from_seed`] — that would re-roll every historical
    /// seed — only set by the `SIMCHAOS_DOMAINS` override or by a sweep
    /// directly. With `domains > 1` the case body runs in domain 0 of a
    /// multi-domain kernel while peer domains exchange bounded
    /// cluster-link pings with it, so the conservative sync engine is
    /// under the same random scheduling as the case itself.
    pub domains: u32,
}

/// The swap-in latency objective rotate cases evaluate by default. The
/// simulated platform swaps the largest generated tenant (17 MiB) back
/// in well under a second — cold fetch included — so a breach in a
/// green sweep means a real latency regression, not noise.
const DEFAULT_SWAP_SLO: &str = "swapin.p99 < 2s over 10s";

/// The time-to-first-compute objective serve cases attach to every
/// tenant class by default. Deliberately tight enough that some seeds
/// breach it under faults and queueing: the sweep's point is to report
/// SLO-breach seeds separately from crash seeds, not to stay green.
const DEFAULT_SERVE_SLO: &str = "ttfc.p99 < 3s over 10s";

/// The objective a case carries by construction (overridable, like
/// `faults`): swap-plane ops get [`DEFAULT_SWAP_SLO`], serve cases get
/// [`DEFAULT_SERVE_SLO`], the rest none.
fn default_slo(op: ChaosOp) -> Option<SloSpec> {
    match op {
        ChaosOp::SwapRotate => {
            Some(SloSpec::parse(DEFAULT_SWAP_SLO).expect("DEFAULT_SWAP_SLO parses"))
        }
        ChaosOp::Serve => {
            Some(SloSpec::parse(DEFAULT_SERVE_SLO).expect("DEFAULT_SERVE_SLO parses"))
        }
        _ => None,
    }
}

impl ChaosCase {
    /// Expand `seed` into a complete case.
    pub fn from_seed(seed: u64) -> ChaosCase {
        let mut rng = ChaosRng::new(seed);
        let workload = WORKLOADS[rng.below(WORKLOADS.len() as u64) as usize];
        let op = match rng.below(6) {
            0 => ChaosOp::Checkpoint,
            1 => ChaosOp::SwapCycle,
            2 => ChaosOp::Migrate,
            3 => ChaosOp::Restart,
            4 => ChaosOp::NfsSoak,
            _ => ChaosOp::ScpSoak,
        };
        let snapshot_time = us(500 + rng.below(60_000));
        let device = rng.below(2) as usize;
        let payload_mb = 4 + rng.below(13);
        let faults = generate_faults(&mut rng, op);
        ChaosCase {
            seed,
            workload,
            op,
            snapshot_time,
            device,
            payload_mb,
            faults,
            disable_retries: false,
            slo: default_slo(op),
            domains: 1,
        }
    }

    /// Expand `seed` into a swap-rotate case: the op is pinned to
    /// [`ChaosOp::SwapRotate`] instead of drawn, and the fault schedule
    /// is regenerated from a derived stream so rotate sweeps explore
    /// timings independent of the base sweep. [`ChaosCase::from_seed`]
    /// stays byte-stable: historical repro lines keep replaying the
    /// same cases.
    pub fn swap_rotate_from_seed(seed: u64) -> ChaosCase {
        let mut case = ChaosCase::from_seed(seed);
        case.op = ChaosOp::SwapRotate;
        let mut rng = ChaosRng::new(seed ^ 0x5377_6170_526f_7461);
        case.faults = generate_faults(&mut rng, ChaosOp::SwapRotate);
        case.slo = default_slo(ChaosOp::SwapRotate);
        case
    }

    /// Expand `seed` into a serving case: op pinned to
    /// [`ChaosOp::Serve`], faults regenerated from a derived stream
    /// (same rationale as [`ChaosCase::swap_rotate_from_seed`] — base
    /// expansion stays byte-stable). The serving shape itself (policy,
    /// arrival process, skew) is drawn inside `serve_op` from another
    /// derived stream, so it replays from the seed alone.
    pub fn serve_from_seed(seed: u64) -> ChaosCase {
        let mut case = ChaosCase::from_seed(seed);
        case.op = ChaosOp::Serve;
        let mut rng = ChaosRng::new(seed ^ 0x5365_7276_6546_6161); // "ServeFaa"
        case.faults = generate_faults(&mut rng, ChaosOp::Serve);
        case.slo = default_slo(ChaosOp::Serve);
        case
    }

    /// Expand `seed` into a fleet-migrate case: op pinned to
    /// [`ChaosOp::FleetMigrate`], faults regenerated from a derived
    /// stream (same rationale as [`ChaosCase::swap_rotate_from_seed`] —
    /// the base expansion stays byte-stable). The fleet shape is fixed
    /// ([`FLEET_CHAOS_NODES`] nodes); the scheduler seed and the fault
    /// timings carry all the per-seed variation.
    pub fn fleet_migrate_from_seed(seed: u64) -> ChaosCase {
        let mut case = ChaosCase::from_seed(seed);
        case.op = ChaosOp::FleetMigrate;
        let mut rng = ChaosRng::new(seed ^ 0x466c_6565_744d_6967); // "FleetMig"
        case.faults = generate_faults(&mut rng, ChaosOp::FleetMigrate);
        case.slo = default_slo(ChaosOp::FleetMigrate);
        case
    }

    /// The one-line repro for this case: paste it in front of
    /// `cargo test --test chaos_explorer` (or export the variables) and
    /// the `replay_case_from_env` test re-executes this exact case.
    pub fn repro_line(&self) -> String {
        let mut line = format!(
            "SIMCHAOS_SEED={} SIMCHAOS_FAULTS='{}'",
            self.seed, self.faults
        );
        // Like the op: only a deviation from the default (1) replays.
        if self.domains != 1 {
            line.push_str(&format!(" SIMCHAOS_DOMAINS={}", self.domains));
        }
        // Ops not drawn by `from_seed` (pinned constructors such as
        // `swap_rotate_from_seed`) need an explicit override to replay.
        if self.op != ChaosCase::from_seed(self.seed).op {
            line.push_str(&format!(" SIMCHAOS_OP={}", self.op));
        }
        // Only a non-default objective needs replaying; the default is
        // implied by the op (`SIMCHAOS_SLO=off` disables it entirely).
        if self.slo != default_slo(self.op) {
            match &self.slo {
                Some(spec) => line.push_str(&format!(" SIMCHAOS_SLO='{}'", spec.render())),
                None => line.push_str(" SIMCHAOS_SLO=off"),
            }
        }
        if self.disable_retries {
            line.push_str(" SIMCHAOS_NO_RETRY=1");
        }
        line
    }

    /// Rebuild a case from `SIMCHAOS_SEED` / `SIMCHAOS_FAULTS` /
    /// `SIMCHAOS_NO_RETRY`. Returns `None` when `SIMCHAOS_SEED` is not
    /// set; panics (with the parse error) on a malformed value, since a
    /// silently-ignored repro line would be worse than a test failure.
    pub fn from_env() -> Option<ChaosCase> {
        let seed = std::env::var("SIMCHAOS_SEED").ok()?;
        let seed: u64 = seed
            .parse()
            .unwrap_or_else(|_| panic!("SIMCHAOS_SEED='{seed}' is not a u64"));
        let mut case = ChaosCase::from_seed(seed);
        if let Ok(text) = std::env::var("SIMCHAOS_FAULTS") {
            case.faults = FaultSchedule::parse(&text)
                .unwrap_or_else(|e| panic!("SIMCHAOS_FAULTS='{text}': {e}"));
        }
        if let Ok(label) = std::env::var("SIMCHAOS_OP") {
            case.op =
                ChaosOp::parse(&label).unwrap_or_else(|e| panic!("SIMCHAOS_OP='{label}': {e}"));
            // The op override implies that op's default objective (the
            // repro line only records *deviations* from the default).
            case.slo = default_slo(case.op);
        }
        if let Ok(text) = std::env::var("SIMCHAOS_SLO") {
            case.slo = if text == "off" {
                None
            } else {
                Some(SloSpec::parse(&text).unwrap_or_else(|e| panic!("SIMCHAOS_SLO='{text}': {e}")))
            };
        }
        if let Ok(text) = std::env::var("SIMCHAOS_DOMAINS") {
            case.domains = text
                .parse()
                .ok()
                .filter(|&d| d >= 1)
                .unwrap_or_else(|| panic!("SIMCHAOS_DOMAINS='{text}' is not a positive u32"));
        }
        if std::env::var("SIMCHAOS_NO_RETRY").is_ok_and(|v| v == "1") {
            case.disable_retries = true;
        }
        Some(case)
    }
}

impl fmt::Display for ChaosCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} op={} workload={} t_snap={}us faults=[{}]{}{}",
            self.seed,
            self.op,
            self.workload,
            self.snapshot_time.as_nanos() / 1_000,
            self.faults,
            if self.domains != 1 {
                format!(" domains={}", self.domains)
            } else {
                String::new()
            },
            if self.disable_retries {
                " NO_RETRY"
            } else {
                ""
            }
        )
    }
}

/// Draw a fault schedule appropriate for `op` (see module docs for why
/// workload ops only draw transparently-survivable bus faults).
fn generate_faults(rng: &mut ChaosRng, op: ChaosOp) -> FaultSchedule {
    let mut schedule = FaultSchedule::none();
    match op {
        ChaosOp::NfsSoak | ChaosOp::ScpSoak => {
            // 1..=3 transient transport faults inside the soak window.
            // The default RetryPolicy allows 3 retries per logical
            // operation, so every generated schedule is absorbable.
            let target = if op == ChaosOp::NfsSoak {
                FaultTarget::Nfs
            } else {
                FaultTarget::Scp
            };
            for _ in 0..(1 + rng.below(3)) {
                let at = SimTime::ZERO + us(rng.below(60_000));
                let kind = if op == ChaosOp::NfsSoak {
                    FaultKind::NfsTimeout(us(200 + rng.below(19_800)))
                } else {
                    FaultKind::ConnReset
                };
                schedule = schedule.with(at, target, kind);
            }
        }
        ChaosOp::FleetMigrate => {
            // 1..=2 pool-NIC connection resets on non-hot nodes (the
            // rebalancer's candidate destinations; node 0 holds the
            // parked overflow and only ever migrates *out*). `at` is
            // early so the node's first cross-node import consult trips
            // the fault: the reset must fail that in-migration and roll
            // the tenant back to its source.
            for _ in 0..(1 + rng.below(2)) {
                let at = SimTime::ZERO + us(rng.below(1_000));
                let node = 1 + rng.below(FLEET_CHAOS_NODES as u64 - 1) as usize;
                schedule = schedule.with(at, FaultTarget::Net(node), FaultKind::ConnReset);
            }
        }
        _ => {
            // 0..=2 link-level faults, both cards eligible.
            for _ in 0..rng.below(3) {
                let at = SimTime::ZERO + us(rng.below(200_000));
                let target = FaultTarget::Bus(rng.below(2) as usize);
                let kind = if rng.below(2) == 0 {
                    FaultKind::BusError
                } else {
                    FaultKind::BusDelay(us(100 + rng.below(4_900)))
                };
                schedule = schedule.with(at, target, kind);
            }
        }
    }
    schedule
}

/// What one chaos run produced.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// `None` = every invariant held; `Some(why)` = the case failed.
    pub failure: Option<String>,
    /// Number of scheduler events recorded by the kernel trace.
    pub trace_len: usize,
    /// Order-sensitive digest of the trace. Two runs of the same case
    /// are byte-identical iff `trace_len` and `trace_digest` match.
    pub trace_digest: u64,
    /// How many scheduled faults actually fired.
    pub faults_fired: usize,
    /// Rendered [SLO](simkernel::obs::SloBreach) violations from the
    /// swap plane, in evaluation order. Virtual-time evaluation makes
    /// the list replay byte-identically with the trace, so a sweep can
    /// report *which seeds violated the SLO*, not just which crashed.
    /// Empty for ops that carry no objective (`case.slo == None`).
    pub slo_breaches: Vec<String>,
    /// The flight recorder's last events, captured at failure time
    /// (`None` when the case passed). A diagnosis aid, not part of the
    /// replay contract: the recorder ring is process-global, so
    /// concurrent cases interleave in it.
    pub flight_tail: Option<String>,
}

impl ChaosOutcome {
    /// Whether the case passed.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Fleet size of a [`ChaosOp::FleetMigrate`] case. Fixed so the
/// generated `net{n}` fault targets always name a real node; the
/// per-seed variation lives in the scheduler seed and fault timings.
pub const FLEET_CHAOS_NODES: usize = 4;

/// Pings each peer domain exchanges with domain 0 during a
/// multi-domain case. Small: the peers exist to run the conservative
/// sync engine under the case's random scheduling, not to outlast the
/// case body.
const PEER_PINGS: u64 = 8;

/// Execute one case under `SchedPolicy::Random(case.seed)` with kernel
/// tracing on, and report the outcome. Deadlocks, livelocks, and
/// panics inside the simulation are caught and reported as failures
/// (with the kernel's thread dump in the message), so a sweep can keep
/// going and collect every failing repro line.
///
/// With `case.domains > 1` the case body runs in domain 0 of a
/// multi-domain kernel (lookahead = the platform's network latency)
/// while every other domain runs a peer exchanging bounded
/// cluster-link pings with an echo thread in domain 0; a stuck domain
/// then surfaces as a cross-domain deadlock dump listing every
/// domain's clock and safe horizon. `domains = 1` is exactly the
/// single-kernel execution — historical repro lines replay unchanged.
pub fn run_case(case: &ChaosCase) -> ChaosOutcome {
    // Chaos runs are always self-identifying: stamp the seed, fault
    // schedule, and repro line into the run metadata (exported in the
    // Chrome trace's `otherData` block) and turn the flight recorder on
    // so deadlock/livelock dumps carry the last telemetry events. The
    // recorder is process-global and deliberately never reset here —
    // a reset would stomp concurrent cases in the same test binary.
    obs::set_meta("chaos.seed", &case.seed.to_string());
    obs::set_meta("chaos.faults", &case.faults.to_string());
    obs::set_meta("chaos.repro", &case.repro_line());
    obs::enable();
    // A fleet case cannot run *inside* this function's kernel: the
    // FleetScheduler owns its own multi-node cluster (and therefore its
    // own kernel), so it executes directly and the outcome derives from
    // the fleet report. `SIMCHAOS_DOMAINS` maps onto the fleet's domain
    // count; the scheduler policy is `Random(case.seed)` as everywhere.
    if case.op == ChaosOp::FleetMigrate {
        return run_fleet_migrate_case(case);
    }
    let params = PlatformParams::default();
    let mk = MultiKernel::new(
        MultiDomainConfig::new(case.domains, cluster_lookahead(&params))
            .with_policy(SchedPolicy::Random(case.seed)),
    );
    mk.enable_trace();
    mk.set_livelock_threshold(Some(LIVELOCK_EVENTS));
    mk.set_dump_note(format!("chaos repro: {}", case.repro_line()));

    for d in 1..case.domains {
        let (ptx, prx) = cluster_link(&mk, format!("peer{d}-req"), d, 0, &params);
        let (etx, erx) = cluster_link(&mk, format!("peer{d}-rsp"), 0, d, &params);
        mk.domain(0).spawn(format!("echo{d}"), move || {
            while let Ok(p) = prx.recv() {
                etx.send(p).unwrap();
            }
            etx.close();
        });
        mk.domain(d).spawn(format!("peer{d}"), move || {
            for i in 0..PEER_PINGS {
                simkernel::sleep(us(200));
                let ping = Payload::synthetic(i, 64);
                let digest = ping.digest();
                ptx.send(ping).unwrap();
                match erx.recv_deadline(simkernel::now() + ms(5)) {
                    Ok(Some(p)) => assert_eq!(p.digest(), digest, "echo corrupted the ping"),
                    Ok(None) => {} // domain 0 busy; the echo drains below
                    Err(_) => break,
                }
            }
            ptx.close();
            while erx.recv().is_ok() {}
        });
    }

    let c = case.clone();
    let root = mk.domain(0).spawn("chaos-root", move || execute(&c));
    let run = panic::catch_unwind(AssertUnwindSafe(|| mk.run()));
    let (failure, faults_fired, slo_breaches) = match run {
        Ok(()) => match root.take_result() {
            Some((failure, fired, breaches)) => (failure, fired, breaches),
            None => (
                Some("chaos root thread produced no result".to_string()),
                0,
                Vec::new(),
            ),
        },
        Err(payload) => (Some(panic_text(payload)), 0, Vec::new()),
    };
    // Best-effort even after a failed run: the trace identifies the
    // execution for replay comparison. (`fingerprint` is the plain
    // kernel's `(trace_len, trace_digest)` when `domains = 1`.)
    let (trace_len, trace_digest) =
        panic::catch_unwind(AssertUnwindSafe(|| mk.fingerprint())).unwrap_or((0, 0));
    let flight_tail = failure.as_ref().map(|_| obs::flight_tail(32));
    ChaosOutcome {
        failure,
        trace_len,
        trace_digest,
        faults_fired,
        slo_breaches,
        flight_tail,
    }
}

/// Scan seeds upward from `base` for the first whose *generated* case
/// satisfies `pred`. Expansion only — nothing is executed — so this is
/// cheap enough to use inline in tests that need a case of a specific
/// shape (e.g. "an scp soak with at least two resets").
pub fn find_seed(base: u64, pred: impl Fn(&ChaosCase) -> bool) -> u64 {
    (base..base.saturating_add(100_000))
        .find(|s| pred(&ChaosCase::from_seed(*s)))
        .expect("no matching case within 100k seeds of base")
}

/// Execute a [`ChaosOp::FleetMigrate`] case: run the whole fleet under
/// `Random(case.seed)` with every node handed the case's fault schedule
/// (a `net{n}` entry only ever fires on node `n` — each node consults
/// its own pool NIC), then check the fleet invariants. `faults_fired`
/// reports the rolled-back migrations: every pool-NIC reset that fires
/// on the import path fails exactly one in-migration.
fn run_fleet_migrate_case(case: &ChaosCase) -> ChaosOutcome {
    let cfg = FleetConfig {
        nodes: FLEET_CHAOS_NODES,
        domains: case.domains,
        tenants: 12,
        base_bytes: 8 * MB,
        unique_bytes: MB,
        max_migrations: 3,
        policy: SchedPolicy::Random(case.seed),
        node_faults: vec![case.faults.clone(); FLEET_CHAOS_NODES],
        ..FleetConfig::default()
    };
    match panic::catch_unwind(AssertUnwindSafe(|| FleetScheduler::new(cfg).run())) {
        Ok(report) => {
            let failure = fleet_invariants(&report).err();
            let flight_tail = failure.as_ref().map(|_| obs::flight_tail(32));
            ChaosOutcome {
                failure,
                trace_len: report.fingerprint.0,
                trace_digest: report.fingerprint.1,
                faults_fired: report.failed_back(),
                slo_breaches: Vec::new(),
                flight_tail,
            }
        }
        Err(payload) => ChaosOutcome {
            failure: Some(panic_text(payload)),
            trace_len: 0,
            trace_digest: 0,
            faults_fired: 0,
            slo_breaches: Vec::new(),
            flight_tail: Some(obs::flight_tail(32)),
        },
    }
}

/// The invariants every fleet-migrate case must uphold, faults or not:
/// no tenant lost or duplicated, every failed migration rolled back at
/// its source, nothing left referenced in the shared pool, and any
/// committed migration restored warm (it found local chunks to dedup
/// against).
fn fleet_invariants(r: &FleetReport) -> Result<(), String> {
    let launched: u64 = r.agents.iter().map(|a| a.launched).sum();
    if launched != r.tenants as u64 {
        return Err(format!("{launched} of {} tenants launched", r.tenants));
    }
    let before: u64 = r.loads_before.iter().map(|l| l.resident + l.parked).sum();
    let after: u64 = r.loads_after.iter().map(|l| l.resident + l.parked).sum();
    if before != after {
        return Err(format!(
            "tenant population changed across rebalancing: {before} before, {after} after"
        ));
    }
    let rolled_back: u64 = r.agents.iter().map(|a| a.restored_back).sum();
    if rolled_back != r.failed_back() as u64 {
        return Err(format!(
            "{} failed migrations but {rolled_back} source rollbacks",
            r.failed_back()
        ));
    }
    if r.pool_live_manifests != 0 || r.pool_live_chunks != 0 {
        return Err(format!(
            "shutdown leaked pool state: {} manifests, {} chunks",
            r.pool_live_manifests, r.pool_live_chunks
        ));
    }
    for m in r.migrations.iter().filter(|m| m.committed) {
        if m.dev_bytes == 0 {
            return Err(format!(
                "committed migration of t{} captured no device state",
                m.tenant
            ));
        }
    }
    if r.committed() >= 1 && r.pool.bytes_avoided_remote == 0 {
        return Err("committed migrations never restored warm".to_string());
    }
    Ok(())
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run the case body inside the simulation. Returns
/// `(failure, faults_fired, rendered_slo_breaches)`.
fn execute(case: &ChaosCase) -> (Option<String>, usize, Vec<String>) {
    if case.op == ChaosOp::SwapRotate {
        return match swap_rotate_op(case) {
            Ok((fired, breaches)) => (None, fired, breaches),
            Err(why) => (Some(why), 0, Vec::new()),
        };
    }
    if case.op == ChaosOp::Serve {
        return match serve_op(case) {
            Ok((fired, breaches)) => (None, fired, breaches),
            Err(why) => (Some(why), 0, Vec::new()),
        };
    }
    let result = if case.op.is_soak() {
        transport_soak(case)
    } else {
        workload_op(case)
    };
    match result {
        Ok(fired) => (None, fired, Vec::new()),
        Err(why) => (Some(why), 0, Vec::new()),
    }
}

/// Soak a transport: stream a payload out and back while the fault
/// plane injects transient faults, and require a lossless round trip.
/// The write/read loops interleave short sleeps so the operation spans
/// the generated fault window instead of completing before any fault
/// is due.
fn transport_soak(case: &ChaosCase) -> Result<usize, String> {
    let server = PhiServer::new_with_faults(PlatformParams::default(), case.faults.clone());
    let storage: Box<dyn SnapshotStorage> = match case.op {
        ChaosOp::NfsSoak => {
            let mut cfg = NfsConfig::default();
            if case.disable_retries {
                cfg.retry = RetryPolicy::disabled();
            }
            Box::new(Nfs::new(&server, cfg, NfsMode::Plain))
        }
        ChaosOp::ScpSoak => {
            let mut cfg = ScpConfig::default();
            if case.disable_retries {
                cfg.retry = RetryPolicy::disabled();
            }
            Box::new(Scp::new(&server, cfg))
        }
        _ => unreachable!("transport_soak on a workload op"),
    };
    let data = Payload::synthetic(case.seed ^ 0xd00d_f00d, case.payload_mb * MB);

    let mut sink = storage
        .sink(NodeId::device(0), "/chaos/soak")
        .map_err(|e| format!("{} sink open failed: {e:?}", storage.label()))?;
    for chunk in data.chunks(MB) {
        sink.write(chunk)
            .map_err(|e| format!("{} soak write failed: {e:?}", storage.label()))?;
        simkernel::sleep(ms(3));
    }
    sink.close()
        .map_err(|e| format!("{} soak close failed: {e:?}", storage.label()))?;

    let mut src = storage
        .source(NodeId::device(0), "/chaos/soak")
        .map_err(|e| format!("{} source open failed: {e:?}", storage.label()))?;
    let mut out = Payload::empty();
    while let Some(chunk) = src
        .read(MB)
        .map_err(|e| format!("{} soak read failed: {e:?}", storage.label()))?
    {
        out.append(chunk);
        simkernel::sleep(ms(1));
    }
    if out.len() != data.len() || out.digest() != data.digest() {
        return Err(format!(
            "{} silently corrupted the stream: {} bytes back, {} expected",
            storage.label(),
            out.len(),
            data.len()
        ));
    }
    Ok(server.faults().fired_count())
}

/// Drive a full snapshot lifecycle through the public Snapify API.
fn workload_op(case: &ChaosCase) -> Result<usize, String> {
    let spec = by_name(case.workload)
        .ok_or_else(|| format!("unknown workload {}", case.workload))?
        .scaled(128, 12);
    let registry = FunctionRegistry::new();
    register_suite(&registry, std::slice::from_ref(&spec));
    let world = SnapifyWorld::boot_with_faults(
        PlatformParams::default(),
        CoiConfig::default(),
        registry,
        case.faults.clone(),
    );
    let run = Arc::new(
        WorkloadRun::launch(world.coi(), &spec, 0).map_err(|e| format!("launch failed: {e:?}"))?,
    );
    let handle = run.handle().clone();
    let host = run.host_proc().clone();
    let path = format!("/snap/chaos/{}", case.seed);

    match case.op {
        ChaosOp::Checkpoint => {
            let driver = {
                let r = Arc::clone(&run);
                host.spawn_thread("driver", move || r.run_to_completion())
            };
            simkernel::sleep(case.snapshot_time);
            let (_snap, report) = checkpoint_application(&world, &handle, &run.host_state(), &path)
                .map_err(|e| format!("checkpoint failed: {e:?}"))?;
            if report.device_snapshot_bytes == 0 {
                return Err("checkpoint produced an empty device snapshot".to_string());
            }
            let result = driver
                .join()
                .map_err(|e| format!("post-checkpoint run failed: {e:?}"))?;
            if !result.verified {
                return Err("run corrupted by the checkpoint cycle".to_string());
            }
            run.destroy()
                .map_err(|e| format!("destroy failed: {e:?}"))?;
            host.exit();
            let restarted = restart_application(&world, &path, &spec.binary_name(), case.device)
                .map_err(|e| format!("restart failed: {e:?}"))?;
            let resumed = WorkloadRun::resume_after_restart(
                &spec,
                &restarted.handle,
                &restarted.host_proc,
                &restarted.host_state,
            );
            let result = resumed
                .run_to_completion()
                .map_err(|e| format!("restarted run failed: {e:?}"))?;
            if !result.verified {
                return Err("restart diverged from the original run".to_string());
            }
            resumed
                .destroy()
                .map_err(|e| format!("post-restart destroy failed: {e:?}"))?;
        }
        ChaosOp::SwapCycle => {
            let driver = {
                let r = Arc::clone(&run);
                host.spawn_thread("driver", move || r.run_to_completion())
            };
            simkernel::sleep(case.snapshot_time);
            let snap =
                snapify_swapout(&handle, &path).map_err(|e| format!("swap-out failed: {e:?}"))?;
            let used = world.server().device(0).mem().used();
            if used != 0 {
                return Err(format!("swap-out left {used} bytes resident on the card"));
            }
            snapify_swapin(&snap, 0).map_err(|e| format!("swap-in failed: {e:?}"))?;
            let result = driver
                .join()
                .map_err(|e| format!("post-swap run failed: {e:?}"))?;
            if !result.verified {
                return Err("run corrupted by the swap cycle".to_string());
            }
            run.destroy()
                .map_err(|e| format!("destroy failed: {e:?}"))?;
        }
        ChaosOp::Migrate => {
            let driver = {
                let r = Arc::clone(&run);
                host.spawn_thread("driver", move || r.run_to_completion())
            };
            simkernel::sleep(case.snapshot_time);
            snapify_migrate(&handle, 1).map_err(|e| format!("migrate failed: {e:?}"))?;
            if handle.device() != 1 {
                return Err(format!(
                    "migrate landed on device {}, expected 1",
                    handle.device()
                ));
            }
            let result = driver
                .join()
                .map_err(|e| format!("post-migrate run failed: {e:?}"))?;
            if !result.verified {
                return Err("run corrupted by the migration".to_string());
            }
            run.destroy()
                .map_err(|e| format!("destroy failed: {e:?}"))?;
        }
        ChaosOp::Restart => {
            // Checkpoint before any work, crash the card out-of-band,
            // restart on the survivor.
            checkpoint_application(&world, &handle, &run.host_state(), &path)
                .map_err(|e| format!("checkpoint failed: {e:?}"))?;
            let rt = world
                .coi()
                .daemon(0)
                .runtime(handle.pid())
                .ok_or("offload runtime missing")?;
            rt.terminate();
            simkernel::sleep(ms(1));
            if handle.ping().is_ok() {
                return Err("crashed offload process still answers pings".to_string());
            }
            host.exit();
            let restarted = restart_application(&world, &path, &spec.binary_name(), 1)
                .map_err(|e| format!("restart after crash failed: {e:?}"))?;
            let resumed = WorkloadRun::resume_after_restart(
                &spec,
                &restarted.handle,
                &restarted.host_proc,
                &restarted.host_state,
            );
            let result = resumed
                .run_to_completion()
                .map_err(|e| format!("rescued run failed: {e:?}"))?;
            if !result.verified {
                return Err("rescued run diverged from the original".to_string());
            }
            resumed
                .destroy()
                .map_err(|e| format!("post-rescue destroy failed: {e:?}"))?;
        }
        ChaosOp::NfsSoak
        | ChaosOp::ScpSoak
        | ChaosOp::SwapRotate
        | ChaosOp::Serve
        | ChaosOp::FleetMigrate => {
            unreachable!("handled separately")
        }
    }
    Ok(world.server().faults().fired_count())
}

/// Two tenants time-share one card through the swap scheduler, backed
/// by the dedup store: A is parked, B admitted resident, then three
/// rotations hand the card back and forth while the fault plane fires.
/// After each rotation the resident tenant's buffer must verify (the
/// warm restore fast path must not corrupt state), and retiring both
/// tenants — one of them while parked — must drain the store.
///
/// Returns `(faults_fired, rendered_slo_breaches)`: the case's SLO (by
/// default [`DEFAULT_SWAP_SLO`]) rides on the scheduler's monitor, so
/// the sweep learns which seeds blew the latency budget even when every
/// consistency invariant held.
fn swap_rotate_op(case: &ChaosCase) -> Result<(usize, Vec<String>), String> {
    let registry = FunctionRegistry::new();
    registry.register(DeviceBinary::new("tenant.so", MB, 32 * MB));
    let world = SnapifyWorld::boot_dedup_with_faults(
        PlatformParams::default(),
        CoiConfig::default(),
        registry,
        DedupConfig::default(),
        case.faults.clone(),
    );
    let store = world.store().expect("dedup world has a store").clone();
    let mut sched = SwapScheduler::new(1, format!("/swap/chaos/{}", case.seed)).with_store(&store);
    if let Some(spec) = &case.slo {
        sched = sched.with_slo(spec.clone());
    }
    let bytes = case.payload_mb * MB;

    let mut tenants = Vec::new();
    for (name, tag) in [("tenant-a", 0u64), ("tenant-b", 1)] {
        let host = world.coi().create_host_process(name);
        let h = world
            .coi()
            .create_process(&host, 0, "tenant.so")
            .map_err(|e| format!("{name} create failed: {e:?}"))?;
        let buf = h
            .create_buffer(bytes)
            .map_err(|e| format!("{name} buffer failed: {e:?}"))?;
        h.buffer_write(&buf, Payload::synthetic(case.seed ^ tag, bytes))
            .map_err(|e| format!("{name} write failed: {e:?}"))?;
        let id = sched.admit_tagged(&h, 0, name);
        if tag == 0 {
            sched
                .park(id)
                .map_err(|e| format!("{name} park failed: {e:?}"))?;
        }
        tenants.push((h, buf, id, tag));
    }
    let (a, b) = (tenants[0].2, tenants[1].2);

    // Let the generated faults come due mid-rotation rather than all
    // before or all after.
    simkernel::sleep(case.snapshot_time);

    // A parked, B resident. Rotations alternate them: after round r the
    // resident tenant is A on even rounds, B on odd.
    for round in 0..3usize {
        let switches = sched
            .rotate()
            .map_err(|e| format!("rotate {round} failed: {e:?}"))?;
        if switches != 1 {
            return Err(format!(
                "rotate {round} made {switches} switches, expected 1"
            ));
        }
        let resident = if round % 2 == 0 { a } else { b };
        if !sched.is_resident(resident) {
            return Err(format!("rotate {round} left the wrong tenant resident"));
        }
        let (h, buf, _, tag) = &tenants[round % 2];
        let data = h
            .buffer_read(buf)
            .map_err(|e| format!("rotate {round} buffer read failed: {e:?}"))?;
        if data.digest() != Payload::synthetic(case.seed ^ tag, bytes).digest() {
            return Err(format!("rotate {round} corrupted the restored tenant"));
        }
    }
    if store.stats().restore_bytes_avoided == 0 {
        return Err("unchanged tenants never hit the warm restore cache".to_string());
    }

    // B finished while parked, A while resident; both retire paths must
    // drain the store.
    sched
        .retire(b)
        .map_err(|e| format!("retire of the parked tenant failed: {e:?}"))?;
    sched
        .retire(a)
        .map_err(|e| format!("retire of the resident tenant failed: {e:?}"))?;
    let stats = store.stats();
    if stats.bytes_stored != 0 || stats.manifests != 0 {
        return Err(format!(
            "retire leaked store state: {} bytes, {} manifests",
            stats.bytes_stored, stats.manifests
        ));
    }
    let breaches = sched.slo_breaches().iter().map(|b| b.render()).collect();
    Ok((world.server().faults().fired_count(), breaches))
}

/// An open-loop serving run under the case's bus faults. The serving
/// shape — eviction policy, arrival process, Zipf exponent — is drawn
/// from a stream derived from the seed, so `SIMCHAOS_SEED` +
/// `SIMCHAOS_OP=serve` replays the exact scenario. Invariants: nothing
/// is rejected (no admission limit is set), every admitted request
/// reaches first-compute, residency never exceeds device capacity, and
/// the skewed population always produces cold starts (every tenant
/// begins parked). The case SLO is attached to *every* tenant class;
/// its rendered breaches come back for separate reporting.
fn serve_op(case: &ChaosCase) -> Result<(usize, Vec<String>), String> {
    use serving::{
        run_scenario_with_faults, ArrivalProcess, EvictionPolicy, ServingConfig, TenantClass,
        TrafficConfig,
    };
    let mut rng = ChaosRng::new(case.seed ^ 0x5365_7276_6553_6870); // "ServeShp"
    let policy = EvictionPolicy::ALL[rng.below(3) as usize];
    let process = if rng.below(2) == 0 {
        ArrivalProcess::Poisson
    } else {
        ArrivalProcess::Bursty {
            burst_len: 4 + rng.below(5) as u32,
            burst_factor: 4.0,
        }
    };
    let zipf_s = 0.8 + rng.below(9) as f64 / 10.0;
    let mut classes = TenantClass::defaults();
    for class in &mut classes {
        class.slo = case.slo.clone();
    }
    let cfg = ServingConfig {
        devices: 2,
        swap_workers: 2,
        policy,
        traffic: TrafficConfig {
            tenants: 10,
            zipf_s,
            rate_per_sec: 20.0,
            requests: 60,
            process,
            seed: case.seed,
        },
        classes,
        admission_limit: None,
        ..ServingConfig::default()
    };
    let (report, fired) = run_scenario_with_faults(&cfg, case.faults.clone());
    if report.rejected != 0 {
        return Err(format!(
            "{} requests rejected with no admission limit set",
            report.rejected
        ));
    }
    if report.cold.count + report.warm.count != report.admitted {
        return Err(format!(
            "served {} of {} admitted requests",
            report.cold.count + report.warm.count,
            report.admitted
        ));
    }
    if report.max_resident > report.devices {
        return Err(format!(
            "{} tenants resident on {} devices",
            report.max_resident, report.devices
        ));
    }
    if report.cold.count == 0 {
        return Err("an all-parked population produced no cold starts".to_string());
    }
    Ok((fired, report.breaches))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_expansion_is_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = ChaosCase::from_seed(seed);
            let b = ChaosCase::from_seed(seed);
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.op, b.op);
            assert_eq!(a.snapshot_time, b.snapshot_time);
            assert_eq!(a.device, b.device);
            assert_eq!(a.payload_mb, b.payload_mb);
            assert_eq!(a.faults, b.faults);
        }
    }

    #[test]
    fn seeds_cover_every_op() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            seen.insert(ChaosCase::from_seed(seed).op);
        }
        assert_eq!(seen.len(), 6, "64 seeds should draw all six ops");
    }

    #[test]
    fn generated_fault_schedules_match_their_op() {
        for seed in 0..128 {
            let case = ChaosCase::from_seed(seed);
            for entry in &case.faults.entries {
                match case.op {
                    ChaosOp::NfsSoak => assert_eq!(entry.target, FaultTarget::Nfs),
                    ChaosOp::ScpSoak => assert_eq!(entry.target, FaultTarget::Scp),
                    _ => assert!(
                        matches!(entry.target, FaultTarget::Bus(_)),
                        "workload ops draw only transparent bus faults, got {:?}",
                        entry.target
                    ),
                }
            }
            if case.op.is_soak() {
                assert!(!case.faults.is_empty(), "soaks always inject");
                assert!(
                    case.faults.entries.len() <= 3,
                    "must stay within retry budget"
                );
            }
        }
    }

    #[test]
    fn repro_line_round_trips_through_parse() {
        let case = ChaosCase::from_seed(find_seed(0, |c| !c.faults.is_empty()));
        let line = case.repro_line();
        assert!(line.starts_with(&format!("SIMCHAOS_SEED={}", case.seed)));
        // The quoted schedule parses back to the same schedule.
        let quoted = line.split("SIMCHAOS_FAULTS='").nth(1).unwrap();
        let text = quoted.split('\'').next().unwrap();
        assert_eq!(FaultSchedule::parse(text).unwrap(), case.faults);
        assert!(!line.contains("NO_RETRY"));
        let mut bugged = case.clone();
        bugged.disable_retries = true;
        assert!(bugged.repro_line().ends_with("SIMCHAOS_NO_RETRY=1"));
    }

    #[test]
    fn swap_rotate_cases_are_deterministic_and_pinned() {
        for seed in [0u64, 9, 1234, u64::MAX] {
            let a = ChaosCase::swap_rotate_from_seed(seed);
            let b = ChaosCase::swap_rotate_from_seed(seed);
            assert_eq!(a.op, ChaosOp::SwapRotate);
            assert_eq!(a.faults, b.faults);
            assert_eq!(a.payload_mb, b.payload_mb);
            assert_eq!(a.snapshot_time, b.snapshot_time);
            // Rotate cases draw only transparently-survivable bus faults,
            // like the other workload ops.
            for entry in &a.faults.entries {
                assert!(matches!(entry.target, FaultTarget::Bus(_)));
            }
            // Pinning the op must not disturb the base expansion.
            let base = ChaosCase::from_seed(seed);
            assert_eq!(a.workload, base.workload);
            assert_eq!(a.seed, base.seed);
        }
    }

    #[test]
    fn swap_rotate_repro_line_carries_the_op_override() {
        let case = ChaosCase::swap_rotate_from_seed(77);
        let line = case.repro_line();
        assert!(line.contains("SIMCHAOS_OP=swap-rotate"), "{line}");
        assert_eq!(ChaosOp::parse("swap-rotate").unwrap(), ChaosOp::SwapRotate);
        assert!(ChaosOp::parse("bogus").is_err());
        // Ops drawn by from_seed never emit the override.
        assert!(!ChaosCase::from_seed(77)
            .repro_line()
            .contains("SIMCHAOS_OP"));
    }

    #[test]
    fn serve_cases_are_deterministic_and_pinned() {
        for seed in [0u64, 9, 1234, u64::MAX] {
            let a = ChaosCase::serve_from_seed(seed);
            let b = ChaosCase::serve_from_seed(seed);
            assert_eq!(a.op, ChaosOp::Serve);
            assert_eq!(a.faults, b.faults);
            // Serve cases draw only transparently-survivable bus faults.
            for entry in &a.faults.entries {
                assert!(matches!(entry.target, FaultTarget::Bus(_)));
            }
            // Pinning the op must not disturb the base expansion.
            assert_eq!(a.seed, ChaosCase::from_seed(seed).seed);
            assert_eq!(
                a.slo.as_ref().map(|s| s.render()),
                Some(SloSpec::parse(DEFAULT_SERVE_SLO).unwrap().render())
            );
        }
        let line = ChaosCase::serve_from_seed(3).repro_line();
        assert!(line.contains("SIMCHAOS_OP=serve"), "{line}");
        assert_eq!(ChaosOp::parse("serve").unwrap(), ChaosOp::Serve);
    }

    #[test]
    fn fleet_migrate_cases_are_deterministic_and_pinned() {
        for seed in [0u64, 9, 1234, u64::MAX] {
            let a = ChaosCase::fleet_migrate_from_seed(seed);
            let b = ChaosCase::fleet_migrate_from_seed(seed);
            assert_eq!(a.op, ChaosOp::FleetMigrate);
            assert_eq!(a.faults, b.faults);
            assert!(!a.faults.is_empty(), "fleet cases always inject");
            // Fleet cases draw only pool-NIC resets on real, non-hot
            // nodes: the rebalancer's candidate destinations.
            for entry in &a.faults.entries {
                match entry.target {
                    FaultTarget::Net(n) => {
                        assert!((1..FLEET_CHAOS_NODES).contains(&n), "net{n} out of range")
                    }
                    other => panic!("fleet cases draw only net faults, got {other:?}"),
                }
                assert_eq!(entry.fault, FaultKind::ConnReset);
            }
            // Pinning the op must not disturb the base expansion.
            assert_eq!(a.seed, ChaosCase::from_seed(seed).seed);
            assert!(a.slo.is_none());
        }
        let line = ChaosCase::fleet_migrate_from_seed(3).repro_line();
        assert!(line.contains("SIMCHAOS_OP=fleet-migrate"), "{line}");
        assert_eq!(
            ChaosOp::parse("fleet-migrate").unwrap(),
            ChaosOp::FleetMigrate
        );
    }

    #[test]
    fn slo_deviations_ride_the_repro_line() {
        // Default objectives are implied by the op: no override emitted.
        let case = ChaosCase::swap_rotate_from_seed(5);
        assert_eq!(case.slo.as_ref().map(|s| s.render()), {
            Some(SloSpec::parse(DEFAULT_SWAP_SLO).unwrap().render())
        });
        assert!(!case.repro_line().contains("SIMCHAOS_SLO"));
        assert!(ChaosCase::from_seed(5).slo.is_none());

        // A tightened objective is recorded in its canonical render,
        // which round-trips through SloSpec::parse.
        let mut tight = case.clone();
        tight.slo = Some(SloSpec::parse("swapin.p99 < 10us over 1s").unwrap());
        let line = tight.repro_line();
        let quoted = line
            .split("SIMCHAOS_SLO='")
            .nth(1)
            .expect("override present");
        let text = quoted.split('\'').next().unwrap();
        assert_eq!(SloSpec::parse(text).unwrap(), tight.slo.clone().unwrap());

        // Disabling the objective is also an explicit deviation.
        let mut off = case.clone();
        off.slo = None;
        assert!(off.repro_line().contains("SIMCHAOS_SLO=off"));
    }

    #[test]
    fn domains_default_to_one_and_ride_the_repro_line() {
        // `from_seed` must stay byte-stable: domains are never drawn.
        for seed in [0u64, 42, u64::MAX] {
            assert_eq!(ChaosCase::from_seed(seed).domains, 1);
        }
        let case = ChaosCase::from_seed(7);
        assert!(!case.repro_line().contains("SIMCHAOS_DOMAINS"));
        assert!(!case.to_string().contains("domains="));
        let mut multi = case.clone();
        multi.domains = 4;
        assert!(
            multi.repro_line().contains("SIMCHAOS_DOMAINS=4"),
            "{}",
            multi.repro_line()
        );
        assert!(multi.to_string().contains("domains=4"));
    }

    #[test]
    fn find_seed_finds_each_shape() {
        let scp = find_seed(0, |c| c.op == ChaosOp::ScpSoak);
        assert_eq!(ChaosCase::from_seed(scp).op, ChaosOp::ScpSoak);
        let two_faults = find_seed(0, |c| c.faults.entries.len() >= 2);
        assert!(ChaosCase::from_seed(two_faults).faults.entries.len() >= 2);
    }

    #[test]
    fn rng_below_stays_in_bounds() {
        let mut rng = ChaosRng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }
}
