//! A hermetic, dependency-free subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships its own drop-in implementation of the slice of proptest the
//! property suites actually use: strategies over integer ranges,
//! collections, samples and tuples, `prop_map`, `prop_oneof!`, the
//! `proptest!` macro, and the `prop_assert*` family.
//!
//! Differences from upstream, by design:
//!
//! * **Greedy, bounded shrinking.** On failure the runner bisects
//!   integers toward the low end of their range and halves collections
//!   (respecting minimum sizes), re-running the body on each candidate
//!   and keeping the smallest still-failing input. The search is capped
//!   at [`ProptestConfig::max_shrink_iters`] candidate evaluations
//!   (default 200; `0` disables shrinking). Adapters that cannot be
//!   inverted (`prop_map`, `prop_oneof!`, `select`) pass values through
//!   unshrunk rather than approximating upstream's value trees.
//! * **No persistence files.** `*.proptest-regressions` files are
//!   ignored; generation is fully deterministic (a per-test seed
//!   derived from the test name), so every failure replays exactly
//!   without a seed file.
//!
//! Determinism is a feature here, not a limitation: the whole workspace
//! is a deterministic simulation, and reproducible case generation keeps
//! "snapshot at a random virtual time" tests stable across runs and
//! machines.

pub mod test_runner {
    /// Deterministic split-mix style PRNG used for case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed RNG derived from a test name, so every test has
        /// its own reproducible stream.
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[lo, hi)`. `hi` must be greater than `lo`.
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(hi > lo, "empty range {lo}..{hi}");
            lo + self.next_u64() % (hi - lo)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
            self.range_u64(lo as u64, hi as u64) as usize
        }
    }

    /// Runner configuration; only the fields the workspace uses carry
    /// meaning, the rest exist so `.. ProptestConfig::default()` updates
    /// stay idiomatic.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Upper bound on candidate inputs evaluated while shrinking a
        /// failing case. `0` disables shrinking entirely.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; `prop_assume!` rejections simply
        /// skip the case.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 200,
                max_global_rejects: 1024,
            }
        }
    }

    /// A failed property case.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }

        /// The failure message.
        pub fn message(&self) -> &str {
            &self.message
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The case loop behind the `proptest!` macro: generate `cases`
    /// inputs from `strat`, run each, and on failure greedily shrink —
    /// keep the first still-failing candidate each round, bounded by
    /// `max_shrink_iters` candidate evaluations overall — then panic
    /// with the minimal failing input.
    pub fn drive<S>(
        config: &ProptestConfig,
        rng: &mut TestRng,
        name: &str,
        strat: S,
        run: impl Fn(&S::Value) -> Result<(), TestCaseError>,
    ) where
        S: crate::strategy::Strategy,
        S::Value: std::fmt::Debug,
    {
        for case in 0..config.cases {
            let mut input = strat.generate(rng);
            if let Err(first) = run(&input) {
                let mut err = first;
                let mut steps: u32 = 0;
                'shrinking: loop {
                    let mut improved = false;
                    for candidate in strat.shrink(&input) {
                        if steps >= config.max_shrink_iters {
                            break 'shrinking;
                        }
                        steps += 1;
                        if let Err(e) = run(&candidate) {
                            input = candidate;
                            err = e;
                            improved = true;
                            break;
                        }
                    }
                    if !improved {
                        break;
                    }
                }
                panic!(
                    "property {name} failed at case {}/{}: {err}\n    \
                     minimal failing input after {steps} shrink step(s): {input:?}",
                    case + 1,
                    config.cases,
                );
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A value generator. Unlike upstream there is no value tree: a
    /// strategy maps an RNG state straight to a value, and shrinking is
    /// a separate, optional hook on the strategy itself.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Propose smaller variants of a failing `value`, most
        /// aggressive first. The default proposes nothing (the value is
        /// reported as-is); integer ranges bisect toward their low end,
        /// collections halve toward their minimum size, and tuples
        /// shrink one component at a time.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
        fn shrink_dyn(&self, value: &T) -> Vec<T>;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
        fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
            self.shrink(value)
        }
    }

    /// An owned, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            self.0.shrink_dyn(value)
        }
    }

    /// `prop_map` adapter. Values pass through `f` one-way, so mapped
    /// strategies cannot shrink (the pre-image of a failing output is
    /// unknown); the default no-op `shrink` applies.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Candidate values between `lo` and a failing `v`, most aggressive
    /// first: the range minimum, the midpoint, and the predecessor.
    /// Shared by every integer strategy.
    pub(crate) fn shrink_toward(lo: u64, v: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if v > lo {
            out.push(lo);
            let mid = lo + (v - lo) / 2;
            if mid != lo {
                out.push(mid);
            }
            if v - 1 != lo && v - 1 != mid {
                out.push(v - 1);
            }
        }
        out
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`). The
    /// arm that produced a value is not recorded, so unions do not
    /// shrink (a candidate valid for one arm may be unreachable from
    /// another).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; each alternative is equally likely.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.range_usize(0, self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $via:ident),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range_u64(self.start as u64, self.end as u64) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_toward(self.start as u64, *value as u64)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range_u64(*self.start() as u64, *self.end() as u64 + 1) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_toward(*self.start() as u64, *value as u64)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }
        )+};
    }

    int_range_strategy! {
        u8 => range_u64,
        u16 => range_u64,
        u32 => range_u64,
        u64 => range_u64,
        usize => range_u64,
    }

    // Tuples of strategies generate tuples of values (components drawn
    // in order, so the RNG stream matches drawing each arg separately)
    // and shrink one component at a time, holding the others fixed.
    macro_rules! tuple_strategy {
        ($(($($S:ident : $idx:tt),+))+) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+)
            where
                $($S::Value: Clone),+
            {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = candidate;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )+};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Smaller variants of a failing value (see
        /// [`crate::strategy::Strategy::shrink`]). Defaults to none.
        fn shrink_value(&self) -> Vec<Self>
        where
            Self: Sized,
        {
            Vec::new()
        }
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                fn shrink_value(&self) -> Vec<$t> {
                    crate::strategy::shrink_toward(0, *self as u64)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }
        )+};
    }

    arbitrary_uint!(u8, u16, u32, u64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink_value(&self) -> Vec<bool> {
            if *self {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            value.shrink_value()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length bounds for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.hi > self.size.lo {
                rng.range_usize(self.size.lo, self.size.hi)
            } else {
                self.size.lo
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        /// Halve toward the minimum length, drop the last element, then
        /// shrink elements in place (first candidate per position).
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let lo = self.size.lo;
            if value.len() > lo {
                let half = (value.len() / 2).max(lo);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                if value.len() > lo && value.len() - 1 != half {
                    out.push(value[..value.len() - 1].to_vec());
                }
            }
            for (i, item) in value.iter().enumerate() {
                if let Some(candidate) = self.element.shrink(item).into_iter().next() {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is only known at use
    /// time (`any::<Index>()` then `idx.index(len)`).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Project onto `0..len`. `len` must be non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
        fn shrink_value(&self) -> Vec<Index> {
            self.0.shrink_value().into_iter().map(Index).collect()
        }
    }

    /// Uniformly pick one of `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.range_usize(0, self.items.len())].clone()
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced strategy constructors (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declare property tests. Each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` that generates `cases` inputs deterministically
/// and runs the body; `prop_assert*` failures abort the case, the
/// runner greedily shrinks the failing input (bounded by
/// `max_shrink_iters` candidate evaluations), and the panic reports the
/// minimal still-failing input alongside the original error.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            // One combined strategy over all arguments: components are
            // drawn in declaration order, so the RNG stream matches
            // drawing each argument separately.
            $crate::test_runner::drive(
                &config,
                &mut rng,
                stringify!($name),
                ($($strat,)+),
                |input| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(input);
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Skip the current case (count it as passed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let n = Strategy::generate(&(1usize..4), &mut rng);
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(0u64..5, 2..6), &mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::from_name("oneof");
        let s = prop_oneof![(0u64..1).prop_map(|_| "a"), (0u64..1).prop_map(|_| "b")];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(Strategy::generate(&s, &mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_asserts(x in 1u64..100, v in prop::collection::vec(0u64..10, 0..4)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() < 4);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
            prop_assume!(x != 1);
            prop_assert!(x > 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(b in any::<u8>(), i in any::<prop::sample::Index>()) {
            let _ = b;
            prop_assert!(i.index(10) < 10);
        }
    }

    #[test]
    fn int_shrink_bisects_toward_low_end() {
        let s = 3u64..1000;
        let candidates = Strategy::shrink(&s, &700);
        assert!(candidates.contains(&3), "range minimum first");
        assert!(candidates.iter().all(|c| (3..700).contains(c)));
        assert!(
            Strategy::shrink(&s, &3).is_empty(),
            "minimum has no shrinks"
        );
        let inc = 5u64..=20;
        assert!(Strategy::shrink(&inc, &17).contains(&5));
    }

    #[test]
    fn vec_shrink_halves_and_respects_min_size() {
        let s = prop::collection::vec(0u64..100, 2..10);
        let v: Vec<u64> = vec![9, 8, 7, 6, 5, 4];
        for candidate in Strategy::shrink(&s, &v) {
            assert!(candidate.len() >= 2, "below minimum: {candidate:?}");
            assert!(candidate.len() <= v.len());
        }
        assert!(
            Strategy::shrink(&s, &v).iter().any(|c| c.len() == 3),
            "halving candidate expected"
        );
        // Elements shrink in place even when the length is minimal.
        let at_min: Vec<u64> = vec![50, 60];
        assert!(Strategy::shrink(&s, &at_min).iter().all(|c| c.len() == 2));
        assert!(!Strategy::shrink(&s, &at_min).is_empty());
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let s = (1u64..100, 2usize..50);
        let candidates = Strategy::shrink(&s, &(40, 30));
        assert!(!candidates.is_empty());
        for (a, b) in candidates {
            let a_moved = a != 40;
            let b_moved = b != 30;
            assert!(a_moved ^ b_moved, "exactly one component per candidate");
        }
    }

    #[test]
    fn failing_property_reports_minimal_input() {
        // Not #[test]-annotated: declared via the macro, invoked under
        // catch_unwind so the shrink report can be inspected.
        proptest! {
            #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
            fn must_fail(x in 0u64..1000) {
                prop_assert!(x < 10, "x too big: {}", x);
            }
        }
        let err = std::panic::catch_unwind(must_fail).expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("string panic payload")
            .clone();
        assert!(
            msg.contains("(10,)"),
            "greedy bisection should land on the boundary value 10, got: {msg}"
        );
        assert!(msg.contains("shrink step(s)"));
    }

    #[test]
    fn shrinking_is_bounded_and_optional() {
        proptest! {
            #![proptest_config(ProptestConfig {
                cases: 1,
                max_shrink_iters: 0,
                ..ProptestConfig::default()
            })]
            fn always_fails(v in prop::collection::vec(0u64..10, 0..6)) {
                let _ = v;
                prop_assert!(false, "unconditional");
            }
        }
        let err = std::panic::catch_unwind(always_fails).expect_err("must fail");
        let msg = err.downcast_ref::<String>().unwrap().clone();
        assert!(
            msg.contains("after 0 shrink step(s)"),
            "max_shrink_iters = 0 disables shrinking, got: {msg}"
        );
    }
}
