//! Record framing over byte streams.
//!
//! A process image is a self-describing stream: metadata (names, sizes,
//! digests) is written as *real* bytes so the restart side can parse it,
//! while region contents pass through as opaque [`Payload`] chunks —
//! possibly synthetic, never materialized. The reader buffers payload
//! chunks and materializes only the byte ranges it must actually parse.

use std::collections::VecDeque;

use phi_platform::Payload;
use simproc::{ByteSink, ByteSource, IoError};

/// Chunk size used when streaming large payloads through a frame.
pub const STREAM_CHUNK: u64 = 4 << 20;

/// Writer half: encodes integers/strings as little-endian real bytes and
/// payloads as length-prefixed chunk streams.
pub struct FrameWriter<'a> {
    sink: &'a mut dyn ByteSink,
}

impl<'a> FrameWriter<'a> {
    /// Wrap a sink.
    pub fn new(sink: &'a mut dyn ByteSink) -> FrameWriter<'a> {
        FrameWriter { sink }
    }

    /// Write raw bytes.
    pub fn write_bytes(&mut self, data: &[u8]) -> Result<(), IoError> {
        self.sink.write(Payload::bytes(data.to_vec()))
    }

    /// Write a `u64`.
    pub fn write_u64(&mut self, v: u64) -> Result<(), IoError> {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Write a length-prefixed string.
    pub fn write_string(&mut self, s: &str) -> Result<(), IoError> {
        self.write_u64(s.len() as u64)?;
        self.write_bytes(s.as_bytes())
    }

    /// Write a length-prefixed payload, chunked at [`STREAM_CHUNK`].
    pub fn write_payload(&mut self, p: &Payload) -> Result<(), IoError> {
        // Each framed payload is a natural dedup boundary: realigning
        // here keeps identical regions chunk-identical across snapshots
        // even when earlier variable-length content shifted the stream.
        self.sink.mark_boundary();
        self.write_u64(p.len())?;
        for chunk in p.chunks(STREAM_CHUNK) {
            self.sink.write(chunk)?;
        }
        Ok(())
    }

    /// Access the underlying sink (e.g. to close it).
    pub fn sink(&mut self) -> &mut dyn ByteSink {
        self.sink
    }
}

/// Reader half: re-assembles the stream from arbitrary source chunkings.
pub struct FrameReader<'a> {
    src: &'a mut dyn ByteSource,
    buffered: VecDeque<Payload>,
    buffered_len: u64,
    read_chunk: u64,
}

impl<'a> FrameReader<'a> {
    /// Wrap a source, reading in [`STREAM_CHUNK`] units.
    pub fn new(src: &'a mut dyn ByteSource) -> FrameReader<'a> {
        Self::with_chunk(src, STREAM_CHUNK)
    }

    /// Wrap a source, reading in `read_chunk`-byte units (the granularity
    /// at which the consumer issues `read(2)` — BLCR restarts read small).
    pub fn with_chunk(src: &'a mut dyn ByteSource, read_chunk: u64) -> FrameReader<'a> {
        assert!(read_chunk > 0);
        FrameReader {
            src,
            buffered: VecDeque::new(),
            buffered_len: 0,
            read_chunk,
        }
    }

    fn fill(&mut self, need: u64) -> Result<(), IoError> {
        while self.buffered_len < need {
            match self.src.read(self.read_chunk)? {
                Some(chunk) => {
                    self.buffered_len += chunk.len();
                    self.buffered.push_back(chunk);
                }
                None => {
                    return Err(IoError::Other(format!(
                        "truncated stream: needed {need} bytes, got {}",
                        self.buffered_len
                    )))
                }
            }
        }
        Ok(())
    }

    fn take(&mut self, n: u64) -> Payload {
        debug_assert!(self.buffered_len >= n);
        let mut out = Payload::empty();
        let mut remaining = n;
        while remaining > 0 {
            let front = self.buffered.pop_front().expect("buffer accounting");
            let flen = front.len();
            if flen <= remaining {
                remaining -= flen;
                self.buffered_len -= flen;
                out.append(front);
            } else {
                out.append(front.slice(0, remaining));
                let rest = front.slice(remaining, flen - remaining);
                self.buffered_len -= remaining;
                remaining = 0;
                self.buffered.push_front(rest);
            }
        }
        out
    }

    /// Read exactly `n` real bytes (metadata parse).
    pub fn read_bytes(&mut self, n: u64) -> Result<Vec<u8>, IoError> {
        self.fill(n)?;
        Ok(self.take(n).to_bytes())
    }

    /// Read a `u64`.
    pub fn read_u64(&mut self) -> Result<u64, IoError> {
        let b = self.read_bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a length-prefixed string.
    pub fn read_string(&mut self) -> Result<String, IoError> {
        let len = self.read_u64()?;
        let b = self.read_bytes(len)?;
        String::from_utf8(b).map_err(|e| IoError::Other(format!("bad utf8 in stream: {e}")))
    }

    /// Read a length-prefixed payload without materializing it.
    pub fn read_payload(&mut self) -> Result<Payload, IoError> {
        let len = self.read_u64()?;
        self.fill(len)?;
        Ok(self.take(len))
    }

    /// True if the source (and buffer) are exhausted.
    pub fn at_eof(&mut self) -> Result<bool, IoError> {
        if self.buffered_len > 0 {
            return Ok(false);
        }
        match self.src.read(1)? {
            Some(chunk) => {
                self.buffered_len += chunk.len();
                self.buffered.push_back(chunk);
                Ok(false)
            }
            None => Ok(true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::Kernel;
    use simproc::{PayloadSource, VecSink};

    #[test]
    fn roundtrip_mixed_records() {
        Kernel::run_root(|| {
            let mut sink = VecSink::new();
            {
                let mut w = FrameWriter::new(&mut sink);
                w.write_u64(42).unwrap();
                w.write_string("region-a").unwrap();
                w.write_payload(&Payload::synthetic(7, 10_000_000)).unwrap();
                w.write_string("").unwrap();
                w.write_payload(&Payload::bytes(vec![1, 2, 3])).unwrap();
            }
            let all = sink.payload();
            let mut src = PayloadSource::new(all);
            let mut r = FrameReader::new(&mut src);
            assert_eq!(r.read_u64().unwrap(), 42);
            assert_eq!(r.read_string().unwrap(), "region-a");
            let p = r.read_payload().unwrap();
            assert_eq!(p.len(), 10_000_000);
            assert_eq!(p.digest(), Payload::synthetic(7, 10_000_000).digest());
            assert_eq!(r.read_string().unwrap(), "");
            assert_eq!(r.read_payload().unwrap().to_bytes(), vec![1, 2, 3]);
            assert!(r.at_eof().unwrap());
        });
    }

    #[test]
    fn survives_pathological_rechunking() {
        Kernel::run_root(|| {
            let mut sink = VecSink::new();
            {
                let mut w = FrameWriter::new(&mut sink);
                w.write_string("hello world").unwrap();
                w.write_payload(&Payload::synthetic(1, 5000)).unwrap();
            }
            // Re-chunk the stream at 3 bytes to simulate a transport that
            // fragments aggressively.
            let stream = sink.payload();
            let rechunked = Payload::concat(stream.chunks(3));
            let mut src = PayloadSource::new(rechunked);
            let mut r = FrameReader::new(&mut src);
            assert_eq!(r.read_string().unwrap(), "hello world");
            let p = r.read_payload().unwrap();
            assert_eq!(p.digest(), Payload::synthetic(1, 5000).digest());
        });
    }

    #[test]
    fn truncated_stream_is_an_error() {
        Kernel::run_root(|| {
            let mut sink = VecSink::new();
            {
                let mut w = FrameWriter::new(&mut sink);
                w.write_u64(100).unwrap(); // promises 100 bytes
            }
            let mut src = PayloadSource::new(sink.payload());
            let mut r = FrameReader::new(&mut src);
            let len = r.read_u64().unwrap();
            assert_eq!(len, 100);
            assert!(matches!(r.read_bytes(100), Err(IoError::Other(_))));
        });
    }

    #[test]
    fn eof_detection() {
        Kernel::run_root(|| {
            let mut src = PayloadSource::new(Payload::empty());
            let mut r = FrameReader::new(&mut src);
            assert!(r.at_eof().unwrap());

            let mut src = PayloadSource::new(Payload::bytes(vec![0; 8]));
            let mut r = FrameReader::new(&mut src);
            assert!(!r.at_eof().unwrap());
            r.read_u64().unwrap();
            assert!(r.at_eof().unwrap());
        });
    }
}
