//! # blcr-sim — Berkeley Lab Checkpoint/Restart, simulated
//!
//! BLCR is the application-transparent single-process checkpointer that
//! both MPSS (for native Xeon Phi applications) and Snapify (for offload
//! processes, §4.1 "Capture") delegate to. This crate reproduces the three
//! behaviours Snapify and the paper's evaluation depend on:
//!
//! 1. **streamed process images through an arbitrary file descriptor** —
//!    [`checkpoint`] serializes a quiesced [`SimProcess`] into any
//!    [`ByteSink`]; [`restart`] rebuilds the process from any
//!    [`ByteSource`]. Snapify-IO's whole point is that BLCR cannot tell a
//!    local file from an RDMA socket;
//! 2. **the small-write preamble** — real BLCR issues many small writes
//!    (thread/fd/vm metadata) before the page loop, and then writes memory
//!    *page by page*; this is exactly what makes plain NFS slow in
//!    Table 4. The simulated checkpointer declares its 4 KiB write
//!    granularity to the sink via [`ByteSink::set_write_granularity`];
//! 3. **restart rebuilds, never resumes** — the restarted process is a new
//!    process (new pid) whose memory image and opaque runtime state match
//!    the captured one; the runtime (COI/Snapify) is responsible for
//!    reconnecting channels, exactly as in the paper (§4.3).
//!
//! # Fidelity note
//!
//! Real BLCR captures arbitrary mid-instruction thread states with kernel
//! support. Here snapshots are only taken at *quiesced points* — which is
//! not a loss of generality for Snapify, whose pause protocol guarantees
//! quiescence before capture — and each checkpointed runtime stores the
//! state it needs to resume as the opaque `runtime_state` blob.

#![warn(missing_docs)]

pub mod incremental;
pub mod stream;

use phi_platform::{Payload, SimNode};
use simkernel::obs;
use simkernel::time::{ms, us};
use simkernel::SimDuration;
use simproc::{ByteSink, ByteSource, IoError, PidAllocator, SimProcess};
use stream::{FrameReader, FrameWriter};

pub use incremental::{restart_chain, IncrementalCheckpointer, IncrementalStats};

/// Snapshot stream magic.
const MAGIC: &[u8; 8] = b"BLCRSIM1";

/// The page size at which BLCR dumps memory (drives NFS op pricing).
pub const PAGE_SIZE: u64 = 4096;

/// Cost model of the checkpointer itself (not of the I/O path).
#[derive(Clone, Debug)]
pub struct BlcrConfig {
    /// Fixed setup cost of a checkpoint (quiesce, vm walk).
    pub checkpoint_setup: SimDuration,
    /// Fixed setup cost of a restart (process creation, vm rebuild).
    pub restart_setup: SimDuration,
    /// Number of small metadata writes in the preamble.
    pub preamble_writes: u32,
    /// Size of each preamble write.
    pub preamble_write_size: u64,
    /// Per-region bookkeeping cost.
    pub per_region_cost: SimDuration,
    /// Granularity of restart-time `read(2)` calls (BLCR pulls the image
    /// in smallish reads, which is what makes NFS restarts slow).
    pub restart_read_chunk: u64,
}

impl Default for BlcrConfig {
    fn default() -> BlcrConfig {
        BlcrConfig {
            checkpoint_setup: ms(120),
            restart_setup: ms(200),
            preamble_writes: 96,
            preamble_write_size: 256,
            per_region_cost: us(200),
            restart_read_chunk: 128 << 10,
        }
    }
}

/// Errors from checkpoint/restart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlcrError {
    /// I/O failure on the snapshot stream.
    Io(IoError),
    /// The snapshot stream is corrupt or of the wrong format.
    BadImage(String),
    /// The target node cannot hold the process image.
    OutOfMemory(phi_platform::OutOfMemory),
}

impl std::fmt::Display for BlcrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlcrError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            BlcrError::BadImage(s) => write!(f, "bad snapshot image: {s}"),
            BlcrError::OutOfMemory(e) => write!(f, "restart failed: {e}"),
        }
    }
}

impl std::error::Error for BlcrError {}

impl From<IoError> for BlcrError {
    fn from(e: IoError) -> BlcrError {
        BlcrError::Io(e)
    }
}

/// Summary of a completed checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Total bytes written to the sink (snapshot file size).
    pub snapshot_bytes: u64,
    /// Number of memory regions captured.
    pub regions: usize,
    /// Digest of the captured memory image.
    pub image_digest: u64,
    /// Region-content bytes satisfied from the sink's cache of the prior
    /// snapshot (clean regions an O(dirty) capture never read or hashed).
    pub clean_bytes: u64,
    /// Region-content bytes actually streamed through the sink.
    pub dirty_bytes: u64,
}

/// Checkpoint `proc` into `sink`.
///
/// `runtime_state` is the opaque blob in which the owning runtime (COI /
/// the workload framework) records whatever it needs to resume its threads
/// from their quiesced points — the simulated stand-in for the kernel-level
/// thread context BLCR captures.
///
/// The process must be quiesced by the caller (Snapify's pause does this);
/// the checkpointer does not stop threads itself.
pub fn checkpoint(
    config: &BlcrConfig,
    proc: &SimProcess,
    runtime_state: &[u8],
    sink: &mut dyn ByteSink,
) -> Result<CheckpointStats, BlcrError> {
    checkpoint_filtered(config, proc, runtime_state, sink, &|_| true)
}

/// Like [`checkpoint`], but captures only the regions for which
/// `include(region_name)` is true. COI uses this to exclude file-backed
/// local-store mappings (saved separately by Snapify's pause) from the
/// process image, as real BLCR skips shared file-backed mappings.
pub fn checkpoint_filtered(
    config: &BlcrConfig,
    proc: &SimProcess,
    runtime_state: &[u8],
    sink: &mut dyn ByteSink,
    include: &dyn Fn(&str) -> bool,
) -> Result<CheckpointStats, BlcrError> {
    checkpoint_impl(config, proc, runtime_state, sink, include, false)
}

/// Like [`checkpoint_filtered`], but O(dirty): regions whose dirty flag
/// is clear are offered to the sink as *cached records*
/// ([`ByteSink::write_cached_record`]) keyed by name + content digest. A
/// record-aware sink (the content-addressed snapshot store) that still
/// holds the prior snapshot's chunks for that region emits them without
/// the region ever being read, chunked, or hashed; any other sink — or a
/// changed region — falls back to plain streaming, so the produced image
/// is byte-equivalent to a full [`checkpoint_filtered`] in every case.
pub fn checkpoint_incremental(
    config: &BlcrConfig,
    proc: &SimProcess,
    runtime_state: &[u8],
    sink: &mut dyn ByteSink,
    include: &dyn Fn(&str) -> bool,
) -> Result<CheckpointStats, BlcrError> {
    checkpoint_impl(config, proc, runtime_state, sink, include, true)
}

fn checkpoint_impl(
    config: &BlcrConfig,
    proc: &SimProcess,
    runtime_state: &[u8],
    sink: &mut dyn ByteSink,
    include: &dyn Fn(&str) -> bool,
    incremental: bool,
) -> Result<CheckpointStats, BlcrError> {
    let _span = obs::span!("blcr.checkpoint", pid = proc.pid());
    simkernel::sleep(config.checkpoint_setup);
    sink.set_write_granularity(Some(PAGE_SIZE));

    let regions: Vec<(String, Payload, bool)> = proc
        .memory()
        .snapshot_regions_dirty()
        .into_iter()
        .filter(|(name, _, _)| include(name))
        .collect();
    let image_digest = {
        let mut combined = Payload::empty();
        for (name, content, _) in &regions {
            combined.append(Payload::bytes(name.as_bytes().to_vec()));
            combined.append(content.clone());
        }
        combined.digest()
    };

    let mut w = FrameWriter::new(sink);
    let mut total: u64 = 0;
    let mut clean_bytes: u64 = 0;
    let mut dirty_bytes: u64 = 0;

    // Preamble: many small metadata writes (the NFS killer).
    w.write_bytes(MAGIC)?;
    total += MAGIC.len() as u64;
    for i in 0..config.preamble_writes {
        let rec = vec![(i % 251) as u8; config.preamble_write_size as usize];
        w.write_bytes(&rec)?;
        total += config.preamble_write_size;
    }

    w.write_string(proc.name())?;
    total += 8 + proc.name().len() as u64;
    w.write_u64(runtime_state.len() as u64)?;
    w.write_bytes(runtime_state)?;
    total += 8 + runtime_state.len() as u64;

    w.write_u64(regions.len() as u64)?;
    total += 8;
    for (name, content, dirty) in &regions {
        simkernel::sleep(config.per_region_cost);
        let record_bytes = 8 + name.len() as u64 + 8 + content.len();
        if incremental {
            // `Payload::digest` is free in virtual time — it stands in
            // for the dirty-bit hardware a real tracker would consult.
            let digest = content.digest();
            if !*dirty && w.sink().write_cached_record(name, digest, content.len())? {
                total += record_bytes;
                clean_bytes += content.len();
                continue;
            }
            w.sink().begin_record(name, digest, content.len());
        }
        w.write_string(name)?;
        total += 8 + name.len() as u64;
        w.write_payload(content)?;
        total += 8 + content.len();
        dirty_bytes += content.len();
    }
    if incremental {
        // Terminate the last record: the trailing digest differs
        // between captures and must not ride inside a reusable record.
        w.sink().begin_record("", 0, 0);
    }
    w.write_u64(image_digest)?;
    total += 8;

    sink.close()?;
    if incremental {
        // Only the regions this capture covered become clean; filtered
        // ones (COI local-store buffers) are captured — and marked —
        // by their own path.
        for (name, _, _) in &regions {
            let _ = proc.memory().mark_region_captured(name);
        }
        obs::counter_add("snapify.capture.clean_bytes", clean_bytes);
        obs::counter_add("snapify.capture.dirty_bytes", dirty_bytes);
    }
    obs::counter_add("blcr.checkpoints", 1);
    obs::counter_add("blcr.snapshot_bytes", total);
    obs::counter_add("blcr.pages_written", total.div_ceil(PAGE_SIZE));
    obs::histogram_observe("blcr.snapshot_image_bytes", total);
    Ok(CheckpointStats {
        snapshot_bytes: total,
        regions: regions.len(),
        image_digest,
        clean_bytes,
        dirty_bytes,
    })
}

/// Size in bytes that a checkpoint of `proc` would produce (pure query —
/// used by planners and benchmark reporting).
pub fn image_size(config: &BlcrConfig, proc: &SimProcess, runtime_state_len: u64) -> u64 {
    image_size_filtered(config, proc, runtime_state_len, &|_| true)
}

/// [`image_size`] restricted to the regions `include` accepts.
pub fn image_size_filtered(
    config: &BlcrConfig,
    proc: &SimProcess,
    runtime_state_len: u64,
    include: &dyn Fn(&str) -> bool,
) -> u64 {
    let regions: Vec<(String, Payload)> = proc
        .memory()
        .snapshot_regions()
        .into_iter()
        .filter(|(name, _)| include(name))
        .collect();
    let mut total = MAGIC.len() as u64
        + config.preamble_writes as u64 * config.preamble_write_size
        + 8
        + proc.name().len() as u64
        + 8
        + runtime_state_len
        + 8
        + 8;
    for (name, content) in &regions {
        total += 8 + name.len() as u64 + 8 + content.len();
    }
    total
}

/// The result of a successful [`restart`].
#[derive(Debug)]
pub struct RestartedProcess {
    /// The rebuilt process (a *new* process, on `node`).
    pub proc: SimProcess,
    /// The opaque runtime state captured at checkpoint time.
    pub runtime_state: Vec<u8>,
    /// Digest of the restored memory image (verified against the stream).
    pub image_digest: u64,
}

/// Restart a process from a snapshot stream onto `node`.
///
/// Fails with [`BlcrError::OutOfMemory`] if the node cannot hold the
/// image — the exact failure mode of Table 4's `Local` column at 4 GB.
pub fn restart(
    config: &BlcrConfig,
    node: &SimNode,
    pids: &PidAllocator,
    src: &mut dyn ByteSource,
) -> Result<RestartedProcess, BlcrError> {
    let _span = obs::span!("blcr.restart");
    obs::counter_add("blcr.restarts", 1);
    simkernel::sleep(config.restart_setup);
    let mut r = FrameReader::with_chunk(src, config.restart_read_chunk);

    let magic = r.read_bytes(8)?;
    if magic != MAGIC {
        return Err(BlcrError::BadImage("bad magic".to_string()));
    }
    for _ in 0..config.preamble_writes {
        r.read_bytes(config.preamble_write_size)?;
    }
    let name = r.read_string()?;
    let state_len = r.read_u64()?;
    let runtime_state = r.read_bytes(state_len)?;

    let proc = SimProcess::new(pids.alloc(), name, node);
    let nregions = r.read_u64()?;
    for _ in 0..nregions {
        simkernel::sleep(config.per_region_cost);
        let rname = r.read_string()?;
        let content = r.read_payload()?;
        if let Err(oom) = proc.memory().map_region(&rname, content) {
            proc.exit(); // release what was mapped so far
            return Err(BlcrError::OutOfMemory(oom));
        }
    }
    let expect_digest = r.read_u64()?;
    let got_digest = proc.memory().digest();
    if expect_digest != got_digest {
        proc.exit();
        return Err(BlcrError::BadImage(format!(
            "image digest mismatch: stream says {expect_digest:#x}, rebuilt {got_digest:#x}"
        )));
    }
    // The rebuilt regions are byte-identical to the snapshot they came
    // from: start the restored process clean so its next incremental
    // capture only pays for what it writes after the restore.
    proc.memory().mark_captured();
    Ok(RestartedProcess {
        proc,
        runtime_state,
        image_digest: got_digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::{PlatformParams, SimNode, GB, MB};
    use simkernel::{now, Kernel};
    use simproc::{FsSink, FsSource, PayloadSource, Pid, VecSink};

    fn phi() -> SimNode {
        SimNode::phi(&PlatformParams::default(), 0)
    }

    fn sample_proc(node: &SimNode) -> SimProcess {
        let p = SimProcess::new(Pid(1), "offload_proc", node);
        p.memory()
            .map_region("heap", Payload::synthetic(11, 64 * MB))
            .unwrap();
        p.memory()
            .map_region("stack", Payload::bytes(vec![7u8; 4096]))
            .unwrap();
        p.memory()
            .map_region("coi_buf_0", Payload::synthetic(12, 16 * MB))
            .unwrap();
        p
    }

    #[test]
    fn checkpoint_restart_roundtrip_preserves_image() {
        Kernel::run_root(|| {
            let cfg = BlcrConfig::default();
            let node = phi();
            let proc = sample_proc(&node);
            let digest_before = proc.memory().digest();

            let mut sink = VecSink::new();
            let stats = checkpoint(&cfg, &proc, b"pc=42", &mut sink).unwrap();
            assert_eq!(stats.regions, 3);
            assert_eq!(stats.image_digest, digest_before);
            assert_eq!(sink.payload().len(), stats.snapshot_bytes);

            proc.exit();
            let pids = PidAllocator::new();
            let node2 = phi();
            let mut src = PayloadSource::new(sink.payload());
            let restored = restart(&cfg, &node2, &pids, &mut src).unwrap();
            assert_eq!(restored.runtime_state, b"pc=42");
            assert_eq!(restored.image_digest, digest_before);
            assert_eq!(restored.proc.memory().digest(), digest_before);
            assert_eq!(restored.proc.name(), "offload_proc");
            assert_eq!(
                restored.proc.memory().region("stack").unwrap().to_bytes(),
                vec![7u8; 4096]
            );
        });
    }

    #[test]
    fn image_size_matches_actual() {
        Kernel::run_root(|| {
            let cfg = BlcrConfig::default();
            let node = phi();
            let proc = sample_proc(&node);
            let predicted = image_size(&cfg, &proc, 5);
            let mut sink = VecSink::new();
            let stats = checkpoint(&cfg, &proc, b"pc=42", &mut sink).unwrap();
            assert_eq!(predicted, stats.snapshot_bytes);
        });
    }

    #[test]
    fn restart_on_full_node_fails_with_oom() {
        Kernel::run_root(|| {
            let cfg = BlcrConfig::default();
            let node = phi();
            let proc = SimProcess::new(Pid(1), "big", &node);
            proc.memory()
                .map_region("heap", Payload::synthetic(1, 4 * GB))
                .unwrap();
            let mut sink = VecSink::new();
            checkpoint(&cfg, &proc, &[], &mut sink).unwrap();

            // Target node already has 5 GB in use: 4 GB image cannot fit.
            let node2 = phi();
            node2.mem().alloc(5 * GB).unwrap();
            let pids = PidAllocator::new();
            let mut src = PayloadSource::new(sink.payload());
            let err = restart(&cfg, &node2, &pids, &mut src).unwrap_err();
            assert!(matches!(err, BlcrError::OutOfMemory(_)));
            // Partial mappings were rolled back.
            assert_eq!(node2.mem().used(), 5 * GB);
        });
    }

    #[test]
    fn corrupt_magic_rejected() {
        Kernel::run_root(|| {
            let cfg = BlcrConfig::default();
            let pids = PidAllocator::new();
            let node = phi();
            let mut src = PayloadSource::new(Payload::bytes(vec![0u8; 64]));
            let err = restart(&cfg, &node, &pids, &mut src).unwrap_err();
            assert!(matches!(err, BlcrError::BadImage(_)));
        });
    }

    #[test]
    fn truncated_image_rejected() {
        Kernel::run_root(|| {
            let cfg = BlcrConfig::default();
            let node = phi();
            let proc = sample_proc(&node);
            let mut sink = VecSink::new();
            checkpoint(&cfg, &proc, &[], &mut sink).unwrap();
            let full = sink.payload();
            let truncated = full.slice(0, full.len() - 100);
            let pids = PidAllocator::new();
            let node2 = phi();
            let mut src = PayloadSource::new(truncated);
            let err = restart(&cfg, &node2, &pids, &mut src).unwrap_err();
            assert!(matches!(err, BlcrError::Io(_) | BlcrError::BadImage(_)));
        });
    }

    #[test]
    fn checkpoint_to_local_ramfs_charges_device_memory() {
        Kernel::run_root(|| {
            // The Table-4 "Local" scenario: snapshot saved on the Phi's own
            // RAM fs competes with the process for physical memory.
            let cfg = BlcrConfig::default();
            let node = phi();
            let proc = SimProcess::new(Pid(1), "native", &node);
            proc.memory()
                .map_region("malloc", Payload::synthetic(1, 5 * GB))
                .unwrap();
            let mut sink = FsSink::create(node.fs(), "/tmp/ckpt");
            // 5 GB process + 5 GB snapshot > 8 GB card: must OOM.
            let err = checkpoint(&cfg, &proc, &[], &mut sink).unwrap_err();
            assert!(matches!(
                err,
                BlcrError::Io(IoError::Fs(phi_platform::FsError::OutOfMemory(_)))
            ));
        });
    }

    #[test]
    fn restart_from_local_ramfs_roundtrip() {
        Kernel::run_root(|| {
            let cfg = BlcrConfig::default();
            let node = phi();
            let proc = SimProcess::new(Pid(1), "native", &node);
            proc.memory()
                .map_region("malloc", Payload::synthetic(1, 512 * MB))
                .unwrap();
            let digest = proc.memory().digest();
            let mut sink = FsSink::create(node.fs(), "/tmp/ckpt");
            checkpoint(&cfg, &proc, &[], &mut sink).unwrap();
            proc.exit();

            let pids = PidAllocator::new();
            let mut src = FsSource::open(node.fs(), "/tmp/ckpt").unwrap();
            let restored = restart(&cfg, &node, &pids, &mut src).unwrap();
            assert_eq!(restored.proc.memory().digest(), digest);
        });
    }

    #[test]
    fn checkpoint_takes_nonzero_virtual_time() {
        Kernel::run_root(|| {
            let cfg = BlcrConfig::default();
            let node = phi();
            let proc = sample_proc(&node);
            let t0 = now();
            let mut sink = VecSink::new();
            checkpoint(&cfg, &proc, &[], &mut sink).unwrap();
            assert!(now() - t0 >= cfg.checkpoint_setup);
        });
    }
}
