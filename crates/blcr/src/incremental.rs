//! Incremental (dirty-region) checkpointing — a forward-looking extension
//! beyond the paper.
//!
//! The paper's checkpoints always write the full process image; for
//! iterative applications whose working set mutates slowly, most of those
//! bytes are identical between consecutive checkpoints. An
//! [`IncrementalCheckpointer`] writes a **full** image first and then
//! **delta** images containing only the regions whose mutation counter
//! changed (plus tombstones for unmapped regions). Restart replays the
//! chain — base plus deltas in order — and verifies the final image
//! digest, so a corrupted or out-of-order chain is rejected rather than
//! silently restored.

use std::collections::HashMap;

use phi_platform::{Payload, SimNode};
use simproc::{ByteSink, ByteSource, PidAllocator, SimProcess};

use crate::stream::{FrameReader, FrameWriter};
use crate::{BlcrConfig, BlcrError, CheckpointStats, RestartedProcess, PAGE_SIZE};

const INC_MAGIC: &[u8; 8] = b"BLCRINC1";
const KIND_FULL: u64 = 0;
const KIND_DELTA: u64 = 1;
const REC_REGION: u64 = 1;
const REC_TOMBSTONE: u64 = 2;

/// Stats of one incremental checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Underlying stream statistics.
    pub stats: CheckpointStats,
    /// Whether this link was a full image (the chain base).
    pub full: bool,
    /// Index of this link in the chain (0 = base).
    pub chain_index: u64,
    /// Regions written (dirty or new).
    pub regions_written: usize,
    /// Regions skipped because they were clean.
    pub regions_skipped: usize,
}

/// Writes a chain of full + delta checkpoints for one process.
pub struct IncrementalCheckpointer {
    config: BlcrConfig,
    /// Region versions at the previous checkpoint.
    last_versions: Option<HashMap<String, u64>>,
    chain_index: u64,
    /// Rebase period: after this many links the chain restarts with a
    /// fresh full image (0 = never rebase). Without it chains grow
    /// unbounded, restart cost is O(chain length), and one corrupted
    /// mid-chain link makes every later delta unrecoverable.
    rebase_every: u64,
}

impl IncrementalCheckpointer {
    /// New chain (the first checkpoint will be a full image).
    pub fn new(config: BlcrConfig) -> IncrementalCheckpointer {
        IncrementalCheckpointer {
            config,
            last_versions: None,
            chain_index: 0,
            rebase_every: 0,
        }
    }

    /// Rebase the chain with a fresh full image every `n` links (so a
    /// restart never replays more than `n` sources). `0` disables
    /// rebasing.
    pub fn with_rebase_every(mut self, n: u64) -> IncrementalCheckpointer {
        self.rebase_every = n;
        self
    }

    /// Write the next link of the chain into `sink`. Captures only the
    /// regions `include` accepts (same filter semantics as
    /// [`crate::checkpoint_filtered`]).
    pub fn checkpoint(
        &mut self,
        proc: &SimProcess,
        runtime_state: &[u8],
        sink: &mut dyn ByteSink,
        include: &dyn Fn(&str) -> bool,
    ) -> Result<IncrementalStats, BlcrError> {
        if self.rebase_every > 0 && self.chain_index >= self.rebase_every {
            // Rebase: forget the previous versions so this link is a
            // full image at chain index 0 — a new, short chain.
            self.last_versions = None;
            self.chain_index = 0;
        }
        simkernel::sleep(self.config.checkpoint_setup);
        sink.set_write_granularity(Some(PAGE_SIZE));

        let regions: Vec<(String, Payload, u64)> = proc
            .memory()
            .snapshot_regions_versioned()
            .into_iter()
            .filter(|(name, _, _)| include(name))
            .collect();
        let image_digest = digest_of(&regions);

        let full = self.last_versions.is_none();
        let prev = self.last_versions.take().unwrap_or_default();

        let mut w = FrameWriter::new(sink);
        let mut total: u64 = 0;
        w.write_bytes(INC_MAGIC)?;
        total += 8;
        w.write_u64(if full { KIND_FULL } else { KIND_DELTA })?;
        w.write_u64(self.chain_index)?;
        total += 16;
        w.write_u64(runtime_state.len() as u64)?;
        w.write_bytes(runtime_state)?;
        total += 8 + runtime_state.len() as u64;

        // Dirty/new regions.
        let mut written = 0usize;
        let mut skipped = 0usize;
        let mut clean_bytes = 0u64;
        let mut dirty_bytes = 0u64;
        let dirty: Vec<&(String, Payload, u64)> = regions
            .iter()
            .filter(|(name, content, version)| {
                let changed = full || prev.get(name) != Some(version);
                if !changed {
                    skipped += 1;
                    clean_bytes += content.len();
                }
                changed
            })
            .collect();
        w.write_u64(dirty.len() as u64)?;
        total += 8;
        for (name, content, version) in dirty {
            simkernel::sleep(self.config.per_region_cost);
            w.write_u64(REC_REGION)?;
            w.write_string(name)?;
            w.write_u64(*version)?;
            w.write_payload(content)?;
            total += 8 + 8 + name.len() as u64 + 8 + 8 + content.len();
            dirty_bytes += content.len();
            written += 1;
        }

        // Tombstones for regions that vanished since the last link.
        let tombstones: Vec<&String> = prev
            .keys()
            .filter(|name| !regions.iter().any(|(n, _, _)| n == *name))
            .collect();
        w.write_u64(tombstones.len() as u64)?;
        total += 8;
        for name in tombstones {
            w.write_u64(REC_TOMBSTONE)?;
            w.write_string(name)?;
            total += 16 + name.len() as u64;
        }

        w.write_u64(image_digest)?;
        total += 8;
        sink.close()?;

        self.last_versions = Some(regions.iter().map(|(n, _, v)| (n.clone(), *v)).collect());
        let stats = IncrementalStats {
            stats: CheckpointStats {
                snapshot_bytes: total,
                regions: written,
                image_digest,
                clean_bytes,
                dirty_bytes,
            },
            full,
            chain_index: self.chain_index,
            regions_written: written,
            regions_skipped: skipped,
        };
        self.chain_index += 1;
        Ok(stats)
    }

    /// Next link index (0 until the first checkpoint is taken).
    pub fn chain_index(&self) -> u64 {
        self.chain_index
    }
}

fn digest_of(regions: &[(String, Payload, u64)]) -> u64 {
    let mut combined = Payload::empty();
    for (name, content, _) in regions {
        combined.append(Payload::bytes(name.as_bytes().to_vec()));
        combined.append(content.clone());
    }
    combined.digest()
}

/// One parsed chain link.
struct Link {
    kind: u64,
    chain_index: u64,
    runtime_state: Vec<u8>,
    regions: Vec<(String, Payload)>,
    tombstones: Vec<String>,
    digest: u64,
}

fn read_link(config: &BlcrConfig, src: &mut dyn ByteSource) -> Result<Link, BlcrError> {
    let mut r = FrameReader::with_chunk(src, config.restart_read_chunk);
    let magic = r.read_bytes(8)?;
    if magic != INC_MAGIC {
        return Err(BlcrError::BadImage("bad incremental magic".into()));
    }
    let kind = r.read_u64()?;
    let chain_index = r.read_u64()?;
    let state_len = r.read_u64()?;
    let runtime_state = r.read_bytes(state_len)?;
    let nregions = r.read_u64()?;
    let mut regions = Vec::with_capacity(nregions as usize);
    for _ in 0..nregions {
        let rec = r.read_u64()?;
        if rec != REC_REGION {
            return Err(BlcrError::BadImage(format!("bad record tag {rec}")));
        }
        let name = r.read_string()?;
        let _version = r.read_u64()?;
        let content = r.read_payload()?;
        regions.push((name, content));
    }
    let ntomb = r.read_u64()?;
    let mut tombstones = Vec::with_capacity(ntomb as usize);
    for _ in 0..ntomb {
        let rec = r.read_u64()?;
        if rec != REC_TOMBSTONE {
            return Err(BlcrError::BadImage(format!("bad tombstone tag {rec}")));
        }
        tombstones.push(r.read_string()?);
    }
    let digest = r.read_u64()?;
    Ok(Link {
        kind,
        chain_index,
        runtime_state,
        regions,
        tombstones,
        digest,
    })
}

/// Restart from an incremental chain: the base image plus every delta, in
/// order. The final image digest recorded in the last link is verified
/// against the rebuilt process.
pub fn restart_chain(
    config: &BlcrConfig,
    node: &SimNode,
    pids: &PidAllocator,
    name: &str,
    sources: &mut [Box<dyn ByteSource>],
) -> Result<RestartedProcess, BlcrError> {
    if sources.is_empty() {
        return Err(BlcrError::BadImage("empty chain".into()));
    }
    simkernel::sleep(config.restart_setup);

    let mut image: HashMap<String, Payload> = HashMap::new();
    let mut runtime_state = Vec::new();
    let mut final_digest = 0u64;
    for (i, src) in sources.iter_mut().enumerate() {
        let link = read_link(config, src.as_mut())?;
        if link.chain_index != i as u64 {
            return Err(BlcrError::BadImage(format!(
                "chain out of order: expected link {i}, found {}",
                link.chain_index
            )));
        }
        if i == 0 && link.kind != KIND_FULL {
            return Err(BlcrError::BadImage(
                "chain does not start with a full image".into(),
            ));
        }
        if i > 0 && link.kind != KIND_DELTA {
            return Err(BlcrError::BadImage(format!("link {i} is not a delta")));
        }
        for (rname, content) in link.regions {
            image.insert(rname, content);
        }
        for t in link.tombstones {
            image.remove(&t);
        }
        runtime_state = link.runtime_state;
        final_digest = link.digest;
    }

    let proc = SimProcess::new(pids.alloc(), name, node);
    let mut sorted: Vec<(String, Payload)> = image.into_iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    for (rname, content) in &sorted {
        simkernel::sleep(config.per_region_cost);
        if let Err(oom) = proc.memory().map_region(rname, content.clone()) {
            proc.exit();
            return Err(BlcrError::OutOfMemory(oom));
        }
    }
    let got = {
        let regions: Vec<(String, Payload, u64)> =
            sorted.into_iter().map(|(n, c)| (n, c, 0)).collect();
        digest_of(&regions)
    };
    if got != final_digest {
        proc.exit();
        return Err(BlcrError::BadImage(format!(
            "chain digest mismatch: last link says {final_digest:#x}, rebuilt {got:#x}"
        )));
    }
    Ok(RestartedProcess {
        proc,
        runtime_state,
        image_digest: got,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::{PlatformParams, MB};
    use simkernel::Kernel;
    use simproc::{PayloadSource, Pid, VecSink};

    fn phi() -> SimNode {
        SimNode::phi(&PlatformParams::default(), 0)
    }

    fn take(
        ck: &mut IncrementalCheckpointer,
        proc: &SimProcess,
        state: &[u8],
    ) -> (IncrementalStats, Payload) {
        let mut sink = VecSink::new();
        let stats = ck.checkpoint(proc, state, &mut sink, &|_| true).unwrap();
        (stats, sink.payload())
    }

    #[test]
    fn first_checkpoint_is_full_then_deltas_shrink() {
        Kernel::run_root(|| {
            let node = phi();
            let proc = SimProcess::new(Pid(1), "app", &node);
            proc.memory()
                .map_region("big", Payload::synthetic(1, 64 * MB))
                .unwrap();
            proc.memory()
                .map_region("small", Payload::bytes(vec![1u8; 1024]))
                .unwrap();

            let mut ck = IncrementalCheckpointer::new(BlcrConfig::default());
            let (s0, _) = take(&mut ck, &proc, b"i0");
            assert!(s0.full);
            assert_eq!(s0.regions_written, 2);

            // Mutate only the small region: the delta skips the 64 MiB one.
            proc.memory()
                .update_region("small", Payload::bytes(vec![2u8; 1024]))
                .unwrap();
            let (s1, _) = take(&mut ck, &proc, b"i1");
            assert!(!s1.full);
            assert_eq!(s1.regions_written, 1);
            assert_eq!(s1.regions_skipped, 1);
            assert!(
                s1.stats.snapshot_bytes < s0.stats.snapshot_bytes / 100,
                "delta {} vs full {}",
                s1.stats.snapshot_bytes,
                s0.stats.snapshot_bytes
            );
        });
    }

    #[test]
    fn chain_restores_to_latest_state() {
        Kernel::run_root(|| {
            let node = phi();
            let proc = SimProcess::new(Pid(1), "app", &node);
            proc.memory()
                .map_region("a", Payload::bytes(vec![1u8; 4096]))
                .unwrap();
            proc.memory()
                .map_region("b", Payload::synthetic(2, MB))
                .unwrap();

            let mut ck = IncrementalCheckpointer::new(BlcrConfig::default());
            let (_, base) = take(&mut ck, &proc, b"p0");

            proc.memory()
                .update_region("a", Payload::bytes(vec![9u8; 4096]))
                .unwrap();
            proc.memory()
                .map_region("c", Payload::bytes(vec![3u8; 64]))
                .unwrap();
            let (_, d1) = take(&mut ck, &proc, b"p1");

            proc.memory().unmap_region("b").unwrap();
            let (_, d2) = take(&mut ck, &proc, b"p2");
            let want_digest = proc.memory().digest();
            proc.exit();

            let pids = PidAllocator::new();
            let mut sources: Vec<Box<dyn ByteSource>> = vec![
                Box::new(PayloadSource::new(base)),
                Box::new(PayloadSource::new(d1)),
                Box::new(PayloadSource::new(d2)),
            ];
            let restored =
                restart_chain(&BlcrConfig::default(), &phi(), &pids, "app", &mut sources).unwrap();
            assert_eq!(restored.runtime_state, b"p2");
            assert_eq!(restored.proc.memory().digest(), want_digest);
            assert_eq!(
                restored.proc.memory().region("a").unwrap().to_bytes(),
                vec![9u8; 4096]
            );
            assert!(!restored.proc.memory().has_region("b"), "tombstone applied");
        });
    }

    #[test]
    fn out_of_order_chain_rejected() {
        Kernel::run_root(|| {
            let node = phi();
            let proc = SimProcess::new(Pid(1), "app", &node);
            proc.memory()
                .map_region("a", Payload::bytes(vec![1]))
                .unwrap();
            let mut ck = IncrementalCheckpointer::new(BlcrConfig::default());
            let (_, base) = take(&mut ck, &proc, b"");
            proc.memory()
                .update_region("a", Payload::bytes(vec![2]))
                .unwrap();
            let (_, d1) = take(&mut ck, &proc, b"");

            let pids = PidAllocator::new();
            // Delta first: must be rejected.
            let mut sources: Vec<Box<dyn ByteSource>> = vec![
                Box::new(PayloadSource::new(d1)),
                Box::new(PayloadSource::new(base)),
            ];
            let err = restart_chain(&BlcrConfig::default(), &phi(), &pids, "app", &mut sources)
                .unwrap_err();
            assert!(matches!(err, BlcrError::BadImage(_)));
        });
    }

    #[test]
    fn empty_chain_rejected() {
        Kernel::run_root(|| {
            let pids = PidAllocator::new();
            let mut sources: Vec<Box<dyn ByteSource>> = Vec::new();
            let err = restart_chain(&BlcrConfig::default(), &phi(), &pids, "x", &mut sources)
                .unwrap_err();
            assert!(matches!(err, BlcrError::BadImage(_)));
        });
    }

    #[test]
    fn rebase_bounds_chain_length_and_restart_cost() {
        // Regression: without rebasing, a long-running tenant's chain —
        // and therefore its restart cost — grew without bound. With
        // rebase-every-4, link 4 is a fresh full image and a restart
        // replays at most 4 sources no matter how long the app ran.
        Kernel::run_root(|| {
            let node = phi();
            let proc = SimProcess::new(Pid(1), "app", &node);
            proc.memory()
                .map_region("hot", Payload::bytes(vec![0u8; 4096]))
                .unwrap();
            proc.memory()
                .map_region("cold", Payload::synthetic(3, 16 * MB))
                .unwrap();

            let mut ck = IncrementalCheckpointer::new(BlcrConfig::default()).with_rebase_every(4);
            let mut links: Vec<(IncrementalStats, Payload)> = Vec::new();
            for i in 0..10u8 {
                proc.memory()
                    .update_region("hot", Payload::bytes(vec![i + 1; 4096]))
                    .unwrap();
                links.push(take(&mut ck, &proc, &[i]));
            }

            // Links 0, 4 and 8 are full rebases; everything else deltas.
            let fulls: Vec<usize> = links
                .iter()
                .enumerate()
                .filter(|(_, (s, _))| s.full)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fulls, vec![0, 4, 8]);
            // Chain indices restart at each rebase: restart never needs
            // more than rebase_every sources.
            let max_index = links.iter().map(|(s, _)| s.chain_index).max().unwrap();
            assert_eq!(max_index, 3);

            // A restart from the latest rebase (links 8..10) restores the
            // final state without touching the 8 older links.
            let want = proc.memory().digest();
            proc.exit();
            let pids = PidAllocator::new();
            let mut sources: Vec<Box<dyn ByteSource>> = links
                .drain(8..)
                .map(|(_, p)| Box::new(PayloadSource::new(p)) as Box<dyn ByteSource>)
                .collect();
            assert_eq!(sources.len(), 2);
            let restored =
                restart_chain(&BlcrConfig::default(), &phi(), &pids, "app", &mut sources).unwrap();
            assert_eq!(restored.proc.memory().digest(), want);
            assert_eq!(restored.runtime_state, vec![9u8]);
        });
    }

    #[test]
    fn unchanged_process_produces_empty_delta() {
        Kernel::run_root(|| {
            let node = phi();
            let proc = SimProcess::new(Pid(1), "app", &node);
            proc.memory()
                .map_region("a", Payload::synthetic(1, 16 * MB))
                .unwrap();
            let mut ck = IncrementalCheckpointer::new(BlcrConfig::default());
            let (_, base) = take(&mut ck, &proc, b"");
            let (s1, d1) = take(&mut ck, &proc, b"");
            assert_eq!(s1.regions_written, 0);
            assert_eq!(s1.regions_skipped, 1);
            let want = proc.memory().digest();
            proc.exit();
            let pids = PidAllocator::new();
            let mut sources: Vec<Box<dyn ByteSource>> = vec![
                Box::new(PayloadSource::new(base)),
                Box::new(PayloadSource::new(d1)),
            ];
            let restored =
                restart_chain(&BlcrConfig::default(), &phi(), &pids, "app", &mut sources).unwrap();
            assert_eq!(restored.proc.memory().digest(), want);
        });
    }
}
