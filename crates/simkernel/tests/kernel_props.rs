//! Property tests of the simulation kernel's core guarantees under
//! randomly-shaped thread workloads: determinism, mutual exclusion,
//! per-producer FIFO ordering, and clock monotonicity.

use proptest::prelude::*;
use simkernel::{now, sleep, spawn, Kernel, Semaphore, SimChannel, SimDuration, SimMutex, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A random workload description: per-thread sequences of sleep lengths.
fn workload() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..5_000, 0..8), 1..6)
}

fn run_workload(plan: &[Vec<u64>]) -> (Vec<simkernel::TraceEvent>, u64) {
    let k = Kernel::new();
    k.enable_trace();
    for (i, sleeps) in plan.iter().enumerate() {
        let sleeps = sleeps.clone();
        k.spawn(format!("t{i}"), move || {
            for us in sleeps {
                sleep(SimDuration::from_micros(us));
            }
        });
    }
    k.run();
    let end = k.now().as_nanos();
    (k.trace(), end)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Any workload executes identically twice: same trace, same end time.
    #[test]
    fn schedules_are_deterministic(plan in workload()) {
        let (t1, e1) = run_workload(&plan);
        let (t2, e2) = run_workload(&plan);
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(e1, e2);
    }

    /// The simulation ends exactly when the longest thread ends.
    #[test]
    fn end_time_is_max_thread_time(plan in workload()) {
        let (_, end) = run_workload(&plan);
        let expect: u64 = plan
            .iter()
            .map(|s| s.iter().sum::<u64>() * 1_000)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(end, expect);
    }

    /// Mutual exclusion holds for any contention pattern: a counter
    /// incremented non-atomically under a SimMutex never loses updates.
    #[test]
    fn mutex_exclusion_under_contention(
        nthreads in 1usize..6,
        iters in 1u64..20,
        hold_us in 0u64..50,
    ) {
        Kernel::run_root(move || {
            let m = Arc::new(SimMutex::new("ctr", 0u64));
            let raw = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for t in 0..nthreads {
                let m = Arc::clone(&m);
                let raw = Arc::clone(&raw);
                handles.push(spawn(format!("w{t}"), move || {
                    for i in 0..iters {
                        let mut g = m.lock();
                        let v = *g;
                        if hold_us > 0 && i % 3 == 0 {
                            sleep(SimDuration::from_micros(hold_us));
                        }
                        *g = v + 1;
                        raw.fetch_add(1, Ordering::Relaxed);
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            assert_eq!(*m.lock(), nthreads as u64 * iters);
            assert_eq!(raw.load(Ordering::Relaxed), nthreads as u64 * iters);
        });
    }

    /// Per-producer FIFO: however producers interleave, each producer's
    /// messages arrive in its own send order.
    #[test]
    fn channel_per_producer_fifo(
        nproducers in 1usize..5,
        nmsgs in 1u64..25,
        jitter in prop::collection::vec(0u64..200, 1..40),
    ) {
        Kernel::run_root(move || {
            let ch: SimChannel<(usize, u64)> = SimChannel::unbounded("c");
            for p in 0..nproducers {
                let ch = ch.clone();
                let jitter = jitter.clone();
                spawn(format!("p{p}"), move || {
                    for i in 0..nmsgs {
                        sleep(SimDuration::from_micros(
                            jitter[(p + i as usize) % jitter.len()],
                        ));
                        ch.send((p, i)).unwrap();
                    }
                });
            }
            let mut last: Vec<Option<u64>> = vec![None; nproducers];
            for _ in 0..(nproducers as u64 * nmsgs) {
                let (p, i) = ch.recv().unwrap();
                if let Some(prev) = last[p] {
                    assert!(i > prev, "producer {p} reordered: {i} after {prev}");
                }
                last[p] = Some(i);
            }
        });
    }

    /// Virtual time observed by any single thread is monotone.
    #[test]
    fn clock_is_monotone(plan in workload()) {
        Kernel::run_root(move || {
            let violations = Arc::new(Mutex::new(0u32));
            let mut handles = Vec::new();
            for (i, sleeps) in plan.into_iter().enumerate() {
                let violations = Arc::clone(&violations);
                handles.push(spawn(format!("t{i}"), move || {
                    let mut prev = SimTime::ZERO;
                    for us in sleeps {
                        sleep(SimDuration::from_micros(us));
                        let t = now();
                        if t < prev {
                            *violations.lock().unwrap() += 1;
                        }
                        prev = t;
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            assert_eq!(*violations.lock().unwrap(), 0);
        });
    }

    /// Semaphore conservation: total successful waits equals total posts
    /// consumed (never more).
    #[test]
    fn semaphore_conservation(posts in 1u64..30, waiters in 1usize..5) {
        Kernel::run_root(move || {
            let sem = Semaphore::new("s", 0);
            let got = Arc::new(AtomicU64::new(0));
            for w in 0..waiters {
                let sem = sem.clone();
                let got = Arc::clone(&got);
                spawn(format!("w{w}"), move || {
                    while sem.try_wait() || {
                        sleep(SimDuration::from_micros(50));
                        sem.try_wait()
                    } {
                        got.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..posts {
                sem.post();
                sleep(SimDuration::from_micros(10));
            }
            sleep(SimDuration::from_millis(5));
            let consumed = got.load(Ordering::Relaxed);
            assert!(consumed <= posts, "consumed {consumed} > posted {posts}");
            assert_eq!(consumed + sem.count(), posts);
        });
    }
}
