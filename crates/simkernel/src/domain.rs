//! Multi-domain parallel simulation with conservative lookahead sync.
//!
//! A [`MultiKernel`] partitions a simulation into *time domains*: each
//! domain is a full [`Kernel`] — its own run queue, timer wheel, virtual
//! clock, and single-token scheduler — driven on its own OS thread, so
//! domains execute genuinely in parallel on a multi-core host while
//! each domain individually keeps the serial kernel's determinism and
//! data-race-freedom guarantees.
//!
//! # Conservative window synchronization
//!
//! Domains synchronize with the classic conservative (Chandy–Misra
//! style) *lookahead* argument, organized as barrier-separated windows
//! (the parti-gem5 "quantum" scheme):
//!
//! 1. Let `e` be the earliest pending event time across all live
//!    domains and `L` the **lookahead** — the minimum latency of any
//!    cross-domain link. The coordinator opens the window `[e, e + L)`.
//! 2. Every domain runs all of its events with `time < e + L` in
//!    parallel ([`Kernel::step_until`]); none may execute an event at
//!    or past the horizon.
//! 3. At the barrier, messages sent during the window are collected
//!    from per-domain outboxes, sorted by `(virtual_time, src_domain,
//!    seq)`, and delivered to their destination run queues at their
//!    arrival timestamps.
//! 4. Repeat from 1 (the next window skips over idle gaps, so sparse
//!    simulations don't pay one barrier per lookahead quantum).
//!
//! This is safe because any message sent during the window is stamped
//! `send_time + delay ≥ e + L` — at or past every domain's horizon — so
//! no domain can ever receive a message "in its past". Port delays are
//! therefore required to be at least the lookahead.
//!
//! # Determinism
//!
//! * Within a domain: the serial kernel's `(time, seq)` order, with
//!   [`SchedPolicy::Random`] tie-break seeds salted by domain id (the
//!   salt for domain 0 is zero, so a one-domain `Random(seed)` run
//!   replays the serial kernel exactly).
//! * Across domains: deliveries are sorted by `(virtual_time,
//!   src_domain, seq)` — a pure function of simulation state, not of
//!   wall-clock interleaving — and the merged trace
//!   ([`MultiKernel::fingerprint`]) orders events by `(virtual_time,
//!   domain_id, per-domain order)`.
//! * `domains = 1` is the compatibility mode: [`MultiKernel::run`]
//!   degenerates to a plain [`Kernel::run`] on the sole domain, which
//!   reproduces the serial golden trace byte-for-byte.
//!
//! # Cross-domain messaging
//!
//! [`DomainPort`] is the sole legal cross-domain primitive: a
//! unidirectional SPSC message port with a fixed link delay. Sharing a
//! `SimChannel`/`SimMutex` between threads of *different* domains is
//! undefined behaviour for determinism (its wake-ups would race on two
//! concurrently-running schedulers); ports route sends through a
//! per-domain outbox that is only drained at the window barrier, when
//! no simulated thread is running anywhere. Same-domain ports skip the
//! outbox and deliver directly (SimChannel-style), so topologies keep
//! working unchanged when collapsed onto fewer domains. The transport
//! queues are unbounded at this layer — a conservative engine cannot
//! block a sender on remote queue state without violating the window
//! invariant — so backpressure, where needed, comes from request/reply
//! protocols above (each in-flight window holds at most one window's
//! worth of sends).
//!
//! # Failure semantics
//!
//! A panic or livelock inside one domain aborts the whole run; the
//! coordinator reports the failing domain's dump plus every other
//! domain's clock, safe horizon, and parked threads. If every live
//! domain stalls with no pending events and no in-flight messages, the
//! run aborts with a **cross-domain deadlock** dump in the same format,
//! ending (like all kernel dumps) with the observability flight
//! recorder tail.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use crate::channel::{RecvError, SendError};
use crate::kernel::{
    current, push_flight_tail, splitmix64, with_current, BlockReason, Kernel, SchedPolicy,
    StepOutcome, Tid, TraceEvent,
};
use crate::time::{SimDuration, SimTime};

/// Identifier of a time domain (dense, starting at 0).
pub type DomainId = u32;

/// Configuration of a [`MultiKernel`].
#[derive(Clone, Debug)]
pub struct MultiDomainConfig {
    /// Number of time domains (≥ 1). `1` is the serial compatibility
    /// mode.
    pub domains: u32,
    /// Conservative lookahead: the minimum cross-domain link delay.
    /// Every [`DomainPort`] crossing domains must have `delay ≥
    /// lookahead`. Must be positive when `domains > 1`.
    pub lookahead: SimDuration,
    /// Per-domain dispatch policy. `Random(seed)` is salted per domain
    /// (domain 0 unsalted, so one-domain runs replay the serial
    /// kernel).
    pub policy: SchedPolicy,
}

impl MultiDomainConfig {
    /// Config with the default [`SchedPolicy::Fifo`] policy.
    pub fn new(domains: u32, lookahead: SimDuration) -> MultiDomainConfig {
        MultiDomainConfig {
            domains,
            lookahead,
            policy: SchedPolicy::Fifo,
        }
    }

    /// Replace the dispatch policy.
    pub fn with_policy(mut self, policy: SchedPolicy) -> MultiDomainConfig {
        self.policy = policy;
        self
    }
}

/// One message queued for cross-domain delivery at the next barrier.
struct OutboxEntry {
    /// Arrival timestamp (`send_time + port delay`).
    time: SimTime,
    /// Sending domain (second merge key).
    src: DomainId,
    /// Per-source send sequence (third merge key).
    seq: u64,
    /// Receiving domain.
    dst: DomainId,
    /// Performs the delivery against the destination kernel.
    deliver: Box<dyn FnOnce(&Kernel) + Send>,
}

struct Shared {
    lookahead: SimDuration,
    kernels: Vec<Kernel>,
    /// Per-source-domain outboxes, drained only at window barriers.
    outboxes: Vec<Mutex<Vec<OutboxEntry>>>,
    /// Per-source-domain send sequence counters (deterministic: only
    /// threads of that domain increment theirs, one at a time).
    send_seq: Vec<AtomicU64>,
    /// Messages dropped because the destination domain had already
    /// finished (its daemons are parked; nothing can receive).
    dropped_to_done: AtomicU64,
    /// Barrier rounds executed by the last [`MultiKernel::run`].
    rounds: AtomicU64,
    /// Context line for cross-domain dumps (also forwarded per-kernel).
    dump_note: Mutex<Option<String>>,
}

/// A simulation partitioned into parallel time domains. See the
/// [module docs](self) for the synchronization scheme.
#[derive(Clone)]
pub struct MultiKernel {
    shared: Arc<Shared>,
}

impl MultiKernel {
    /// Create a multi-domain kernel. Panics if `domains == 0`, or if
    /// `domains > 1` with a zero lookahead (a conservative engine
    /// cannot make parallel progress without lookahead).
    pub fn new(config: MultiDomainConfig) -> MultiKernel {
        assert!(config.domains >= 1, "need at least one domain");
        assert!(
            config.domains == 1 || config.lookahead > SimDuration::ZERO,
            "multi-domain sync requires a positive lookahead"
        );
        let kernels: Vec<Kernel> = (0..config.domains)
            .map(|d| {
                let k = Kernel::new_with_policy(salted(config.policy, d));
                k.set_domain_tag(d);
                k
            })
            .collect();
        let n = config.domains as usize;
        MultiKernel {
            shared: Arc::new(Shared {
                lookahead: config.lookahead,
                kernels,
                outboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
                send_seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
                dropped_to_done: AtomicU64::new(0),
                rounds: AtomicU64::new(0),
                dump_note: Mutex::new(None),
            }),
        }
    }

    /// Number of time domains.
    pub fn domains(&self) -> u32 {
        self.shared.kernels.len() as u32
    }

    /// The conservative lookahead this kernel was built with.
    pub fn lookahead(&self) -> SimDuration {
        self.shared.lookahead
    }

    /// The kernel of domain `d` — spawn threads into a domain through
    /// this handle (`mk.domain(d).spawn(...)`).
    pub fn domain(&self, d: DomainId) -> &Kernel {
        &self.shared.kernels[d as usize]
    }

    /// Current virtual clock of domain `d`.
    pub fn clock(&self, d: DomainId) -> SimTime {
        self.shared.kernels[d as usize].now()
    }

    /// Enable event tracing in every domain (see [`Kernel::enable_trace`]).
    pub fn enable_trace(&self) {
        for k in &self.shared.kernels {
            k.enable_trace();
        }
    }

    /// Set the livelock threshold in every domain.
    pub fn set_livelock_threshold(&self, threshold: Option<u64>) {
        for k in &self.shared.kernels {
            k.set_livelock_threshold(threshold);
        }
    }

    /// Attach free-form context to every domain's dumps and to the
    /// cross-domain stall dump.
    pub fn set_dump_note(&self, note: impl Into<String>) {
        let note = note.into();
        for k in &self.shared.kernels {
            k.set_dump_note(note.clone());
        }
        *self.shared.dump_note.lock().unwrap() = Some(note);
    }

    /// Barrier rounds executed by the last [`MultiKernel::run`] (0 in
    /// the one-domain compatibility mode). Window skipping makes this
    /// proportional to event clusters, not to `total_time / lookahead`.
    pub fn rounds(&self) -> u64 {
        self.shared.rounds.load(Ordering::Relaxed)
    }

    /// Cross-domain messages dropped because their destination domain
    /// had already finished.
    pub fn dropped_deliveries(&self) -> u64 {
        self.shared.dropped_to_done.load(Ordering::Relaxed)
    }

    /// Create a unidirectional SPSC message port from domain `src` to
    /// domain `dst` with the given link `delay`. For cross-domain ports
    /// the delay must be at least the lookahead (the conservative sync
    /// invariant); same-domain ports may use any delay and deliver
    /// directly, without barrier involvement.
    pub fn port<T: Send + 'static>(
        &self,
        name: impl Into<String>,
        src: DomainId,
        dst: DomainId,
        delay: SimDuration,
    ) -> (PortTx<T>, PortRx<T>) {
        assert!((src as usize) < self.shared.kernels.len(), "bad src domain");
        assert!((dst as usize) < self.shared.kernels.len(), "bad dst domain");
        assert!(
            src == dst || delay >= self.shared.lookahead,
            "cross-domain port delay must be >= the lookahead"
        );
        let inner = Arc::new(PortInner {
            name: name.into(),
            state: Mutex::new(PortState {
                queue: VecDeque::new(),
                waiters: Vec::new(),
                closed_seen: false,
                arrived: 0,
                received: 0,
            }),
        });
        let tx = PortTx {
            shared: Arc::clone(&self.shared),
            inner: Arc::clone(&inner),
            src_kernel: self.shared.kernels[src as usize].clone(),
            src,
            dst,
            delay,
            closed: AtomicBool::new(false),
        };
        let rx = PortRx {
            inner,
            dst_kernel: self.shared.kernels[dst as usize].clone(),
        };
        (tx, rx)
    }

    /// Run the simulation to completion across all domains. Blocks the
    /// calling (real) thread; with one domain this is exactly
    /// [`Kernel::run`].
    ///
    /// # Panics
    /// Panics if any domain failed (thread panic, livelock) or if the
    /// run reached a cross-domain deadlock, with a dump covering every
    /// domain.
    pub fn run(&self) {
        let n = self.shared.kernels.len();
        if n == 1 {
            // Compatibility mode: byte-for-byte the serial kernel.
            self.shared.kernels[0].run();
            return;
        }
        let lookahead = self.shared.lookahead;

        // One driver OS thread per domain: it owns the blocking
        // `step_until` calls so the coordinator can run all domains
        // concurrently. Dropping `go_txs` shuts the drivers down.
        let mut go_txs = Vec::with_capacity(n);
        let mut out_rxs = Vec::with_capacity(n);
        let mut drivers = Vec::with_capacity(n);
        for (d, k) in self.shared.kernels.iter().enumerate() {
            let (go_tx, go_rx) = mpsc::channel::<SimTime>();
            let (out_tx, out_rx) = mpsc::channel::<StepOutcome>();
            let k = k.clone();
            let h = thread::Builder::new()
                .name(format!("domain-{d}"))
                .spawn(move || {
                    while let Ok(horizon) = go_rx.recv() {
                        if out_tx.send(k.step_until(horizon)).is_err() {
                            break;
                        }
                    }
                })
                .expect("failed to spawn domain driver thread");
            go_txs.push(go_tx);
            out_rxs.push(out_rx);
            drivers.push(h);
        }

        let mut done = vec![false; n];
        let mut failed = vec![false; n];
        let mut last_window: Option<SimTime> = None;
        // Each live domain's earliest pending event. Seeded by peeking
        // the run queues once; thereafter maintained from the `next`
        // hints domains report when they pause (nobody else can touch a
        // paused domain's queue) and from barrier delivery timestamps —
        // so steady-state rounds never take another domain's scheduler
        // lock to pick the window.
        let mut next_est: Vec<Option<SimTime>> = (0..n)
            .map(|d| self.shared.kernels[d].next_pending_time())
            .collect();
        self.shared.rounds.store(0, Ordering::Relaxed);
        let result: Result<(), String> = loop {
            // Window start: the earliest pending event anywhere.
            let earliest = (0..n)
                .filter(|&d| !done[d])
                .filter_map(|d| next_est[d])
                .min();
            let Some(e) = earliest else {
                if done.iter().all(|&f| f) {
                    break Ok(());
                }
                // Live domains, no pending events, no in-flight
                // messages (outboxes were drained last round): stuck.
                break Err(self.cross_domain_dump(
                    "cross-domain deadlock: every live domain stalled with no pending events \
                     and no in-flight messages:",
                    &done,
                    &failed,
                    last_window,
                ));
            };
            let window_end = e + lookahead;
            last_window = Some(window_end);
            self.shared.rounds.fetch_add(1, Ordering::Relaxed);

            // Run every live domain up to the horizon, in parallel.
            for d in 0..n {
                if !done[d] {
                    let _ = go_txs[d].send(window_end);
                }
            }
            let mut failures: Vec<(usize, String)> = Vec::new();
            for d in 0..n {
                if done[d] {
                    continue;
                }
                match out_rxs[d].recv().expect("domain driver died") {
                    StepOutcome::Done => done[d] = true,
                    StepOutcome::Paused { next } => next_est[d] = next,
                    StepOutcome::Failed(msg) => {
                        done[d] = true;
                        failed[d] = true;
                        failures.push((d, msg));
                    }
                }
            }
            if !failures.is_empty() {
                let mut header = String::new();
                for (d, msg) in &failures {
                    header.push_str(&format!("domain {d} failed: {msg}\n"));
                }
                header.push_str("state of all domains at abort:");
                break Err(self.cross_domain_dump(&header, &done, &failed, last_window));
            }

            // Barrier: deliver the window's cross-domain messages in
            // deterministic (time, src_domain, seq) order.
            let mut batch: Vec<OutboxEntry> = Vec::new();
            for ob in &self.shared.outboxes {
                batch.append(&mut ob.lock().unwrap());
            }
            batch.sort_by_key(|en| (en.time, en.src, en.seq));
            for en in batch {
                let dst = en.dst as usize;
                if done[dst] {
                    self.shared.dropped_to_done.fetch_add(1, Ordering::Relaxed);
                } else {
                    // The delivery may schedule a wake at `en.time`;
                    // fold it into the estimate (at worst one no-op
                    // window early if the receiver was not yet waiting).
                    next_est[dst] = Some(next_est[dst].map_or(en.time, |t| t.min(en.time)));
                    (en.deliver)(&self.shared.kernels[dst]);
                }
            }
            if done.iter().all(|&f| f) {
                break Ok(());
            }
        };

        drop(go_txs);
        for h in drivers {
            let _ = h.join();
        }
        if let Err(msg) = result {
            // Park every surviving domain's threads forever, matching
            // the serial kernel's abort semantics.
            for (d, k) in self.shared.kernels.iter().enumerate() {
                if !done[d] {
                    k.abort_external(&msg);
                }
            }
            panic!("simulation failed: {msg}");
        }
    }

    /// Merged event trace: every domain's trace (drained), ordered by
    /// `(virtual_time, domain_id, per-domain order)`.
    pub fn merged_trace(&self) -> Vec<(DomainId, TraceEvent)> {
        let traces: Vec<Vec<TraceEvent>> = self.shared.kernels.iter().map(|k| k.trace()).collect();
        let total = traces.iter().map(Vec::len).sum();
        let mut iters: Vec<_> = traces
            .into_iter()
            .map(|v| v.into_iter().peekable())
            .collect();
        let mut out = Vec::with_capacity(total);
        loop {
            // Earliest head event; ties go to the lowest domain id.
            let mut best: Option<(SimTime, usize)> = None;
            for (d, it) in iters.iter_mut().enumerate() {
                if let Some(ev) = it.peek() {
                    if best.is_none_or(|(bt, _)| ev.time < bt) {
                        best = Some((ev.time, d));
                    }
                }
            }
            let Some((_, d)) = best else { break };
            out.push((d as DomainId, iters[d].next().unwrap()));
        }
        out
    }

    /// `(merged trace length, merged trace digest)` — the multi-domain
    /// analogue of `(trace_len, trace_digest)`. With one domain this
    /// delegates to the serial kernel's digest (identical to a plain
    /// [`Kernel`] run); with several it **drains** every domain's trace
    /// to merge them, so call it once, after [`MultiKernel::run`].
    pub fn fingerprint(&self) -> (usize, u64) {
        if self.shared.kernels.len() == 1 {
            let k = &self.shared.kernels[0];
            return (k.trace_len(), k.trace_digest());
        }
        let merged = self.merged_trace();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
        };
        for (d, ev) in &merged {
            mix(&ev.time.as_nanos().to_le_bytes());
            mix(&d.to_le_bytes());
            mix(&ev.tid.to_le_bytes());
            mix(ev.label.as_bytes());
            mix(&[0xff]);
        }
        (merged.len(), h)
    }

    /// Render the cross-domain dump (satisfies the "every domain's
    /// clock, safe horizon, and parked threads" contract of
    /// multi-domain deadlock reporting).
    fn cross_domain_dump(
        &self,
        header: &str,
        done: &[bool],
        failed: &[bool],
        window: Option<SimTime>,
    ) -> String {
        let mut out = String::from(header);
        out.push('\n');
        let horizon = match window {
            Some(w) => format!("{w}"),
            None => "-".to_string(),
        };
        for (d, k) in self.shared.kernels.iter().enumerate() {
            let status = if failed[d] {
                "failed"
            } else if done[d] {
                "finished"
            } else {
                "stalled"
            };
            let next = match k.next_pending_time() {
                Some(t) => format!("{t}"),
                None => "none".to_string(),
            };
            out.push_str(&format!(
                "  domain {d}: {status}, clock {}, safe horizon {horizon}, next event {next}\n",
                k.now()
            ));
            if !done[d] {
                for line in k.blocked_report().lines() {
                    out.push_str("  ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        if let Some(note) = self.shared.dump_note.lock().unwrap().as_ref() {
            out.push_str("  context: ");
            out.push_str(note);
            out.push('\n');
        }
        push_flight_tail(&mut out);
        out
    }
}

/// Salt `Random` seeds per domain so equal-time tie-breaks decorrelate
/// across domains while domain 0 replays the serial kernel exactly.
fn salted(policy: SchedPolicy, domain: DomainId) -> SchedPolicy {
    match policy {
        SchedPolicy::Fifo => SchedPolicy::Fifo,
        SchedPolicy::Random(seed) if domain == 0 => SchedPolicy::Random(seed),
        SchedPolicy::Random(seed) => {
            let mut s = domain as u64;
            SchedPolicy::Random(seed ^ splitmix64(&mut s))
        }
    }
}

/// A queued port item: a message or the close marker (which travels
/// with the same link delay, so "closed" is observed in timestamp
/// order with the data before it).
enum Item<T> {
    Data(T),
    Closed,
}

struct PortState<T> {
    /// `(arrival time, item)`, kept in arrival order (single source +
    /// fixed delay ⇒ monotone).
    queue: VecDeque<(SimTime, Item<T>)>,
    /// Receiver tids blocked on an empty queue (SPSC: 0 or 1).
    waiters: Vec<Tid>,
    /// The close marker was consumed; all later receives fail.
    closed_seen: bool,
    /// Cumulative arrivals (counted at delivery) and receipts.
    arrived: u64,
    received: u64,
}

struct PortInner<T> {
    name: String,
    state: Mutex<PortState<T>>,
}

/// Sending half of a [`DomainPort`]. Not cloneable (SPSC); usable only
/// from simulated threads of its source domain.
pub struct PortTx<T> {
    shared: Arc<Shared>,
    inner: Arc<PortInner<T>>,
    src_kernel: Kernel,
    src: DomainId,
    dst: DomainId,
    delay: SimDuration,
    closed: AtomicBool,
}

/// Receiving half of a [`DomainPort`]. Not cloneable (SPSC); usable
/// only from simulated threads of its destination domain.
pub struct PortRx<T> {
    inner: Arc<PortInner<T>>,
    dst_kernel: Kernel,
}

/// Marker type used in docs: a `(PortTx, PortRx)` pair created by
/// [`MultiKernel::port`].
pub type DomainPort<T> = (PortTx<T>, PortRx<T>);

impl<T: Send + 'static> PortTx<T> {
    /// Arrival delay of this port's link.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Send a message; it arrives `delay` later. Cross-domain sends are
    /// queued in the source domain's outbox and delivered at the next
    /// window barrier (still timestamped `now + delay`); same-domain
    /// sends deliver directly. Never blocks.
    pub fn send(&self, value: T) -> Result<(), SendError> {
        if self.closed.load(Ordering::Relaxed) {
            return Err(SendError::Closed);
        }
        self.send_item(Item::Data(value));
        Ok(())
    }

    /// Close the port: a close marker travels the link with the same
    /// delay; after it arrives, receives fail with
    /// [`RecvError::Closed`]. Further sends fail immediately.
    pub fn close(&self) {
        if self.closed.swap(true, Ordering::Relaxed) {
            return;
        }
        self.send_item(Item::Closed);
    }

    fn send_item(&self, item: Item<T>) {
        with_current(|k, _me| {
            assert!(
                k.same_kernel(&self.src_kernel),
                "PortTx for domain {} used from a thread of another domain",
                self.src
            );
            let at = k.now() + self.delay;
            if self.src == self.dst {
                let waiter = deliver(&self.inner, at, item);
                if let Some(w) = waiter {
                    k.make_runnable(w);
                }
            } else {
                let seq = self.shared.send_seq[self.src as usize].fetch_add(1, Ordering::Relaxed);
                let inner = Arc::clone(&self.inner);
                self.shared.outboxes[self.src as usize]
                    .lock()
                    .unwrap()
                    .push(OutboxEntry {
                        time: at,
                        src: self.src,
                        seq,
                        dst: self.dst,
                        deliver: Box::new(move |dst_kernel: &Kernel| {
                            let waiter = deliver(&inner, at, item);
                            if let Some(w) = waiter {
                                dst_kernel.wake_external_at(w, at);
                            }
                        }),
                    });
            }
        });
    }
}

/// Enqueue an item at its arrival time and detach one blocked receiver
/// (the caller wakes it appropriately for its side of the barrier).
fn deliver<T>(inner: &Arc<PortInner<T>>, at: SimTime, item: Item<T>) -> Option<Tid> {
    let mut st = inner.state.lock().unwrap();
    debug_assert!(
        st.queue.back().is_none_or(|&(t, _)| t <= at),
        "out-of-order port delivery"
    );
    st.queue.push_back((at, item));
    st.arrived += 1;
    if st.waiters.is_empty() {
        None
    } else {
        Some(st.waiters.remove(0))
    }
}

impl<T: Send + 'static> PortRx<T> {
    /// Receive the next message, blocking in virtual time until one
    /// arrives. Fails once the close marker is consumed.
    pub fn recv(&self) -> Result<T, RecvError> {
        let (k, me) = current();
        debug_assert!(
            k.same_kernel(&self.dst_kernel),
            "PortRx used from a thread of another domain"
        );
        loop {
            let wait_until = {
                let mut st = self.inner.state.lock().unwrap();
                match st.queue.front() {
                    Some(&(at, _)) if at <= k.now() => {
                        let (_, item) = st.queue.pop_front().unwrap();
                        match item {
                            Item::Data(v) => {
                                st.received += 1;
                                return Ok(v);
                            }
                            Item::Closed => {
                                st.closed_seen = true;
                                return Err(RecvError::Closed);
                            }
                        }
                    }
                    Some(&(at, _)) => Some(at),
                    None => {
                        if st.closed_seen {
                            return Err(RecvError::Closed);
                        }
                        st.waiters.push(me);
                        None
                    }
                }
            };
            match wait_until {
                Some(at) => {
                    k.block_until(
                        me,
                        at,
                        BlockReason::named_with("port", &self.inner.name, " latency"),
                    );
                }
                None => {
                    k.block(
                        me,
                        BlockReason::named_with("port", &self.inner.name, " empty"),
                    );
                }
            }
        }
    }

    /// Receive with a virtual-time deadline: `Ok(Some(v))` on a
    /// message, `Ok(None)` once `deadline` passes with nothing
    /// arrived, `Err(Closed)` once the close marker is consumed. A
    /// message that arrives exactly at the deadline is received.
    pub fn recv_deadline(&self, deadline: SimTime) -> Result<Option<T>, RecvError> {
        let (k, me) = current();
        debug_assert!(
            k.same_kernel(&self.dst_kernel),
            "PortRx used from a thread of another domain"
        );
        loop {
            let wait_until = {
                let mut st = self.inner.state.lock().unwrap();
                if let Some(&(at, _)) = st.queue.front() {
                    if at <= k.now() {
                        let (_, item) = st.queue.pop_front().unwrap();
                        match item {
                            Item::Data(v) => {
                                st.received += 1;
                                return Ok(Some(v));
                            }
                            Item::Closed => {
                                st.closed_seen = true;
                                return Err(RecvError::Closed);
                            }
                        }
                    }
                }
                if st.queue.is_empty() && st.closed_seen {
                    return Err(RecvError::Closed);
                }
                if k.now() >= deadline {
                    // Timed out; make sure a barrier delivery can no
                    // longer pick us as the waiter to wake.
                    st.waiters.retain(|&t| t != me);
                    return Ok(None);
                }
                match st.queue.front() {
                    Some(&(at, _)) => at.min(deadline),
                    None => {
                        if !st.waiters.contains(&me) {
                            st.waiters.push(me);
                        }
                        deadline
                    }
                }
            };
            k.block_until(
                me,
                wait_until,
                BlockReason::named_with("port", &self.inner.name, " timed"),
            );
        }
    }

    /// Messages queued or in flight (arrived at the port but not yet
    /// received), including an unconsumed close marker.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// True if nothing is queued or in flight.
    pub fn is_empty(&self) -> bool {
        self.inner.state.lock().unwrap().queue.is_empty()
    }

    /// Cumulative `(arrived, received)` counters. Arrivals are counted
    /// at delivery (the window barrier, for cross-domain ports), so
    /// `arrived - received` is the queue depth including close markers.
    pub fn stats(&self) -> (u64, u64) {
        let st = self.inner.state.lock().unwrap();
        (st.arrived, st.received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{ms, us};
    use std::panic::AssertUnwindSafe;

    fn lookahead_50us() -> SimDuration {
        us(50)
    }

    #[test]
    fn single_domain_is_plain_kernel() {
        let mk = MultiKernel::new(MultiDomainConfig::new(1, SimDuration::ZERO));
        mk.enable_trace();
        let (tx, rx) = mk.port::<u32>("loop", 0, 0, us(5));
        mk.domain(0).spawn("rx", move || {
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(crate::kernel::now(), SimTime::ZERO + us(15));
            assert_eq!(rx.recv(), Err(RecvError::Closed));
        });
        mk.domain(0).spawn("tx", move || {
            crate::kernel::sleep(us(10));
            tx.send(7).unwrap();
            tx.close();
        });
        mk.run();
        assert_eq!(mk.rounds(), 0, "one domain must not run the barrier loop");
        let (len, digest) = mk.fingerprint();
        assert!(len > 0);
        assert_ne!(digest, 0);
    }

    #[test]
    fn cross_domain_message_arrives_at_exact_timestamp() {
        let mk = MultiKernel::new(MultiDomainConfig::new(2, lookahead_50us()));
        let (tx, rx) = mk.port::<u64>("x", 0, 1, us(60));
        let h = mk.domain(1).spawn("rx", move || {
            let v = rx.recv().unwrap();
            (v, crate::kernel::now())
        });
        mk.domain(0).spawn("tx", move || {
            crate::kernel::sleep(us(10));
            tx.send(42).unwrap();
        });
        mk.run();
        assert_eq!(h.take_result(), Some((42, SimTime::ZERO + us(70))));
    }

    #[test]
    fn cross_domain_round_trip_and_close() {
        let mk = MultiKernel::new(MultiDomainConfig::new(2, lookahead_50us()));
        let (req_tx, req_rx) = mk.port::<u64>("req", 0, 1, us(50));
        let (rsp_tx, rsp_rx) = mk.port::<u64>("rsp", 1, 0, us(50));
        mk.domain(1).spawn("echo", move || {
            while let Ok(v) = req_rx.recv() {
                rsp_tx.send(v + 1).unwrap();
            }
            rsp_tx.close();
        });
        let h = mk.domain(0).spawn("client", move || {
            let mut got = Vec::new();
            for i in 0..5u64 {
                req_tx.send(i * 10).unwrap();
                got.push(rsp_rx.recv().unwrap());
            }
            req_tx.close();
            assert_eq!(rsp_rx.recv(), Err(RecvError::Closed));
            (got, crate::kernel::now())
        });
        mk.run();
        let (got, end) = h.take_result().unwrap();
        assert_eq!(got, vec![1, 11, 21, 31, 41]);
        // 5 round trips of 100us plus the close round trip.
        assert_eq!(end, SimTime::ZERO + us(600));
    }

    #[test]
    fn window_skipping_bounds_round_count() {
        // Two domains sleeping in 1ms steps with a 50us lookahead: a
        // naive quantum scheme would need ~10ms/50us = 200 rounds; the
        // skipping coordinator needs roughly one per event cluster.
        let mk = MultiKernel::new(MultiDomainConfig::new(2, lookahead_50us()));
        for d in 0..2 {
            mk.domain(d).spawn(format!("sleeper-{d}"), || {
                for _ in 0..10 {
                    crate::kernel::sleep(ms(1));
                }
            });
        }
        mk.run();
        assert_eq!(mk.clock(0), SimTime::ZERO + ms(10));
        assert!(
            mk.rounds() < 50,
            "window skipping failed: {} rounds",
            mk.rounds()
        );
    }

    #[test]
    fn recv_deadline_times_out_then_receives_later() {
        let mk = MultiKernel::new(MultiDomainConfig::new(2, lookahead_50us()));
        let (tx, rx) = mk.port::<u8>("slow", 0, 1, us(50));
        let h = mk.domain(1).spawn("rx", move || {
            // Nothing in flight yet: times out at exactly the deadline.
            let miss = rx.recv_deadline(SimTime::ZERO + us(20)).unwrap();
            let t_miss = crate::kernel::now();
            // The message (sent at 100us, arrives 150us) beats this one.
            let hit = rx.recv_deadline(SimTime::ZERO + ms(1)).unwrap();
            let t_hit = crate::kernel::now();
            (miss, t_miss, hit, t_hit)
        });
        mk.domain(0).spawn("tx", move || {
            crate::kernel::sleep(us(100));
            tx.send(9).unwrap();
        });
        mk.run();
        let (miss, t_miss, hit, t_hit) = h.take_result().unwrap();
        assert_eq!(miss, None);
        assert_eq!(t_miss, SimTime::ZERO + us(20));
        assert_eq!(hit, Some(9));
        assert_eq!(t_hit, SimTime::ZERO + us(150));
    }

    #[test]
    fn deadline_before_delivery_leaves_message_queued() {
        // The delivery's wake must NOT supersede an earlier timeout:
        // the receiver times out first, and the message is received by
        // a later call.
        let mk = MultiKernel::new(MultiDomainConfig::new(2, lookahead_50us()));
        let (tx, rx) = mk.port::<u8>("q", 0, 1, us(50));
        let h = mk.domain(1).spawn("rx", move || {
            let miss = rx.recv_deadline(SimTime::ZERO + us(55)).unwrap();
            // Sent at 0, arrives at 50... wait, that would hit. Use the
            // second message: sent at 200us, arrives 250us; deadline
            // 210us is after the *timeout registration* but before
            // arrival.
            let miss2 = rx.recv_deadline(SimTime::ZERO + us(210)).unwrap();
            let v = rx.recv().unwrap();
            (miss, miss2, v, crate::kernel::now())
        });
        mk.domain(0).spawn("tx", move || {
            crate::kernel::sleep(us(200));
            tx.send(3).unwrap();
        });
        mk.run();
        let (miss, miss2, v, t) = h.take_result().unwrap();
        assert_eq!(miss, None);
        assert_eq!(miss2, None);
        assert_eq!(v, 3);
        assert_eq!(t, SimTime::ZERO + us(250));
    }

    #[test]
    fn fixed_domain_count_runs_are_identical() {
        let fingerprint = |policy: SchedPolicy| {
            let mk =
                MultiKernel::new(MultiDomainConfig::new(4, lookahead_50us()).with_policy(policy));
            mk.enable_trace();
            let mut txs = Vec::new();
            let mut rxs = Vec::new();
            for d in 0..4u32 {
                let nxt = (d + 1) % 4;
                let (tx, rx) = mk.port::<u64>(format!("ring-{d}-{nxt}"), d, nxt, us(50));
                txs.push(Some(tx));
                rxs.push(Some(rx));
            }
            rxs.rotate_right(1); // node d receives from port (d-1) -> d
            for d in 0..4u32 {
                let tx = txs[d as usize].take().unwrap();
                let rx = rxs[d as usize].take().unwrap();
                mk.domain(d).spawn(format!("node-{d}"), move || {
                    for i in 0..20u64 {
                        tx.send(d as u64 * 1000 + i).unwrap();
                        crate::kernel::sleep(us(7 + d as u64));
                        let _ = rx.recv().unwrap();
                    }
                    tx.close();
                    while rx.recv().is_ok() {}
                });
            }
            mk.run();
            mk.fingerprint()
        };
        for policy in [SchedPolicy::Fifo, SchedPolicy::Random(0xfeed)] {
            let a = fingerprint(policy);
            let b = fingerprint(policy);
            assert!(a.0 > 0);
            assert_eq!(
                a, b,
                "multi-domain run must replay identically under {policy:?}"
            );
        }
    }

    #[test]
    fn cross_domain_deadlock_dumps_every_domain() {
        let mk = MultiKernel::new(MultiDomainConfig::new(2, lookahead_50us()));
        mk.set_dump_note("scenario=stall-test");
        let (_tx, rx) = mk.port::<u8>("never", 0, 1, us(50));
        mk.domain(1).spawn("starved", move || {
            let _ = rx.recv(); // no sender ever: blocks forever
        });
        mk.domain(0).spawn("quick", || {
            crate::kernel::sleep(us(5));
        });
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| mk.run()))
            .expect_err("cross-domain stall must abort the run");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("cross-domain deadlock"), "{msg}");
        assert!(msg.contains("domain 0: finished"), "{msg}");
        assert!(msg.contains("domain 1: stalled"), "{msg}");
        assert!(msg.contains("safe horizon"), "{msg}");
        assert!(msg.contains("port 'never' empty"), "{msg}");
        assert!(msg.contains("context: scenario=stall-test"), "{msg}");
    }

    #[test]
    fn domain_failure_reports_other_domains() {
        let mk = MultiKernel::new(MultiDomainConfig::new(2, lookahead_50us()));
        let (_tx, rx) = mk.port::<u8>("idle", 0, 1, us(50));
        mk.domain(1).spawn("waiter", move || {
            let _ = rx.recv();
        });
        mk.domain(0).spawn("bomb", || {
            crate::kernel::sleep(us(10));
            panic!("kaboom");
        });
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| mk.run()))
            .expect_err("panic in one domain must abort the run");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("domain 0 failed"), "{msg}");
        assert!(msg.contains("kaboom"), "{msg}");
        assert!(msg.contains("domain 1: stalled"), "{msg}");
        assert!(msg.contains("port 'idle' empty"), "{msg}");
    }

    #[test]
    fn deliveries_to_finished_domain_are_dropped() {
        let mk = MultiKernel::new(MultiDomainConfig::new(2, lookahead_50us()));
        let (tx, _rx) = mk.port::<u8>("into-void", 1, 0, us(50));
        mk.domain(0).spawn("gone", || {}); // finishes immediately
        mk.domain(1).spawn("talker", move || {
            for _ in 0..3 {
                crate::kernel::sleep(us(100));
                tx.send(1).unwrap();
            }
        });
        mk.run();
        assert_eq!(mk.dropped_deliveries(), 3);
    }

    #[test]
    fn port_delay_below_lookahead_is_rejected() {
        let mk = MultiKernel::new(MultiDomainConfig::new(2, lookahead_50us()));
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = mk.port::<u8>("too-fast", 0, 1, us(10));
        }));
        assert!(err.is_err());
        // Same-domain ports may go below the lookahead.
        let _ = mk.port::<u8>("local", 1, 1, us(1));
    }

    #[test]
    fn random_policy_salts_domains_but_not_domain_zero() {
        assert_eq!(salted(SchedPolicy::Random(9), 0), SchedPolicy::Random(9));
        assert_ne!(salted(SchedPolicy::Random(9), 1), SchedPolicy::Random(9));
        assert_ne!(
            salted(SchedPolicy::Random(9), 1),
            salted(SchedPolicy::Random(9), 2)
        );
        assert_eq!(salted(SchedPolicy::Fifo, 3), SchedPolicy::Fifo);
    }
}
