//! # simkernel — deterministic virtual-time simulation kernel
//!
//! The foundation of the Snapify reproduction: a cooperative scheduler in
//! which every *simulated thread* is a real OS thread but exactly one runs
//! at a time, under a single global virtual clock. See [`kernel`] for the
//! execution model and its determinism/data-race-freedom guarantees.
//!
//! The crate provides:
//!
//! * [`Kernel`] / [`spawn`] / [`sleep`] / [`now`] — thread and clock control;
//! * [`SimMutex`], [`SimCondvar`], [`Semaphore`], [`Barrier`] — virtual-time
//!   synchronization (the same shapes Snapify's pause protocol uses);
//! * [`SimChannel`] — message channels with latency, capacity, and an
//!   observable *drained* predicate;
//! * [`BandwidthResource`] — FIFO-serialized transports with
//!   latency + bandwidth cost models (PCIe links, disks).
//!
//! ## Example
//!
//! ```
//! use simkernel::{Kernel, spawn, sleep, now, time::ms, SimChannel};
//!
//! let total = Kernel::run_root(|| {
//!     let ch = SimChannel::unbounded("work");
//!     let tx = ch.clone();
//!     spawn("producer", move || {
//!         for i in 0..3u64 {
//!             sleep(ms(10));
//!             tx.send(i).unwrap();
//!         }
//!         tx.close();
//!     });
//!     let mut total = 0;
//!     while let Ok(v) = ch.recv() {
//!         total += v;
//!     }
//!     assert_eq!(now().as_nanos(), 30_000_000); // 30ms of virtual time
//!     total
//! });
//! assert_eq!(total, 3);
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod domain;
pub mod kernel;
pub mod resource;
pub mod sync;
pub mod time;

/// Deterministic observability: typed spans, metrics, and trace/summary
/// exporters, stamped with this kernel's virtual clock.
///
/// This is a re-export of the `snapify-obs` crate with the virtual
/// clock pre-installed: every [`Kernel`] construction registers
/// `simkernel::now()` + the current [`Tid`] as the timestamp source, so
/// `simkernel::obs::span!("phase")` records begin/end at virtual time
/// with per-thread nesting. Recording is off by default and costs one
/// relaxed atomic load per event until [`obs::enable`](snapify_obs::enable)
/// is called.
pub mod obs {
    pub use snapify_obs::*;
}

pub use channel::{RecvError, SendError, SimChannel};
pub use domain::{DomainId, MultiDomainConfig, MultiKernel, PortRx, PortTx};
pub use kernel::{
    current, in_simulation, now, sleep, spawn, yield_now, JoinHandle, Kernel, SchedPolicy, Tid,
    TraceEvent,
};
pub use resource::{Bandwidth, BandwidthResource};
pub use sync::{Barrier, Semaphore, SimCondvar, SimMutex, SimMutexGuard};
pub use time::{ms, secs, us, SimDuration, SimTime};
