//! Simulated message channels with observable in-flight state.
//!
//! [`SimChannel`] is an MPMC queue in virtual time with three features the
//! plain `std` channels lack, all of which the Snapify reproduction needs:
//!
//! * **optional per-message latency** — a message sent at `t` becomes
//!   receivable at `t + latency`, modelling a transport (e.g. a PCIe
//!   doorbell) rather than shared memory;
//! * **optional capacity** — senders block when the queue is full,
//!   modelling bounded kernel buffers;
//! * **inspectable occupancy** — [`SimChannel::len`] and
//!   [`SimChannel::is_drained`] let a test *prove* a channel was empty when
//!   a snapshot was taken, which is the consistency property at the heart
//!   of the paper (§3 "Capturing consistent, distributed snapshots").
//!
//! Channels can also be *closed*; receivers then drain the queue and get
//! [`RecvError::Closed`], and senders get [`SendError::Closed`].

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::kernel::{current, with_current, BlockReason, Tid};
use crate::time::{SimDuration, SimTime};

/// Error returned by [`SimChannel::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The channel was closed.
    Closed,
}

/// Error returned by [`SimChannel::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The channel is closed and empty.
    Closed,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "send on closed channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recv on closed, empty channel")
    }
}

impl std::error::Error for SendError {}
impl std::error::Error for RecvError {}

struct ChanState<T> {
    queue: VecDeque<(SimTime, T)>, // (ready_at, message)
    recv_waiters: VecDeque<Tid>,
    send_waiters: VecDeque<Tid>,
    closed: bool,
    /// Cumulative counters, for tests and statistics.
    sent: u64,
    received: u64,
}

struct ChanInner<T> {
    name: String,
    state: Mutex<ChanState<T>>,
    capacity: Option<usize>,
    latency: SimDuration,
}

/// A simulated MPMC channel. Clone freely; all clones share the queue.
pub struct SimChannel<T> {
    inner: Arc<ChanInner<T>>,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: fmt::Debug + Send + 'static> fmt::Debug for SimChannel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimChannel")
            .field("name", &self.inner.name)
            .field("len", &self.len())
            .finish()
    }
}

impl<T: Send + 'static> SimChannel<T> {
    /// Unbounded channel with zero latency (shared-memory queue).
    pub fn unbounded(name: impl Into<String>) -> SimChannel<T> {
        Self::with_options(name, None, SimDuration::ZERO)
    }

    /// Bounded channel with zero latency.
    pub fn bounded(name: impl Into<String>, capacity: usize) -> SimChannel<T> {
        assert!(capacity > 0);
        Self::with_options(name, Some(capacity), SimDuration::ZERO)
    }

    /// Fully-configurable constructor.
    pub fn with_options(
        name: impl Into<String>,
        capacity: Option<usize>,
        latency: SimDuration,
    ) -> SimChannel<T> {
        SimChannel {
            inner: Arc::new(ChanInner {
                name: name.into(),
                state: Mutex::new(ChanState {
                    queue: VecDeque::new(),
                    recv_waiters: VecDeque::new(),
                    send_waiters: VecDeque::new(),
                    closed: false,
                    sent: 0,
                    received: 0,
                }),
                capacity,
                latency,
            }),
        }
    }

    /// Send a message, blocking in virtual time while the channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError> {
        let (kernel, me) = current();
        let mut value = Some(value);
        loop {
            {
                let mut st = self.inner.state.lock().unwrap();
                if st.closed {
                    return Err(SendError::Closed);
                }
                let full = self
                    .inner
                    .capacity
                    .map(|c| st.queue.len() >= c)
                    .unwrap_or(false);
                if !full {
                    let ready_at = kernel.now() + self.inner.latency;
                    st.queue.push_back((ready_at, value.take().unwrap()));
                    st.sent += 1;
                    let waiter = st.recv_waiters.pop_front();
                    drop(st);
                    if let Some(w) = waiter {
                        kernel.make_runnable(w);
                    }
                    return Ok(());
                }
                st.send_waiters.push_back(me);
            }
            kernel.block(
                me,
                BlockReason::named_with("channel", &self.inner.name, " full"),
            );
        }
    }

    /// Send without blocking. Fails if the channel is full or closed.
    /// Never takes the scheduler lock unless a blocked receiver must be
    /// woken.
    pub fn try_send(&self, value: T) -> Result<(), T> {
        with_current(|kernel, _| {
            let mut st = self.inner.state.lock().unwrap();
            if st.closed {
                return Err(value);
            }
            let full = self
                .inner
                .capacity
                .map(|c| st.queue.len() >= c)
                .unwrap_or(false);
            if full {
                return Err(value);
            }
            let ready_at = kernel.now() + self.inner.latency;
            st.queue.push_back((ready_at, value));
            st.sent += 1;
            let waiter = st.recv_waiters.pop_front();
            drop(st);
            if let Some(w) = waiter {
                kernel.make_runnable(w);
            }
            Ok(())
        })
    }

    /// Receive a message, blocking in virtual time until one is available
    /// (and, with latency, until it has *arrived*).
    pub fn recv(&self) -> Result<T, RecvError> {
        let (kernel, me) = current();
        loop {
            let wait_until = {
                let mut st = self.inner.state.lock().unwrap();
                match st.queue.front() {
                    Some((ready_at, _)) if *ready_at <= kernel.now() => {
                        let (_, v) = st.queue.pop_front().unwrap();
                        st.received += 1;
                        let waiter = st.send_waiters.pop_front();
                        drop(st);
                        if let Some(w) = waiter {
                            kernel.make_runnable(w);
                        }
                        return Ok(v);
                    }
                    Some((ready_at, _)) => Some(*ready_at),
                    None => {
                        if st.closed {
                            return Err(RecvError::Closed);
                        }
                        st.recv_waiters.push_back(me);
                        None
                    }
                }
            };
            match wait_until {
                Some(deadline) => {
                    kernel.block_until(
                        me,
                        deadline,
                        BlockReason::named_with("channel", &self.inner.name, " latency"),
                    );
                }
                None => {
                    kernel.block(
                        me,
                        BlockReason::named_with("channel", &self.inner.name, " empty"),
                    );
                }
            }
        }
    }

    /// Receive without blocking. `None` if nothing has arrived yet.
    /// Never takes the scheduler lock unless a blocked sender must be
    /// woken.
    pub fn try_recv(&self) -> Option<T> {
        with_current(|kernel, _| {
            let mut st = self.inner.state.lock().unwrap();
            match st.queue.front() {
                Some((ready_at, _)) if *ready_at <= kernel.now() => {
                    let (_, v) = st.queue.pop_front().unwrap();
                    st.received += 1;
                    let waiter = st.send_waiters.pop_front();
                    drop(st);
                    if let Some(w) = waiter {
                        kernel.make_runnable(w);
                    }
                    Some(v)
                }
                _ => None,
            }
        })
    }

    /// Close the channel: pending messages remain receivable; new sends
    /// fail; blocked senders and receivers are woken.
    pub fn close(&self) {
        let (kernel, _) = current();
        let (rw, sw) = {
            let mut st = self.inner.state.lock().unwrap();
            st.closed = true;
            (
                st.recv_waiters.drain(..).collect::<Vec<_>>(),
                st.send_waiters.drain(..).collect::<Vec<_>>(),
            )
        };
        for w in rw.into_iter().chain(sw) {
            kernel.make_runnable(w);
        }
    }

    /// Whether [`SimChannel::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().unwrap().closed
    }

    /// Number of messages queued (sent but not received), including ones
    /// still "in flight" under the latency model.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// True if no message is queued or in flight. This is the *drained*
    /// predicate used to verify snapshot consistency.
    pub fn is_drained(&self) -> bool {
        self.is_empty()
    }

    /// True if the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.state.lock().unwrap().queue.is_empty()
    }

    /// Cumulative (sent, received) counters.
    pub fn stats(&self) -> (u64, u64) {
        let st = self.inner.state.lock().unwrap();
        (st.sent, st.received)
    }

    /// The channel's diagnostic name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{now, sleep, spawn, Kernel};
    use crate::time::{ms, SimTime};

    #[test]
    fn send_recv_roundtrip() {
        Kernel::run_root(|| {
            let ch = SimChannel::unbounded("c");
            ch.send(1).unwrap();
            ch.send(2).unwrap();
            assert_eq!(ch.recv().unwrap(), 1);
            assert_eq!(ch.recv().unwrap(), 2);
            assert_eq!(ch.stats(), (2, 2));
        });
    }

    #[test]
    fn recv_blocks_until_send() {
        Kernel::run_root(|| {
            let ch = SimChannel::unbounded("c");
            let ch2 = ch.clone();
            let h = spawn("rx", move || {
                let v = ch2.recv().unwrap();
                (v, now())
            });
            sleep(ms(15));
            ch.send(99).unwrap();
            assert_eq!(h.join(), (99, SimTime::ZERO + ms(15)));
        });
    }

    #[test]
    fn latency_delays_delivery() {
        Kernel::run_root(|| {
            let ch: SimChannel<u32> = SimChannel::with_options("pcie", None, ms(3));
            ch.send(7).unwrap();
            assert_eq!(ch.try_recv(), None); // not arrived yet
            assert!(!ch.is_drained()); // but in flight!
            let v = ch.recv().unwrap();
            assert_eq!(v, 7);
            assert_eq!(now(), SimTime::ZERO + ms(3));
        });
    }

    #[test]
    fn bounded_send_blocks_when_full() {
        Kernel::run_root(|| {
            let ch = SimChannel::bounded("c", 1);
            ch.send(1).unwrap();
            let ch2 = ch.clone();
            let h = spawn("tx", move || {
                ch2.send(2).unwrap();
                now()
            });
            sleep(ms(20));
            assert_eq!(ch.recv().unwrap(), 1);
            let sent_at = h.join();
            assert_eq!(sent_at, SimTime::ZERO + ms(20));
            assert_eq!(ch.recv().unwrap(), 2);
        });
    }

    #[test]
    fn try_send_fails_when_full() {
        Kernel::run_root(|| {
            let ch = SimChannel::bounded("c", 1);
            assert!(ch.try_send(1).is_ok());
            assert_eq!(ch.try_send(2), Err(2));
        });
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        Kernel::run_root(|| {
            let ch: SimChannel<u32> = SimChannel::unbounded("c");
            let ch2 = ch.clone();
            let h = spawn("rx", move || ch2.recv());
            sleep(ms(5));
            ch.close();
            assert_eq!(h.join(), Err(RecvError::Closed));
            assert_eq!(ch.send(1), Err(SendError::Closed));
        });
    }

    #[test]
    fn close_drains_remaining_messages() {
        Kernel::run_root(|| {
            let ch = SimChannel::unbounded("c");
            ch.send(1).unwrap();
            ch.close();
            assert_eq!(ch.recv().unwrap(), 1);
            assert_eq!(ch.recv(), Err(RecvError::Closed));
        });
    }

    #[test]
    fn drained_predicate_tracks_in_flight() {
        Kernel::run_root(|| {
            let ch: SimChannel<u32> = SimChannel::with_options("c", None, ms(2));
            assert!(ch.is_drained());
            ch.send(1).unwrap();
            assert!(!ch.is_drained());
            ch.recv().unwrap();
            assert!(ch.is_drained());
        });
    }

    #[test]
    fn mpmc_all_messages_delivered_once() {
        Kernel::run_root(|| {
            let ch = SimChannel::unbounded("c");
            let total = 100u32;
            let mut rx_handles = Vec::new();
            for i in 0..4 {
                let ch = ch.clone();
                rx_handles.push(spawn(format!("rx{i}"), move || {
                    let mut got = Vec::new();
                    while let Ok(v) = ch.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            for i in 0..total {
                ch.send(i).unwrap();
                if i % 7 == 0 {
                    sleep(ms(1));
                }
            }
            sleep(ms(10));
            ch.close();
            let mut all: Vec<u32> = rx_handles.into_iter().flat_map(|h| h.join()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..total).collect::<Vec<_>>());
        });
    }

    #[test]
    fn fifo_order_preserved_single_consumer() {
        Kernel::run_root(|| {
            let ch = SimChannel::with_options("c", None, ms(1));
            for i in 0..10 {
                ch.send(i).unwrap();
            }
            let got: Vec<u32> = (0..10).map(|_| ch.recv().unwrap()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        });
    }
}
