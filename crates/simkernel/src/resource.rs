//! Shared hardware resources with bandwidth/latency cost models.
//!
//! A [`BandwidthResource`] models a serial transport (a PCIe link, a disk,
//! a memory-copy engine): each operation of `n` bytes occupies the resource
//! for `per_op_latency + n / bandwidth` of virtual time, and concurrent
//! users are serialized FIFO. This captures the two effects the paper's
//! evaluation turns on: *small operations are latency-bound* (NFS's many
//! small writes, Table 4) and *large operations are bandwidth-bound and
//! interfere* (competing RDMA transfers on one PCIe link).

use std::sync::Arc;

use crate::kernel::current;
use crate::sync::SimMutex;
use crate::time::{SimDuration, SimTime};

/// Throughput in bytes per second of virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    /// Megabytes (1e6 bytes) per second.
    pub fn mb_per_sec(v: f64) -> Bandwidth {
        Bandwidth(v * 1e6)
    }

    /// Gigabytes (1e9 bytes) per second.
    pub fn gb_per_sec(v: f64) -> Bandwidth {
        Bandwidth(v * 1e9)
    }

    /// Time to move `bytes` at this bandwidth.
    pub fn time_for(self, bytes: u64) -> SimDuration {
        assert!(self.0 > 0.0, "bandwidth must be positive");
        SimDuration::from_secs_f64(bytes as f64 / self.0)
    }
}

struct ResState {
    /// Virtual time at which the resource becomes free.
    available_at: SimTime,
    /// Cumulative bytes moved (for reports).
    total_bytes: u64,
    /// Cumulative operations (for reports).
    total_ops: u64,
}

/// A FIFO-serialized bandwidth resource. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct BandwidthResource {
    inner: Arc<BwInner>,
}

struct BwInner {
    name: String,
    bandwidth: Bandwidth,
    per_op_latency: SimDuration,
    state: SimMutex<ResState>,
}

impl BandwidthResource {
    /// Create a resource with a given bandwidth and fixed per-operation
    /// latency (seek/doorbell/RPC overhead).
    pub fn new(
        name: impl Into<String>,
        bandwidth: Bandwidth,
        per_op_latency: SimDuration,
    ) -> BandwidthResource {
        let name = name.into();
        BandwidthResource {
            inner: Arc::new(BwInner {
                state: SimMutex::new(
                    format!("resource '{name}'"),
                    ResState {
                        available_at: SimTime::ZERO,
                        total_bytes: 0,
                        total_ops: 0,
                    },
                ),
                name,
                bandwidth,
                per_op_latency,
            }),
        }
    }

    /// Occupy the resource for one operation of `bytes` bytes: blocks the
    /// calling simulated thread until the operation completes, i.e. until
    /// `max(now, available) + per_op_latency + bytes/bandwidth`.
    ///
    /// Returns the operation's duration as experienced by the caller
    /// (including queueing delay).
    pub fn transfer(&self, bytes: u64) -> SimDuration {
        self.transfer_with_extra(bytes, SimDuration::ZERO)
    }

    /// Charge `bytes` as if issued in `ops` separate operations (each
    /// paying the per-op latency) in one simulation event. Models e.g. a
    /// checkpointer that writes page-by-page without costing one event per
    /// page.
    pub fn transfer_as_ops(&self, bytes: u64, ops: u64) -> SimDuration {
        let extra = self.inner.per_op_latency * ops.saturating_sub(1);
        self.transfer_with_extra(bytes, extra)
    }

    /// Like [`BandwidthResource::transfer`], but adds `extra` service time
    /// to the operation (e.g. a cipher cost that occupies the link).
    pub fn transfer_with_extra(&self, bytes: u64, extra: SimDuration) -> SimDuration {
        let (kernel, _) = current();
        let start = kernel.now();
        let completion = {
            let mut st = self.inner.state.lock();
            let begin = st.available_at.max(start);
            let service = self.inner.per_op_latency + self.inner.bandwidth.time_for(bytes) + extra;
            let completion = begin + service;
            st.available_at = completion;
            st.total_bytes += bytes;
            st.total_ops += 1;
            completion
        };
        // The SimMutex queue makes contending users FIFO; the sleep below
        // then charges each its own completion time.
        let now = kernel.now();
        if completion > now {
            kernel.sleep(completion - now);
        }
        kernel.now() - start
    }

    /// Pure cost-model query: the service time (ignoring queueing) for an
    /// operation of `bytes` bytes. Does not occupy the resource.
    pub fn service_time(&self, bytes: u64) -> SimDuration {
        self.inner.per_op_latency + self.inner.bandwidth.time_for(bytes)
    }

    /// Enqueue an operation on the resource *without waiting* for it:
    /// models asynchronous work (e.g. a write-back cache flushing to disk
    /// in the background). Returns the virtual time at which the scheduled
    /// operation will complete.
    pub fn schedule(&self, bytes: u64) -> SimTime {
        let (kernel, _) = current();
        let now = kernel.now();
        let mut st = self.inner.state.lock();
        let begin = st.available_at.max(now);
        let completion = begin + self.inner.per_op_latency + self.inner.bandwidth.time_for(bytes);
        st.available_at = completion;
        st.total_bytes += bytes;
        st.total_ops += 1;
        completion
    }

    /// Block until all scheduled work has completed (an `fsync`).
    pub fn wait_idle(&self) {
        let (kernel, _) = current();
        let target = self.inner.state.lock().available_at;
        let now = kernel.now();
        if target > now {
            kernel.sleep(target - now);
        }
    }

    /// Cumulative `(bytes, operations)` served.
    pub fn stats(&self) -> (u64, u64) {
        let st = self.inner.state.lock();
        (st.total_bytes, st.total_ops)
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Configured bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.inner.bandwidth
    }

    /// Configured per-operation latency.
    pub fn per_op_latency(&self) -> SimDuration {
        self.inner.per_op_latency
    }
}

impl std::fmt::Debug for BandwidthResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BandwidthResource")
            .field("name", &self.inner.name)
            .field("bytes_per_sec", &self.inner.bandwidth.0)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{now, sleep, spawn, Kernel};
    use crate::time::{ms, secs, SimTime};

    #[test]
    fn bandwidth_time_for() {
        let bw = Bandwidth::mb_per_sec(100.0);
        assert_eq!(bw.time_for(100_000_000), secs(1));
        assert_eq!(bw.time_for(0), SimDuration::ZERO);
    }

    #[test]
    fn single_transfer_takes_latency_plus_bytes_over_bw() {
        Kernel::run_root(|| {
            let r = BandwidthResource::new("link", Bandwidth::mb_per_sec(10.0), ms(2));
            let d = r.transfer(10_000_000); // 1s at 10 MB/s
            assert_eq!(d, secs(1) + ms(2));
            assert_eq!(now(), SimTime::ZERO + secs(1) + ms(2));
        });
    }

    #[test]
    fn concurrent_transfers_serialize() {
        Kernel::run_root(|| {
            let r = BandwidthResource::new("link", Bandwidth::mb_per_sec(1.0), SimDuration::ZERO);
            let mut handles = Vec::new();
            for i in 0..3 {
                let r = r.clone();
                handles.push(spawn(format!("t{i}"), move || {
                    r.transfer(1_000_000); // 1s each
                    now()
                }));
            }
            let mut ends: Vec<SimTime> = handles.into_iter().map(|h| h.join()).collect();
            ends.sort();
            assert_eq!(
                ends,
                vec![
                    SimTime::ZERO + secs(1),
                    SimTime::ZERO + secs(2),
                    SimTime::ZERO + secs(3),
                ]
            );
        });
    }

    #[test]
    fn idle_resource_does_not_backlog() {
        Kernel::run_root(|| {
            let r = BandwidthResource::new("link", Bandwidth::mb_per_sec(1.0), SimDuration::ZERO);
            r.transfer(1_000_000); // finishes at 1s
            sleep(secs(10)); // resource idle 9s
            let d = r.transfer(1_000_000);
            assert_eq!(d, secs(1)); // no queueing delay
            assert_eq!(now(), SimTime::ZERO + secs(12));
        });
    }

    #[test]
    fn extra_service_time_is_charged() {
        Kernel::run_root(|| {
            let r = BandwidthResource::new("link", Bandwidth::gb_per_sec(1.0), SimDuration::ZERO);
            let d = r.transfer_with_extra(1_000_000_000, secs(2));
            assert_eq!(d, secs(3));
        });
    }

    #[test]
    fn stats_accumulate() {
        Kernel::run_root(|| {
            let r = BandwidthResource::new("link", Bandwidth::gb_per_sec(1.0), SimDuration::ZERO);
            r.transfer(10);
            r.transfer(20);
            assert_eq!(r.stats(), (30, 2));
        });
    }

    #[test]
    fn service_time_is_pure() {
        Kernel::run_root(|| {
            let r = BandwidthResource::new("link", Bandwidth::mb_per_sec(1.0), ms(5));
            let t0 = now();
            assert_eq!(r.service_time(2_000_000), secs(2) + ms(5));
            assert_eq!(now(), t0);
            assert_eq!(r.stats(), (0, 0));
        });
    }
}
