//! The cooperative virtual-time scheduler.
//!
//! # Execution model
//!
//! Every *simulated thread* is a real OS thread, but **exactly one simulated
//! thread executes at any moment**. A single "token" is handed from thread to
//! thread by the scheduler: a thread runs until it performs a blocking
//! simulation operation (sleep, lock acquisition, channel receive, join, …),
//! at which point it selects the next runnable thread — the one with the
//! earliest pending wake-up time — advances the virtual clock to that time,
//! grants it the token, and parks itself.
//!
//! This "single token" discipline has two important consequences that the
//! rest of the workspace relies on:
//!
//! 1. **Determinism.** Wake-ups are ordered by `(virtual time, sequence
//!    number)`, and sequence numbers are assigned in program order, so the
//!    whole simulation is a deterministic function of its inputs. Running the
//!    same scenario twice produces an identical event trace (see
//!    [`Kernel::trace`]), which makes "checkpoint at a random virtual time"
//!    a reproducible property test rather than a flaky stress test.
//!
//! 2. **No data races between simulated threads.** Because only one
//!    simulated thread runs at a time, the internal bookkeeping of the
//!    higher-level primitives ([`crate::sync`], [`crate::channel`]) only
//!    needs uncontended `std::sync::Mutex`es; a simulated thread never
//!    blocks on a *real* lock held by another simulated thread.
//!
//! # Hot-path design
//!
//! Dispatch is the wall-clock bottleneck of every test and bench in the
//! workspace, so the token hand-off is engineered to touch as little
//! shared state as possible:
//!
//! * **Per-thread parking slots.** Each simulated thread parks on its own
//!   `Mutex<SlotState>` + `Condvar` pair. Granting the token signals
//!   exactly that thread's slot — one `notify_one` on an uncontended
//!   condvar — instead of broadcasting on a global condvar and waking all
//!   N parked threads to re-check who was granted (the previous design's
//!   thundering herd, O(N) wake-ups per event).
//! * **Slab thread table.** `Tid`s are dense and monotonically assigned,
//!   so thread metadata lives in a `Vec` indexed by `tid - 1`, not a
//!   `HashMap` (no hashing on every dispatch).
//! * **Lock-free clock reads.** The virtual clock is mirrored in an
//!   `AtomicU64` updated at dispatch; [`Kernel::now`] is a relaxed load,
//!   so channel sends, observability timestamps, and cost-model queries
//!   never take the scheduler lock. This is sound because time only
//!   advances in dispatch, which never runs concurrently with a simulated
//!   thread that could observe the torn value (the grantee's slot mutex
//!   provides the happens-before edge).
//! * **Allocation-free blocking.** Block reasons are `(&'static str,
//!   &str)` pairs copied into a per-thread reusable buffer; trace labels
//!   are only formatted when tracing is enabled (checked via an atomic
//!   before taking any lock).
//!
//! # Deadlock detection
//!
//! If every live simulated thread is blocked and no timed wake-up is
//! pending, the simulation cannot make progress. The kernel detects this,
//! aborts the run, and panics in [`Kernel::run`] with a dump of every
//! blocked thread, the reason it blocked, and how long (in virtual time)
//! it has been parked. This turns protocol bugs (e.g. an incorrect drain
//! order in Snapify's pause) into crisp test failures.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;

use crate::time::{SimDuration, SimTime};

/// Identifier of a simulated thread.
pub type Tid = u32;

/// Dispatch policy of the scheduler.
///
/// Both policies advance virtual time identically — the next dispatch
/// always goes to a thread whose wake-up time is the minimum over the
/// run queue — so cost models and timings are policy-independent. What
/// a policy chooses is the *tie-break* among threads runnable at that
/// same minimum time:
///
/// * [`SchedPolicy::Fifo`] (the default) breaks ties by sequence
///   number, i.e. program order. This is the historical behaviour that
///   the golden-trace and determinism tests pin down byte-for-byte.
/// * [`SchedPolicy::Random`] breaks ties uniformly at random using a
///   splitmix64 PRNG seeded from the given value — the same generator
///   as the workspace's proptest stub. Every interleaving is a pure
///   function of `(seed, program)`, so any schedule found by the chaos
///   explorer is replayable from the seed alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Deterministic FIFO tie-break (sequence/program order).
    #[default]
    Fifo,
    /// Seeded uniform-random tie-break among threads runnable at the
    /// minimum wake-up time. Deterministic per seed.
    Random(u64),
}

/// One step of the splitmix64 generator (same constants as the
/// proptest stub's `TestRng`), so scheduler interleavings and
/// property-test inputs share a single, documented PRNG.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An entry in the deterministic event trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub time: SimTime,
    /// Thread the event concerns.
    pub tid: Tid,
    /// Human-readable event label (e.g. `"spawn"`, `"block: sleep"`).
    pub label: String,
}

/// Why a thread blocked, passed by reference so the hot path never
/// allocates: a static kind, an optional borrowed name (copied into the
/// thread's reusable reason buffer only when it blocks), and a static
/// suffix. Rendered as `kind 'name'suffix` (e.g. `channel 'work' empty`).
#[derive(Clone, Copy)]
pub(crate) struct BlockReason<'a> {
    kind: &'static str,
    name: &'a str,
    suffix: &'static str,
}

impl<'a> BlockReason<'a> {
    /// A fixed reason with no dynamic component (`"sleep"`, `"join"`).
    pub(crate) const fn fixed(kind: &'static str) -> BlockReason<'static> {
        BlockReason {
            kind,
            name: "",
            suffix: "",
        }
    }

    /// `kind 'name'` (e.g. `mutex 'coi.run_lock'`).
    pub(crate) const fn named(kind: &'static str, name: &'a str) -> BlockReason<'a> {
        BlockReason {
            kind,
            name,
            suffix: "",
        }
    }

    /// `kind 'name'suffix` (e.g. `channel 'work' full`).
    pub(crate) const fn named_with(
        kind: &'static str,
        name: &'a str,
        suffix: &'static str,
    ) -> BlockReason<'a> {
        BlockReason { kind, name, suffix }
    }
}

impl fmt::Display for BlockReason<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}{}", self.kind, self.suffix)
        } else {
            write!(f, "{} '{}'{}", self.kind, self.name, self.suffix)
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// Queued in the run queue (possibly with a future wake-up time).
    Runnable,
    /// Currently holds the token.
    Running,
    /// Waiting on a primitive; not in the run queue.
    Blocked,
    /// The thread's closure has returned.
    Finished,
}

/// A simulated thread's private parking spot. The scheduler signals it to
/// hand over the token; nothing else ever waits on it, so a grant wakes
/// exactly one OS thread.
struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// No grant pending; the owner parks here.
    Parked,
    /// The scheduler granted the token; the owner should run.
    Granted,
    /// The simulation is over (completed or aborted); park forever.
    Shutdown,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            state: Mutex::new(SlotState::Parked),
            cv: Condvar::new(),
        })
    }

    /// Hand the token to this slot's owner. Wakes at most one OS thread.
    fn grant(&self) {
        let mut st = self.state.lock().unwrap();
        debug_assert!(*st != SlotState::Granted, "double grant");
        if *st != SlotState::Shutdown {
            *st = SlotState::Granted;
        }
        self.cv.notify_one();
    }

    /// Tell the owner the simulation is over; it parks forever.
    fn shutdown(&self) {
        *self.state.lock().unwrap() = SlotState::Shutdown;
        self.cv.notify_one();
    }

    /// Park until granted. On shutdown, never returns (parks the OS
    /// thread forever: unwinding through arbitrary user code would run
    /// destructors, which may touch the scheduler, concurrently with
    /// other aborting threads).
    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        loop {
            match *st {
                SlotState::Granted => {
                    *st = SlotState::Parked;
                    return;
                }
                SlotState::Shutdown => {
                    drop(st);
                    loop {
                        thread::park();
                    }
                }
                SlotState::Parked => st = self.cv.wait(st).unwrap(),
            }
        }
    }
}

struct ThreadInfo {
    name: String,
    state: TState,
    /// Daemon threads (service loops) do not keep the simulation alive:
    /// the run ends when the last non-daemon thread finishes.
    daemon: bool,
    /// This thread's private parking spot.
    slot: Arc<Slot>,
    /// Why the thread is blocked (for deadlock dumps): static kind and
    /// suffix plus a reusable buffer holding the dynamic name — refilled
    /// in place on every block, so steady-state blocking never allocates.
    block_kind: &'static str,
    block_suffix: &'static str,
    block_name: String,
    /// Deadline of a timed wait (`block_until`), for dumps.
    block_deadline: Option<SimTime>,
    /// Virtual time at which the thread last gave up the token.
    block_since: SimTime,
    /// Threads waiting in `join()` on this thread.
    joiners: Vec<Tid>,
    /// Generation counter: incremented every time the thread blocks, so
    /// stale run-queue entries (from cancelled timed waits) can be skipped.
    generation: u64,
}

impl ThreadInfo {
    fn set_reason(&mut self, reason: BlockReason<'_>, deadline: Option<SimTime>, now: SimTime) {
        self.block_kind = reason.kind;
        self.block_suffix = reason.suffix;
        self.block_name.clear();
        self.block_name.push_str(reason.name);
        self.block_deadline = deadline;
        self.block_since = now;
    }

    fn reason(&self) -> BlockReason<'_> {
        BlockReason {
            kind: self.block_kind,
            name: &self.block_name,
            suffix: self.block_suffix,
        }
    }
}

/// Minimum `spawned_os` length before a reap sweep runs (see
/// `Sched::reap_at`). Small runs never sweep; large runs sweep with
/// frequency inversely proportional to the live-thread count.
const REAP_FLOOR: usize = 256;

struct Sched {
    now: SimTime,
    seq: u64,
    /// Min-heap of `(wake time, sequence, tid, generation)`.
    runq: BinaryHeap<Reverse<(SimTime, u64, Tid, u64)>>,
    /// Slab of thread metadata, indexed by `tid - 1` (tids are dense).
    threads: Vec<ThreadInfo>,
    /// The current token holder (None while the token is being handed off).
    running: Option<Tid>,
    live: usize,
    done: bool,
    shutdown: bool,
    failure: Option<String>,
    trace: Option<Vec<TraceEvent>>,
    spawned_os: Vec<(thread::JoinHandle<()>, bool)>,
    /// Reap finished OS threads once `spawned_os` reaches this length.
    /// Finished-but-unjoined threads keep their stack mappings alive, and
    /// long runs with many short-lived simulated threads exhaust the
    /// process mapping budget (`vm.max_map_count`) without reaping.
    reap_at: usize,
    /// Tie-break policy; `rng` is the splitmix64 state for `Random`.
    policy: SchedPolicy,
    rng: u64,
    /// Abort with a livelock dump after this many consecutive dispatches
    /// without virtual-time progress (`None` = detection off).
    livelock_threshold: Option<u64>,
    /// Consecutive dispatches at an unchanged virtual time.
    same_time_streak: u64,
    /// Free-form context (e.g. the active fault schedule) appended to
    /// deadlock/livelock dumps.
    dump_note: Option<String>,
    /// Multi-domain stepping (see [`crate::domain`]): when `bounded`,
    /// an empty run queue with live threads pauses the domain instead
    /// of declaring a local deadlock (a cross-domain delivery may still
    /// arrive at the next window barrier), and dispatch refuses to
    /// advance to `horizon` or beyond.
    bounded: bool,
    /// Exclusive upper bound on event times this domain may execute.
    horizon: Option<SimTime>,
    /// Set when dispatch stops at the horizon (or on an empty queue in
    /// bounded mode); cleared by the next `step_until`.
    paused: bool,
    /// Wake time of the earliest pending entry at pause (`None` = this
    /// domain has no pending events at all).
    paused_next: Option<SimTime>,
}

impl Sched {
    #[inline]
    fn info(&self, tid: Tid) -> &ThreadInfo {
        &self.threads[(tid - 1) as usize]
    }

    #[inline]
    fn info_mut(&mut self, tid: Tid) -> &mut ThreadInfo {
        &mut self.threads[(tid - 1) as usize]
    }
}

struct Inner {
    sched: Mutex<Sched>,
    /// Mirror of `Sched::now`, updated at dispatch: clock reads are a
    /// relaxed load instead of a scheduler-lock round-trip.
    now_ns: AtomicU64,
    /// Mirror of `Sched::trace.is_some()`: lets `trace_event` return
    /// without locking when tracing is off.
    trace_on: AtomicBool,
    /// The driver of `Kernel::run` parks here waiting for completion.
    driver_cv: Condvar,
    /// Domain id of this kernel in a multi-domain run (0 outside one),
    /// mixed into observability thread ids (`tid | domain << 24`) so
    /// per-domain event streams stay distinct in the shared flight
    /// recorder and Chrome trace.
    domain_tag: AtomicU32,
}

/// Handle to a simulation kernel. Cheap to clone; all clones refer to the
/// same virtual clock and scheduler.
#[derive(Clone)]
pub struct Kernel {
    inner: Arc<Inner>,
}

thread_local! {
    static CTX: RefCell<Option<(Kernel, Tid)>> = const { RefCell::new(None) };
}

/// Returns the kernel and thread id of the calling simulated thread.
///
/// # Panics
/// Panics if called from outside a simulated thread.
pub fn current() -> (Kernel, Tid) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("not inside a simulated thread: simkernel primitives may only be used from threads spawned via Kernel::spawn")
    })
}

/// Returns just the thread id of the calling simulated thread, without
/// cloning the kernel handle (fast path for uncontended primitives).
///
/// # Panics
/// Panics if called from outside a simulated thread.
pub(crate) fn current_tid() -> Tid {
    CTX.with(|c| c.borrow().as_ref().map(|(_, t)| *t))
        .expect("not inside a simulated thread: simkernel primitives may only be used from threads spawned via Kernel::spawn")
}

/// Runs `f` with the calling simulated thread's kernel and tid, without
/// cloning the kernel handle. Must not be used around a blocking call
/// (the thread-local stays borrowed for the closure's duration).
pub(crate) fn with_current<R>(f: impl FnOnce(&Kernel, Tid) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let (k, t) = b
            .as_ref()
            .expect("not inside a simulated thread: simkernel primitives may only be used from threads spawned via Kernel::spawn");
        f(k, *t)
    })
}

/// Returns `true` if the calling OS thread is a simulated thread.
pub fn in_simulation() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.inner.sched.lock().unwrap();
        f.debug_struct("Kernel")
            .field("now", &s.now)
            .field("live", &s.live)
            .finish()
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Create a new kernel with the clock at `t = 0`, no threads, and the
    /// default [`SchedPolicy::Fifo`] dispatch policy.
    pub fn new() -> Kernel {
        Self::new_with_policy(SchedPolicy::Fifo)
    }

    /// Create a new kernel using the given dispatch [`SchedPolicy`].
    pub fn new_with_policy(policy: SchedPolicy) -> Kernel {
        // Register the virtual clock as the observability timestamp
        // source (idempotent; first installation wins process-wide).
        snapify_obs::install_clock(obs_clock);
        let rng = match policy {
            SchedPolicy::Fifo => 0,
            SchedPolicy::Random(seed) => seed,
        };
        Kernel {
            inner: Arc::new(Inner {
                sched: Mutex::new(Sched {
                    now: SimTime::ZERO,
                    seq: 0,
                    runq: BinaryHeap::new(),
                    threads: Vec::new(),
                    running: None,
                    live: 0,
                    done: false,
                    shutdown: false,
                    failure: None,
                    trace: None,
                    spawned_os: Vec::new(),
                    reap_at: REAP_FLOOR,
                    policy,
                    rng,
                    livelock_threshold: None,
                    same_time_streak: 0,
                    dump_note: None,
                    bounded: false,
                    horizon: None,
                    paused: false,
                    paused_next: None,
                }),
                now_ns: AtomicU64::new(0),
                trace_on: AtomicBool::new(false),
                driver_cv: Condvar::new(),
                domain_tag: AtomicU32::new(0),
            }),
        }
    }

    /// The dispatch policy this kernel was created with.
    pub fn policy(&self) -> SchedPolicy {
        self.inner.sched.lock().unwrap().policy
    }

    /// Abort the simulation with a livelock dump if `threshold`
    /// consecutive dispatches happen without virtual-time progress
    /// (`None` disables detection, the default). A livelocked run —
    /// e.g. threads yielding to each other forever under
    /// [`SchedPolicy::Random`] — never triggers deadlock detection
    /// because the run queue is never empty; this bound turns it into
    /// a crisp failure instead of a wall-clock hang.
    pub fn set_livelock_threshold(&self, threshold: Option<u64>) {
        let mut s = self.inner.sched.lock().unwrap();
        s.livelock_threshold = threshold;
        s.same_time_streak = 0;
    }

    /// Attach free-form context to deadlock/livelock dumps (e.g. the
    /// active fault schedule), so an aborted chaos run reports *what
    /// world* it was aborted in, not just which threads were stuck.
    pub fn set_dump_note(&self, note: impl Into<String>) {
        self.inner.sched.lock().unwrap().dump_note = Some(note.into());
    }

    /// Enable event tracing. Must be called before [`Kernel::run`].
    pub fn enable_trace(&self) {
        let mut s = self.inner.sched.lock().unwrap();
        if s.trace.is_none() {
            s.trace = Some(Vec::new());
        }
        self.inner.trace_on.store(true, Ordering::Relaxed);
    }

    /// Take the recorded event trace (empty unless [`Kernel::enable_trace`]
    /// was called). Draining: the second call returns an empty vector.
    pub fn trace(&self) -> Vec<TraceEvent> {
        let mut s = self.inner.sched.lock().unwrap();
        self.inner.trace_on.store(false, Ordering::Relaxed);
        s.trace.take().unwrap_or_default()
    }

    /// Number of recorded trace events, without draining or copying them.
    pub fn trace_len(&self) -> usize {
        let s = self.inner.sched.lock().unwrap();
        s.trace.as_ref().map(Vec::len).unwrap_or(0)
    }

    /// FNV-1a digest of the recorded trace, without draining or copying
    /// it. Two runs are trace-identical iff their digests and
    /// [`Kernel::trace_len`] match — use this for determinism checks
    /// instead of materializing and comparing full event vectors.
    pub fn trace_digest(&self) -> u64 {
        let s = self.inner.sched.lock().unwrap();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
        };
        if let Some(tr) = s.trace.as_ref() {
            for ev in tr {
                mix(&ev.time.as_nanos().to_le_bytes());
                mix(&ev.tid.to_le_bytes());
                mix(ev.label.as_bytes());
                mix(&[0xff]);
            }
        }
        h
    }

    /// Current virtual time. A relaxed atomic load — never takes the
    /// scheduler lock.
    pub fn now(&self) -> SimTime {
        SimTime(self.inner.now_ns.load(Ordering::Relaxed))
    }

    /// Spawn a simulated thread. The thread becomes runnable at the current
    /// virtual time; it does not run until the spawner blocks (or, before
    /// [`Kernel::run`], until the simulation starts).
    pub fn spawn<T, F>(&self, name: impl Into<String>, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.spawn_inner(name, f, false)
    }

    /// Spawn a *daemon* (service) thread: a loop that serves others and
    /// blocks indefinitely. Daemon threads do not keep the simulation
    /// alive — when the last non-daemon thread finishes, the run completes
    /// and remaining daemons are parked.
    pub fn spawn_daemon<T, F>(&self, name: impl Into<String>, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.spawn_inner(name, f, true)
    }

    fn spawn_inner<T, F>(&self, name: impl Into<String>, f: F, daemon: bool) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let name = name.into();
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let result2 = Arc::clone(&result);
        let kernel = self.clone();
        let slot = Slot::new();
        let slot2 = Arc::clone(&slot);

        let tid = {
            let mut s = self.inner.sched.lock().unwrap();
            assert!(!s.done, "cannot spawn after the simulation finished");
            let tid = s.threads.len() as Tid + 1;
            let now = s.now;
            s.threads.push(ThreadInfo {
                name: name.clone(),
                state: TState::Runnable,
                daemon,
                slot,
                block_kind: "",
                block_suffix: "",
                block_name: String::new(),
                block_deadline: None,
                block_since: now,
                joiners: Vec::new(),
                generation: 0,
            });
            if !daemon {
                s.live += 1;
            }
            let (now, seq) = (s.now, s.seq);
            s.seq += 1;
            s.runq.push(Reverse((now, seq, tid, 0)));
            trace(&mut s, tid, "spawn");
            tid
        };

        let os = thread::Builder::new()
            .name(format!("sim-{tid}-{name}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((kernel.clone(), tid)));
                // Park until granted for the first time.
                slot2.wait();
                let out = panic::catch_unwind(AssertUnwindSafe(f));
                match out {
                    Ok(v) => {
                        *result2.lock().unwrap() = Some(v);
                        kernel.thread_exit(tid, daemon, None);
                    }
                    Err(payload) => {
                        let msg = payload_to_string(payload.as_ref());
                        kernel.thread_exit(tid, daemon, Some(msg));
                    }
                }
            })
            .expect("failed to spawn OS thread for simulated thread");

        {
            let mut s = self.inner.sched.lock().unwrap();
            s.spawned_os.push((os, daemon));
            if s.spawned_os.len() >= s.reap_at {
                // Join OS threads whose simulated thread has exited so their
                // stacks are unmapped mid-run. A finished thread has already
                // passed `thread_exit` (it runs inside the closure), so the
                // join cannot wait on anything that needs the sched lock.
                let handles = std::mem::take(&mut s.spawned_os);
                let mut keep = Vec::with_capacity(handles.len());
                for (h, d) in handles {
                    if h.is_finished() {
                        let _ = h.join();
                    } else {
                        keep.push((h, d));
                    }
                }
                s.spawned_os = keep;
                // Double the threshold relative to the surviving set so the
                // sweep stays amortized O(1) per spawn even when thousands of
                // threads are long-lived.
                s.reap_at = (s.spawned_os.len() * 2).max(REAP_FLOOR);
            }
        }

        JoinHandle {
            kernel: self.clone(),
            tid,
            name,
            result,
        }
    }

    /// Run the simulation to completion. Blocks the calling (real) thread
    /// until every simulated thread has finished.
    ///
    /// # Panics
    /// Panics if any simulated thread panicked, or if the simulation
    /// deadlocked (every live thread blocked with no pending wake-up).
    pub fn run(&self) {
        let mut s = self.inner.sched.lock().unwrap();
        assert!(s.running.is_none(), "Kernel::run called re-entrantly");
        if s.live == 0 {
            s.done = true;
        } else {
            self.dispatch(&mut s);
        }
        while !s.done {
            s = self.inner.driver_cv.wait(s).unwrap();
        }
        let failure = s.failure.clone();
        let handles = std::mem::take(&mut s.spawned_os);
        drop(s);
        if let Some(msg) = failure {
            // Aborted simulation: surviving simulated threads are parked
            // forever (see `Slot::wait`), so they cannot be joined.
            // Unwinding them instead would run user destructors concurrently
            // against a dead scheduler.
            panic!("simulation failed: {msg}");
        }
        for (h, daemon) in handles {
            // Daemon threads may be parked forever (shutdown at completion);
            // only non-daemon threads are guaranteed to have exited.
            if !daemon {
                let _ = h.join();
            }
        }
    }

    /// Convenience: create a kernel, run `f` as the root simulated thread,
    /// and return its result.
    pub fn run_root<T, F>(f: F) -> T
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        Self::run_root_with(SchedPolicy::Fifo, f)
    }

    /// Like [`Kernel::run_root`], but with an explicit dispatch policy
    /// (e.g. `SchedPolicy::Random(seed)` for a chaos run).
    pub fn run_root_with<T, F>(policy: SchedPolicy, f: F) -> T
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let kernel = Kernel::new_with_policy(policy);
        let h = kernel.spawn("root", f);
        kernel.run();
        h.take_result().expect("root thread produced no result")
    }

    // ------------------------------------------------------------------
    // Scheduling internals (used by sync/channel/resource modules).
    // ------------------------------------------------------------------

    /// Block the calling simulated thread until another thread makes it
    /// runnable via [`Kernel::make_runnable`]. `reason` appears in deadlock
    /// dumps.
    pub(crate) fn block(&self, me: Tid, reason: BlockReason<'_>) {
        let mut s = self.inner.sched.lock().unwrap();
        debug_assert_eq!(s.running, Some(me));
        s.running = None;
        let now = s.now;
        {
            let info = s.info_mut(me);
            debug_assert_eq!(info.state, TState::Running);
            info.state = TState::Blocked;
            info.set_reason(reason, None, now);
            info.generation += 1;
        }
        if s.trace.is_some() {
            let label = format!("block: {reason}");
            trace(&mut s, me, &label);
        }
        self.dispatch(&mut s);
        self.park(s, me);
    }

    /// Block the calling simulated thread until virtual time `deadline`
    /// *or* until another thread makes it runnable earlier, whichever comes
    /// first. Returns the wake-up time.
    pub(crate) fn block_until(
        &self,
        me: Tid,
        deadline: SimTime,
        reason: BlockReason<'_>,
    ) -> SimTime {
        let mut s = self.inner.sched.lock().unwrap();
        debug_assert_eq!(s.running, Some(me));
        s.running = None;
        let now = s.now;
        {
            let seq = s.seq;
            s.seq += 1;
            let info = s.info_mut(me);
            debug_assert_eq!(info.state, TState::Running);
            info.state = TState::Runnable;
            info.set_reason(reason, Some(deadline), now);
            info.generation += 1;
            let generation = info.generation;
            s.runq.push(Reverse((deadline, seq, me, generation)));
        }
        if s.trace.is_some() {
            let label = format!("block_until: {reason}");
            trace(&mut s, me, &label);
        }
        self.dispatch(&mut s);
        self.park(s, me);
        self.now()
    }

    /// Make `tid` runnable at the current virtual time. Panics if the
    /// thread is not blocked (waking a runnable/running thread indicates a
    /// bookkeeping bug in a primitive).
    pub(crate) fn make_runnable(&self, tid: Tid) {
        let mut s = self.inner.sched.lock().unwrap();
        let (now, seq) = (s.now, s.seq);
        s.seq += 1;
        let info = s.info_mut(tid);
        match info.state {
            TState::Blocked => {
                info.state = TState::Runnable;
                info.generation += 1;
                let generation = info.generation;
                s.runq.push(Reverse((now, seq, tid, generation)));
            }
            TState::Runnable => {
                // The thread is in a timed wait (`block_until`) and is being
                // woken early: supersede the timer entry via the generation
                // counter.
                info.generation += 1;
                let generation = info.generation;
                s.runq.push(Reverse((now, seq, tid, generation)));
            }
            other => panic!("make_runnable on thread {tid} in state {other:?}"),
        }
        trace(&mut s, tid, "wake");
    }

    /// Yield the token: stay runnable at the current time but let any other
    /// thread scheduled for the current time run first.
    pub fn yield_now(&self) {
        let me = current_tid();
        let now = self.now();
        self.block_until(me, now, BlockReason::fixed("yield"));
    }

    /// Advance virtual time by `d` for the calling simulated thread.
    pub fn sleep(&self, d: SimDuration) {
        let me = current_tid();
        let deadline = self.now() + d;
        self.block_until(me, deadline, BlockReason::fixed("sleep"));
        debug_assert!(self.now() >= deadline);
    }

    /// Record a labeled event: into the string trace (no-op unless
    /// tracing enabled) and, when observability recording is on, as a
    /// typed [`snapify_obs::Event::Instant`]. The string trace is the
    /// back-compat surface; new code should prefer `obs::span!`.
    ///
    /// When both the string trace and obs recording are off this is two
    /// relaxed atomic loads — no lock, no allocation.
    pub fn trace_event(&self, label: &str) {
        // Forward to the typed layer first: the observability clock reads
        // `Kernel::now()` (a lock-free load).
        if snapify_obs::is_enabled() {
            snapify_obs::instant(label);
        }
        if !self.inner.trace_on.load(Ordering::Relaxed) {
            return;
        }
        let me = CTX
            .with(|c| c.borrow().as_ref().map(|(_, t)| *t))
            .unwrap_or(0);
        let mut s = self.inner.sched.lock().unwrap();
        trace(&mut s, me, label);
    }

    /// Number of live (unfinished) simulated threads.
    pub fn live_threads(&self) -> usize {
        self.inner.sched.lock().unwrap().live
    }

    /// Release the scheduler lock and park on our own slot until granted.
    fn park(&self, s: MutexGuard<'_, Sched>, me: Tid) {
        let slot = Arc::clone(&s.info(me).slot);
        drop(s);
        slot.wait();
    }

    /// Select the next runnable thread, advance the clock, and grant it the
    /// token (waking exactly one OS thread, via its private slot). Must be
    /// called with no thread currently granted.
    fn dispatch(&self, s: &mut Sched) {
        debug_assert!(s.running.is_none());
        let next = match s.policy {
            SchedPolicy::Fifo => pop_valid(s),
            SchedPolicy::Random(_) => pop_random_tie(s),
        };
        match next {
            Picked::Run(t, tid) => {
                debug_assert!(t >= s.now, "time went backwards");
                if t > s.now {
                    s.same_time_streak = 0;
                } else {
                    s.same_time_streak += 1;
                    if let Some(limit) = s.livelock_threshold {
                        if s.same_time_streak >= limit {
                            s.failure = Some(livelock_dump(s, limit));
                            s.done = true;
                            self.shutdown_all(s);
                            return;
                        }
                    }
                }
                s.now = s.now.max(t);
                self.inner.now_ns.store(s.now.as_nanos(), Ordering::Relaxed);
                s.running = Some(tid);
                let info = s.info_mut(tid);
                info.state = TState::Running;
                info.block_kind = "";
                info.block_suffix = "";
                info.block_deadline = None;
                info.slot.grant();
            }
            Picked::Horizon(t) => {
                // The earliest pending event is at or past the safe
                // horizon: park this domain at the window barrier. The
                // entry stays queued with its original ordering keys,
                // so resuming with a larger horizon replays exactly the
                // schedule an unbounded run would have produced.
                s.paused = true;
                s.paused_next = Some(t);
                self.inner.driver_cv.notify_all();
            }
            Picked::Empty => {
                if s.live == 0 {
                    s.done = true;
                } else if s.bounded {
                    // Not yet a deadlock: a cross-domain delivery may
                    // arrive at the next window barrier. The coordinator
                    // escalates when every domain stalls with nothing
                    // in flight (see `crate::domain`).
                    s.paused = true;
                    s.paused_next = None;
                    self.inner.driver_cv.notify_all();
                    return;
                } else {
                    s.failure = Some(deadlock_dump(s));
                    s.done = true;
                }
                self.shutdown_all(s);
            }
        }
    }

    /// Park every simulated thread forever and wake the driver.
    fn shutdown_all(&self, s: &mut Sched) {
        s.shutdown = true;
        for info in &s.threads {
            if info.state != TState::Finished {
                info.slot.shutdown();
            }
        }
        self.inner.driver_cv.notify_all();
    }

    /// Exit protocol for a finishing simulated thread.
    fn thread_exit(&self, me: Tid, daemon: bool, panic_msg: Option<String>) {
        let mut s = self.inner.sched.lock().unwrap();
        debug_assert_eq!(s.running, Some(me));
        s.running = None;
        if !daemon {
            s.live -= 1;
        }
        let joiners = {
            let info = s.info_mut(me);
            info.state = TState::Finished;
            std::mem::take(&mut info.joiners)
        };
        trace(&mut s, me, "exit");
        for j in joiners {
            let (now, seq) = (s.now, s.seq);
            s.seq += 1;
            let info = s.info_mut(j);
            debug_assert_eq!(info.state, TState::Blocked);
            info.state = TState::Runnable;
            info.generation += 1;
            let generation = info.generation;
            s.runq.push(Reverse((now, seq, j, generation)));
        }
        if let Some(msg) = panic_msg {
            let name = s.info(me).name.clone();
            s.failure
                .get_or_insert_with(|| format!("thread '{name}' panicked: {msg}"));
            s.done = true;
            self.shutdown_all(&mut s);
        } else if !daemon && s.live == 0 {
            // Last non-daemon thread finished: the simulation is complete.
            // Remaining daemon (service) threads are parked via shutdown.
            s.done = true;
            self.shutdown_all(&mut s);
        } else if !s.shutdown {
            self.dispatch(&mut s);
        }
        CTX.with(|c| *c.borrow_mut() = None);
    }

    /// Join on a thread: block until it finishes.
    fn join_tid(&self, target: Tid) {
        let me = current_tid();
        assert_ne!(me, target, "a simulated thread cannot join itself");
        {
            let mut s = self.inner.sched.lock().unwrap();
            let tinfo = s.info_mut(target);
            if tinfo.state == TState::Finished {
                return;
            }
            tinfo.joiners.push(me);
        }
        // Note: between releasing the lock above and blocking below, no
        // other simulated thread can run (single-token discipline), so the
        // target cannot finish in between.
        self.block(me, BlockReason::fixed("join"));
    }

    // ------------------------------------------------------------------
    // Bounded (multi-domain) stepping, used by `crate::domain`. A kernel
    // acting as one time domain never runs an event at or past the safe
    // horizon handed to `step_until`; cross-domain deliveries enter via
    // `wake_external_at` at window barriers, when no thread is running.
    // ------------------------------------------------------------------

    /// Whether `other` is a handle to the same kernel (same scheduler
    /// and clock). Used to assert that a [`crate::domain`] port is only
    /// driven from its own domain.
    pub(crate) fn same_kernel(&self, other: &Kernel) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Tag this kernel with its domain id (see `Inner::domain_tag`).
    pub(crate) fn set_domain_tag(&self, domain: u32) {
        debug_assert!(domain < 256, "domain id must fit the obs tid tag");
        self.inner.domain_tag.store(domain, Ordering::Relaxed);
    }

    /// Advance the simulation until every pending event strictly before
    /// `horizon` has executed, then pause at the window barrier. Puts
    /// the kernel in bounded mode: an empty run queue with live threads
    /// pauses (reporting `next: None`) instead of declaring a local
    /// deadlock, since a cross-domain delivery may still arrive.
    pub(crate) fn step_until(&self, horizon: SimTime) -> StepOutcome {
        let mut s = self.inner.sched.lock().unwrap();
        s.bounded = true;
        s.horizon = Some(horizon);
        if !s.done {
            debug_assert!(
                s.running.is_none(),
                "step_until while a simulated thread is running"
            );
            s.paused = false;
            s.paused_next = None;
            if s.live == 0 {
                // Same contract as `run` on a threadless kernel: daemons
                // alone do not keep a domain alive.
                s.done = true;
                self.shutdown_all(&mut s);
            } else {
                self.dispatch(&mut s);
                while !s.done && !s.paused {
                    s = self.inner.driver_cv.wait(s).unwrap();
                }
            }
        }
        if s.done {
            match s.failure.clone() {
                Some(msg) => StepOutcome::Failed(msg),
                None => StepOutcome::Done,
            }
        } else {
            StepOutcome::Paused {
                next: s.paused_next,
            }
        }
    }

    /// Wake a thread at virtual time `at` on behalf of a cross-domain
    /// delivery performed at a window barrier (no thread of this domain
    /// is running). The receiver resumes exactly at `max(now, at)`, so
    /// it can never observe a clock earlier than the message timestamp.
    /// For a thread in a timed wait, the earlier of the delivery time
    /// and its deadline wins; if the deadline is earlier the delivery
    /// does not wake it (the timeout fires first and the message stays
    /// queued for a later receive).
    pub(crate) fn wake_external_at(&self, tid: Tid, at: SimTime) {
        let mut s = self.inner.sched.lock().unwrap();
        debug_assert!(
            s.running.is_none(),
            "external wake while the domain is running"
        );
        if s.done || s.shutdown {
            return;
        }
        let t = s.now.max(at);
        let seq = s.seq;
        s.seq += 1;
        let info = s.info_mut(tid);
        match info.state {
            TState::Blocked => {
                info.state = TState::Runnable;
                info.generation += 1;
                let generation = info.generation;
                s.runq.push(Reverse((t, seq, tid, generation)));
                trace(&mut s, tid, "wake");
            }
            TState::Runnable => {
                // Timed wait (`block_until`): supersede its timer entry
                // only when the delivery lands before the deadline.
                if info.block_deadline.is_none_or(|d| t < d) {
                    info.generation += 1;
                    let generation = info.generation;
                    s.runq.push(Reverse((t, seq, tid, generation)));
                    trace(&mut s, tid, "wake");
                }
            }
            other => panic!("wake_external_at on thread {tid} in state {other:?}"),
        }
    }

    /// Earliest valid pending wake time, discarding superseded entries.
    /// Used by the multi-domain coordinator to size the next window;
    /// only meaningful while the domain is paused or not yet started.
    pub(crate) fn next_pending_time(&self) -> Option<SimTime> {
        let mut s = self.inner.sched.lock().unwrap();
        if s.done {
            return None;
        }
        loop {
            let (t, tid, generation) = match s.runq.peek() {
                Some(&Reverse((t, _, tid, g))) => (t, tid, g),
                None => return None,
            };
            let info = s.info(tid);
            if info.generation == generation && info.state == TState::Runnable {
                return Some(t);
            }
            s.runq.pop();
        }
    }

    /// Abort a paused domain from outside the simulation (e.g. the
    /// coordinator tearing down peers after another domain failed, or
    /// declaring a cross-domain deadlock). Idempotent; does nothing on
    /// a finished kernel.
    pub(crate) fn abort_external(&self, msg: &str) {
        let mut s = self.inner.sched.lock().unwrap();
        if s.done {
            return;
        }
        s.failure = Some(msg.to_string());
        s.done = true;
        self.shutdown_all(&mut s);
    }

    /// Render this domain's blocked threads in deadlock-dump format
    /// (without the header/note), for the cross-domain stall dump.
    pub(crate) fn blocked_report(&self) -> String {
        let s = self.inner.sched.lock().unwrap();
        let mut out = String::new();
        push_blocked_threads(&mut out, &s);
        out
    }
}

/// Outcome of one bounded scheduling round (see [`Kernel::step_until`]).
pub(crate) enum StepOutcome {
    /// The last non-daemon thread finished; the domain is complete.
    Done,
    /// Every event before the horizon executed; `next` is the earliest
    /// pending wake time (`None` = nothing pending in this domain).
    Paused { next: Option<SimTime> },
    /// The domain aborted (thread panic or livelock dump).
    Failed(String),
}

/// Observability timestamp source: virtual time + simulated thread id
/// of the caller, or `(0, 0)` outside a simulated thread.
fn obs_clock() -> (u64, u32) {
    CTX.with(|c| match c.borrow().as_ref() {
        Some((k, tid)) => {
            let domain = k.inner.domain_tag.load(Ordering::Relaxed);
            (k.now().as_nanos(), *tid | (domain << 24))
        }
        None => (0, 0),
    })
}

fn trace(s: &mut Sched, tid: Tid, label: &str) {
    let now = s.now;
    if let Some(tr) = s.trace.as_mut() {
        tr.push(TraceEvent {
            time: now,
            tid,
            label: label.to_string(),
        });
    }
}

/// Result of selecting the next run-queue entry under the (optional)
/// horizon bound.
enum Picked {
    /// Run this thread at this wake time.
    Run(SimTime, Tid),
    /// The earliest valid entry is at/past the horizon; it was re-queued
    /// untouched and the domain must pause at the window barrier.
    Horizon(SimTime),
    /// No valid entry pending.
    Empty,
}

/// Pop the earliest valid run-queue entry (FIFO tie-break), skipping
/// entries superseded by an early wake and stopping at the horizon.
fn pop_valid(s: &mut Sched) -> Picked {
    while let Some(Reverse((t, seq, tid, generation))) = s.runq.pop() {
        let info = s.info(tid);
        if info.generation == generation && info.state == TState::Runnable {
            if let Some(h) = s.horizon {
                if t >= h {
                    s.runq.push(Reverse((t, seq, tid, generation)));
                    return Picked::Horizon(t);
                }
            }
            return Picked::Run(t, tid);
        }
        // stale entry superseded by an early wake
    }
    Picked::Empty
}

/// Pop one valid run-queue entry at the *minimum* wake time, choosing
/// uniformly among all valid entries tied at that time with the
/// scheduler's splitmix64 state, and re-queueing the rest untouched.
/// Because only the tie-break is randomized, virtual time still
/// advances monotonically exactly as under FIFO. The horizon check
/// happens before any tie collection, so pausing at a window barrier
/// consumes no PRNG state and the resumed schedule is unchanged.
fn pop_random_tie(s: &mut Sched) -> Picked {
    let Reverse(first) = {
        // Inline pop_valid, but keep (seq, generation) so non-chosen
        // ties can be re-queued with their original ordering keys.
        loop {
            let Some(Reverse(e)) = s.runq.pop() else {
                return Picked::Empty;
            };
            let info = s.info(e.2);
            if info.generation == e.3 && info.state == TState::Runnable {
                break Reverse(e);
            }
        }
    };
    if let Some(h) = s.horizon {
        if first.0 >= h {
            let t = first.0;
            s.runq.push(Reverse(first));
            return Picked::Horizon(t);
        }
    }
    let t0 = first.0;
    let mut ties = vec![first];
    while let Some(&Reverse((t, ..))) = s.runq.peek() {
        if t != t0 {
            break;
        }
        let Reverse(e) = s.runq.pop().unwrap();
        let info = s.info(e.2);
        if info.generation == e.3 && info.state == TState::Runnable {
            ties.push(e);
        }
    }
    let idx = if ties.len() == 1 {
        0
    } else {
        (splitmix64(&mut s.rng) % ties.len() as u64) as usize
    };
    let chosen = ties.swap_remove(idx);
    for e in ties {
        s.runq.push(Reverse(e));
    }
    Picked::Run(chosen.0, chosen.2)
}

fn deadlock_dump(s: &Sched) -> String {
    let mut out = format!(
        "deadlock at {}: {} live thread(s) blocked with no pending wake-up:\n",
        s.now, s.live
    );
    push_blocked_threads(&mut out, s);
    push_dump_note(&mut out, s);
    out
}

/// Append one line per blocked thread (shared between the local
/// deadlock dump and the cross-domain stall dump in `crate::domain`).
fn push_blocked_threads(out: &mut String, s: &Sched) {
    for (i, info) in s.threads.iter().enumerate() {
        if info.state != TState::Blocked {
            continue;
        }
        let deadline = match info.block_deadline {
            Some(d) => format!(" (until {d})"),
            None => String::new(),
        };
        out.push_str(&format!(
            "  [{}] '{}'{} parked for {} blocked on: {}{}\n",
            i + 1,
            info.name,
            if info.daemon { " (daemon)" } else { "" },
            s.now.since(info.block_since),
            info.reason(),
            deadline,
        ));
    }
}

/// Like [`deadlock_dump`], but for the complementary failure: the run
/// queue never empties, yet virtual time stops advancing (threads
/// hand the token around at a frozen clock — e.g. a retry loop that
/// yields instead of backing off).
fn livelock_dump(s: &Sched, limit: u64) -> String {
    let mut out = format!(
        "livelock at {}: {limit} consecutive dispatches without virtual-time progress (policy {:?}); runnable/running threads:\n",
        s.now, s.policy
    );
    for (i, info) in s.threads.iter().enumerate() {
        if !matches!(info.state, TState::Runnable | TState::Running) {
            continue;
        }
        out.push_str(&format!(
            "  [{}] '{}'{} {:?} since {}\n",
            i + 1,
            info.name,
            if info.daemon { " (daemon)" } else { "" },
            info.state,
            info.block_since,
        ));
    }
    push_dump_note(&mut out, s);
    out
}

fn push_dump_note(out: &mut String, s: &Sched) {
    if let Some(note) = &s.dump_note {
        out.push_str("  context: ");
        out.push_str(note);
        out.push('\n');
    }
    push_flight_tail(out);
}

/// Append the observability flight-recorder tail (the last events that
/// led up to the failure) so every deadlock/livelock dump doubles as a
/// black-box recording. Empty (and silent) when recording is off.
pub(crate) fn push_flight_tail(out: &mut String) {
    let tail = snapify_obs::flight_tail(32);
    if !tail.is_empty() {
        out.push_str("  ");
        out.push_str(&tail.replace('\n', "\n  "));
        // replace() leaves two trailing spaces after the final newline.
        while out.ends_with(' ') {
            out.pop();
        }
    }
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Handle returned by [`Kernel::spawn`]; allows joining the thread and
/// retrieving its result.
pub struct JoinHandle<T> {
    kernel: Kernel,
    tid: Tid,
    name: String,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// The simulated thread id.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// The thread's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Block the calling *simulated* thread until the target finishes, then
    /// return its result.
    pub fn join(self) -> T {
        self.kernel.join_tid(self.tid);
        self.take_result()
            .expect("joined thread produced no result (panicked?)")
    }

    /// Retrieve the result without joining (for use after [`Kernel::run`]
    /// returned). Returns `None` if the thread has not finished or panicked.
    pub fn take_result(&self) -> Option<T> {
        self.result.lock().unwrap().take()
    }
}

// ---------------------------------------------------------------------
// Free-function conveniences for use inside simulated threads.
// ---------------------------------------------------------------------

/// Current virtual time (callable only from a simulated thread).
pub fn now() -> SimTime {
    with_current(|k, _| k.now())
}

/// Sleep for `d` of virtual time (callable only from a simulated thread).
pub fn sleep(d: SimDuration) {
    let (k, _) = current();
    k.sleep(d);
}

/// Yield the token to other threads runnable at the current time.
pub fn yield_now() {
    let (k, _) = current();
    k.yield_now();
}

/// Spawn a simulated thread from within a simulated thread.
pub fn spawn<T, F>(name: impl Into<String>, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (k, _) = current();
    k.spawn(name, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{ms, secs};

    #[test]
    fn empty_simulation_completes() {
        let k = Kernel::new();
        k.run();
        assert_eq!(k.now(), SimTime::ZERO);
    }

    #[test]
    fn single_thread_sleep_advances_clock() {
        let k = Kernel::new();
        k.spawn("a", || {
            sleep(ms(10));
            sleep(ms(5));
        });
        k.run();
        assert_eq!(k.now(), SimTime::ZERO + ms(15));
    }

    #[test]
    fn run_root_returns_value() {
        let v = Kernel::run_root(|| {
            sleep(ms(1));
            42
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn two_threads_interleave_by_time() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let k = Kernel::new();
        let o1 = Arc::clone(&order);
        k.spawn("a", move || {
            sleep(ms(10));
            o1.lock().unwrap().push(("a", now()));
        });
        let o2 = Arc::clone(&order);
        k.spawn("b", move || {
            sleep(ms(5));
            o2.lock().unwrap().push(("b", now()));
        });
        k.run();
        let order = order.lock().unwrap();
        assert_eq!(order[0].0, "b");
        assert_eq!(order[1].0, "a");
        assert_eq!(order[0].1, SimTime::ZERO + ms(5));
        assert_eq!(order[1].1, SimTime::ZERO + ms(10));
    }

    #[test]
    fn spawn_order_breaks_ties_deterministically() {
        for _ in 0..10 {
            let order = Arc::new(Mutex::new(Vec::new()));
            let k = Kernel::new();
            for i in 0..5 {
                let o = Arc::clone(&order);
                k.spawn(format!("t{i}"), move || {
                    o.lock().unwrap().push(i);
                });
            }
            k.run();
            assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn join_returns_value_and_waits() {
        let v = Kernel::run_root(|| {
            let h = spawn("child", || {
                sleep(secs(3));
                "done"
            });
            let r = h.join();
            assert_eq!(now(), SimTime::ZERO + secs(3));
            r
        });
        assert_eq!(v, "done");
    }

    #[test]
    fn join_finished_thread_is_immediate() {
        Kernel::run_root(|| {
            let h = spawn("child", || 7);
            sleep(ms(100)); // child certainly finished (it never blocks)
            assert_eq!(h.join(), 7);
            assert_eq!(now(), SimTime::ZERO + ms(100));
        });
    }

    #[test]
    #[should_panic(expected = "simulation failed")]
    fn panic_in_thread_propagates() {
        let k = Kernel::new();
        k.spawn("bad", || panic!("boom"));
        k.run();
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let k = Kernel::new();
        let k2 = k.clone();
        k.spawn("stuck", move || {
            let (_, me) = current();
            k2.block(me, BlockReason::fixed("waiting for godot"));
        });
        k.run();
    }

    #[test]
    fn deadlock_dump_reports_time_and_parked_duration() {
        let k = Kernel::new();
        let k2 = k.clone();
        k.spawn("stuck", move || {
            sleep(ms(7));
            let (_, me) = current();
            k2.block(me, BlockReason::named("mutex", "godot"));
        });
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| k.run()))
            .expect_err("deadlock must abort the run");
        let msg = payload_to_string(err.as_ref());
        assert!(msg.contains("deadlock at t+7.000ms"), "{msg}");
        assert!(msg.contains("parked for 0ns"), "{msg}");
        assert!(msg.contains("mutex 'godot'"), "{msg}");
    }

    #[test]
    fn yield_now_round_robins_same_time() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let k = Kernel::new();
        for i in 0..3 {
            let o = Arc::clone(&order);
            k.spawn(format!("t{i}"), move || {
                for _ in 0..2 {
                    o.lock().unwrap().push(i);
                    yield_now();
                }
            });
        }
        k.run();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(k.now(), SimTime::ZERO);
    }

    #[test]
    fn trace_is_deterministic() {
        let run = || {
            let k = Kernel::new();
            k.enable_trace();
            for i in 0..4 {
                k.spawn(format!("t{i}"), move || {
                    sleep(ms(i as u64 * 3 % 7));
                    sleep(ms(2));
                });
            }
            k.run();
            (k.trace_len(), k.trace_digest(), k.trace())
        };
        let (n1, d1, t1) = run();
        let (n2, d2, t2) = run();
        assert!(!t1.is_empty());
        assert_eq!(t1, t2);
        assert_eq!((n1, d1), (n2, d2));
        assert_eq!(n1, t1.len());
    }

    #[test]
    fn trace_digest_detects_divergence() {
        let run = |extra: bool| {
            let k = Kernel::new();
            k.enable_trace();
            k.spawn("t", move || {
                sleep(ms(1));
                if extra {
                    sleep(ms(1));
                }
            });
            k.run();
            k.trace_digest()
        };
        assert_ne!(run(false), run(true));
    }

    #[test]
    fn nested_spawn_inherits_clock() {
        Kernel::run_root(|| {
            sleep(ms(7));
            let h = spawn("child", now);
            let child_start = h.join();
            assert_eq!(child_start, SimTime::ZERO + ms(7));
        });
    }

    #[test]
    fn early_wake_supersedes_timer() {
        // A thread in block_until is woken early by make_runnable; the stale
        // timer entry must not wake it a second time.
        Kernel::run_root(|| {
            let (k, _) = current();
            let h = spawn("sleeper", || {
                let (k, me) = current();

                k.block_until(me, now() + secs(100), BlockReason::fixed("long wait"))
            });
            sleep(ms(50));
            let (k2, _) = current();
            k2.make_runnable(h.tid());
            let woke_at = h.join();
            assert_eq!(woke_at, SimTime::ZERO + ms(50));
            // Let the (stale) 100s timer entry surface: it should be skipped
            // and not panic / not advance the clock.
            sleep(ms(1));
            assert_eq!(k.now(), SimTime::ZERO + ms(51));
        });
    }

    #[test]
    fn live_threads_counts() {
        let k = Kernel::new();
        let k2 = k.clone();
        k.spawn("a", move || {
            assert!(k2.live_threads() >= 1);
            sleep(ms(1));
        });
        k.run();
        assert_eq!(k.live_threads(), 0);
    }

    #[test]
    fn many_threads_scale() {
        let k = Kernel::new();
        let counter = Arc::new(Mutex::new(0u64));
        for i in 0..200 {
            let c = Arc::clone(&counter);
            k.spawn(format!("w{i}"), move || {
                sleep(ms(i % 13));
                *c.lock().unwrap() += 1;
            });
        }
        k.run();
        assert_eq!(*counter.lock().unwrap(), 200);
    }

    /// Trace fingerprint of a tie-heavy scenario under a given policy.
    fn tie_heavy_run(policy: SchedPolicy) -> (usize, u64, Vec<u32>) {
        let k = Kernel::new_with_policy(policy);
        k.enable_trace();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..6u32 {
            let o = Arc::clone(&order);
            k.spawn(format!("t{i}"), move || {
                for _ in 0..4 {
                    o.lock().unwrap().push(i);
                    yield_now();
                }
                sleep(ms(1));
                o.lock().unwrap().push(100 + i);
            });
        }
        k.run();
        let order = std::mem::take(&mut *order.lock().unwrap());
        (k.trace_len(), k.trace_digest(), order)
    }

    #[test]
    fn random_policy_same_seed_is_deterministic() {
        let a = tie_heavy_run(SchedPolicy::Random(42));
        let b = tie_heavy_run(SchedPolicy::Random(42));
        assert_eq!(a, b, "same seed must replay the exact interleaving");
    }

    #[test]
    fn random_policy_seeds_explore_different_interleavings() {
        // Not every seed pair diverges in principle, but across 8 seeds a
        // tie-heavy scenario must not collapse to a single schedule.
        let orders: std::collections::HashSet<Vec<u32>> = (0..8u64)
            .map(|seed| tie_heavy_run(SchedPolicy::Random(seed)).2)
            .collect();
        assert!(
            orders.len() > 1,
            "8 seeds produced a single interleaving — Random policy is not randomizing"
        );
        let fifo = tie_heavy_run(SchedPolicy::Fifo);
        assert_eq!(
            fifo,
            tie_heavy_run(SchedPolicy::Fifo),
            "FIFO must stay deterministic"
        );
    }

    #[test]
    fn random_policy_preserves_virtual_timings() {
        // Randomizing only the tie-break must not change clock advance.
        for seed in 0..4u64 {
            let k = Kernel::new_with_policy(SchedPolicy::Random(seed));
            for i in 0..5u64 {
                k.spawn(format!("t{i}"), move || {
                    sleep(ms(10));
                    sleep(ms(i));
                });
            }
            k.run();
            assert_eq!(k.now(), SimTime::ZERO + ms(14));
        }
    }

    #[test]
    fn livelock_is_detected_and_reports_note() {
        let k = Kernel::new_with_policy(SchedPolicy::Random(7));
        k.set_livelock_threshold(Some(500));
        k.set_dump_note("faults=[t+1ms bus0 error]");
        for i in 0..2 {
            k.spawn(format!("spin{i}"), || loop {
                yield_now();
            });
        }
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| k.run()))
            .expect_err("livelock must abort the run");
        let msg = payload_to_string(err.as_ref());
        assert!(msg.contains("livelock at t+0ns"), "{msg}");
        assert!(msg.contains("500 consecutive dispatches"), "{msg}");
        assert!(msg.contains("context: faults=[t+1ms bus0 error]"), "{msg}");
    }

    #[test]
    fn livelock_threshold_tolerates_progressing_runs() {
        // A run that yields a lot but keeps advancing time never trips.
        let k = Kernel::new_with_policy(SchedPolicy::Random(3));
        k.set_livelock_threshold(Some(16));
        for i in 0..4 {
            k.spawn(format!("t{i}"), || {
                for _ in 0..100 {
                    yield_now();
                    sleep(crate::time::us(1));
                }
            });
        }
        k.run();
        assert!(k.now() > SimTime::ZERO);
    }

    #[test]
    fn deadlock_dump_includes_note_when_set() {
        let k = Kernel::new();
        k.set_dump_note("schedule=S1");
        let k2 = k.clone();
        k.spawn("stuck", move || {
            let (_, me) = current();
            k2.block(me, BlockReason::fixed("waiting"));
        });
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| k.run()))
            .expect_err("deadlock must abort the run");
        let msg = payload_to_string(err.as_ref());
        assert!(msg.contains("context: schedule=S1"), "{msg}");
    }

    #[test]
    fn deadlock_dump_includes_flight_recorder_tail() {
        let k = Kernel::new();
        snapify_obs::enable();
        let k2 = k.clone();
        k.spawn("stuck", move || {
            snapify_obs::instant("last breadcrumb before hang");
            let (_, me) = current();
            k2.block(me, BlockReason::fixed("waiting"));
        });
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| k.run()))
            .expect_err("deadlock must abort the run");
        snapify_obs::disable();
        let msg = payload_to_string(err.as_ref());
        assert!(msg.contains("flight recorder (last"), "{msg}");
        assert!(msg.contains("last breadcrumb before hang"), "{msg}");
    }

    #[test]
    fn block_reason_renders_like_the_legacy_strings() {
        assert_eq!(BlockReason::fixed("sleep").to_string(), "sleep");
        assert_eq!(BlockReason::named("mutex", "m").to_string(), "mutex 'm'");
        assert_eq!(
            BlockReason::named_with("channel", "c", " empty").to_string(),
            "channel 'c' empty"
        );
    }
}
