//! The cooperative virtual-time scheduler.
//!
//! # Execution model
//!
//! Every *simulated thread* is a real OS thread, but **exactly one simulated
//! thread executes at any moment**. A single "token" is handed from thread to
//! thread by the scheduler: a thread runs until it performs a blocking
//! simulation operation (sleep, lock acquisition, channel receive, join, …),
//! at which point it selects the next runnable thread — the one with the
//! earliest pending wake-up time — advances the virtual clock to that time,
//! grants it the token, and parks itself.
//!
//! This "single token" discipline has two important consequences that the
//! rest of the workspace relies on:
//!
//! 1. **Determinism.** Wake-ups are ordered by `(virtual time, sequence
//!    number)`, and sequence numbers are assigned in program order, so the
//!    whole simulation is a deterministic function of its inputs. Running the
//!    same scenario twice produces an identical event trace (see
//!    [`Kernel::trace`]), which makes "checkpoint at a random virtual time"
//!    a reproducible property test rather than a flaky stress test.
//!
//! 2. **No data races between simulated threads.** Because only one
//!    simulated thread runs at a time, the internal bookkeeping of the
//!    higher-level primitives ([`crate::sync`], [`crate::channel`]) only
//!    needs uncontended `std::sync::Mutex`es; a simulated thread never
//!    blocks on a *real* lock held by another simulated thread.
//!
//! # Deadlock detection
//!
//! If every live simulated thread is blocked and no timed wake-up is
//! pending, the simulation cannot make progress. The kernel detects this,
//! aborts the run, and panics in [`Kernel::run`] with a dump of every
//! blocked thread and the reason it blocked. This turns protocol bugs (e.g.
//! an incorrect drain order in Snapify's pause) into crisp test failures.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use crate::time::{SimDuration, SimTime};

/// Identifier of a simulated thread.
pub type Tid = u32;

/// An entry in the deterministic event trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub time: SimTime,
    /// Thread the event concerns.
    pub tid: Tid,
    /// Human-readable event label (e.g. `"spawn"`, `"block: sleep"`).
    pub label: String,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// Queued in the run queue (possibly with a future wake-up time).
    Runnable,
    /// Currently holds the token.
    Running,
    /// Waiting on a primitive; not in the run queue.
    Blocked,
    /// The thread's closure has returned.
    Finished,
}

struct ThreadInfo {
    name: String,
    state: TState,
    /// Daemon threads (service loops) do not keep the simulation alive:
    /// the run ends when the last non-daemon thread finishes.
    daemon: bool,
    /// Why the thread is blocked (for deadlock dumps).
    block_reason: String,
    /// Threads waiting in `join()` on this thread.
    joiners: Vec<Tid>,
    /// Generation counter: incremented every time the thread blocks, so
    /// stale run-queue entries (from cancelled timed waits) can be skipped.
    generation: u64,
}

struct Sched {
    now: SimTime,
    seq: u64,
    next_tid: Tid,
    /// Min-heap of `(wake time, sequence, tid, generation)`.
    runq: BinaryHeap<Reverse<(SimTime, u64, Tid, u64)>>,
    threads: HashMap<Tid, ThreadInfo>,
    /// The thread that currently may run (token holder-elect).
    granted: Option<Tid>,
    live: usize,
    done: bool,
    shutdown: bool,
    failure: Option<String>,
    trace: Option<Vec<TraceEvent>>,
    spawned_os: Vec<(thread::JoinHandle<()>, bool)>,
}

struct Inner {
    sched: Mutex<Sched>,
    /// Simulated threads park here waiting for their grant.
    cv: Condvar,
    /// The driver of `Kernel::run` parks here waiting for completion.
    driver_cv: Condvar,
}

/// Handle to a simulation kernel. Cheap to clone; all clones refer to the
/// same virtual clock and scheduler.
#[derive(Clone)]
pub struct Kernel {
    inner: Arc<Inner>,
}

thread_local! {
    static CTX: RefCell<Option<(Kernel, Tid)>> = const { RefCell::new(None) };
}

/// Returns the kernel and thread id of the calling simulated thread.
///
/// # Panics
/// Panics if called from outside a simulated thread.
pub fn current() -> (Kernel, Tid) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("not inside a simulated thread: simkernel primitives may only be used from threads spawned via Kernel::spawn")
    })
}

/// Returns `true` if the calling OS thread is a simulated thread.
pub fn in_simulation() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.inner.sched.lock().unwrap();
        f.debug_struct("Kernel")
            .field("now", &s.now)
            .field("live", &s.live)
            .finish()
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Create a new kernel with the clock at `t = 0` and no threads.
    pub fn new() -> Kernel {
        // Register the virtual clock as the observability timestamp
        // source (idempotent; first installation wins process-wide).
        snapify_obs::install_clock(obs_clock);
        Kernel {
            inner: Arc::new(Inner {
                sched: Mutex::new(Sched {
                    now: SimTime::ZERO,
                    seq: 0,
                    next_tid: 1,
                    runq: BinaryHeap::new(),
                    threads: HashMap::new(),
                    granted: None,
                    live: 0,
                    done: false,
                    shutdown: false,
                    failure: None,
                    trace: None,
                    spawned_os: Vec::new(),
                }),
                cv: Condvar::new(),
                driver_cv: Condvar::new(),
            }),
        }
    }

    /// Enable event tracing. Must be called before [`Kernel::run`].
    pub fn enable_trace(&self) {
        let mut s = self.inner.sched.lock().unwrap();
        if s.trace.is_none() {
            s.trace = Some(Vec::new());
        }
    }

    /// Take the recorded event trace (empty unless [`Kernel::enable_trace`]
    /// was called).
    pub fn trace(&self) -> Vec<TraceEvent> {
        let mut s = self.inner.sched.lock().unwrap();
        s.trace.take().unwrap_or_default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.sched.lock().unwrap().now
    }

    /// Spawn a simulated thread. The thread becomes runnable at the current
    /// virtual time; it does not run until the spawner blocks (or, before
    /// [`Kernel::run`], until the simulation starts).
    pub fn spawn<T, F>(&self, name: impl Into<String>, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.spawn_inner(name, f, false)
    }

    /// Spawn a *daemon* (service) thread: a loop that serves others and
    /// blocks indefinitely. Daemon threads do not keep the simulation
    /// alive — when the last non-daemon thread finishes, the run completes
    /// and remaining daemons are parked.
    pub fn spawn_daemon<T, F>(&self, name: impl Into<String>, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.spawn_inner(name, f, true)
    }

    fn spawn_inner<T, F>(&self, name: impl Into<String>, f: F, daemon: bool) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let name = name.into();
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let result2 = Arc::clone(&result);
        let kernel = self.clone();

        let tid = {
            let mut s = self.inner.sched.lock().unwrap();
            assert!(!s.done, "cannot spawn after the simulation finished");
            let tid = s.next_tid;
            s.next_tid += 1;
            s.threads.insert(
                tid,
                ThreadInfo {
                    name: name.clone(),
                    state: TState::Runnable,
                    daemon,
                    block_reason: String::new(),
                    joiners: Vec::new(),
                    generation: 0,
                },
            );
            if !daemon {
                s.live += 1;
            }
            let (now, seq) = (s.now, s.seq);
            s.seq += 1;
            s.runq.push(Reverse((now, seq, tid, 0)));
            trace(&mut s, tid, "spawn");
            tid
        };

        let os = thread::Builder::new()
            .name(format!("sim-{tid}-{name}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((kernel.clone(), tid)));
                // Park until granted for the first time.
                kernel.wait_for_grant(tid);
                let out = panic::catch_unwind(AssertUnwindSafe(f));
                match out {
                    Ok(v) => {
                        *result2.lock().unwrap() = Some(v);
                        kernel.thread_exit(tid, daemon, None);
                    }
                    Err(payload) => {
                        let msg = payload_to_string(payload.as_ref());
                        kernel.thread_exit(tid, daemon, Some(msg));
                    }
                }
            })
            .expect("failed to spawn OS thread for simulated thread");

        self.inner
            .sched
            .lock()
            .unwrap()
            .spawned_os
            .push((os, daemon));

        JoinHandle {
            kernel: self.clone(),
            tid,
            name,
            result,
        }
    }

    /// Run the simulation to completion. Blocks the calling (real) thread
    /// until every simulated thread has finished.
    ///
    /// # Panics
    /// Panics if any simulated thread panicked, or if the simulation
    /// deadlocked (every live thread blocked with no pending wake-up).
    pub fn run(&self) {
        let mut s = self.inner.sched.lock().unwrap();
        assert!(s.granted.is_none(), "Kernel::run called re-entrantly");
        if s.live == 0 {
            s.done = true;
        } else {
            self.dispatch(&mut s);
        }
        while !s.done {
            s = self.inner.driver_cv.wait(s).unwrap();
        }
        let failure = s.failure.clone();
        let handles = std::mem::take(&mut s.spawned_os);
        drop(s);
        if let Some(msg) = failure {
            // Aborted simulation: surviving simulated threads are parked
            // forever (see `wait_for_grant`), so they cannot be joined.
            // Unwinding them instead would run user destructors concurrently
            // against a dead scheduler.
            panic!("simulation failed: {msg}");
        }
        for (h, daemon) in handles {
            // Daemon threads may be parked forever (shutdown at completion);
            // only non-daemon threads are guaranteed to have exited.
            if !daemon {
                let _ = h.join();
            }
        }
    }

    /// Convenience: create a kernel, run `f` as the root simulated thread,
    /// and return its result.
    pub fn run_root<T, F>(f: F) -> T
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let kernel = Kernel::new();
        let h = kernel.spawn("root", f);
        kernel.run();
        h.take_result().expect("root thread produced no result")
    }

    // ------------------------------------------------------------------
    // Scheduling internals (used by sync/channel/resource modules).
    // ------------------------------------------------------------------

    /// Block the calling simulated thread until another thread makes it
    /// runnable via [`Kernel::make_runnable`]. `reason` appears in deadlock
    /// dumps.
    pub(crate) fn block(&self, me: Tid, reason: &str) {
        let mut s = self.inner.sched.lock().unwrap();
        {
            let info = s.threads.get_mut(&me).expect("unknown tid");
            debug_assert_eq!(info.state, TState::Running);
            info.state = TState::Blocked;
            info.block_reason = reason.to_string();
            info.generation += 1;
        }
        trace(&mut s, me, &format!("block: {reason}"));
        self.dispatch(&mut s);
        drop(s);
        self.wait_for_grant(me);
    }

    /// Block the calling simulated thread until virtual time `deadline`
    /// *or* until another thread makes it runnable earlier, whichever comes
    /// first. Returns the wake-up time.
    pub(crate) fn block_until(&self, me: Tid, deadline: SimTime, reason: &str) -> SimTime {
        let mut s = self.inner.sched.lock().unwrap();
        {
            let seq = s.seq;
            s.seq += 1;
            let info = s.threads.get_mut(&me).expect("unknown tid");
            debug_assert_eq!(info.state, TState::Running);
            info.state = TState::Runnable;
            info.block_reason = format!("{reason} (until {deadline})");
            info.generation += 1;
            let generation = info.generation;
            s.runq.push(Reverse((deadline, seq, me, generation)));
        }
        trace(&mut s, me, &format!("block_until: {reason}"));
        self.dispatch(&mut s);
        drop(s);
        self.wait_for_grant(me);
        self.now()
    }

    /// Make `tid` runnable at the current virtual time. Panics if the
    /// thread is not blocked (waking a runnable/running thread indicates a
    /// bookkeeping bug in a primitive).
    pub(crate) fn make_runnable(&self, tid: Tid) {
        let mut s = self.inner.sched.lock().unwrap();
        let (now, seq) = (s.now, s.seq);
        s.seq += 1;
        let info = s.threads.get_mut(&tid).expect("unknown tid");
        match info.state {
            TState::Blocked => {
                info.state = TState::Runnable;
                info.generation += 1;
                let generation = info.generation;
                s.runq.push(Reverse((now, seq, tid, generation)));
            }
            TState::Runnable => {
                // The thread is in a timed wait (`block_until`) and is being
                // woken early: supersede the timer entry via the generation
                // counter.
                info.generation += 1;
                let generation = info.generation;
                s.runq.push(Reverse((now, seq, tid, generation)));
            }
            other => panic!("make_runnable on thread {tid} in state {other:?}"),
        }
        trace(&mut s, tid, "wake");
    }

    /// Yield the token: stay runnable at the current time but let any other
    /// thread scheduled for the current time run first.
    pub fn yield_now(&self) {
        let (_, me) = current();
        let now = self.now();
        self.block_until(me, now, "yield");
    }

    /// Advance virtual time by `d` for the calling simulated thread.
    pub fn sleep(&self, d: SimDuration) {
        let (_, me) = current();
        let deadline = self.now() + d;
        self.block_until(me, deadline, "sleep");
        debug_assert!(self.now() >= deadline);
    }

    /// Record a labeled event: into the string trace (no-op unless
    /// tracing enabled) and, when observability recording is on, as a
    /// typed [`snapify_obs::Event::Instant`]. The string trace is the
    /// back-compat surface; new code should prefer `obs::span!`.
    pub fn trace_event(&self, label: &str) {
        // Forward to the typed layer *before* taking the scheduler lock:
        // the observability clock reads `Kernel::now()`, which needs it.
        snapify_obs::instant(label);
        let me = CTX
            .with(|c| c.borrow().as_ref().map(|(_, t)| *t))
            .unwrap_or(0);
        let mut s = self.inner.sched.lock().unwrap();
        trace(&mut s, me, label);
    }

    /// Number of live (unfinished) simulated threads.
    pub fn live_threads(&self) -> usize {
        self.inner.sched.lock().unwrap().live
    }

    fn wait_for_grant(&self, me: Tid) {
        let mut s = self.inner.sched.lock().unwrap();
        loop {
            if s.shutdown {
                // The simulation was aborted (panic or deadlock elsewhere).
                // Park this OS thread forever: unwinding through arbitrary
                // user code here would run destructors (which may touch the
                // scheduler) concurrently with other aborting threads.
                drop(s);
                loop {
                    thread::park();
                }
            }
            if s.granted == Some(me) {
                s.granted = None;
                let info = s.threads.get_mut(&me).unwrap();
                info.state = TState::Running;
                info.block_reason.clear();
                return;
            }
            s = self.inner.cv.wait(s).unwrap();
        }
    }

    /// Select the next runnable thread, advance the clock, and grant it the
    /// token. Must be called with no thread currently granted.
    fn dispatch(&self, s: &mut Sched) {
        debug_assert!(s.granted.is_none());
        loop {
            match s.runq.pop() {
                Some(Reverse((t, _seq, tid, generation))) => {
                    let info = match s.threads.get(&tid) {
                        Some(i) => i,
                        None => continue, // thread already finished
                    };
                    if info.generation != generation || info.state != TState::Runnable {
                        continue; // stale entry superseded by an early wake
                    }
                    debug_assert!(t >= s.now, "time went backwards");
                    s.now = s.now.max(t);
                    s.granted = Some(tid);
                    self.inner.cv.notify_all();
                    return;
                }
                None => {
                    if s.live == 0 {
                        s.done = true;
                        s.shutdown = true;
                        self.inner.cv.notify_all();
                        self.inner.driver_cv.notify_all();
                    } else {
                        let dump = deadlock_dump(s);
                        s.failure = Some(dump);
                        s.shutdown = true;
                        s.done = true;
                        self.inner.cv.notify_all();
                        self.inner.driver_cv.notify_all();
                    }
                    return;
                }
            }
        }
    }

    /// Exit protocol for a finishing simulated thread.
    fn thread_exit(&self, me: Tid, daemon: bool, panic_msg: Option<String>) {
        let mut s = self.inner.sched.lock().unwrap();
        if !daemon {
            s.live -= 1;
        }
        let joiners = {
            let info = s.threads.get_mut(&me).expect("unknown tid");
            info.state = TState::Finished;
            std::mem::take(&mut info.joiners)
        };
        trace(&mut s, me, "exit");
        for j in joiners {
            let (now, seq) = (s.now, s.seq);
            s.seq += 1;
            let info = s.threads.get_mut(&j).unwrap();
            debug_assert_eq!(info.state, TState::Blocked);
            info.state = TState::Runnable;
            info.generation += 1;
            let generation = info.generation;
            s.runq.push(Reverse((now, seq, j, generation)));
        }
        if let Some(msg) = panic_msg {
            let name = s.threads[&me].name.clone();
            s.failure
                .get_or_insert_with(|| format!("thread '{name}' panicked: {msg}"));
            s.shutdown = true;
            s.done = true;
            self.inner.cv.notify_all();
            self.inner.driver_cv.notify_all();
        } else if !daemon && s.live == 0 {
            // Last non-daemon thread finished: the simulation is complete.
            // Remaining daemon (service) threads are parked via shutdown.
            s.done = true;
            s.shutdown = true;
            self.inner.cv.notify_all();
            self.inner.driver_cv.notify_all();
        } else if !s.shutdown {
            self.dispatch(&mut s);
        }
        CTX.with(|c| *c.borrow_mut() = None);
    }

    /// Join on a thread: block until it finishes.
    fn join_tid(&self, target: Tid) {
        let (_, me) = current();
        assert_ne!(me, target, "a simulated thread cannot join itself");
        {
            let mut s = self.inner.sched.lock().unwrap();
            let tinfo = s.threads.get_mut(&target).expect("unknown join target");
            if tinfo.state == TState::Finished {
                return;
            }
            tinfo.joiners.push(me);
        }
        // Note: between releasing the lock above and blocking below, no
        // other simulated thread can run (single-token discipline), so the
        // target cannot finish in between.
        let (_, me2) = current();
        debug_assert_eq!(me, me2);
        self.block(me, "join");
    }
}

/// Observability timestamp source: virtual time + simulated thread id
/// of the caller, or `(0, 0)` outside a simulated thread.
fn obs_clock() -> (u64, u32) {
    CTX.with(|c| match c.borrow().as_ref() {
        Some((k, tid)) => (k.now().as_nanos(), *tid),
        None => (0, 0),
    })
}

fn trace(s: &mut Sched, tid: Tid, label: &str) {
    let now = s.now;
    if let Some(tr) = s.trace.as_mut() {
        tr.push(TraceEvent {
            time: now,
            tid,
            label: label.to_string(),
        });
    }
}

fn deadlock_dump(s: &Sched) -> String {
    let mut out = format!(
        "deadlock at {}: {} live thread(s) blocked with no pending wake-up:\n",
        s.now, s.live
    );
    let mut entries: Vec<_> = s
        .threads
        .iter()
        .filter(|(_, i)| i.state == TState::Blocked)
        .collect();
    entries.sort_by_key(|(tid, _)| **tid);
    for (tid, info) in entries {
        out.push_str(&format!(
            "  [{}] '{}'{} blocked on: {}\n",
            tid,
            info.name,
            if info.daemon { " (daemon)" } else { "" },
            info.block_reason
        ));
    }
    out
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Handle returned by [`Kernel::spawn`]; allows joining the thread and
/// retrieving its result.
pub struct JoinHandle<T> {
    kernel: Kernel,
    tid: Tid,
    name: String,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// The simulated thread id.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// The thread's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Block the calling *simulated* thread until the target finishes, then
    /// return its result.
    pub fn join(self) -> T {
        self.kernel.join_tid(self.tid);
        self.take_result()
            .expect("joined thread produced no result (panicked?)")
    }

    /// Retrieve the result without joining (for use after [`Kernel::run`]
    /// returned). Returns `None` if the thread has not finished or panicked.
    pub fn take_result(&self) -> Option<T> {
        self.result.lock().unwrap().take()
    }
}

// ---------------------------------------------------------------------
// Free-function conveniences for use inside simulated threads.
// ---------------------------------------------------------------------

/// Current virtual time (callable only from a simulated thread).
pub fn now() -> SimTime {
    current().0.now()
}

/// Sleep for `d` of virtual time (callable only from a simulated thread).
pub fn sleep(d: SimDuration) {
    let (k, _) = current();
    k.sleep(d);
}

/// Yield the token to other threads runnable at the current time.
pub fn yield_now() {
    let (k, _) = current();
    k.yield_now();
}

/// Spawn a simulated thread from within a simulated thread.
pub fn spawn<T, F>(name: impl Into<String>, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (k, _) = current();
    k.spawn(name, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{ms, secs};

    #[test]
    fn empty_simulation_completes() {
        let k = Kernel::new();
        k.run();
        assert_eq!(k.now(), SimTime::ZERO);
    }

    #[test]
    fn single_thread_sleep_advances_clock() {
        let k = Kernel::new();
        k.spawn("a", || {
            sleep(ms(10));
            sleep(ms(5));
        });
        k.run();
        assert_eq!(k.now(), SimTime::ZERO + ms(15));
    }

    #[test]
    fn run_root_returns_value() {
        let v = Kernel::run_root(|| {
            sleep(ms(1));
            42
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn two_threads_interleave_by_time() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let k = Kernel::new();
        let o1 = Arc::clone(&order);
        k.spawn("a", move || {
            sleep(ms(10));
            o1.lock().unwrap().push(("a", now()));
        });
        let o2 = Arc::clone(&order);
        k.spawn("b", move || {
            sleep(ms(5));
            o2.lock().unwrap().push(("b", now()));
        });
        k.run();
        let order = order.lock().unwrap();
        assert_eq!(order[0].0, "b");
        assert_eq!(order[1].0, "a");
        assert_eq!(order[0].1, SimTime::ZERO + ms(5));
        assert_eq!(order[1].1, SimTime::ZERO + ms(10));
    }

    #[test]
    fn spawn_order_breaks_ties_deterministically() {
        for _ in 0..10 {
            let order = Arc::new(Mutex::new(Vec::new()));
            let k = Kernel::new();
            for i in 0..5 {
                let o = Arc::clone(&order);
                k.spawn(format!("t{i}"), move || {
                    o.lock().unwrap().push(i);
                });
            }
            k.run();
            assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn join_returns_value_and_waits() {
        let v = Kernel::run_root(|| {
            let h = spawn("child", || {
                sleep(secs(3));
                "done"
            });
            let r = h.join();
            assert_eq!(now(), SimTime::ZERO + secs(3));
            r
        });
        assert_eq!(v, "done");
    }

    #[test]
    fn join_finished_thread_is_immediate() {
        Kernel::run_root(|| {
            let h = spawn("child", || 7);
            sleep(ms(100)); // child certainly finished (it never blocks)
            assert_eq!(h.join(), 7);
            assert_eq!(now(), SimTime::ZERO + ms(100));
        });
    }

    #[test]
    #[should_panic(expected = "simulation failed")]
    fn panic_in_thread_propagates() {
        let k = Kernel::new();
        k.spawn("bad", || panic!("boom"));
        k.run();
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let k = Kernel::new();
        let k2 = k.clone();
        k.spawn("stuck", move || {
            let (_, me) = current();
            k2.block(me, "waiting for godot");
        });
        k.run();
    }

    #[test]
    fn yield_now_round_robins_same_time() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let k = Kernel::new();
        for i in 0..3 {
            let o = Arc::clone(&order);
            k.spawn(format!("t{i}"), move || {
                for _ in 0..2 {
                    o.lock().unwrap().push(i);
                    yield_now();
                }
            });
        }
        k.run();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(k.now(), SimTime::ZERO);
    }

    #[test]
    fn trace_is_deterministic() {
        let run = || {
            let k = Kernel::new();
            k.enable_trace();
            for i in 0..4 {
                k.spawn(format!("t{i}"), move || {
                    sleep(ms(i as u64 * 3 % 7));
                    sleep(ms(2));
                });
            }
            k.run();
            k.trace()
        };
        let t1 = run();
        let t2 = run();
        assert!(!t1.is_empty());
        assert_eq!(t1, t2);
    }

    #[test]
    fn nested_spawn_inherits_clock() {
        Kernel::run_root(|| {
            sleep(ms(7));
            let h = spawn("child", now);
            let child_start = h.join();
            assert_eq!(child_start, SimTime::ZERO + ms(7));
        });
    }

    #[test]
    fn early_wake_supersedes_timer() {
        // A thread in block_until is woken early by make_runnable; the stale
        // timer entry must not wake it a second time.
        Kernel::run_root(|| {
            let (k, _) = current();
            let h = spawn("sleeper", || {
                let (k, me) = current();

                k.block_until(me, now() + secs(100), "long wait")
            });
            sleep(ms(50));
            let (k2, _) = current();
            k2.make_runnable(h.tid());
            let woke_at = h.join();
            assert_eq!(woke_at, SimTime::ZERO + ms(50));
            // Let the (stale) 100s timer entry surface: it should be skipped
            // and not panic / not advance the clock.
            sleep(ms(1));
            assert_eq!(k.now(), SimTime::ZERO + ms(51));
        });
    }

    #[test]
    fn live_threads_counts() {
        let k = Kernel::new();
        let k2 = k.clone();
        k.spawn("a", move || {
            assert!(k2.live_threads() >= 1);
            sleep(ms(1));
        });
        k.run();
        assert_eq!(k.live_threads(), 0);
    }

    #[test]
    fn many_threads_scale() {
        let k = Kernel::new();
        let counter = Arc::new(Mutex::new(0u64));
        for i in 0..200 {
            let c = Arc::clone(&counter);
            k.spawn(format!("w{i}"), move || {
                sleep(ms(i % 13));
                *c.lock().unwrap() += 1;
            });
        }
        k.run();
        assert_eq!(*counter.lock().unwrap(), 200);
    }
}
