//! Virtual time types.
//!
//! The simulation kernel keeps a single global virtual clock with nanosecond
//! resolution. [`SimTime`] is a point on that clock and [`SimDuration`] is a
//! span between two points. Both are thin wrappers over `u64` nanoseconds so
//! that arithmetic is exact and the simulation stays bit-for-bit
//! deterministic (no floating-point clock drift).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation's virtual clock, in nanoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the simulation epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`. Saturates at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Panics on negative or
    /// non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds in this duration, as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

/// Shorthand for [`SimDuration::from_micros`].
#[inline]
pub const fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

/// Shorthand for [`SimDuration::from_millis`].
#[inline]
pub const fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Shorthand for [`SimDuration::from_secs`].
#[inline]
pub const fn secs(v: u64) -> SimDuration {
    SimDuration::from_secs(v)
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(other.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(other.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

fn fmt_nanos(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+")?;
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(us(3).as_nanos(), 3_000);
        assert_eq!(ms(3).as_nanos(), 3_000_000);
        assert_eq!(secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + ms(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!((t + ms(5)) - t, ms(5));
        assert_eq!(ms(10) - ms(4), ms(6));
        assert_eq!(ms(10) * 3, ms(30));
        assert_eq!(ms(10) / 2, ms(5));
        assert_eq!(ms(4).saturating_sub(ms(10)), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = ms(1) - ms(2);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::ZERO + ms(1);
        let b = SimTime::ZERO + ms(2);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), ms(1));
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", us(12)), "12.000us");
        assert_eq!(format!("{}", ms(12)), "12.000ms");
        assert_eq!(format!("{}", secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::ZERO + ms(1)), "t+1.000ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [ms(1), ms(2), ms(3)].into_iter().sum();
        assert_eq!(total, ms(6));
    }
}
