//! Simulated synchronization primitives: [`SimMutex`], [`SimCondvar`],
//! [`Semaphore`], and [`Barrier`].
//!
//! These mirror their `std::sync` counterparts but block in *virtual* time:
//! a thread that fails to acquire a lock hands the token back to the
//! scheduler instead of spinning or parking the OS thread directly.
//!
//! # Implementation note
//!
//! Thanks to the kernel's single-token discipline (see [`crate::kernel`]),
//! the internal `std::sync::Mutex`es in these types are never contended:
//! they exist only to satisfy `Send`/`Sync` without `unsafe`. A simulated
//! thread acquires the *simulated* lock first and only then touches the
//! protected data, so lock-ordering bugs between simulated threads surface
//! as virtual-time deadlocks (which the kernel reports), never as real ones.

use std::collections::VecDeque;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::kernel::{current, current_tid, with_current, BlockReason, Tid};

#[derive(Default)]
struct MutexState {
    owner: Option<Tid>,
    waiters: VecDeque<Tid>,
}

/// A mutual-exclusion lock that blocks in virtual time.
///
/// Lock hand-off is strict FIFO: `unlock` passes ownership directly to the
/// longest-waiting thread, which both guarantees fairness and keeps the
/// simulation deterministic.
pub struct SimMutex<T> {
    name: String,
    state: Mutex<MutexState>,
    data: Mutex<T>,
}

impl<T> SimMutex<T> {
    /// Create a named mutex. The name appears in deadlock dumps.
    pub fn new(name: impl Into<String>, value: T) -> SimMutex<T> {
        SimMutex {
            name: name.into(),
            state: Mutex::new(MutexState::default()),
            data: Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking in virtual time if it is held.
    ///
    /// The uncontended path never touches the scheduler: one thread-id
    /// lookup and one uncontended `std::sync::Mutex` acquire.
    pub fn lock(&self) -> SimMutexGuard<'_, T> {
        let me = current_tid();
        loop {
            {
                let mut st = self.state.lock().unwrap();
                if st.owner.is_none() {
                    st.owner = Some(me);
                    break;
                }
                debug_assert_ne!(
                    st.owner,
                    Some(me),
                    "SimMutex is not reentrant: {}",
                    self.name
                );
                st.waiters.push_back(me);
            }
            let (kernel, _) = current();
            kernel.block(me, BlockReason::named("mutex", &self.name));
            // On wake-up, unlock() has already transferred ownership to us.
            let st = self.state.lock().unwrap();
            if st.owner == Some(me) {
                break;
            }
            // Spurious (should not happen with direct hand-off, but loop
            // defensively rather than corrupting ownership).
        }
        SimMutexGuard {
            mutex: self,
            data: Some(self.data.lock().unwrap()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<SimMutexGuard<'_, T>> {
        let me = current_tid();
        let mut st = self.state.lock().unwrap();
        if st.owner.is_none() {
            st.owner = Some(me);
            drop(st);
            Some(SimMutexGuard {
                mutex: self,
                data: Some(self.data.lock().unwrap()),
            })
        } else {
            None
        }
    }

    /// Whether the mutex is currently held.
    pub fn is_locked(&self) -> bool {
        self.state.lock().unwrap().owner.is_some()
    }

    fn unlock(&self) {
        let next = {
            let mut st = self.state.lock().unwrap();
            debug_assert!(st.owner.is_some());
            let next = st.waiters.pop_front();
            st.owner = next;
            next
        };
        if let Some(next) = next {
            with_current(|kernel, _| kernel.make_runnable(next));
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner().unwrap()
    }
}

impl<T: fmt::Debug> fmt::Debug for SimMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimMutex")
            .field("name", &self.name)
            .finish()
    }
}

/// RAII guard for [`SimMutex`]. Releasing the guard wakes the next waiter.
pub struct SimMutexGuard<'a, T> {
    mutex: &'a SimMutex<T>,
    data: Option<MutexGuard<'a, T>>,
}

impl<T> Deref for SimMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data.as_ref().unwrap()
    }
}

impl<T> DerefMut for SimMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data.as_mut().unwrap()
    }
}

impl<T> Drop for SimMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std guard *before* waking the next owner so it can
        // immediately relock the data mutex without contention.
        self.data.take();
        self.mutex.unlock();
    }
}

/// A condition variable that blocks in virtual time. Pair with [`SimMutex`].
pub struct SimCondvar {
    name: String,
    waiters: Mutex<VecDeque<Tid>>,
}

impl SimCondvar {
    /// Create a named condition variable.
    pub fn new(name: impl Into<String>) -> SimCondvar {
        SimCondvar {
            name: name.into(),
            waiters: Mutex::new(VecDeque::new()),
        }
    }

    /// Atomically release `guard`'s mutex and wait for a notification, then
    /// re-acquire the mutex. "Atomically" holds trivially under the
    /// single-token discipline: no other simulated thread can run between
    /// the release and the block.
    pub fn wait<'a, T>(&self, guard: SimMutexGuard<'a, T>) -> SimMutexGuard<'a, T> {
        let (kernel, me) = current();
        let mutex = guard.mutex;
        self.waiters.lock().unwrap().push_back(me);
        drop(guard);
        kernel.block(me, BlockReason::named("condvar", &self.name));
        mutex.lock()
    }

    /// Wait with a predicate: loops until `pred` is true.
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: SimMutexGuard<'a, T>,
        mut pred: F,
    ) -> SimMutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        while pred(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Wake the longest-waiting thread, if any. Returns whether a thread
    /// was woken.
    pub fn notify_one(&self) -> bool {
        let next = self.waiters.lock().unwrap().pop_front();
        match next {
            Some(tid) => {
                with_current(|kernel, _| kernel.make_runnable(tid));
                true
            }
            None => false,
        }
    }

    /// Wake all waiting threads. Returns how many were woken.
    pub fn notify_all(&self) -> usize {
        let drained: Vec<Tid> = self.waiters.lock().unwrap().drain(..).collect();
        let n = drained.len();
        if n > 0 {
            with_current(|kernel, _| {
                for tid in drained {
                    kernel.make_runnable(tid);
                }
            });
        }
        n
    }

    /// Number of threads currently waiting.
    pub fn waiter_count(&self) -> usize {
        self.waiters.lock().unwrap().len()
    }
}

impl fmt::Debug for SimCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimCondvar")
            .field("name", &self.name)
            .finish()
    }
}

/// A counting semaphore in virtual time. This is the `sem_t` equivalent
/// used by `snapify_t::m_sem` in the Snapify API.
pub struct Semaphore {
    inner: Arc<SemInner>,
}

struct SemInner {
    state: SimMutex<u64>,
    cv: SimCondvar,
}

impl Semaphore {
    /// Create a semaphore with an initial count.
    pub fn new(name: impl Into<String>, initial: u64) -> Semaphore {
        let name = name.into();
        Semaphore {
            inner: Arc::new(SemInner {
                state: SimMutex::new(format!("sem '{name}'"), initial),
                cv: SimCondvar::new(format!("sem '{name}'")),
            }),
        }
    }

    /// Increment the count and wake one waiter.
    pub fn post(&self) {
        let mut c = self.inner.state.lock();
        *c += 1;
        drop(c);
        self.inner.cv.notify_one();
    }

    /// Block until the count is positive, then decrement it.
    pub fn wait(&self) {
        let mut c = self.inner.state.lock();
        while *c == 0 {
            c = self.inner.cv.wait(c);
        }
        *c -= 1;
    }

    /// Non-blocking wait. Returns whether the count was decremented.
    pub fn try_wait(&self) -> bool {
        let mut c = self.inner.state.lock();
        if *c > 0 {
            *c -= 1;
            true
        } else {
            false
        }
    }

    /// Current count (racy in principle; exact under the single-token rule).
    pub fn count(&self) -> u64 {
        *self.inner.state.lock()
    }
}

impl Clone for Semaphore {
    fn clone(&self) -> Semaphore {
        Semaphore {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Semaphore")
            .field("count", &self.count())
            .finish()
    }
}

/// A reusable barrier in virtual time.
pub struct Barrier {
    state: SimMutex<BarrierState>,
    cv: SimCondvar,
    parties: usize,
}

struct BarrierState {
    waiting: usize,
    generation: u64,
}

impl Barrier {
    /// Create a barrier for `parties` threads.
    pub fn new(name: impl Into<String>, parties: usize) -> Barrier {
        assert!(parties > 0);
        let name = name.into();
        Barrier {
            state: SimMutex::new(
                format!("barrier '{name}'"),
                BarrierState {
                    waiting: 0,
                    generation: 0,
                },
            ),
            cv: SimCondvar::new(format!("barrier '{name}'")),
            parties,
        }
    }

    /// Block until all parties have arrived. Returns `true` for exactly one
    /// (the last) arriving thread per generation.
    pub fn wait(&self) -> bool {
        let mut st = self.state.lock();
        let generation = st.generation;
        st.waiting += 1;
        if st.waiting == self.parties {
            st.waiting = 0;
            st.generation += 1;
            drop(st);
            self.cv.notify_all();
            true
        } else {
            while st.generation == generation {
                st = self.cv.wait(st);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{now, sleep, spawn, Kernel};
    use crate::time::{ms, SimTime};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn mutex_provides_exclusion_in_virtual_time() {
        Kernel::run_root(|| {
            let m = Arc::new(SimMutex::new("m", 0u64));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let m = Arc::clone(&m);
                handles.push(spawn("worker", move || {
                    let mut g = m.lock();
                    let v = *g;
                    sleep(ms(10)); // hold the lock across virtual time
                    *g = v + 1;
                }));
            }
            for h in handles {
                h.join();
            }
            assert_eq!(*m.lock(), 4);
            // Four serialized 10ms critical sections.
            assert_eq!(now(), SimTime::ZERO + ms(40));
        });
    }

    #[test]
    fn mutex_handoff_is_fifo() {
        Kernel::run_root(|| {
            let m = Arc::new(SimMutex::new("m", Vec::<u32>::new()));
            let g = m.lock();
            let mut handles = Vec::new();
            for i in 0..3 {
                let m = Arc::clone(&m);
                handles.push(spawn(format!("w{i}"), move || {
                    m.lock().push(i);
                }));
            }
            sleep(ms(1)); // let all three queue up, in spawn order
            drop(g);
            for h in handles {
                h.join();
            }
            assert_eq!(*m.lock(), vec![0, 1, 2]);
        });
    }

    #[test]
    fn try_lock_fails_when_held() {
        Kernel::run_root(|| {
            let m = SimMutex::new("m", ());
            let g = m.lock();
            assert!(m.try_lock().is_none());
            drop(g);
            assert!(m.try_lock().is_some());
        });
    }

    #[test]
    fn condvar_wakes_waiter() {
        Kernel::run_root(|| {
            let pair = Arc::new((SimMutex::new("flag", false), SimCondvar::new("flag")));
            let p2 = Arc::clone(&pair);
            let h = spawn("waiter", move || {
                let (m, cv) = &*p2;
                let g = m.lock();
                let g = cv.wait_while(g, |set| !*set);
                assert!(*g);
                now()
            });
            sleep(ms(25));
            {
                let (m, cv) = &*pair;
                *m.lock() = true;
                cv.notify_one();
            }
            let woke = h.join();
            assert_eq!(woke, SimTime::ZERO + ms(25));
        });
    }

    #[test]
    fn condvar_notify_all_wakes_everyone() {
        Kernel::run_root(|| {
            let pair = Arc::new((SimMutex::new("flag", false), SimCondvar::new("flag")));
            let counter = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for i in 0..5 {
                let p = Arc::clone(&pair);
                let c = Arc::clone(&counter);
                handles.push(spawn(format!("w{i}"), move || {
                    let (m, cv) = &*p;
                    let g = m.lock();
                    let _g = cv.wait_while(g, |set| !*set);
                    c.fetch_add(1, Ordering::Relaxed);
                }));
            }
            sleep(ms(1));
            let (m, cv) = &*pair;
            *m.lock() = true;
            assert_eq!(cv.notify_all(), 5);
            for h in handles {
                h.join();
            }
            assert_eq!(counter.load(Ordering::Relaxed), 5);
        });
    }

    #[test]
    fn notify_with_no_waiters_is_noop() {
        Kernel::run_root(|| {
            let cv = SimCondvar::new("cv");
            assert!(!cv.notify_one());
            assert_eq!(cv.notify_all(), 0);
        });
    }

    #[test]
    fn semaphore_wait_post() {
        Kernel::run_root(|| {
            let sem = Semaphore::new("s", 0);
            let sem2 = sem.clone();
            let h = spawn("waiter", move || {
                sem2.wait();
                now()
            });
            sleep(ms(30));
            sem.post();
            assert_eq!(h.join(), SimTime::ZERO + ms(30));
        });
    }

    #[test]
    fn semaphore_counts() {
        Kernel::run_root(|| {
            let sem = Semaphore::new("s", 2);
            assert!(sem.try_wait());
            assert!(sem.try_wait());
            assert!(!sem.try_wait());
            sem.post();
            assert_eq!(sem.count(), 1);
            sem.wait();
            assert_eq!(sem.count(), 0);
        });
    }

    #[test]
    fn barrier_releases_all_parties_together() {
        Kernel::run_root(|| {
            let b = Arc::new(Barrier::new("b", 3));
            let mut handles = Vec::new();
            for i in 0..3u64 {
                let b = Arc::clone(&b);
                handles.push(spawn(format!("p{i}"), move || {
                    sleep(ms(10 * (i + 1)));
                    b.wait();
                    now()
                }));
            }
            let times: Vec<SimTime> = handles.into_iter().map(|h| h.join()).collect();
            // Everyone leaves the barrier at the time the last party arrives.
            assert!(times.iter().all(|t| *t == SimTime::ZERO + ms(30)));
        });
    }

    #[test]
    fn barrier_is_reusable() {
        Kernel::run_root(|| {
            let b = Arc::new(Barrier::new("b", 2));
            let leaders = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for i in 0..2 {
                let b = Arc::clone(&b);
                let l = Arc::clone(&leaders);
                handles.push(spawn(format!("p{i}"), move || {
                    for _ in 0..10 {
                        if b.wait() {
                            l.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            // Exactly one leader per generation.
            assert_eq!(leaders.load(Ordering::Relaxed), 10);
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn lock_order_inversion_reports_deadlock() {
        let k = Kernel::new();
        let a = Arc::new(SimMutex::new("a", ()));
        let b = Arc::new(SimMutex::new("b", ()));
        {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            k.spawn("t1", move || {
                let _ga = a.lock();
                sleep(ms(1));
                let _gb = b.lock();
            });
        }
        {
            k.spawn("t2", move || {
                let _gb = b.lock();
                sleep(ms(1));
                let _ga = a.lock();
            });
        }
        k.run();
    }
}
