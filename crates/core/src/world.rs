//! One-call bootstrap of a complete Snapify-enabled Xeon Phi server.

use std::sync::Arc;

use coi_sim::{CoiConfig, CoiWorld, FunctionRegistry};
use phi_platform::{FaultSchedule, PhiServer, PlatformParams};
use snapify_io::{SnapifyIo, SnapifyIoConfig};

/// A fully-assembled world: simulated server + COI (with Snapify
/// modifications) + Snapify-IO as the snapshot transport. Cheap to clone.
#[derive(Clone)]
pub struct SnapifyWorld {
    server: PhiServer,
    io: SnapifyIo,
    coi: CoiWorld,
}

impl SnapifyWorld {
    /// Boot with explicit parameters and COI configuration.
    pub fn boot_with(
        params: PlatformParams,
        coi_config: CoiConfig,
        registry: FunctionRegistry,
    ) -> SnapifyWorld {
        SnapifyWorld::boot_with_faults(params, coi_config, registry, FaultSchedule::none())
    }

    /// Boot with a chaos-plane [`FaultSchedule`] wired through the whole
    /// platform: every node's file system and memory pool, every PCIe
    /// link, and the transports built on this server all consult the
    /// resulting fault plane (see `phi_platform::FaultPlane`).
    pub fn boot_with_faults(
        params: PlatformParams,
        coi_config: CoiConfig,
        registry: FunctionRegistry,
        schedule: FaultSchedule,
    ) -> SnapifyWorld {
        let server = PhiServer::new_with_faults(params, schedule);
        let io = SnapifyIo::new(&server, SnapifyIoConfig::default());
        let coi = CoiWorld::boot(&server, coi_config, registry, Arc::new(io.clone()));
        SnapifyWorld { server, io, coi }
    }

    /// Boot with default (paper Table 2) parameters and Snapify enabled.
    pub fn boot(registry: FunctionRegistry) -> SnapifyWorld {
        SnapifyWorld::boot_with(PlatformParams::default(), CoiConfig::default(), registry)
    }

    /// Boot on an existing server (used by `mpi-sim`, whose cluster owns
    /// the servers).
    pub fn boot_on_server(
        server: PhiServer,
        coi_config: CoiConfig,
        registry: FunctionRegistry,
    ) -> SnapifyWorld {
        let io = SnapifyIo::new(&server, SnapifyIoConfig::default());
        let coi = CoiWorld::boot(&server, coi_config, registry, Arc::new(io.clone()));
        SnapifyWorld { server, io, coi }
    }

    /// The simulated server.
    pub fn server(&self) -> &PhiServer {
        &self.server
    }

    /// The Snapify-IO service.
    pub fn io(&self) -> &SnapifyIo {
        &self.io
    }

    /// The COI world.
    pub fn coi(&self) -> &CoiWorld {
        &self.coi
    }
}
