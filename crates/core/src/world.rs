//! One-call bootstrap of a complete Snapify-enabled Xeon Phi server.

use std::sync::Arc;

use coi_sim::{CoiConfig, CoiWorld, FunctionRegistry};
use phi_platform::{FaultSchedule, PhiServer, PlatformParams};
use snapify_io::{SnapifyIo, SnapifyIoConfig};
use snapstore::{ClusterPool, Dedup, DedupConfig};

/// A fully-assembled world: simulated server + COI (with Snapify
/// modifications) + Snapify-IO as the snapshot transport, optionally
/// fronted by the content-addressed [`Dedup`] store. Cheap to clone.
#[derive(Clone)]
pub struct SnapifyWorld {
    server: PhiServer,
    io: SnapifyIo,
    coi: CoiWorld,
    store: Option<Dedup>,
}

impl SnapifyWorld {
    /// Boot with explicit parameters and COI configuration.
    pub fn boot_with(
        params: PlatformParams,
        coi_config: CoiConfig,
        registry: FunctionRegistry,
    ) -> SnapifyWorld {
        SnapifyWorld::boot_with_faults(params, coi_config, registry, FaultSchedule::none())
    }

    /// Boot with a chaos-plane [`FaultSchedule`] wired through the whole
    /// platform: every node's file system and memory pool, every PCIe
    /// link, and the transports built on this server all consult the
    /// resulting fault plane (see `phi_platform::FaultPlane`).
    pub fn boot_with_faults(
        params: PlatformParams,
        coi_config: CoiConfig,
        registry: FunctionRegistry,
        schedule: FaultSchedule,
    ) -> SnapifyWorld {
        let server = PhiServer::new_with_faults(params, schedule);
        let io = SnapifyIo::new(&server, SnapifyIoConfig::default());
        let coi = CoiWorld::boot(&server, coi_config, registry, Arc::new(io.clone()));
        SnapifyWorld {
            server,
            io,
            coi,
            store: None,
        }
    }

    /// Boot with default (paper Table 2) parameters and Snapify enabled.
    pub fn boot(registry: FunctionRegistry) -> SnapifyWorld {
        SnapifyWorld::boot_with(PlatformParams::default(), CoiConfig::default(), registry)
    }

    /// Boot with the content-addressed snapshot store fronting the
    /// Snapify-IO transport: snapshot streams are chunked, deduplicated
    /// against the host-side chunk index, and only novel chunks ship.
    pub fn boot_dedup(registry: FunctionRegistry) -> SnapifyWorld {
        SnapifyWorld::boot_dedup_with(
            PlatformParams::default(),
            CoiConfig::default(),
            registry,
            DedupConfig::default(),
        )
    }

    /// [`SnapifyWorld::boot_dedup`] with explicit platform, COI and store
    /// configuration.
    pub fn boot_dedup_with(
        params: PlatformParams,
        coi_config: CoiConfig,
        registry: FunctionRegistry,
        dedup_config: DedupConfig,
    ) -> SnapifyWorld {
        SnapifyWorld::boot_dedup_with_faults(
            params,
            coi_config,
            registry,
            dedup_config,
            FaultSchedule::none(),
        )
    }

    /// [`SnapifyWorld::boot_dedup_with`] plus a chaos-plane
    /// [`FaultSchedule`], so swap paths through the content-addressed
    /// store run under injected transport/fs/memory faults.
    pub fn boot_dedup_with_faults(
        params: PlatformParams,
        coi_config: CoiConfig,
        registry: FunctionRegistry,
        dedup_config: DedupConfig,
        schedule: FaultSchedule,
    ) -> SnapifyWorld {
        let server = PhiServer::new_with_faults(params, schedule);
        let io = SnapifyIo::new(&server, SnapifyIoConfig::default());
        let store = Dedup::new(&server, Arc::new(io.clone()), dedup_config);
        let coi = CoiWorld::boot(&server, coi_config, registry, Arc::new(store.clone()));
        SnapifyWorld {
            server,
            io,
            coi,
            store: Some(store),
        }
    }

    /// Boot one node of a fleet: a dedup world whose store is attached
    /// to the shared cross-node [`ClusterPool`] as cluster node
    /// `cluster_node`. Snapshot commits publish their chunk manifests
    /// to the pool, deletes release them, and a restore that misses the
    /// local backend imports the manifest from the pool, shipping only
    /// the chunks this node does not already hold. Must be called from
    /// a simulated thread of the node's own time domain (it prices the
    /// pool NIC against this node's platform parameters).
    pub fn boot_fleet_node(
        params: PlatformParams,
        coi_config: CoiConfig,
        registry: FunctionRegistry,
        dedup_config: DedupConfig,
        schedule: FaultSchedule,
        pool: &ClusterPool,
        cluster_node: usize,
    ) -> SnapifyWorld {
        let world = SnapifyWorld::boot_dedup_with_faults(
            params,
            coi_config,
            registry,
            dedup_config,
            schedule,
        );
        world
            .store()
            .expect("fleet nodes always boot with the dedup store")
            .attach_pool(pool, cluster_node);
        world
    }

    /// Boot on an existing server (used by `mpi-sim`, whose cluster owns
    /// the servers).
    pub fn boot_on_server(
        server: PhiServer,
        coi_config: CoiConfig,
        registry: FunctionRegistry,
    ) -> SnapifyWorld {
        let io = SnapifyIo::new(&server, SnapifyIoConfig::default());
        let coi = CoiWorld::boot(&server, coi_config, registry, Arc::new(io.clone()));
        SnapifyWorld {
            server,
            io,
            coi,
            store: None,
        }
    }

    /// The simulated server.
    pub fn server(&self) -> &PhiServer {
        &self.server
    }

    /// The Snapify-IO service.
    pub fn io(&self) -> &SnapifyIo {
        &self.io
    }

    /// The COI world.
    pub fn coi(&self) -> &CoiWorld {
        &self.coi
    }

    /// The content-addressed snapshot store, if this world was booted
    /// with [`SnapifyWorld::boot_dedup`].
    pub fn store(&self) -> Option<&Dedup> {
        self.store.as_ref()
    }
}
