//! A COSMIC-style coprocessor scheduler built on process swapping.
//!
//! The paper motivates swapping with multi-tenancy: "the size of Xeon
//! Phi's physical memory puts a hard limit on the number of processes
//! that can concurrently run on the coprocessor" (§1), and defers
//! placement policy to "a job scheduler like COSMIC" (§5 Remark). This
//! module provides that scheduler as a library extension: a round-robin
//! time-slicer that keeps at most one tenant resident per coprocessor and
//! swaps the others out to host storage.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use coi_sim::CoiProcessHandle;
use simkernel::obs;
use simkernel::obs::{SloBreach, SloMonitor, SloSpec};
use simkernel::SimMutex;
use snapstore::Dedup;

use crate::api::{snapify_swapin, snapify_swapout, SnapifyT};
use crate::SnapifyError;

/// Identifier the scheduler assigns to a managed job.
pub type JobId = u64;

enum JobState {
    /// Resident on a device.
    Resident {
        /// Device index the job occupies.
        device: usize,
    },
    /// Claimed by an in-flight swap-out. The state lock is not held
    /// across the transport, so the claim is what stops a concurrent
    /// caller from swapping the same job out twice.
    SwappingOut,
    /// Claimed by an in-flight swap-in.
    SwappingIn,
    /// Swapped out; the snapshot needed to bring it back.
    SwappedOut(SnapifyT),
}

impl JobState {
    fn in_transition(&self) -> bool {
        matches!(self, JobState::SwappingOut | JobState::SwappingIn)
    }
}

struct Job {
    id: JobId,
    handle: CoiProcessHandle,
    state: JobState,
    /// Tenant name for dimensional telemetry (`tenant` label); defaults
    /// to `job{id}` when admitted untagged.
    tenant: Arc<str>,
    /// Size of the job's last captured swap snapshot, if it has ever
    /// been swapped out. Survives the swap-in, so cost-aware eviction
    /// policies can estimate what parking a *resident* job would cost.
    snapshot_bytes: Option<u64>,
}

struct SchedState {
    jobs: HashMap<JobId, Job>,
    /// Jobs waiting for a turn, FIFO.
    ready: VecDeque<JobId>,
    /// Device → resident job.
    resident: HashMap<usize, JobId>,
    next_id: JobId,
    swaps: u64,
}

/// A round-robin swap scheduler for one server's coprocessors.
#[derive(Clone)]
pub struct SwapScheduler {
    devices: usize,
    swap_dir: String,
    /// Content-addressed store fronting the snapshot transport, when the
    /// world was booted with dedup. Lets `retire` release a job's
    /// manifests so its chunks can be garbage-collected.
    store: Option<Dedup>,
    /// Optional SLO monitor fed with per-tenant swap-in latencies. A
    /// `std::sync::Mutex` is safe here: it is only held for the sketch
    /// update, never across a simulated block, and the kernel runs one
    /// simulated thread at a time.
    slo: Option<Arc<Mutex<SloMonitor>>>,
    state: Arc<SimMutex<SchedState>>,
}

impl SwapScheduler {
    /// Create a scheduler for `devices` coprocessors, storing swapped-out
    /// snapshots under `swap_dir` on the host fs.
    pub fn new(devices: usize, swap_dir: impl Into<String>) -> SwapScheduler {
        assert!(devices > 0);
        SwapScheduler {
            devices,
            swap_dir: swap_dir.into(),
            store: None,
            slo: None,
            state: Arc::new(SimMutex::new(
                "swap-scheduler",
                SchedState {
                    jobs: HashMap::new(),
                    ready: VecDeque::new(),
                    resident: HashMap::new(),
                    next_id: 1,
                    swaps: 0,
                },
            )),
        }
    }

    /// Register a freshly-created offload process (currently resident on
    /// `device`) with the scheduler. Returns its job id. The tenant
    /// label for telemetry defaults to `job{id}`; use [`admit_tagged`]
    /// to name it.
    ///
    /// [`admit_tagged`]: SwapScheduler::admit_tagged
    pub fn admit(&self, handle: &CoiProcessHandle, device: usize) -> JobId {
        self.admit_inner(handle, device, None)
    }

    /// Like [`admit`](SwapScheduler::admit), but names the tenant for
    /// dimensional telemetry: swap latencies and byte counters carry
    /// `tenant=<name>` and the SLO monitor windows per tenant.
    pub fn admit_tagged(&self, handle: &CoiProcessHandle, device: usize, tenant: &str) -> JobId {
        self.admit_inner(handle, device, Some(tenant))
    }

    fn admit_inner(&self, handle: &CoiProcessHandle, device: usize, tenant: Option<&str>) -> JobId {
        let mut st = self.state.lock();
        let id = st.next_id;
        st.next_id += 1;
        let tenant: Arc<str> = match tenant {
            Some(t) => Arc::from(t),
            None => Arc::from(format!("job{id}").as_str()),
        };
        st.jobs.insert(
            id,
            Job {
                id,
                handle: handle.clone(),
                state: JobState::Resident { device },
                tenant,
                snapshot_bytes: None,
            },
        );
        assert!(
            st.resident.insert(device, id).is_none(),
            "device {device} already has a resident job"
        );
        id
    }

    /// Attach the content-addressed snapshot store so retiring a job
    /// garbage-collects its swap snapshots (manifest refcounts drop; dead
    /// chunks and pack files are reclaimed).
    pub fn with_store(mut self, store: &Dedup) -> SwapScheduler {
        self.store = Some(store.clone());
        self
    }

    /// Attach an SLO to the swap-in path, e.g.
    /// `SloSpec::parse("swapin.p99 < 40ms over 1s")`. Every swap-in
    /// latency feeds a per-tenant window evaluated in virtual time;
    /// breaches accumulate and are returned by
    /// [`slo_breaches`](SwapScheduler::slo_breaches).
    pub fn with_slo(mut self, spec: SloSpec) -> SwapScheduler {
        self.slo = Some(Arc::new(Mutex::new(SloMonitor::new(spec))));
        self
    }

    /// Close the open SLO windows and return every breach recorded so
    /// far (empty when no SLO is attached). Typically called at end of
    /// run; observation continues afterwards in fresh windows.
    pub fn slo_breaches(&self) -> Vec<SloBreach> {
        match &self.slo {
            Some(slo) => {
                let mut m = slo.lock().unwrap();
                m.flush();
                m.breaches().to_vec()
            }
            None => Vec::new(),
        }
    }

    /// Record one swap latency observation: a labeled latency sketch
    /// (`tenant`/`device`/`op`) plus, for swap-ins, the SLO monitor.
    fn observe_swap(&self, metric: &str, op: &str, tenant: &str, device: usize, dur_ns: u64) {
        if obs::is_enabled() {
            let dev = device.to_string();
            obs::sketch_observe_labeled(
                metric,
                &[("device", &dev), ("op", op), ("tenant", tenant)],
                dur_ns,
            );
        }
        if metric == "swap.swapin_ns" {
            if let Some(slo) = &self.slo {
                slo.lock()
                    .unwrap()
                    .observe(tenant, simkernel::now().as_nanos(), dur_ns);
            }
        }
    }

    /// Remove a finished job from the scheduler (the caller destroys the
    /// process). A job that finished while parked is retired too: its
    /// entry leaves the ready queue and, with a dedup store attached,
    /// the swap snapshots under `{swap_dir}/job{id}/` are released so
    /// chunks no other tenant references are reclaimed.
    pub fn retire(&self, id: JobId) -> Result<(), SnapifyError> {
        // Wait out an in-flight swap on this job rather than yanking the
        // state from under it.
        loop {
            let mut st = self.state.lock();
            let job = st.jobs.get(&id).expect("unknown job");
            if job.state.in_transition() {
                drop(st);
                simkernel::sleep(simkernel::time::ms(1));
                continue;
            }
            let job = st.jobs.remove(&id).unwrap();
            if let JobState::Resident { device } = job.state {
                st.resident.remove(&device);
            }
            st.ready.retain(|j| *j != id);
            break;
        }
        if let Some(store) = &self.store {
            let prefix = format!("{}/job{id}/", self.swap_dir);
            store.delete_prefix(&prefix);
            // The library copy bypasses the storage seam (plain host-fs
            // write), so it is swept directly.
            let _ = store
                .server()
                .host()
                .fs()
                .delete(&format!("{prefix}libraries"));
        }
        Ok(())
    }

    /// Whether `id` is currently resident.
    pub fn is_resident(&self, id: JobId) -> bool {
        matches!(
            self.state.lock().jobs.get(&id).map(|j| &j.state),
            Some(JobState::Resident { .. })
        )
    }

    /// Number of swap operations performed so far.
    pub fn swap_count(&self) -> u64 {
        self.state.lock().swaps
    }

    /// Give every waiting job a turn: for each device in turn, swap the
    /// resident job out and the longest-waiting job in. Jobs keep
    /// executing while resident; their host threads simply block (on the
    /// drain locks) while swapped out.
    ///
    /// Returns the number of context switches performed.
    pub fn rotate(&self) -> Result<usize, SnapifyError> {
        let rotate_t0 = simkernel::now();
        let mut switches = 0;
        for device in 0..self.devices {
            // Pick the next waiting job and claim both ends of the
            // switch under one lock hold.
            let (incoming, in_snapshot, outgoing) = {
                let mut st = self.state.lock();
                let Some(incoming) = st.ready.pop_front() else {
                    continue;
                };
                let outgoing = st.resident.get(&device).copied();
                if let Some(out_id) = outgoing {
                    let state = &mut st.jobs.get_mut(&out_id).unwrap().state;
                    match state {
                        JobState::Resident { .. } => {
                            *state = JobState::SwappingOut;
                        }
                        // The resident job is mid-transition (a
                        // concurrent park): give the incoming job its
                        // turn back and leave this device alone.
                        _ => {
                            st.ready.push_front(incoming);
                            continue;
                        }
                    }
                }
                let job = st.jobs.get_mut(&incoming).unwrap();
                let snapshot = match std::mem::replace(&mut job.state, JobState::SwappingIn) {
                    JobState::SwappedOut(s) => s,
                    JobState::Resident { .. } => {
                        panic!("ready job {} was already resident", job.id)
                    }
                    _ => panic!("ready job {} was mid-transition", job.id),
                };
                (incoming, snapshot, outgoing)
            };
            // Swap the resident job out.
            if let Some(out_id) = outgoing {
                let (handle, out_tenant) = {
                    let st = self.state.lock();
                    let job = &st.jobs[&out_id];
                    (job.handle.clone(), Arc::clone(&job.tenant))
                };
                let path = format!("{}/job{}", self.swap_dir, out_id);
                let t0 = simkernel::now();
                match snapify_swapout(&handle, &path) {
                    Ok(snapshot) => {
                        self.observe_swap(
                            "swap.swapout_ns",
                            "rotate",
                            &out_tenant,
                            device,
                            (simkernel::now() - t0).as_nanos(),
                        );
                        let size = snapshot.snapshot_bytes();
                        let mut st = self.state.lock();
                        let job = st.jobs.get_mut(&out_id).unwrap();
                        job.state = JobState::SwappedOut(snapshot);
                        job.snapshot_bytes = size;
                        st.resident.remove(&device);
                        st.ready.push_back(out_id);
                        st.swaps += 1;
                    }
                    Err(e) => {
                        // Unwind both claims: the outgoing job stays
                        // resident (snapify_swapout resumed it), and the
                        // incoming job goes back to the front of the
                        // queue — it lost no turn and must not leak.
                        let mut st = self.state.lock();
                        st.jobs.get_mut(&out_id).unwrap().state = JobState::Resident { device };
                        st.jobs.get_mut(&incoming).unwrap().state =
                            JobState::SwappedOut(in_snapshot);
                        st.ready.push_front(incoming);
                        return Err(e);
                    }
                }
            }
            // Swap the waiting job in.
            let in_tenant = Arc::clone(&self.state.lock().jobs[&incoming].tenant);
            let t0 = simkernel::now();
            match snapify_swapin(&in_snapshot, device) {
                Ok(_) => {
                    self.observe_swap(
                        "swap.swapin_ns",
                        "rotate",
                        &in_tenant,
                        device,
                        (simkernel::now() - t0).as_nanos(),
                    );
                    let mut st = self.state.lock();
                    st.jobs.get_mut(&incoming).unwrap().state = JobState::Resident { device };
                    st.resident.insert(device, incoming);
                    st.swaps += 1;
                    switches += 1;
                }
                Err(e) => {
                    // The device is left free; the job keeps its
                    // snapshot and its place in line.
                    let mut st = self.state.lock();
                    st.jobs.get_mut(&incoming).unwrap().state = JobState::SwappedOut(in_snapshot);
                    st.ready.push_front(incoming);
                    return Err(e);
                }
            }
        }
        if obs::is_enabled() && switches > 0 {
            obs::sketch_observe("swap.rotate_ns", (simkernel::now() - rotate_t0).as_nanos());
        }
        Ok(switches)
    }

    /// Voluntarily park a resident job (swap it out and queue it), e.g.
    /// when it blocks on host-side work for a long time.
    pub fn park(&self, id: JobId) -> Result<(), SnapifyError> {
        let (handle, device, tenant) = loop {
            let mut st = self.state.lock();
            let job = st.jobs.get_mut(&id).expect("unknown job");
            match &job.state {
                JobState::Resident { device } => {
                    let device = *device;
                    let handle = job.handle.clone();
                    let tenant = Arc::clone(&job.tenant);
                    job.state = JobState::SwappingOut;
                    break (handle, device, tenant);
                }
                JobState::SwappedOut(_) => return Ok(()), // already parked
                // Another caller is mid-swap on this job; wait for the
                // state to settle rather than swapping it out twice.
                _ => {
                    drop(st);
                    simkernel::sleep(simkernel::time::ms(1));
                }
            }
        };
        let path = format!("{}/job{id}", self.swap_dir);
        let t0 = simkernel::now();
        match snapify_swapout(&handle, &path) {
            Ok(snapshot) => {
                self.observe_swap(
                    "swap.swapout_ns",
                    "park",
                    &tenant,
                    device,
                    (simkernel::now() - t0).as_nanos(),
                );
                let size = snapshot.snapshot_bytes();
                let mut st = self.state.lock();
                let job = st.jobs.get_mut(&id).unwrap();
                job.state = JobState::SwappedOut(snapshot);
                job.snapshot_bytes = size;
                st.resident.remove(&device);
                st.ready.push_back(id);
                st.swaps += 1;
                Ok(())
            }
            Err(e) => {
                // The job is still resident (the failed swap-out
                // resumed it); release the claim and surface the error.
                let mut st = self.state.lock();
                st.jobs.get_mut(&id).unwrap().state = JobState::Resident { device };
                Err(e)
            }
        }
    }

    /// Swap a specific parked job back in on `device`, on demand — the
    /// serving layer's admission hook. Where [`rotate`] gives the
    /// longest-waiting job the next turn, `swap_in` restores exactly
    /// the job a request arrived for: it leaves the FIFO queue and
    /// lands on the named device, which must be free (evict a resident
    /// job first with [`park`]). A job already resident on `device` is
    /// a no-op; resident elsewhere, or a busy device, is a protocol
    /// error. An in-flight swap on the same job is waited out.
    ///
    /// The device is reserved under the claim lock, so concurrent
    /// `swap_in` calls can never target the same device; the
    /// reservation shows up in [`resident_jobs`] while the transport
    /// runs and is rolled back if the restore fails.
    ///
    /// [`rotate`]: SwapScheduler::rotate
    /// [`park`]: SwapScheduler::park
    /// [`resident_jobs`]: SwapScheduler::resident_jobs
    pub fn swap_in(&self, id: JobId, device: usize) -> Result<(), SnapifyError> {
        assert!(device < self.devices, "device {device} out of range");
        enum Step {
            AlreadyThere,
            Elsewhere(usize),
            Ready,
            Wait,
        }
        let (snapshot, tenant) = loop {
            let mut st = self.state.lock();
            let step = match &st.jobs.get(&id).expect("unknown job").state {
                JobState::Resident { device: d } if *d == device => Step::AlreadyThere,
                JobState::Resident { device: d } => Step::Elsewhere(*d),
                JobState::SwappedOut(_) => Step::Ready,
                _ => Step::Wait,
            };
            match step {
                Step::AlreadyThere => return Ok(()),
                Step::Elsewhere(d) => {
                    return Err(SnapifyError::Protocol(format!(
                        "job {id} is resident on device {d}, not {device}"
                    )))
                }
                Step::Ready => {
                    if let Some(occupant) = st.resident.get(&device) {
                        return Err(SnapifyError::Protocol(format!(
                            "device {device} is occupied by job {occupant}"
                        )));
                    }
                    st.resident.insert(device, id);
                    st.ready.retain(|j| *j != id);
                    let job = st.jobs.get_mut(&id).unwrap();
                    let snapshot = match std::mem::replace(&mut job.state, JobState::SwappingIn) {
                        JobState::SwappedOut(s) => s,
                        _ => unreachable!("state re-checked under the same lock"),
                    };
                    break (snapshot, Arc::clone(&job.tenant));
                }
                Step::Wait => {
                    drop(st);
                    simkernel::sleep(simkernel::time::ms(1));
                }
            }
        };
        let t0 = simkernel::now();
        match snapify_swapin(&snapshot, device) {
            Ok(_) => {
                self.observe_swap(
                    "swap.swapin_ns",
                    "demand",
                    &tenant,
                    device,
                    (simkernel::now() - t0).as_nanos(),
                );
                let mut st = self.state.lock();
                st.jobs.get_mut(&id).unwrap().state = JobState::Resident { device };
                st.swaps += 1;
                Ok(())
            }
            Err(e) => {
                // Roll back both the claim and the device reservation;
                // the job keeps its snapshot and rejoins the queue.
                let mut st = self.state.lock();
                st.jobs.get_mut(&id).unwrap().state = JobState::SwappedOut(snapshot);
                st.resident.remove(&device);
                st.ready.push_back(id);
                Err(e)
            }
        }
    }

    /// Number of coprocessors this scheduler manages.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// The resident job of every occupied device, as `(device, job)`
    /// pairs sorted by device — the candidate set an eviction policy
    /// chooses its victim from. Includes devices reserved by an
    /// in-flight [`swap_in`](SwapScheduler::swap_in).
    pub fn resident_jobs(&self) -> Vec<(usize, JobId)> {
        let st = self.state.lock();
        let mut v: Vec<(usize, JobId)> = st.resident.iter().map(|(d, j)| (*d, *j)).collect();
        v.sort_unstable();
        v
    }

    /// Lowest-numbered device with no resident (or reserved) job.
    pub fn free_device(&self) -> Option<usize> {
        let st = self.state.lock();
        (0..self.devices).find(|d| !st.resident.contains_key(d))
    }

    /// Size of the job's last captured swap snapshot — the cost a
    /// cost-aware eviction policy charges for parking it again. `None`
    /// until the job's first swap-out.
    pub fn swap_size_estimate(&self, id: JobId) -> Option<u64> {
        self.state
            .lock()
            .jobs
            .get(&id)
            .and_then(|j| j.snapshot_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::SnapifyWorld;
    use coi_sim::{CoiConfig, DeviceBinary, FunctionRegistry};
    use phi_platform::{
        FaultKind, FaultSchedule, FaultTarget, NodeId, Payload, PlatformParams, GB, MB,
    };
    use simkernel::{Kernel, SchedPolicy, SimTime};
    use snapstore::DedupConfig;

    fn registry() -> FunctionRegistry {
        let reg = FunctionRegistry::new();
        reg.register(
            DeviceBinary::new("tenant.so", MB, 32 * MB).simple_function("bump", |ctx| {
                ctx.compute(1e9, 60);
                let n = ctx
                    .private("count")
                    .map(|p| u64::from_le_bytes(p.to_bytes().try_into().unwrap()))
                    .unwrap_or(0);
                ctx.set_private("count", Payload::bytes((n + 1).to_le_bytes().to_vec()));
                (n + 1).to_le_bytes().to_vec()
            }),
        );
        reg
    }

    #[test]
    fn three_tenants_time_share_one_card() {
        Kernel::run_root(|| {
            let world = SnapifyWorld::boot(registry());
            let sched = SwapScheduler::new(1, "/swap/sched");

            // Jobs start resident one at a time; each is parked before the
            // next is admitted, so only one ever occupies the card.
            let mut handles = Vec::new();
            let mut ids = Vec::new();
            for i in 0..3 {
                let host = world.coi().create_host_process(&format!("tenant{i}"));
                let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
                // Each tenant holds 2 GiB: only one fits comfortably.
                let buf = h.create_buffer(2 * GB).unwrap();
                h.buffer_write(&buf, Payload::synthetic(i, 2 * GB)).unwrap();
                let id = sched.admit(&h, 0);
                handles.push((h, buf));
                ids.push(id);
                if i < 2 {
                    sched.park(id).unwrap();
                }
            }
            // Now job 3 is resident, jobs 1 and 2 queued. Each rotation
            // gives the next tenant a turn; every tenant computes during
            // its slice, accumulating private state across swaps.
            for _round in 0..3 {
                for (h, _) in &handles {
                    // Only the resident tenant's call completes now; the
                    // others block until their turn. Run them from their
                    // own threads.
                    let h2 = h.clone();
                    h.host_proc().clone().spawn_thread("slice", move || {
                        let _ = h2.run_sync("bump", Vec::new(), &[]);
                    });
                }
                simkernel::sleep(simkernel::time::ms(50));
                sched.rotate().unwrap();
            }
            // Let the last slices complete.
            simkernel::sleep(simkernel::time::ms(100));
            assert!(sched.swap_count() >= 6, "swaps = {}", sched.swap_count());

            // Every tenant made progress (private count > 0) and kept its
            // buffer intact.
            for (i, (h, buf)) in handles.iter().enumerate() {
                if !sched.is_resident(ids[i]) {
                    // Bring it back for inspection.
                    while !sched.is_resident(ids[i]) {
                        sched.rotate().unwrap();
                        simkernel::sleep(simkernel::time::ms(10));
                    }
                }
                let count = h.run_sync("bump", Vec::new(), &[]).unwrap();
                let count = u64::from_le_bytes(count.try_into().unwrap());
                assert!(count >= 2, "tenant {i} made no progress: {count}");
                assert_eq!(
                    h.buffer_read(buf).unwrap().digest(),
                    Payload::synthetic(i as u64, 2 * GB).digest(),
                    "tenant {i} buffer corrupted"
                );
                sched.park(ids[i]).unwrap();
            }
        });
    }

    #[test]
    fn warm_swapout_of_unchanged_tenant_ships_almost_nothing() {
        Kernel::run_root(|| {
            let world = SnapifyWorld::boot_dedup(registry());
            let store = world.store().unwrap().clone();
            let sched = SwapScheduler::new(1, "/swap/warm").with_store(&store);
            let host = world.coi().create_host_process("t");
            let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
            let buf = h.create_buffer(GB).unwrap();
            h.buffer_write(&buf, Payload::synthetic(9, GB)).unwrap();
            let id = sched.admit(&h, 0);

            // Cold swap-out: every chunk is novel.
            sched.park(id).unwrap();
            let cold = store.stats().bytes_shipped;
            assert!(cold >= GB, "cold swap ships the tenant image: {cold}");

            // Bring the tenant back without touching its state...
            sched.rotate().unwrap();
            assert!(sched.is_resident(id));

            // ...and swap it out again: the image is unchanged, so the
            // warm pass ships manifests and headers, not data.
            sched.park(id).unwrap();
            let warm = store.stats().bytes_shipped - cold;
            assert!(
                warm * 5 <= cold,
                "warm swap-out must ship >=80% fewer bytes: warm={warm} cold={cold}"
            );
            assert!(store.stats().chunks_hit > 0);

            // The tenant still restores correctly from the dedup store.
            sched.rotate().unwrap();
            assert_eq!(
                h.buffer_read(&buf).unwrap().digest(),
                Payload::synthetic(9, GB).digest(),
                "tenant state corrupted by dedup'd swap"
            );
        });
    }

    #[test]
    fn incremental_warm_park_hashes_only_dirty_bytes_and_runs_faster() {
        Kernel::run_root(|| {
            // One warm-park cycle of a lightly-touched tenant (8 buffers,
            // 1 rewritten between parks): cold park, swap back in, dirty
            // one buffer, park again. Returns the warm park's virtual
            // duration and its dirty/clean capture byte counts.
            let cycle = |rebase_every: u32| -> (u64, u64, u64) {
                let world = SnapifyWorld::boot_dedup_with(
                    PlatformParams::default(),
                    CoiConfig::default(),
                    registry(),
                    DedupConfig {
                        incremental_rebase_every: rebase_every,
                        ..DedupConfig::default()
                    },
                );
                let store = world.store().unwrap().clone();
                let sched = SwapScheduler::new(1, "/swap/incr").with_store(&store);
                let host = world.coi().create_host_process("t");
                let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
                let mut bufs = Vec::new();
                for i in 0..8u64 {
                    let b = h.create_buffer(256 * MB).unwrap();
                    h.buffer_write(&b, Payload::synthetic(100 + i, 256 * MB))
                        .unwrap();
                    bufs.push(b);
                }
                let id = sched.admit(&h, 0);
                sched.park(id).unwrap();
                sched.rotate().unwrap();
                h.buffer_write(&bufs[0], Payload::synthetic(999, 256 * MB))
                    .unwrap();
                let s0 = store.stats();
                let t0 = simkernel::now();
                sched.park(id).unwrap();
                let warm_ns = (simkernel::now() - t0).as_nanos();
                let s1 = store.stats();
                // Whatever the capture strategy, the tenant restores
                // bit-identically, dirty buffer included.
                sched.rotate().unwrap();
                for (i, b) in bufs.iter().enumerate() {
                    let want = if i == 0 {
                        Payload::synthetic(999, 256 * MB)
                    } else {
                        Payload::synthetic(100 + i as u64, 256 * MB)
                    };
                    assert_eq!(
                        h.buffer_read(b).unwrap().digest(),
                        want.digest(),
                        "buffer {i} corrupted (rebase_every={rebase_every})"
                    );
                }
                (
                    warm_ns,
                    s1.capture_dirty_bytes - s0.capture_dirty_bytes,
                    s1.capture_clean_bytes - s0.capture_clean_bytes,
                )
            };

            // rebase_every=1 is the always-full baseline; 0 never rebases.
            let (full_ns, full_dirty, full_clean) = cycle(1);
            let (inc_ns, inc_dirty, inc_clean) = cycle(0);
            assert_eq!(full_clean, 0, "the full baseline never reuses");
            assert!(
                inc_dirty < full_dirty,
                "incremental hashes less: inc={inc_dirty} full={full_dirty}"
            );
            // With 1 of 8 buffers touched, at most 20% of the image may
            // enter the read/chunk/digest pipeline.
            let image = inc_dirty + inc_clean;
            assert!(
                inc_dirty * 5 <= image,
                "hashed fraction too high: dirty={inc_dirty} of {image}"
            );
            assert!(
                full_ns >= inc_ns * 2,
                "incremental warm park must be at least 2x faster: inc={inc_ns}ns full={full_ns}ns"
            );
        });
    }

    #[test]
    fn retire_releases_swap_snapshots_from_the_store() {
        Kernel::run_root(|| {
            let world = SnapifyWorld::boot_dedup(registry());
            let store = world.store().unwrap().clone();
            let sched = SwapScheduler::new(1, "/swap/gc").with_store(&store);
            let host = world.coi().create_host_process("t");
            let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
            let buf = h.create_buffer(GB).unwrap();
            h.buffer_write(&buf, Payload::synthetic(3, GB)).unwrap();
            let id = sched.admit(&h, 0);
            sched.park(id).unwrap();
            assert!(store.stats().bytes_stored >= GB);
            sched.rotate().unwrap();
            sched.retire(id).unwrap();
            h.destroy().unwrap();
            assert_eq!(
                store.stats().bytes_stored,
                0,
                "retire reclaims every chunk of the job's swap snapshots"
            );
            assert_eq!(store.stats().manifests, 0);
        });
    }

    #[test]
    fn admit_and_retire() {
        Kernel::run_root(|| {
            let world = SnapifyWorld::boot(registry());
            let sched = SwapScheduler::new(2, "/swap/ar");
            let host = world.coi().create_host_process("t");
            let h = world.coi().create_process(&host, 1, "tenant.so").unwrap();
            let id = sched.admit(&h, 1);
            assert!(sched.is_resident(id));
            sched.retire(id).unwrap();
            h.destroy().unwrap();
            assert_eq!(sched.swap_count(), 0);
        });
    }

    #[test]
    fn demand_swap_in_places_a_specific_job() {
        Kernel::run_root(|| {
            let world = SnapifyWorld::boot(registry());
            let sched = SwapScheduler::new(2, "/swap/demand");
            let mut handles = Vec::new();
            let mut ids = Vec::new();
            for i in 0..2 {
                let host = world.coi().create_host_process(&format!("t{i}"));
                let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
                let buf = h.create_buffer(64 * MB).unwrap();
                h.buffer_write(&buf, Payload::synthetic(i, 64 * MB))
                    .unwrap();
                ids.push(sched.admit_tagged(&h, 0, &format!("t{i}")));
                handles.push((h, buf));
                if i == 0 {
                    sched.park(ids[0]).unwrap();
                }
            }
            // t0 parked, t1 resident on device 0; device 1 is free.
            assert_eq!(sched.devices(), 2);
            assert_eq!(sched.resident_jobs(), vec![(0, ids[1])]);
            assert_eq!(sched.free_device(), Some(1));
            assert!(sched.swap_size_estimate(ids[0]).unwrap() > 0);
            assert_eq!(sched.swap_size_estimate(ids[1]), None);

            // Device 0 is occupied: targeting it is a protocol error.
            assert!(matches!(
                sched.swap_in(ids[0], 0),
                Err(SnapifyError::Protocol(_))
            ));
            // Demand-restore t0 onto the free device.
            sched.swap_in(ids[0], 1).unwrap();
            assert_eq!(sched.resident_jobs(), vec![(0, ids[1]), (1, ids[0])]);
            assert_eq!(sched.free_device(), None);
            // Re-requesting the same placement is a no-op; a different
            // device for a resident job is an error.
            sched.swap_in(ids[0], 1).unwrap();
            assert!(matches!(
                sched.swap_in(ids[0], 0),
                Err(SnapifyError::Protocol(_))
            ));
            // The size estimate survives the swap-in, and the restored
            // tenant's state is intact.
            assert!(sched.swap_size_estimate(ids[0]).is_some());
            assert_eq!(
                handles[0].0.buffer_read(&handles[0].1).unwrap().digest(),
                Payload::synthetic(0, 64 * MB).digest(),
                "tenant state corrupted by demand swap-in"
            );
            for id in ids {
                sched.retire(id).unwrap();
            }
        });
    }

    #[test]
    fn failed_swapout_during_rotate_requeues_the_incoming_job() {
        Kernel::run_root(|| {
            // An Oom scheduled on the host memory pool long after setup:
            // the first host-side allocation past that point is the
            // snapshot transport's staging buffer, so the next swap-out
            // fails at open.
            let schedule = FaultSchedule::none().with(
                SimTime(simkernel::time::secs(30).as_nanos()),
                FaultTarget::Mem(NodeId::HOST),
                FaultKind::Oom,
            );
            let world = SnapifyWorld::boot_with_faults(
                PlatformParams::default(),
                CoiConfig::default(),
                registry(),
                schedule,
            );
            let sched = SwapScheduler::new(1, "/swap/leak");
            let host = world.coi().create_host_process("a");
            let ha = world.coi().create_process(&host, 0, "tenant.so").unwrap();
            let a = sched.admit(&ha, 0);
            sched.park(a).unwrap();
            let host_b = world.coi().create_host_process("b");
            let hb = world.coi().create_process(&host_b, 0, "tenant.so").unwrap();
            let b = sched.admit(&hb, 0);

            // Past the fault's due time, the rotation's swap-out of B
            // fails in the transport; the error must surface typed and
            // job A — already popped from the ready queue — must not
            // leak.
            simkernel::sleep(simkernel::time::secs(31));
            assert!(sched.rotate().is_err(), "swap-out transport fault surfaces");
            assert!(sched.is_resident(b), "outgoing job stays resident");
            assert!(!sched.is_resident(a));

            // The failed swap-out resumed B: it still takes work.
            hb.run_sync("bump", Vec::new(), &[]).unwrap();

            // The fault fired once; retrying the rotation must find A
            // still queued and complete the switch.
            assert_eq!(sched.rotate().unwrap(), 1, "incoming job was leaked");
            assert!(sched.is_resident(a));
            assert!(!sched.is_resident(b));
        });
    }

    #[test]
    fn retire_a_parked_job_releases_its_snapshot() {
        Kernel::run_root(|| {
            let world = SnapifyWorld::boot_dedup(registry());
            let store = world.store().unwrap().clone();
            let sched = SwapScheduler::new(1, "/swap/rp").with_store(&store);
            let host = world.coi().create_host_process("t");
            let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
            let buf = h.create_buffer(256 * MB).unwrap();
            h.buffer_write(&buf, Payload::synthetic(4, 256 * MB))
                .unwrap();
            let id = sched.admit(&h, 0);
            sched.park(id).unwrap();
            assert!(store.stats().bytes_stored > 0);

            // The tenant finished while parked: retiring it must GC the
            // swap snapshot instead of panicking.
            sched.retire(id).unwrap();
            assert!(!sched.is_resident(id));
            assert_eq!(store.stats().bytes_stored, 0);
            assert_eq!(store.stats().manifests, 0);
            assert!(!world
                .server()
                .host()
                .fs()
                .exists(&format!("/swap/rp/job{id}/libraries")));
        });
    }

    #[test]
    fn concurrent_parks_swap_out_once() {
        for seed in [1u64, 7, 23, 0xC0FFEE] {
            Kernel::run_root_with(SchedPolicy::Random(seed), move || {
                let world = SnapifyWorld::boot(registry());
                let sched = SwapScheduler::new(1, "/swap/race");
                let host = world.coi().create_host_process("t");
                let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
                let id = sched.admit(&h, 0);
                // Two callers race to park the same job; the second
                // lands squarely inside the first one's swap-out.
                let (s1, s2) = (sched.clone(), sched.clone());
                let t1 = h
                    .host_proc()
                    .clone()
                    .spawn_thread("park1", move || s1.park(id));
                let t2 = h.host_proc().clone().spawn_thread("park2", move || {
                    simkernel::sleep(simkernel::time::ms(1));
                    s2.park(id)
                });
                t1.join().unwrap();
                t2.join().unwrap();
                assert!(!sched.is_resident(id));
                assert_eq!(
                    sched.swap_count(),
                    1,
                    "seed {seed}: job must swap out exactly once"
                );
            });
        }
    }

    #[test]
    fn warm_swapin_ships_fewer_bytes_and_halves_latency() {
        // One park/rotate cycle of an unchanged 1 GiB tenant, measured
        // with the warm restore cache on vs off (cold baseline).
        let cycle = |cache_bytes: u64| -> (f64, u64, u64) {
            Kernel::run_root(move || {
                let world = SnapifyWorld::boot_dedup_with(
                    PlatformParams::default(),
                    CoiConfig::default(),
                    registry(),
                    DedupConfig {
                        restore_cache_bytes: cache_bytes,
                        ..DedupConfig::default()
                    },
                );
                let store = world.store().unwrap().clone();
                let sched = SwapScheduler::new(1, "/swap/si").with_store(&store);
                let host = world.coi().create_host_process("t");
                let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
                let buf = h.create_buffer(GB).unwrap();
                h.buffer_write(&buf, Payload::synthetic(5, GB)).unwrap();
                let id = sched.admit(&h, 0);
                sched.park(id).unwrap();

                let before = store.stats();
                let t0 = simkernel::now();
                sched.rotate().unwrap();
                let swapin_secs = (simkernel::now() - t0).as_secs_f64();
                let after = store.stats();

                assert!(sched.is_resident(id));
                assert_eq!(
                    h.buffer_read(&buf).unwrap().digest(),
                    Payload::synthetic(5, GB).digest(),
                    "tenant state corrupted by the restore fast path"
                );
                (
                    swapin_secs,
                    after.restore_bytes_fetched - before.restore_bytes_fetched,
                    after.restore_bytes_avoided - before.restore_bytes_avoided,
                )
            })
        };
        let (cold_secs, cold_fetched, _) = cycle(0);
        let (warm_secs, warm_fetched, warm_avoided) = cycle(4 << 30);
        assert!(cold_fetched >= GB, "cold swap-in re-ships the image");
        assert!(
            warm_fetched * 5 <= cold_fetched,
            "warm swap-in must ship >=80% fewer bytes: warm={warm_fetched} cold={cold_fetched}"
        );
        assert!(
            warm_avoided >= GB,
            "warm hits cover the image: {warm_avoided}"
        );
        assert!(
            warm_secs * 2.0 <= cold_secs,
            "warm swap-in must be >=2x faster: warm={warm_secs}s cold={cold_secs}s"
        );
    }

    #[test]
    fn per_tenant_swapin_sketches_and_slo_breaches() {
        Kernel::run_root(|| {
            let world = SnapifyWorld::boot(registry());
            // Threshold far below any real swap-in so every window
            // breaches: the test checks the plumbing, not a tuned SLO.
            let sched = SwapScheduler::new(1, "/swap/tenants")
                .with_slo(obs::SloSpec::parse("swapin.p99 < 10us over 1s").unwrap());

            let host = world.coi().create_host_process("tenants");
            let hs = world.coi().create_process(&host, 0, "tenant.so").unwrap();
            let sbuf = hs.create_buffer(64 * MB).unwrap();
            hs.buffer_write(&sbuf, Payload::synthetic(1, 64 * MB))
                .unwrap();
            let small = sched.admit_tagged(&hs, 0, "small-tenant");
            sched.park(small).unwrap();

            let hl = world.coi().create_process(&host, 0, "tenant.so").unwrap();
            let lbuf = hl.create_buffer(512 * MB).unwrap();
            hl.buffer_write(&lbuf, Payload::synthetic(2, 512 * MB))
                .unwrap();
            let _large = sched.admit_tagged(&hl, 0, "large-tenant");

            obs::enable();
            // Alternate residency: each rotation swaps one tenant out
            // and the other in, so both accumulate swap-in latencies.
            for _ in 0..4 {
                sched.rotate().unwrap();
                simkernel::sleep(simkernel::time::ms(5));
            }
            obs::disable();

            let s = obs::Summary::capture();
            let sk_small = s
                .tenant_sketch("swap.swapin_ns", "small-tenant")
                .expect("small tenant sketch recorded");
            let sk_large = s
                .tenant_sketch("swap.swapin_ns", "large-tenant")
                .expect("large tenant sketch recorded");
            assert!(sk_small.count() >= 2 && sk_large.count() >= 2);
            // 512 MiB ships 8x the bytes of 64 MiB: the tenants' latency
            // distributions must be clearly distinct at p50 and p99.
            assert!(
                sk_large.p50() > sk_small.p50() && sk_large.p99() > sk_small.p99(),
                "large p50/p99 {}/{} must exceed small {}/{}",
                sk_large.p50(),
                sk_large.p99(),
                sk_small.p50(),
                sk_small.p99()
            );

            let json = obs::summary_json();
            assert!(json.contains("\"tenant_breakdown\""));
            assert!(json.contains("\"small-tenant\""));
            assert!(json.contains("\"large-tenant\""));

            // The 10us SLO is impossible for real swap-ins: both tenants
            // breach, the slow tenant burning hotter.
            let breaches = sched.slo_breaches();
            let burn = |tenant: &str| {
                breaches
                    .iter()
                    .filter(|b| b.tenant == tenant)
                    .map(|b| b.burn_rate_milli)
                    .max()
                    .unwrap_or_else(|| panic!("no breach for {tenant}: {breaches:?}"))
            };
            assert!(burn("large-tenant") > burn("small-tenant"));
            for b in &breaches {
                assert_eq!(b.metric, "swapin");
                assert!(b.observed_ns > b.threshold_ns);
            }
        });
    }

    #[test]
    fn park_is_idempotent() {
        Kernel::run_root(|| {
            let world = SnapifyWorld::boot(registry());
            let sched = SwapScheduler::new(1, "/swap/idem");
            let host = world.coi().create_host_process("t");
            let h = world.coi().create_process(&host, 0, "tenant.so").unwrap();
            let id = sched.admit(&h, 0);
            sched.park(id).unwrap();
            sched.park(id).unwrap();
            assert!(!sched.is_resident(id));
            assert_eq!(sched.swap_count(), 1);
        });
    }
}
