//! The Snapify API (Table 1) and its use scenarios (§5).
//!
//! | paper | here |
//! |---|---|
//! | `snapify_t` | [`SnapifyT`] |
//! | `snapify_pause()` | [`snapify_pause`] |
//! | `snapify_capture()` | [`snapify_capture`] (non-blocking) |
//! | `snapify_wait()` | [`snapify_wait`] |
//! | `snapify_resume()` | [`snapify_resume`] |
//! | `snapify_restore()` | [`snapify_restore`] |
//! | Fig 6 `snapify_swapout/swapin` | [`snapify_swapout`] / [`snapify_swapin`] |
//! | Fig 7 `snapify_migration` | [`snapify_migrate`] |
//!
//! One representational difference: the paper's `snapify_restore` returns
//! a new `COIProcess*`; here the existing [`CoiProcessHandle`] is rewired
//! in place (new pid, new channels, translated RDMA addresses), which is
//! equivalent for callers and keeps buffer handles valid.

use std::sync::Arc;

use coi_sim::msgs::CtlMsg;
use coi_sim::{CoiError, CoiProcessHandle};
use simkernel::obs;
use simkernel::{Semaphore, SimMutex};

use crate::SnapifyError;

/// The `snapify_t` parameter/result structure.
pub struct SnapifyT {
    // (fields below)
    /// `m_snapshot_path`: host-side directory holding the snapshot files.
    pub snapshot_path: String,
    /// `m_sem`: signalled when a capture completes.
    sem: Semaphore,
    /// `m_process`: the offload process this structure refers to.
    proc: CoiProcessHandle,
    /// Result of the last capture.
    capture_result: Arc<SimMutex<Option<Result<u64, SnapifyError>>>>,
    /// Virtual time at which the last capture completed.
    capture_completed_at: Arc<SimMutex<Option<simkernel::SimTime>>>,
    /// Whether the offload process was terminated by the capture.
    terminated: Arc<SimMutex<bool>>,
    /// Phase timings of the last restore (from the daemon's reply).
    restore_breakdown: Arc<SimMutex<Option<coi_sim::offload::RestoreBreakdown>>>,
}

impl std::fmt::Debug for SnapifyT {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapifyT")
            .field("snapshot_path", &self.snapshot_path)
            .field("terminated", &*self.terminated.lock())
            .finish()
    }
}

impl SnapifyT {
    /// Create a snapshot descriptor for `proc` targeting `snapshot_path`.
    pub fn new(proc: &CoiProcessHandle, snapshot_path: impl Into<String>) -> SnapifyT {
        let path = snapshot_path.into();
        SnapifyT {
            sem: Semaphore::new(format!("snapify {path}"), 0),
            proc: proc.clone(),
            capture_result: Arc::new(SimMutex::new(format!("snapify result {path}"), None)),
            capture_completed_at: Arc::new(SimMutex::new(format!("snapify done-at {path}"), None)),
            terminated: Arc::new(SimMutex::new(format!("snapify term {path}"), false)),
            restore_breakdown: Arc::new(SimMutex::new(format!("snapify restore-bd {path}"), None)),
            snapshot_path: path,
        }
    }

    /// The offload process handle (`m_process`).
    pub fn process(&self) -> &CoiProcessHandle {
        &self.proc
    }

    /// Size of the device snapshot produced by the last capture, if any.
    pub fn snapshot_bytes(&self) -> Option<u64> {
        match &*self.capture_result.lock() {
            Some(Ok(b)) => Some(*b),
            _ => None,
        }
    }

    /// Whether the capture terminated the offload process (swap-out).
    pub fn is_terminated(&self) -> bool {
        *self.terminated.lock()
    }

    /// Virtual time at which the last capture completed (the device-side
    /// snapshot write finished) — lets a checkpoint report the true device
    /// time even when the host snapshot finishes later.
    pub fn capture_completed_at(&self) -> Option<simkernel::SimTime> {
        *self.capture_completed_at.lock()
    }

    /// Phase timings of the last restore (library copy, local-store copy,
    /// BLCR restart, re-registration) as reported by the daemon.
    pub fn restore_breakdown(&self) -> Option<coi_sim::offload::RestoreBreakdown> {
        *self.restore_breakdown.lock()
    }
}

/// Pause the offload process: drain every SCIF channel between the host
/// process, the COI daemon, and the offload process, block the COI
/// library's sending threads, and save the local store to the snapshot
/// directory (§4.1).
///
/// Blocking. The channels stay quiesced until [`snapify_resume`].
pub fn snapify_pause(snapshot: &SnapifyT) -> Result<(), SnapifyError> {
    let handle = &snapshot.proc;
    let _span = obs::span!(
        "snapify.pause",
        pid = handle.pid(),
        device = handle.device(),
        path = snapshot.snapshot_path
    );

    // Save copies of the runtime libraries needed by the offload process
    // from the host file system into the snapshot directory (§4.1 — an
    // optimization over copying them back from the coprocessor).
    copy_libraries_to_snapshot(handle, &snapshot.snapshot_path)?;

    // Drain the host side (§4.1 cases 1–4, host half): lifecycle + RDMA
    // locks, cmd-channel shutdown marker, run-request lock + drain.
    handle.snapify_drain_host()?;

    // Fig 3: snapify-service request to the daemon, which creates the
    // pipe, signals the offload process, relays the handshake, forwards
    // the pause request, and reports completion through its monitor
    // thread.
    handle.snapify_send_ctl(CtlMsg::SnapifyPause {
        pid: handle.pid(),
        path: snapshot.snapshot_path.clone(),
    })?;
    match handle.snapify_await_reply()? {
        CtlMsg::SnapifyPauseComplete { ok: true } => Ok(()),
        CtlMsg::SnapifyPauseComplete { ok: false } => {
            // The offload side failed partway through its drain and may
            // hold locks / leave the barrier up. Best-effort resume so
            // the application is runnable again before the error
            // surfaces (the release calls are idempotent).
            let _ = snapify_resume(snapshot);
            Err(SnapifyError::Protocol("offload pause failed".into()))
        }
        other => Err(SnapifyError::Protocol(format!(
            "unexpected reply {other:?}"
        ))),
    }
}

/// Capture a snapshot of the (paused) offload process. **Non-blocking**:
/// returns immediately; the semaphore in `snapshot` is signalled when the
/// snapshot has been written (wait with [`snapify_wait`]). If `terminate`
/// is true the offload process exits after the capture (swap-out).
pub fn snapify_capture(snapshot: &SnapifyT, terminate: bool) -> Result<(), SnapifyError> {
    let handle = snapshot.proc.clone();
    handle.snapify_send_ctl(CtlMsg::SnapifyCapture {
        pid: handle.pid(),
        path: snapshot.snapshot_path.clone(),
        terminate,
    })?;
    // The completion arrives asynchronously on the ctl channel; a waiter
    // thread posts the semaphore (the paper signals it from the message
    // handler).
    let sem = snapshot.sem.clone();
    let result_slot = Arc::clone(&snapshot.capture_result);
    let term_slot = Arc::clone(&snapshot.terminated);
    let done_at_slot = Arc::clone(&snapshot.capture_completed_at);
    handle
        .host_proc()
        .clone()
        .spawn_thread("snapify-capture-wait", move || {
            // The capture span lives on the waiter thread: it opens when
            // the request is in flight and closes when the daemon reports
            // the snapshot written — the true device-side capture window.
            let span = obs::span!("snapify.capture", pid = handle.pid(), terminate = terminate);
            let outcome = match handle.snapify_await_capture() {
                Ok(CtlMsg::SnapifyCaptureComplete {
                    ok: true,
                    snapshot_bytes,
                }) => {
                    if terminate {
                        *term_slot.lock() = true;
                        handle.snapify_detach();
                    }
                    Ok(snapshot_bytes)
                }
                Ok(_) => Err(SnapifyError::Protocol("capture failed".into())),
                Err(e) => Err(SnapifyError::Coi(e)),
            };
            drop(span);
            if let Ok(bytes) = &outcome {
                obs::counter_add("snapify.device_snapshot_bytes", *bytes);
            }
            *done_at_slot.lock() = Some(simkernel::now());
            *result_slot.lock() = Some(outcome);
            sem.post();
        });
    Ok(())
}

/// Block until the pending capture completes (`snapify_wait`). Returns
/// the device snapshot size.
pub fn snapify_wait(snapshot: &SnapifyT) -> Result<u64, SnapifyError> {
    let _span = obs::span!("snapify.wait");
    snapshot.sem.wait();
    snapshot
        .capture_result
        .lock()
        .clone()
        .expect("semaphore posted without a result")
}

/// Resume the blocked threads of the host and offload processes and
/// reopen the drained channels (§4.2).
pub fn snapify_resume(snapshot: &SnapifyT) -> Result<(), SnapifyError> {
    let handle = &snapshot.proc;
    let _span = obs::span!(
        "snapify.resume",
        pid = handle.pid(),
        device = handle.device()
    );
    handle.snapify_send_ctl(CtlMsg::SnapifyResume { pid: handle.pid() })?;
    match handle.snapify_await_reply()? {
        CtlMsg::SnapifyResumeComplete => {
            handle.snapify_release_host();
            Ok(())
        }
        other => Err(SnapifyError::Protocol(format!(
            "unexpected reply {other:?}"
        ))),
    }
}

/// Restore the offload process from its snapshot onto coprocessor
/// `device` (§4.3). The handle is rewired to the new process (new pid,
/// reconnected SCIF channels, RDMA addresses translated through the
/// (old, new) lookup table). The restored process stays inactive until
/// [`snapify_resume`].
pub fn snapify_restore(snapshot: &SnapifyT, device: usize) -> Result<(), SnapifyError> {
    let handle = &snapshot.proc;
    let _span = obs::span!(
        "snapify.restore",
        device = device,
        path = snapshot.snapshot_path
    );
    // Fresh ctl connection to the *target* device's daemon.
    let ctl = handle.snapify_connect_ctl(device)?;
    ctl.send(
        CtlMsg::SnapifyRestore {
            path: snapshot.snapshot_path.clone(),
            host_pid: handle.host_proc().pid().0,
        }
        .encode(),
    )
    .map_err(|e| SnapifyError::Coi(CoiError::Scif(e)))?;
    match handle.snapify_await_reply()? {
        CtlMsg::SnapifyRestoreReply {
            pid,
            ports,
            addr_table,
            breakdown,
            error,
        } => {
            if pid == 0 {
                return Err(SnapifyError::RestoreFailed(error));
            }
            handle.snapify_attach(device, pid, ports, &addr_table, ctl)?;
            *snapshot.terminated.lock() = false;
            // The paper's restart breakdown (Fig 10), as histograms so
            // repeated restores aggregate into distributions.
            obs::histogram_observe("snapify.restore.library_copy_ns", breakdown.0);
            obs::histogram_observe("snapify.restore.store_copy_ns", breakdown.1);
            obs::histogram_observe("snapify.restore.blcr_restart_ns", breakdown.2);
            obs::histogram_observe("snapify.restore.reregistration_ns", breakdown.3);
            *snapshot.restore_breakdown.lock() = Some(coi_sim::offload::RestoreBreakdown {
                library_copy_ns: breakdown.0,
                store_copy_ns: breakdown.1,
                blcr_restart_ns: breakdown.2,
                reregistration_ns: breakdown.3,
            });
            Ok(())
        }
        other => Err(SnapifyError::Protocol(format!(
            "unexpected reply {other:?}"
        ))),
    }
}

/// Swap the offload process out to `snapshot_path` (Fig 6a): pause,
/// capture with termination, wait. Returns the descriptor needed to swap
/// back in. The host process's COI threads stay blocked until the
/// process is swapped in and resumed.
pub fn snapify_swapout(
    proc: &CoiProcessHandle,
    snapshot_path: &str,
) -> Result<SnapifyT, SnapifyError> {
    let _span = obs::span!("snapify.swapout", pid = proc.pid(), path = snapshot_path);
    let snapshot = SnapifyT::new(proc, snapshot_path);
    snapify_pause(&snapshot)?;
    let captured = snapify_capture(&snapshot, true).and_then(|_| snapify_wait(&snapshot));
    if let Err(e) = captured {
        // The capture failed but the pause succeeded: the process is
        // intact, just quiesced. Resume it so a failed swap-out leaves
        // the tenant running instead of wedged.
        let _ = snapify_resume(&snapshot);
        return Err(e);
    }
    Ok(snapshot)
}

/// Swap the offload process back in on coprocessor `device_to` (Fig 6b):
/// restore + resume.
pub fn snapify_swapin(snapshot: &SnapifyT, device_to: usize) -> Result<(), SnapifyError> {
    let _span = obs::span!("snapify.swapin", device = device_to);
    snapify_restore(snapshot, device_to)?;
    snapify_resume(snapshot)
}

/// Migrate the offload process to coprocessor `device_to` (Fig 7):
/// swap-out to a scratch directory, swap-in on the target device.
///
/// The scratch directory is namespaced by *host + tenant*
/// (`/tmp/snapify-migrate-<hostname>-h<host_pid>-p<pid>`): offload pids
/// are only unique within one node, so two tenants with colliding pids
/// on different hosts of a fleet must never share a staging path. If
/// the swap-in half fails, the process is restored onto its original
/// device and the scratch directory is removed from the host fs before
/// the error surfaces, so a retry never sees half of this attempt's
/// image (store-managed chunks under the same prefix are released by
/// the owning store's prefix GC, e.g. `SwapScheduler::with_store`).
pub fn snapify_migrate(
    proc: &CoiProcessHandle,
    device_to: usize,
) -> Result<SnapifyT, SnapifyError> {
    let device_from = proc.device();
    let _span = obs::span!(
        "snapify.migrate",
        pid = proc.pid(),
        from = device_from,
        to = device_to
    );
    let path = format!(
        "/tmp/snapify-migrate-{}-h{}-p{}",
        proc.host_params().hostname,
        proc.host_proc().pid().0,
        proc.pid()
    );
    let snapshot = snapify_swapout(proc, &path)?;
    if let Err(e) = snapify_swapin(&snapshot, device_to) {
        // Failed mid-migration: the swap-out already terminated the
        // offload process, so put the tenant back where it came from
        // (every chunk is still warm at the source), then drop the
        // scratch image. If even the restore-back fails the snapshot is
        // the only copy left — keep it and surface the original error.
        if snapify_swapin(&snapshot, device_from).is_ok() {
            proc.host_fs().delete_prefix(&format!("{path}/"));
        }
        return Err(e);
    }
    Ok(snapshot)
}

/// The §4.1 library-copy step: MPSS keeps the device runtime libraries on
/// the host fs, so pausing just copies them into the snapshot directory.
fn copy_libraries_to_snapshot(handle: &CoiProcessHandle, path: &str) -> Result<(), SnapifyError> {
    let world_fs = handle.host_fs();
    let image_bytes = handle.binary_image_bytes();
    world_fs.create_or_truncate(&format!("{path}/libraries"));
    world_fs
        .append(
            &format!("{path}/libraries"),
            phi_platform::Payload::synthetic(0x11B5, image_bytes),
        )
        .map_err(|e| SnapifyError::Io(e.to_string()))?;
    Ok(())
}
