//! Fleet-wide swap control plane over the shared cross-node snapstore
//! pool.
//!
//! The paper runs Snapify on one host with a handful of coprocessors
//! and defers placement to "a job scheduler like COSMIC" (§5 Remark).
//! This module scales that remark out to a *fleet*: many hosts × many
//! cards under one global scheduler, with the per-node [`SwapScheduler`]
//! as the local mechanism and swap-based bin-packing plus proactive
//! cross-node migration as the global policy.
//!
//! Architecture — one controller, one agent per node:
//!
//! * The **controller** runs as a simulated thread in domain 0. It owns
//!   the placement plan, drives the run through explicit phases
//!   (launch → cycle → report → migrate → report → shutdown), and
//!   relays migration payloads between nodes. Every controller↔agent
//!   exchange crosses a [`MultiNodeCluster`] link, so control traffic
//!   pays real network latency and never undercuts the conservative
//!   sync lookahead — the whole fleet is byte-identical at every
//!   domain count.
//! * Each **agent** boots a full [`SnapifyWorld`] (COI + Snapify-IO +
//!   dedup store) attached to the shared [`ClusterPool`], admits its
//!   tenants to a local [`SwapScheduler`], and executes control
//!   commands serially from its command link.
//!
//! Cross-node migration reuses the paper's own building blocks
//! end-to-end: the source pauses the tenant, takes a host BLCR
//! checkpoint plus a terminating device capture (publishing the
//! snapshot's chunk manifests to the pool), and ships only the small
//! host snapshot over the wire; the destination regenerates the
//! library file locally and restarts from the snapshot path, pulling
//! device state through the pool — which means chunks the destination
//! already holds (the shared base image and input regions seeded by
//! its own swap traffic) never cross the network. A failed restore is
//! rolled back on both ends: the destination deletes every partial
//! artifact and the source restores the tenant from its still-intact
//! capture, leaving it resumable in place.

use std::collections::BTreeMap;

use coi_sim::{CoiBuffer, CoiConfig, CoiProcessHandle, DeviceBinary, FunctionRegistry};
use phi_platform::{FaultSchedule, NodeId, Payload, PlatformParams};
use scif_sim::{ClusterRx, ClusterTx};
use simkernel::{obs, SchedPolicy};
use simproc::SnapshotStorage;
use snapstore::{ClusterPool, DedupConfig, PoolStats};

use crate::api::{self, SnapifyT};
use crate::cluster::MultiNodeCluster;
use crate::cr;
use crate::scheduler::{JobId, SwapScheduler};
use crate::world::SnapifyWorld;
use crate::SnapifyError;

/// Synthetic tag of the base input region every tenant shares (the
/// fleet's common model/dataset image — the dedup win).
const BASE_TAG: u64 = 0x000F_1EE7_BA5E;
/// Synthetic tag family for each tenant's private delta region.
const UNIQ_TAG: u64 = 0x000F_1EE7_0000_0000;
/// Host-side directory agents park swapped-out tenants under.
const SWAP_DIR: &str = "/fleet/swap";
/// Host-side directory migration snapshots are staged under.
const MIGRATE_DIR: &str = "/fleet/migrate";

/// Configuration of a fleet run.
#[derive(Clone)]
pub struct FleetConfig {
    /// Number of Phi servers in the fleet.
    pub nodes: usize,
    /// Parallel time domains to simulate on (pure perf knob; results
    /// are identical at every value).
    pub domains: u32,
    /// Total tenants across the fleet. Must be at least
    /// `nodes * params.num_devices` so every device gets a resident
    /// seed tenant.
    pub tenants: usize,
    /// Bytes of the shared base region every tenant maps.
    pub base_bytes: u64,
    /// Bytes of each tenant's private region.
    pub unique_bytes: u64,
    /// Cap on proactive migrations per run.
    pub max_migrations: usize,
    /// Hardware/network parameters shared by every node (hostnames are
    /// assigned per node on top of this).
    pub params: PlatformParams,
    /// Kernel scheduling policy (e.g. `SchedPolicy::Random(seed)` for
    /// chaos runs).
    pub policy: SchedPolicy,
    /// Per-node fault schedules, indexed by node; nodes past the end of
    /// the vector run fault-free.
    pub node_faults: Vec<FaultSchedule>,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            nodes: 4,
            domains: 1,
            tenants: 16,
            base_bytes: 16 << 20,
            unique_bytes: 1 << 20,
            max_migrations: 4,
            params: PlatformParams::default(),
            policy: SchedPolicy::Fifo,
            node_faults: Vec::new(),
        }
    }
}

/// One node's load sample, as reported by its agent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeLoad {
    /// Reporting node.
    pub node: usize,
    /// Tenants resident on a device right now.
    pub resident: u64,
    /// Tenants swapped out to host storage.
    pub parked: u64,
    /// Swap operations the node has performed so far.
    pub swaps: u64,
}

/// The outcome of one proactive migration attempt.
#[derive(Clone, Debug)]
pub struct MigrationOutcome {
    /// Migrated tenant.
    pub tenant: u64,
    /// Source node.
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// Whether the tenant committed at the destination (`false` means
    /// it was restored in place at the source).
    pub committed: bool,
    /// Device snapshot bytes captured at the source.
    pub dev_bytes: u64,
    /// Host snapshot bytes shipped over the wire.
    pub host_bytes: u64,
    /// Destination error for a failed attempt.
    pub error: Option<String>,
}

/// Per-agent counters returned when an agent shuts down.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// The agent's node.
    pub node: usize,
    /// Tenants launched here.
    pub launched: u64,
    /// Tenants parked at launch (overflow bin-packed to host storage).
    pub parked_at_launch: u64,
    /// Swap cycles (park + swap-in) performed on request.
    pub cycled: u64,
    /// Tenants migrated away.
    pub migrated_out: u64,
    /// Tenants migrated in.
    pub migrated_in: u64,
    /// Failed in-migrations rolled back here (source side).
    pub restored_back: u64,
    /// Tenants owned at shutdown.
    pub final_tenants: u64,
}

/// The result of a fleet run.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Fleet size.
    pub nodes: usize,
    /// Total tenants.
    pub tenants: usize,
    /// Load samples before rebalancing.
    pub loads_before: Vec<NodeLoad>,
    /// Load samples after rebalancing.
    pub loads_after: Vec<NodeLoad>,
    /// Every migration attempted, in execution order.
    pub migrations: Vec<MigrationOutcome>,
    /// Shared pool counters at end of run.
    pub pool: PoolStats,
    /// Chunks still referenced or pinned in the pool at end of run
    /// (a clean shutdown leaves zero — anything else is a leak).
    pub pool_live_chunks: usize,
    /// Manifests still holding directory entries at end of run.
    pub pool_live_manifests: usize,
    /// Merged deterministic trace fingerprint (event count, hash).
    pub fingerprint: (usize, u64),
    /// Virtual end-of-run time in nanoseconds.
    pub virtual_ns: u64,
    /// Per-agent counters, sorted by node.
    pub agents: Vec<AgentStats>,
}

impl FleetReport {
    /// Migrations that committed at their destination.
    pub fn committed(&self) -> usize {
        self.migrations.iter().filter(|m| m.committed).count()
    }

    /// Migrations rolled back to their source.
    pub fn failed_back(&self) -> usize {
        self.migrations.iter().filter(|m| !m.committed).count()
    }

    /// Fraction of snapshot bytes that warm cross-node restores avoided
    /// shipping (vs a cold restore fetching every chunk).
    pub fn warm_saved_fraction(&self) -> f64 {
        self.pool.saved_fraction()
    }

    /// Digest of the fleet's observable trace: every load sample,
    /// migration outcome, pool counter, agent counter and the virtual
    /// end time, FNV-1a folded in a fixed order.
    ///
    /// This is the *domain-count-invariant* determinism contract: the
    /// raw kernel fingerprint is replay-stable only at a fixed domain
    /// count (same-domain ports legitimately schedule differently than
    /// cross-domain ones), but everything the fleet can observe — and
    /// therefore this digest — is byte-identical for `domains = 1` and
    /// `domains = N`.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
        };
        fold(self.nodes as u64);
        fold(self.tenants as u64);
        fold(self.virtual_ns);
        for loads in [&self.loads_before, &self.loads_after] {
            for l in loads.iter() {
                fold(l.node as u64);
                fold(l.resident);
                fold(l.parked);
                fold(l.swaps);
            }
        }
        for m in &self.migrations {
            fold(m.tenant);
            fold(m.from as u64);
            fold(m.to as u64);
            fold(m.committed as u64);
            fold(m.dev_bytes);
            fold(m.host_bytes);
        }
        fold(self.pool.manifests_published);
        fold(self.pool.manifests_released);
        fold(self.pool.chunks_published);
        fold(self.pool.chunk_hits);
        fold(self.pool.chunks_dead);
        fold(self.pool.bytes_fetched_remote);
        fold(self.pool.bytes_avoided_remote);
        fold(self.pool_live_chunks as u64);
        fold(self.pool_live_manifests as u64);
        for a in &self.agents {
            fold(a.node as u64);
            fold(a.launched);
            fold(a.parked_at_launch);
            fold(a.cycled);
            fold(a.migrated_out);
            fold(a.migrated_in);
            fold(a.restored_back);
            fold(a.final_tenants);
        }
        h
    }
}

/// The device-side workload every fleet tenant runs: pure compute that
/// reads its buffers without rewriting them, so buffer contents (and
/// therefore snapshot chunks) stay exactly as placement wrote them.
pub fn fleet_registry() -> FunctionRegistry {
    let reg = FunctionRegistry::new();
    reg.register(
        DeviceBinary::new("fleet.so", 1 << 20, 8 << 20).simple_function("touch", |ctx| {
            ctx.compute(5e8, 30);
            Vec::new()
        }),
    );
    reg
}

// ---------------------------------------------------------------------
// Control protocol: hand-framed payloads over cluster links. Every
// message is a tag byte plus little-endian u64 fields (strings are
// length-prefixed). Large content (the host snapshot) is never framed —
// it follows its header as a separate raw payload so synthetic extents
// survive the trip.
// ---------------------------------------------------------------------

fn enc_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn enc_str(out: &mut Vec<u8>, s: &str) {
    enc_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct Dec {
    buf: Vec<u8>,
    off: usize,
}

impl Dec {
    fn new(p: &Payload) -> Dec {
        Dec {
            buf: p.to_bytes(),
            off: 0,
        }
    }

    fn u8(&mut self) -> u8 {
        let b = self.buf[self.off];
        self.off += 1;
        b
    }

    fn u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.off..self.off + 8]);
        self.off += 8;
        u64::from_le_bytes(raw)
    }

    fn str(&mut self) -> String {
        let len = self.u64() as usize;
        let s = String::from_utf8(self.buf[self.off..self.off + len].to_vec())
            .expect("fleet message strings are utf-8");
        self.off += len;
        s
    }
}

/// Controller → agent commands.
enum Ctl {
    Launch {
        tenant: u64,
        device: u64,
        park: bool,
    },
    Cycle {
        tenant: u64,
    },
    Report,
    MigrateOut {
        tenant: u64,
        path: String,
    },
    /// Followed by one raw payload: the host snapshot.
    RestoreIn {
        tenant: u64,
        device: u64,
        path: String,
        binary: String,
    },
    Cleanup {
        tenant: u64,
    },
    RestoreBack {
        tenant: u64,
    },
    Shutdown,
}

impl Ctl {
    fn encode(&self) -> Payload {
        let mut b = Vec::new();
        match self {
            Ctl::Launch {
                tenant,
                device,
                park,
            } => {
                b.push(1);
                enc_u64(&mut b, *tenant);
                enc_u64(&mut b, *device);
                enc_u64(&mut b, *park as u64);
            }
            Ctl::Cycle { tenant } => {
                b.push(2);
                enc_u64(&mut b, *tenant);
            }
            Ctl::Report => b.push(3),
            Ctl::MigrateOut { tenant, path } => {
                b.push(4);
                enc_u64(&mut b, *tenant);
                enc_str(&mut b, path);
            }
            Ctl::RestoreIn {
                tenant,
                device,
                path,
                binary,
            } => {
                b.push(5);
                enc_u64(&mut b, *tenant);
                enc_u64(&mut b, *device);
                enc_str(&mut b, path);
                enc_str(&mut b, binary);
            }
            Ctl::Cleanup { tenant } => {
                b.push(6);
                enc_u64(&mut b, *tenant);
            }
            Ctl::RestoreBack { tenant } => {
                b.push(7);
                enc_u64(&mut b, *tenant);
            }
            Ctl::Shutdown => b.push(8),
        }
        Payload::bytes(b)
    }

    fn decode(p: &Payload) -> Ctl {
        let mut d = Dec::new(p);
        match d.u8() {
            1 => Ctl::Launch {
                tenant: d.u64(),
                device: d.u64(),
                park: d.u64() != 0,
            },
            2 => Ctl::Cycle { tenant: d.u64() },
            3 => Ctl::Report,
            4 => Ctl::MigrateOut {
                tenant: d.u64(),
                path: d.str(),
            },
            5 => Ctl::RestoreIn {
                tenant: d.u64(),
                device: d.u64(),
                path: d.str(),
                binary: d.str(),
            },
            6 => Ctl::Cleanup { tenant: d.u64() },
            7 => Ctl::RestoreBack { tenant: d.u64() },
            8 => Ctl::Shutdown,
            t => panic!("unknown fleet control tag {t}"),
        }
    }
}

/// Agent → controller replies.
enum Rep {
    Launched {
        tenant: u64,
    },
    Cycled {
        tenant: u64,
        bytes: u64,
    },
    Load {
        resident: u64,
        parked: u64,
        swaps: u64,
    },
    /// Followed by one raw payload: the host snapshot.
    MigratedOut {
        tenant: u64,
        dev_bytes: u64,
        host_bytes: u64,
        binary: String,
    },
    MigrateFailed {
        tenant: u64,
        error: String,
    },
    Restored {
        tenant: u64,
        ok: bool,
        error: String,
    },
    RestoredBack {
        tenant: u64,
    },
    Cleaned {
        tenant: u64,
    },
    Done {
        tenants: u64,
    },
}

impl Rep {
    fn encode(&self) -> Payload {
        let mut b = Vec::new();
        match self {
            Rep::Launched { tenant } => {
                b.push(1);
                enc_u64(&mut b, *tenant);
            }
            Rep::Cycled { tenant, bytes } => {
                b.push(2);
                enc_u64(&mut b, *tenant);
                enc_u64(&mut b, *bytes);
            }
            Rep::Load {
                resident,
                parked,
                swaps,
            } => {
                b.push(3);
                enc_u64(&mut b, *resident);
                enc_u64(&mut b, *parked);
                enc_u64(&mut b, *swaps);
            }
            Rep::MigratedOut {
                tenant,
                dev_bytes,
                host_bytes,
                binary,
            } => {
                b.push(4);
                enc_u64(&mut b, *tenant);
                enc_u64(&mut b, *dev_bytes);
                enc_u64(&mut b, *host_bytes);
                enc_str(&mut b, binary);
            }
            Rep::MigrateFailed { tenant, error } => {
                b.push(5);
                enc_u64(&mut b, *tenant);
                enc_str(&mut b, error);
            }
            Rep::Restored { tenant, ok, error } => {
                b.push(6);
                enc_u64(&mut b, *tenant);
                enc_u64(&mut b, *ok as u64);
                enc_str(&mut b, error);
            }
            Rep::RestoredBack { tenant } => {
                b.push(7);
                enc_u64(&mut b, *tenant);
            }
            Rep::Cleaned { tenant } => {
                b.push(8);
                enc_u64(&mut b, *tenant);
            }
            Rep::Done { tenants } => {
                b.push(9);
                enc_u64(&mut b, *tenants);
            }
        }
        Payload::bytes(b)
    }

    fn decode(p: &Payload) -> Rep {
        let mut d = Dec::new(p);
        match d.u8() {
            1 => Rep::Launched { tenant: d.u64() },
            2 => Rep::Cycled {
                tenant: d.u64(),
                bytes: d.u64(),
            },
            3 => Rep::Load {
                resident: d.u64(),
                parked: d.u64(),
                swaps: d.u64(),
            },
            4 => Rep::MigratedOut {
                tenant: d.u64(),
                dev_bytes: d.u64(),
                host_bytes: d.u64(),
                binary: d.str(),
            },
            5 => Rep::MigrateFailed {
                tenant: d.u64(),
                error: d.str(),
            },
            6 => Rep::Restored {
                tenant: d.u64(),
                ok: d.u64() != 0,
                error: d.str(),
            },
            7 => Rep::RestoredBack { tenant: d.u64() },
            8 => Rep::Cleaned { tenant: d.u64() },
            9 => Rep::Done { tenants: d.u64() },
            t => panic!("unknown fleet reply tag {t}"),
        }
    }
}

// ---------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
struct Slot {
    tenant: u64,
    node: usize,
    device: usize,
    park: bool,
}

/// Deliberately *skewed* deterministic placement: every device fleet-
/// wide gets one resident seed tenant, and all remaining tenants pile
/// onto the first `max(1, nodes/3)` "hot" nodes as parked overflow —
/// the imbalance the rebalancer then corrects.
fn plan_placement(cfg: &FleetConfig) -> Vec<Slot> {
    let devices = cfg.params.num_devices;
    let seeds = cfg.nodes * devices;
    assert!(
        cfg.tenants >= seeds,
        "need at least one tenant per device ({seeds}) to seed the fleet, got {}",
        cfg.tenants
    );
    let hot = (cfg.nodes / 3).max(1);
    let mut slots = Vec::with_capacity(cfg.tenants);
    // Overflow first: an agent can only admit a tenant to a *free*
    // device, so parked tenants launch (and vacate the device again)
    // before the seed tenant claims residency.
    for t in seeds..cfg.tenants {
        let i = t - seeds;
        slots.push(Slot {
            tenant: t as u64,
            node: i % hot,
            device: (i / hot) % devices,
            park: true,
        });
    }
    for t in 0..seeds {
        slots.push(Slot {
            tenant: t as u64,
            node: t % cfg.nodes,
            device: t / cfg.nodes,
            park: false,
        });
    }
    slots
}

// ---------------------------------------------------------------------
// Agent
// ---------------------------------------------------------------------

struct AgentTenant {
    job: JobId,
    host: simproc::SimProcess,
    handle: CoiProcessHandle,
    device: usize,
}

/// A tenant captured for migration, held while the controller decides
/// whether the destination committed.
struct PendingOut {
    snap: SnapifyT,
    host: simproc::SimProcess,
    handle: CoiProcessHandle,
    device: usize,
    /// Resident job parked to free the device for the capture.
    bumped: Option<JobId>,
    path: String,
}

struct Agent {
    node: usize,
    cfg: FleetConfig,
    world: SnapifyWorld,
    sched: SwapScheduler,
    tenants: BTreeMap<u64, AgentTenant>,
    pending_out: BTreeMap<u64, PendingOut>,
    /// Migration snapshot paths imported here (released at shutdown).
    imported: Vec<String>,
    stats: AgentStats,
}

impl Agent {
    fn boot(node: usize, cfg: FleetConfig, pool: &ClusterPool) -> Agent {
        let params = PlatformParams {
            hostname: format!("node{node}"),
            ..cfg.params.clone()
        };
        let faults = cfg
            .node_faults
            .get(node)
            .cloned()
            .unwrap_or_else(FaultSchedule::none);
        let world = SnapifyWorld::boot_fleet_node(
            params,
            CoiConfig::default(),
            fleet_registry(),
            DedupConfig::default(),
            faults,
            pool,
            node,
        );
        let store = world.store().expect("fleet worlds have a store").clone();
        // The swap dir is namespaced by node: pool manifests are keyed
        // by path fleet-wide, and every node's job ids start at 1, so a
        // shared dir would have two nodes publishing different tenants
        // under the same "/fleet/swap/job1" path.
        let sched = SwapScheduler::new(cfg.params.num_devices, format!("{SWAP_DIR}/n{node}"))
            .with_store(&store);
        Agent {
            node,
            cfg,
            world,
            sched,
            tenants: BTreeMap::new(),
            pending_out: BTreeMap::new(),
            imported: Vec::new(),
            stats: AgentStats {
                node,
                ..AgentStats::default()
            },
        }
    }

    fn tenant_tag(tenant: u64) -> String {
        format!("t{tenant}")
    }

    fn launch(&mut self, tenant: u64, device: usize, park: bool) -> Result<(), SnapifyError> {
        let _span = obs::span!("fleet.launch", tenant = tenant, node = self.node);
        let host = self
            .world
            .coi()
            .create_host_process(&format!("tenant{tenant}"));
        let handle = self.world.coi().create_process(&host, device, "fleet.so")?;
        let base = handle.create_buffer(self.cfg.base_bytes)?;
        handle.buffer_write(&base, Payload::synthetic(BASE_TAG, self.cfg.base_bytes))?;
        let uniq = handle.create_buffer(self.cfg.unique_bytes)?;
        handle.buffer_write(
            &uniq,
            Payload::synthetic(UNIQ_TAG | tenant, self.cfg.unique_bytes),
        )?;
        handle.run_sync("touch", Vec::new(), &[&base, &uniq])?;
        let job = self
            .sched
            .admit_tagged(&handle, device, &Self::tenant_tag(tenant));
        if park {
            self.sched.park(job)?;
            self.stats.parked_at_launch += 1;
        }
        self.tenants.insert(
            tenant,
            AgentTenant {
                job,
                host,
                handle,
                device,
            },
        );
        self.stats.launched += 1;
        Ok(())
    }

    /// One full swap cycle of a resident tenant: park it and bring it
    /// straight back. The point is the side effect — the park commits
    /// the tenant's snapshot into this node's local chunk index (and
    /// the shared pool), warming the node for future cross-node
    /// restores of look-alike tenants.
    fn cycle(&mut self, tenant: u64) -> Result<u64, SnapifyError> {
        let at = self.tenants.get(&tenant).expect("cycle of unknown tenant");
        let (job, device) = (at.job, at.device);
        self.sched.park(job)?;
        self.sched.swap_in(job, device)?;
        self.stats.cycled += 1;
        Ok(self.sched.swap_size_estimate(job).unwrap_or(0))
    }

    fn load(&self) -> Rep {
        let resident = self.sched.resident_jobs().len() as u64;
        Rep::Load {
            resident,
            parked: (self.tenants.len() as u64).saturating_sub(resident),
            swaps: self.sched.swap_count(),
        }
    }

    /// Source half of a migration: bring the (parked) tenant resident,
    /// detach it from the local scheduler, and capture it for transfer —
    /// host BLCR checkpoint plus a terminating device capture whose
    /// manifests land in the shared pool. Returns the host snapshot to
    /// ship. The capture stays intact until the controller reports the
    /// destination's verdict.
    fn migrate_out(
        &mut self,
        tenant: u64,
        path: &str,
    ) -> Result<(Payload, u64, u64), SnapifyError> {
        let _span = obs::span!("fleet.migrate_out", tenant = tenant, node = self.node);
        let at = self
            .tenants
            .remove(&tenant)
            .ok_or_else(|| SnapifyError::Protocol(format!("migrate of unknown tenant {tenant}")))?;
        let device = at.device;
        // Vacate the device (its resident is usually a seed tenant),
        // then bring the migrating tenant back one last time.
        let bumped = self
            .sched
            .resident_jobs()
            .iter()
            .find(|(d, _)| *d == device)
            .map(|(_, j)| *j);
        if let Some(job) = bumped {
            self.sched.park(job)?;
        }
        self.sched.swap_in(at.job, device)?;
        // Detach from local scheduling; this also garbage-collects the
        // tenant's swap snapshots (the migration capture below is the
        // copy that moves).
        self.sched.retire(at.job)?;

        let snap = SnapifyT::new(&at.handle, path);
        let host_state = format!("tenant{tenant}").into_bytes();
        api::snapify_pause(&snap)?;
        api::snapify_capture(&snap, true)?;
        let host_bytes =
            cr::host_checkpoint(&self.world, at.handle.host_proc(), &host_state, path)?;
        let dev_bytes = api::snapify_wait(&snap)?;

        let storage: &dyn SnapshotStorage = self.world.io();
        let mut src = storage
            .source(NodeId::HOST, &format!("{path}/host_snapshot"))
            .map_err(|e| SnapifyError::Io(e.to_string()))?;
        let mut content = Payload::empty();
        while let Some(chunk) = src
            .read(4 << 20)
            .map_err(|e| SnapifyError::Io(e.to_string()))?
        {
            content.append(chunk);
        }
        self.pending_out.insert(
            tenant,
            PendingOut {
                snap,
                host: at.host,
                handle: at.handle,
                device,
                bumped,
                path: path.to_string(),
            },
        );
        Ok((content, dev_bytes, host_bytes))
    }

    /// Delete every host-side artifact of a migration snapshot: the
    /// store-backed files (releasing their pool holds), plus the
    /// library copy and host snapshot, which bypass the storage seam.
    fn delete_snapshot_dir(&self, path: &str) {
        let store = self.world.store().expect("fleet worlds have a store");
        store.delete_prefix(&format!("{path}/"));
        let fs = self.world.server().host().fs();
        let _ = fs.delete(&format!("{path}/libraries"));
        let _ = fs.delete(&format!("{path}/host_snapshot"));
    }

    /// The destination committed: the tenant now lives there. Drop the
    /// source copy entirely — process, snapshot files, pool holds.
    fn cleanup_committed(&mut self, tenant: u64) {
        let p = self
            .pending_out
            .remove(&tenant)
            .expect("cleanup of unknown pending migration");
        p.host.exit();
        self.delete_snapshot_dir(&p.path);
        if let Some(job) = p.bumped {
            self.sched
                .swap_in(job, p.device)
                .expect("restoring the bumped resident after migration");
        }
        self.stats.migrated_out += 1;
    }

    /// The destination failed: restore the tenant in place from the
    /// migration capture (every chunk is still local), re-admit it, and
    /// only then drop the capture. Proves the tenant is resumable by
    /// running an offload on it, then restores the exact pre-migration
    /// state — tenant parked, the bumped resident back on the device —
    /// so the controller may retry the same tenant later.
    fn restore_back(&mut self, tenant: u64) -> Result<(), SnapifyError> {
        let _span = obs::span!("fleet.restore_back", tenant = tenant, node = self.node);
        let p = self
            .pending_out
            .remove(&tenant)
            .expect("restore-back of unknown pending migration");
        api::snapify_restore(&p.snap, p.device)?;
        api::snapify_resume(&p.snap)?;
        let job = self
            .sched
            .admit_tagged(&p.handle, p.device, &Self::tenant_tag(tenant));
        let bufs = p.handle.buffers();
        {
            let refs: Vec<&CoiBuffer> = bufs.iter().map(|b| b.as_ref()).collect();
            p.handle.run_sync("touch", Vec::new(), &refs)?;
        }
        self.sched.park(job)?;
        if let Some(seed) = p.bumped {
            self.sched.swap_in(seed, p.device)?;
        }
        self.delete_snapshot_dir(&p.path);
        self.tenants.insert(
            tenant,
            AgentTenant {
                job,
                host: p.host,
                handle: p.handle,
                device: p.device,
            },
        );
        self.stats.restored_back += 1;
        Ok(())
    }

    /// Destination half of a migration: make room on the target device,
    /// materialize the host snapshot and library file locally, and
    /// restart the application from the snapshot path — device state
    /// flows through the dedup store, which pulls missing chunks from
    /// the pool. On failure every partial artifact is deleted and the
    /// bumped resident is restored.
    fn restore_in(
        &mut self,
        tenant: u64,
        device: usize,
        path: &str,
        binary: &str,
        host_snapshot: Payload,
    ) -> Result<(), SnapifyError> {
        let _span = obs::span!("fleet.restore_in", tenant = tenant, node = self.node);
        let bumped = self
            .sched
            .resident_jobs()
            .iter()
            .find(|(d, _)| *d == device)
            .map(|(_, j)| *j);
        let attempt = (|| -> Result<cr::RestartedApp, SnapifyError> {
            if let Some(job) = bumped {
                self.sched.park(job)?;
            }
            let storage: &dyn SnapshotStorage = self.world.io();
            let mut sink = storage
                .sink(NodeId::HOST, &format!("{path}/host_snapshot"))
                .map_err(|e| SnapifyError::Io(e.to_string()))?;
            sink.write(host_snapshot)
                .map_err(|e| SnapifyError::Io(e.to_string()))?;
            sink.close().map_err(|e| SnapifyError::Io(e.to_string()))?;
            // The destination regenerates the library file from its own
            // copy of the binary — libraries never cross the network
            // (§4.4's library copy is host-local on both ends).
            let image_bytes = self
                .world
                .coi()
                .registry()
                .get(binary)
                .map(|b| b.image_bytes)
                .ok_or_else(|| {
                    SnapifyError::Protocol(format!("binary {binary} not registered here"))
                })?;
            let fs = self.world.server().host().fs();
            fs.create_or_truncate(&format!("{path}/libraries"));
            fs.append(
                &format!("{path}/libraries"),
                Payload::synthetic(0x11B5, image_bytes),
            )
            .map_err(|e| SnapifyError::Io(e.to_string()))?;
            cr::restart_application(&self.world, path, binary, device)
        })();
        match attempt {
            Ok(app) => {
                let job = self
                    .sched
                    .admit_tagged(&app.handle, device, &Self::tenant_tag(tenant));
                let bufs = app.handle.buffers();
                {
                    let refs: Vec<&CoiBuffer> = bufs.iter().map(|b| b.as_ref()).collect();
                    app.handle.run_sync("touch", Vec::new(), &refs)?;
                }
                self.imported.push(path.to_string());
                self.tenants.insert(
                    tenant,
                    AgentTenant {
                        job,
                        host: app.host_proc,
                        handle: app.handle,
                        device,
                    },
                );
                self.stats.migrated_in += 1;
                Ok(())
            }
            Err(e) => {
                // Roll back: no partial snapshot, no pool holds, no
                // directory entries — and the bumped resident returns.
                self.delete_snapshot_dir(path);
                if let Some(job) = bumped {
                    self.sched
                        .swap_in(job, device)
                        .expect("restoring the bumped resident after failed in-migration");
                }
                Err(e)
            }
        }
    }

    fn shutdown(&mut self) {
        self.stats.final_tenants = self.tenants.len() as u64;
        let tenants = std::mem::take(&mut self.tenants);
        for (_, at) in tenants {
            let resident = self.sched.is_resident(at.job);
            self.sched.retire(at.job).expect("retiring tenant");
            if resident {
                let _ = at.handle.destroy();
            }
            at.host.exit();
        }
        for path in std::mem::take(&mut self.imported) {
            self.delete_snapshot_dir(&path);
        }
    }
}

/// Agent main loop: serially execute commands until shutdown.
fn run_agent(
    node: usize,
    cfg: FleetConfig,
    pool: ClusterPool,
    ctl: ClusterRx,
    rep: ClusterTx,
) -> AgentStats {
    let mut agent = Agent::boot(node, cfg, &pool);
    while let Ok(msg) = ctl.recv() {
        match Ctl::decode(&msg) {
            Ctl::Launch {
                tenant,
                device,
                park,
            } => {
                agent
                    .launch(tenant, device as usize, park)
                    .unwrap_or_else(|e| panic!("n{node}: launch t{tenant}: {e}"));
                rep.send(Rep::Launched { tenant }.encode()).unwrap();
            }
            Ctl::Cycle { tenant } => {
                let bytes = agent
                    .cycle(tenant)
                    .unwrap_or_else(|e| panic!("n{node}: cycle t{tenant}: {e}"));
                rep.send(Rep::Cycled { tenant, bytes }.encode()).unwrap();
            }
            Ctl::Report => {
                rep.send(agent.load().encode()).unwrap();
            }
            Ctl::MigrateOut { tenant, path } => match agent.migrate_out(tenant, &path) {
                Ok((host_snapshot, dev_bytes, host_bytes)) => {
                    rep.send(
                        Rep::MigratedOut {
                            tenant,
                            dev_bytes,
                            host_bytes,
                            binary: "fleet.so".to_string(),
                        }
                        .encode(),
                    )
                    .unwrap();
                    rep.send(host_snapshot).unwrap();
                }
                Err(e) => {
                    rep.send(
                        Rep::MigrateFailed {
                            tenant,
                            error: e.to_string(),
                        }
                        .encode(),
                    )
                    .unwrap();
                }
            },
            Ctl::RestoreIn {
                tenant,
                device,
                path,
                binary,
            } => {
                let host_snapshot = ctl.recv().expect("host snapshot follows RestoreIn");
                let outcome =
                    agent.restore_in(tenant, device as usize, &path, &binary, host_snapshot);
                rep.send(
                    Rep::Restored {
                        tenant,
                        ok: outcome.is_ok(),
                        error: outcome.err().map(|e| e.to_string()).unwrap_or_default(),
                    }
                    .encode(),
                )
                .unwrap();
            }
            Ctl::Cleanup { tenant } => {
                agent.cleanup_committed(tenant);
                rep.send(Rep::Cleaned { tenant }.encode()).unwrap();
            }
            Ctl::RestoreBack { tenant } => {
                agent
                    .restore_back(tenant)
                    .unwrap_or_else(|e| panic!("n{node}: restore-back t{tenant}: {e}"));
                rep.send(Rep::RestoredBack { tenant }.encode()).unwrap();
            }
            Ctl::Shutdown => {
                agent.shutdown();
                rep.send(
                    Rep::Done {
                        tenants: agent.stats.final_tenants,
                    }
                    .encode(),
                )
                .unwrap();
                break;
            }
        }
    }
    rep.close();
    agent.stats
}

// ---------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------

struct CtlResult {
    loads_before: Vec<NodeLoad>,
    loads_after: Vec<NodeLoad>,
    migrations: Vec<MigrationOutcome>,
    end_ns: u64,
}

fn collect_loads(reps: &mut [ClusterRx]) -> Vec<NodeLoad> {
    let mut out = Vec::with_capacity(reps.len());
    for (node, rx) in reps.iter_mut().enumerate() {
        match Rep::decode(&rx.recv().expect("load report")) {
            Rep::Load {
                resident,
                parked,
                swaps,
            } => out.push(NodeLoad {
                node,
                resident,
                parked,
                swaps,
            }),
            _ => panic!("expected a load report from n{node}"),
        }
    }
    out
}

fn run_controller(cfg: FleetConfig, ctls: Vec<ClusterTx>, mut reps: Vec<ClusterRx>) -> CtlResult {
    let slots = plan_placement(&cfg);
    let devices = cfg.params.num_devices;

    // Phase 1: launch everything; all nodes proceed in parallel, and
    // replies are drained in fixed node order for determinism.
    let mut expected = vec![0usize; cfg.nodes];
    for s in &slots {
        ctls[s.node]
            .send(
                Ctl::Launch {
                    tenant: s.tenant,
                    device: s.device as u64,
                    park: s.park,
                }
                .encode(),
            )
            .unwrap();
        expected[s.node] += 1;
    }
    for (node, rx) in reps.iter_mut().enumerate() {
        for _ in 0..expected[node] {
            match Rep::decode(&rx.recv().expect("launch reply")) {
                Rep::Launched { .. } => {}
                _ => panic!("expected a launch reply from n{node}"),
            }
        }
    }

    // Phase 2: one swap cycle of each node's device-0 seed tenant, so
    // every node's local chunk index holds the fleet's shared base
    // content — the warm substrate cross-node restores dedup against.
    for (node, tx) in ctls.iter().enumerate() {
        tx.send(
            Ctl::Cycle {
                tenant: node as u64,
            }
            .encode(),
        )
        .unwrap();
    }
    for (node, rx) in reps.iter_mut().enumerate() {
        match Rep::decode(&rx.recv().expect("cycle reply")) {
            Rep::Cycled { .. } => {}
            _ => panic!("expected a cycle reply from n{node}"),
        }
    }

    // Phase 3: load reports before rebalancing.
    for tx in &ctls {
        tx.send(Ctl::Report.encode()).unwrap();
    }
    let loads_before = collect_loads(&mut reps);

    // Phase 4: proactive rebalancing. The load signal drives a greedy
    // plan: repeatedly move the newest parked tenant from the most
    // loaded node to the least loaded one, serially, each through the
    // full capture → pool → restart protocol.
    let mut counts = vec![0i64; cfg.nodes];
    let mut owner: BTreeMap<u64, usize> = BTreeMap::new();
    let mut parked_on: Vec<Vec<u64>> = vec![Vec::new(); cfg.nodes];
    for s in &slots {
        counts[s.node] += 1;
        owner.insert(s.tenant, s.node);
        if s.park {
            parked_on[s.node].push(s.tenant);
        }
    }
    for v in parked_on.iter_mut() {
        v.sort_unstable();
    }
    let mut migrations = Vec::new();
    for mig in 0..cfg.max_migrations {
        let src = (0..cfg.nodes)
            .filter(|n| !parked_on[*n].is_empty())
            .max_by_key(|n| (counts[*n], i64::MAX - *n as i64))
            .unwrap_or(0);
        let dst = (0..cfg.nodes).min_by_key(|n| (counts[*n], *n)).unwrap_or(0);
        if parked_on[src].is_empty() || counts[src] - counts[dst] < 2 {
            break;
        }
        let tenant = parked_on[src].pop().unwrap();
        let device = mig % devices;
        let path = format!("{MIGRATE_DIR}/t{tenant}");

        ctls[src]
            .send(
                Ctl::MigrateOut {
                    tenant,
                    path: path.clone(),
                }
                .encode(),
            )
            .unwrap();
        match Rep::decode(&reps[src].recv().expect("migrate-out reply")) {
            Rep::MigratedOut {
                dev_bytes,
                host_bytes,
                binary,
                ..
            } => {
                let host_snapshot = reps[src].recv().expect("host snapshot payload");
                ctls[dst]
                    .send(
                        Ctl::RestoreIn {
                            tenant,
                            device: device as u64,
                            path: path.clone(),
                            binary,
                        }
                        .encode(),
                    )
                    .unwrap();
                ctls[dst].send(host_snapshot).unwrap();
                match Rep::decode(&reps[dst].recv().expect("restore reply")) {
                    Rep::Restored { ok: true, .. } => {
                        ctls[src].send(Ctl::Cleanup { tenant }.encode()).unwrap();
                        match Rep::decode(&reps[src].recv().expect("cleanup reply")) {
                            Rep::Cleaned { .. } => {}
                            _ => panic!("expected a cleanup reply from n{src}"),
                        }
                        counts[src] -= 1;
                        counts[dst] += 1;
                        owner.insert(tenant, dst);
                        migrations.push(MigrationOutcome {
                            tenant,
                            from: src,
                            to: dst,
                            committed: true,
                            dev_bytes,
                            host_bytes,
                            error: None,
                        });
                    }
                    Rep::Restored {
                        ok: false, error, ..
                    } => {
                        ctls[src]
                            .send(Ctl::RestoreBack { tenant }.encode())
                            .unwrap();
                        match Rep::decode(&reps[src].recv().expect("restore-back reply")) {
                            Rep::RestoredBack { .. } => {}
                            _ => panic!("expected a restore-back reply from n{src}"),
                        }
                        parked_on[src].push(tenant);
                        migrations.push(MigrationOutcome {
                            tenant,
                            from: src,
                            to: dst,
                            committed: false,
                            dev_bytes,
                            host_bytes,
                            error: Some(error),
                        });
                    }
                    _ => panic!("expected a restore reply from n{dst}"),
                }
            }
            Rep::MigrateFailed { error, .. } => {
                migrations.push(MigrationOutcome {
                    tenant,
                    from: src,
                    to: dst,
                    committed: false,
                    dev_bytes: 0,
                    host_bytes: 0,
                    error: Some(error),
                });
            }
            _ => panic!("expected a migrate-out reply from n{src}"),
        }
    }

    // Phase 5: load reports after rebalancing.
    for tx in &ctls {
        tx.send(Ctl::Report.encode()).unwrap();
    }
    let loads_after = collect_loads(&mut reps);

    // Phase 6: shutdown.
    for tx in &ctls {
        tx.send(Ctl::Shutdown.encode()).unwrap();
    }
    for (node, rx) in reps.iter_mut().enumerate() {
        match Rep::decode(&rx.recv().expect("shutdown reply")) {
            Rep::Done { .. } => {}
            _ => panic!("expected a shutdown reply from n{node}"),
        }
    }
    for tx in &ctls {
        tx.close();
    }
    CtlResult {
        loads_before,
        loads_after,
        migrations,
        end_ns: simkernel::now().as_nanos(),
    }
}

// ---------------------------------------------------------------------
// FleetScheduler
// ---------------------------------------------------------------------

/// The fleet-level scheduler: global placement, swap-based bin-packing
/// on every node, and load-driven cross-node migration over the shared
/// snapstore pool.
pub struct FleetScheduler {
    cfg: FleetConfig,
}

impl FleetScheduler {
    /// Build a fleet scheduler for `cfg`.
    pub fn new(cfg: FleetConfig) -> FleetScheduler {
        FleetScheduler { cfg }
    }

    /// Run the whole fleet scenario to completion and report.
    pub fn run(&self) -> FleetReport {
        let cfg = self.cfg.clone();
        let pool = ClusterPool::new(phi_platform::cluster_lookahead(&cfg.params));
        let cluster = MultiNodeCluster::new_with_policy(
            cfg.nodes,
            cfg.domains,
            cfg.params.clone(),
            cfg.policy,
        );
        cluster.kernel().enable_trace();

        let mut ctl_txs = Vec::with_capacity(cfg.nodes);
        let mut rep_rxs = Vec::with_capacity(cfg.nodes);
        let mut agent_joins = Vec::with_capacity(cfg.nodes);
        for node in 0..cfg.nodes {
            let (ctl_tx, ctl_rx) = cluster.link(0, node).expect("fleet nodes are in range");
            let (rep_tx, rep_rx) = cluster.link(node, 0).expect("fleet nodes are in range");
            ctl_txs.push(ctl_tx);
            rep_rxs.push(rep_rx);
            let cfg_n = cfg.clone();
            let pool_n = pool.clone();
            agent_joins.push(cluster.spawn_node(node, "fleet-agent", move || {
                run_agent(node, cfg_n, pool_n, ctl_rx, rep_tx)
            }));
        }
        let cfg_c = cfg.clone();
        let controller = cluster
            .kernel()
            .domain(0)
            .spawn("fleet-controller", move || {
                run_controller(cfg_c, ctl_txs, rep_rxs)
            });

        cluster.run();

        let ctl = controller.take_result().expect("controller result");
        let mut agents: Vec<AgentStats> = agent_joins
            .into_iter()
            .map(|j| j.take_result().expect("agent result"))
            .collect();
        agents.sort_by_key(|a| a.node);
        FleetReport {
            nodes: cfg.nodes,
            tenants: cfg.tenants,
            loads_before: ctl.loads_before,
            loads_after: ctl.loads_after,
            migrations: ctl.migrations,
            pool: pool.stats(),
            pool_live_chunks: pool.live_chunks(),
            pool_live_manifests: pool.live_manifests(),
            fingerprint: cluster.fingerprint(),
            virtual_ns: ctl.end_ns,
            agents,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(domains: u32) -> FleetConfig {
        FleetConfig {
            nodes: 4,
            domains,
            tenants: 12,
            base_bytes: 8 << 20,
            unique_bytes: 1 << 20,
            max_migrations: 3,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_rebalances_and_restores_warm() {
        let report = FleetScheduler::new(small_cfg(1)).run();
        assert_eq!(report.agents.iter().map(|a| a.launched).sum::<u64>(), 12);
        assert!(
            report.committed() >= 1,
            "expected at least one committed migration: {:?}",
            report.migrations
        );
        assert_eq!(report.failed_back(), 0);
        // Load actually moved: some hot node shrank, some cold node grew.
        let before: Vec<u64> = report
            .loads_before
            .iter()
            .map(|l| l.resident + l.parked)
            .collect();
        let after: Vec<u64> = report
            .loads_after
            .iter()
            .map(|l| l.resident + l.parked)
            .collect();
        assert_ne!(before, after, "migrations must change node populations");
        assert_eq!(
            before.iter().sum::<u64>(),
            after.iter().sum::<u64>(),
            "no tenant may be lost or duplicated"
        );
        // Cross-node restores were warm: the shared base region never
        // crossed the network.
        assert!(
            report.pool.bytes_avoided_remote > 0,
            "warm restores must dedup against locally-held chunks: {:?}",
            report.pool
        );
        assert!(
            report.warm_saved_fraction() > 0.5,
            "most bytes should be avoided, got {:.3} ({:?})",
            report.warm_saved_fraction(),
            report.pool
        );
        // Clean shutdown leaves nothing referenced in the pool.
        assert_eq!(report.pool_live_manifests, 0, "leaked pool manifests");
        assert_eq!(report.pool_live_chunks, 0, "leaked pool chunks");
    }

    #[test]
    fn fleet_runs_are_deterministic_across_domain_counts() {
        let serial = FleetScheduler::new(small_cfg(1)).run();
        let parallel = FleetScheduler::new(small_cfg(4)).run();
        assert_eq!(
            serial.digest(),
            parallel.digest(),
            "fleet observable trace must be byte-identical at every domain count\n\
             serial:   vns={} pool={:?}\n\
             parallel: vns={} pool={:?}",
            serial.virtual_ns,
            serial.pool,
            parallel.virtual_ns,
            parallel.pool,
        );
        assert_eq!(serial.virtual_ns, parallel.virtual_ns);
        assert_eq!(serial.loads_before, parallel.loads_before);
        assert_eq!(serial.loads_after, parallel.loads_after);
        assert_eq!(serial.agents, parallel.agents);
        // At a fixed domain count the raw kernel trace replays
        // byte-for-byte too.
        let replay = FleetScheduler::new(small_cfg(4)).run();
        assert_eq!(parallel.fingerprint, replay.fingerprint);
        assert_eq!(parallel.digest(), replay.digest());
    }
}
