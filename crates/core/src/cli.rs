//! The `snapify` command-line utility (§5 "Command-line tools").
//!
//! The real tool takes the PID of a host process and a command
//! (swap-out / swap-in / migrate), signals the host process, and submits
//! the command through a pipe; a Snapify signal handler inside the host
//! process then runs the corresponding Fig 6/7 function. This module
//! reproduces that control path: [`SnapifyCli::submit`] queues a command
//! to the registered host process, whose handler thread executes it.

use std::collections::HashMap;
use std::sync::Arc;

use coi_sim::CoiProcessHandle;
use simkernel::{SimChannel, SimMutex};

use crate::api::{snapify_migrate, snapify_swapin, snapify_swapout, SnapifyT};
use crate::SnapifyError;

/// A command accepted by the `snapify` utility.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Swap the offload process out to the given snapshot directory.
    SwapOut {
        /// Snapshot directory.
        path: String,
    },
    /// Swap the offload process back in on the given coprocessor.
    SwapIn {
        /// Target coprocessor index.
        device: usize,
    },
    /// Migrate the offload process to the given coprocessor.
    Migrate {
        /// Target coprocessor index.
        device: usize,
    },
}

/// Completion notification for a submitted command.
#[derive(Debug)]
pub enum Outcome {
    /// The command completed.
    Done,
    /// The command failed.
    Failed(SnapifyError),
}

struct Registration {
    handle: CoiProcessHandle,
    queue: SimChannel<(Command, SimChannel<Outcome>)>,
    snapshot: Arc<SimMutex<Option<SnapifyT>>>,
}

/// The `snapify` CLI front end: a registry of host processes that have
/// installed the Snapify signal handler.
#[derive(Clone)]
pub struct SnapifyCli {
    registry: Arc<SimMutex<HashMap<u64, Arc<Registration>>>>,
}

impl Default for SnapifyCli {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapifyCli {
    /// New empty registry.
    pub fn new() -> SnapifyCli {
        SnapifyCli {
            registry: Arc::new(SimMutex::new("snapify-cli", HashMap::new())),
        }
    }

    /// Install the Snapify handler in `handle`'s host process: spawns the
    /// handler thread that services submitted commands (the signal-handler
    /// equivalent).
    pub fn register(&self, handle: &CoiProcessHandle) {
        let host_pid = handle.host_proc().pid().0;
        let queue = SimChannel::unbounded(format!("snapify-cli-{host_pid}"));
        let reg = Arc::new(Registration {
            handle: handle.clone(),
            queue: queue.clone(),
            snapshot: Arc::new(SimMutex::new(format!("cli-snap-{host_pid}"), None)),
        });
        self.registry.lock().insert(host_pid, Arc::clone(&reg));
        let reg2 = Arc::clone(&reg);
        handle
            .host_proc()
            .clone()
            .spawn_service("snapify-cli-handler", move || {
                while let Ok((cmd, done)) = reg2.queue.recv() {
                    let outcome = match Self::execute(&reg2, cmd) {
                        Ok(()) => Outcome::Done,
                        Err(e) => Outcome::Failed(e),
                    };
                    let _ = done.send(outcome);
                }
            });
    }

    fn execute(reg: &Registration, cmd: Command) -> Result<(), SnapifyError> {
        match cmd {
            Command::SwapOut { path } => {
                let snapshot = snapify_swapout(&reg.handle, &path)?;
                *reg.snapshot.lock() = Some(snapshot);
                Ok(())
            }
            Command::SwapIn { device } => {
                let snap = reg.snapshot.lock().take();
                match snap {
                    Some(snapshot) => {
                        snapify_swapin(&snapshot, device)?;
                        Ok(())
                    }
                    None => Err(SnapifyError::Protocol(
                        "swap-in without a prior swap-out".into(),
                    )),
                }
            }
            Command::Migrate { device } => {
                snapify_migrate(&reg.handle, device)?;
                Ok(())
            }
        }
    }

    /// Submit a command to the host process with pid `host_pid` (as the
    /// CLI would by signalling it). Blocks until the command completes.
    pub fn submit(&self, host_pid: u64, cmd: Command) -> Result<(), SnapifyError> {
        let reg = self
            .registry
            .lock()
            .get(&host_pid)
            .cloned()
            .ok_or_else(|| SnapifyError::Protocol(format!("no such host process {host_pid}")))?;
        let done = SimChannel::unbounded("snapify-cli-done");
        reg.queue
            .send((cmd, done.clone()))
            .map_err(|_| SnapifyError::Protocol("host process handler gone".into()))?;
        match done.recv() {
            Ok(Outcome::Done) => Ok(()),
            Ok(Outcome::Failed(e)) => Err(e),
            Err(_) => Err(SnapifyError::Protocol("handler exited".into())),
        }
    }

    /// Whether the offload process of `host_pid` is currently swapped out.
    pub fn is_swapped_out(&self, host_pid: u64) -> bool {
        self.registry
            .lock()
            .get(&host_pid)
            .map(|r| r.snapshot.lock().is_some())
            .unwrap_or(false)
    }
}
