//! The `snapify` command-line utility (§5 "Command-line tools").
//!
//! The real tool takes the PID of a host process and a command
//! (swap-out / swap-in / migrate), signals the host process, and submits
//! the command through a pipe; a Snapify signal handler inside the host
//! process then runs the corresponding Fig 6/7 function. This module
//! reproduces that control path: [`SnapifyCli::submit`] queues a command
//! to the registered host process, whose handler thread executes it.

use std::collections::HashMap;
use std::sync::Arc;

use coi_sim::CoiProcessHandle;
use simkernel::obs;
use simkernel::{SimChannel, SimMutex};

use crate::api::{snapify_migrate, snapify_swapin, snapify_swapout, SnapifyT};
use crate::SnapifyError;

/// Observability flags accepted by every `snapify` tool invocation.
///
/// `--trace-out <path>` dumps a Chrome trace-event JSON file (loadable in
/// Perfetto / `chrome://tracing`) when the run finishes; `--metrics-out
/// <path>` dumps the metrics summary (phase breakdowns, counters,
/// histograms) as JSON. Passing either flag turns event recording on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsOptions {
    /// Where to write the Chrome trace-event JSON (`--trace-out`).
    pub trace_out: Option<String>,
    /// Where to write the metrics summary JSON (`--metrics-out`).
    pub metrics_out: Option<String>,
}

impl ObsOptions {
    /// Extract `--trace-out` / `--metrics-out` (either `--flag value` or
    /// `--flag=value` form) from `args`, returning the parsed options and
    /// the remaining arguments in order.
    pub fn parse(args: &[String]) -> Result<(ObsOptions, Vec<String>), SnapifyError> {
        let mut opts = ObsOptions::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            fn slot<'a>(opts: &'a mut ObsOptions, flag: &str) -> &'a mut Option<String> {
                match flag {
                    "--trace-out" => &mut opts.trace_out,
                    _ => &mut opts.metrics_out,
                }
            }
            match arg.split_once('=') {
                Some((flag @ ("--trace-out" | "--metrics-out"), value)) => {
                    *slot(&mut opts, flag) = Some(value.to_string());
                }
                None if arg == "--trace-out" || arg == "--metrics-out" => {
                    let value = it.next().ok_or_else(|| {
                        SnapifyError::Protocol(format!("{arg} requires a path argument"))
                    })?;
                    *slot(&mut opts, arg) = Some(value.clone());
                }
                _ => rest.push(arg.clone()),
            }
        }
        Ok((opts, rest))
    }

    /// Whether either output was requested.
    pub fn recording_requested(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Turn event recording on if either output was requested. Call this
    /// before the instrumented run.
    pub fn enable_recording(&self) {
        if self.recording_requested() {
            obs::enable();
        }
    }

    /// Write the requested reports from the events recorded so far.
    pub fn write_reports(&self) -> Result<(), SnapifyError> {
        if let Some(path) = &self.trace_out {
            std::fs::write(path, obs::chrome_trace())
                .map_err(|e| SnapifyError::Io(format!("{path}: {e}")))?;
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, obs::summary_json())
                .map_err(|e| SnapifyError::Io(format!("{path}: {e}")))?;
        }
        Ok(())
    }
}

/// A command accepted by the `snapify` utility.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Swap the offload process out to the given snapshot directory.
    SwapOut {
        /// Snapshot directory.
        path: String,
    },
    /// Swap the offload process back in on the given coprocessor.
    SwapIn {
        /// Target coprocessor index.
        device: usize,
    },
    /// Migrate the offload process to the given coprocessor.
    Migrate {
        /// Target coprocessor index.
        device: usize,
    },
}

/// Completion notification for a submitted command.
#[derive(Debug)]
pub enum Outcome {
    /// The command completed.
    Done,
    /// The command failed.
    Failed(SnapifyError),
}

struct Registration {
    handle: CoiProcessHandle,
    queue: SimChannel<(Command, SimChannel<Outcome>)>,
    snapshot: Arc<SimMutex<Option<SnapifyT>>>,
}

/// The `snapify` CLI front end: a registry of host processes that have
/// installed the Snapify signal handler.
#[derive(Clone)]
pub struct SnapifyCli {
    registry: Arc<SimMutex<HashMap<u64, Arc<Registration>>>>,
}

impl Default for SnapifyCli {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapifyCli {
    /// New empty registry.
    pub fn new() -> SnapifyCli {
        SnapifyCli {
            registry: Arc::new(SimMutex::new("snapify-cli", HashMap::new())),
        }
    }

    /// Install the Snapify handler in `handle`'s host process: spawns the
    /// handler thread that services submitted commands (the signal-handler
    /// equivalent).
    pub fn register(&self, handle: &CoiProcessHandle) {
        let host_pid = handle.host_proc().pid().0;
        let queue = SimChannel::unbounded(format!("snapify-cli-{host_pid}"));
        let reg = Arc::new(Registration {
            handle: handle.clone(),
            queue: queue.clone(),
            snapshot: Arc::new(SimMutex::new(format!("cli-snap-{host_pid}"), None)),
        });
        self.registry.lock().insert(host_pid, Arc::clone(&reg));
        let reg2 = Arc::clone(&reg);
        handle
            .host_proc()
            .clone()
            .spawn_service("snapify-cli-handler", move || {
                while let Ok((cmd, done)) = reg2.queue.recv() {
                    let outcome = match Self::execute(&reg2, cmd) {
                        Ok(()) => Outcome::Done,
                        Err(e) => Outcome::Failed(e),
                    };
                    let _ = done.send(outcome);
                }
            });
    }

    fn execute(reg: &Registration, cmd: Command) -> Result<(), SnapifyError> {
        match cmd {
            Command::SwapOut { path } => {
                let snapshot = snapify_swapout(&reg.handle, &path)?;
                *reg.snapshot.lock() = Some(snapshot);
                Ok(())
            }
            Command::SwapIn { device } => {
                let snap = reg.snapshot.lock().take();
                match snap {
                    Some(snapshot) => {
                        snapify_swapin(&snapshot, device)?;
                        Ok(())
                    }
                    None => Err(SnapifyError::Protocol(
                        "swap-in without a prior swap-out".into(),
                    )),
                }
            }
            Command::Migrate { device } => {
                snapify_migrate(&reg.handle, device)?;
                Ok(())
            }
        }
    }

    /// Submit a command to the host process with pid `host_pid` (as the
    /// CLI would by signalling it). Blocks until the command completes.
    pub fn submit(&self, host_pid: u64, cmd: Command) -> Result<(), SnapifyError> {
        let reg = self
            .registry
            .lock()
            .get(&host_pid)
            .cloned()
            .ok_or_else(|| SnapifyError::Protocol(format!("no such host process {host_pid}")))?;
        let done = SimChannel::unbounded("snapify-cli-done");
        reg.queue
            .send((cmd, done.clone()))
            .map_err(|_| SnapifyError::Protocol("host process handler gone".into()))?;
        match done.recv() {
            Ok(Outcome::Done) => Ok(()),
            Ok(Outcome::Failed(e)) => Err(e),
            Err(_) => Err(SnapifyError::Protocol("handler exited".into())),
        }
    }

    /// Whether the offload process of `host_pid` is currently swapped out.
    pub fn is_swapped_out(&self, host_pid: u64) -> bool {
        self.registry
            .lock()
            .get(&host_pid)
            .map(|r| r.snapshot.lock().is_some())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn obs_options_parse_both_forms() {
        let (opts, rest) = ObsOptions::parse(&strings(&[
            "swap-out",
            "--trace-out",
            "/tmp/trace.json",
            "--metrics-out=/tmp/metrics.json",
            "42",
        ]))
        .unwrap();
        assert_eq!(opts.trace_out.as_deref(), Some("/tmp/trace.json"));
        assert_eq!(opts.metrics_out.as_deref(), Some("/tmp/metrics.json"));
        assert!(opts.recording_requested());
        assert_eq!(rest, strings(&["swap-out", "42"]));
    }

    #[test]
    fn obs_options_absent_by_default() {
        let (opts, rest) = ObsOptions::parse(&strings(&["migrate", "1"])).unwrap();
        assert_eq!(opts, ObsOptions::default());
        assert!(!opts.recording_requested());
        assert_eq!(rest, strings(&["migrate", "1"]));
    }

    #[test]
    fn obs_options_missing_value_is_an_error() {
        assert!(ObsOptions::parse(&strings(&["--trace-out"])).is_err());
    }
}
