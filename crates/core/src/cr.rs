//! Checkpoint and restart of a whole offload application (§5, Fig 5):
//! the host process is captured by host-side BLCR while Snapify captures
//! the offload process — concurrently, exactly as in the paper's
//! `snapify_blcr_callback`.

use blcr_sim::BlcrConfig;
use phi_platform::NodeId;
use simkernel::obs;
use simkernel::{SimDuration, SimTime};
use simproc::{SimProcess, SnapshotStorage};

use crate::api::{
    snapify_capture, snapify_pause, snapify_restore, snapify_resume, snapify_wait, SnapifyT,
};
use crate::world::SnapifyWorld;
use crate::SnapifyError;
use coi_sim::CoiProcessHandle;

/// Timing/size breakdown of one application checkpoint (the quantities
/// plotted in Fig 10(a)/(b) and Fig 11(a)/(c)).
#[derive(Clone, Debug)]
pub struct CheckpointReport {
    /// Time in `snapify_pause` (drain + local store save).
    pub pause: SimDuration,
    /// Host BLCR snapshot+write time (runs concurrently with the device
    /// capture).
    pub host_snapshot: SimDuration,
    /// Time from issuing the capture until `snapify_wait` returned (the
    /// device snapshot+write, overlapping the host snapshot).
    pub device_capture: SimDuration,
    /// Time in `snapify_resume`.
    pub resume: SimDuration,
    /// End-to-end checkpoint time.
    pub total: SimDuration,
    /// Host snapshot file size.
    pub host_snapshot_bytes: u64,
    /// Device snapshot file size.
    pub device_snapshot_bytes: u64,
    /// Local store bytes saved during the pause.
    pub local_store_bytes: u64,
}

/// The Fig 5(a) flow: pause, non-blocking device capture, host BLCR
/// checkpoint (concurrent), wait, resume.
///
/// `host_state` is the opaque blob the application framework uses to
/// resume the host control flow after a restart (the simulated stand-in
/// for BLCR resuming the host process mid-callback).
pub fn checkpoint_application(
    world: &SnapifyWorld,
    handle: &CoiProcessHandle,
    host_state: &[u8],
    snapshot_path: &str,
) -> Result<(SnapifyT, CheckpointReport), SnapifyError> {
    let _span = obs::span!(
        "snapify.checkpoint",
        pid = handle.pid(),
        device = handle.device(),
        path = snapshot_path
    );
    let t0 = simkernel::now();
    let snapshot = SnapifyT::new(handle, snapshot_path);

    snapify_pause(&snapshot)?;
    let t_paused = simkernel::now();

    // Non-blocking device capture...
    snapify_capture(&snapshot, false)?;
    // ...concurrent with the host BLCR checkpoint (Fig 5(b): both bars
    // start after the pause). The host-side BLCR fsyncs its context file,
    // so the host bar includes the disk flush — which is why the host
    // finishes last exactly for the snapshot-heavy SS/SG (§7).
    let host_stats = host_checkpoint(world, handle.host_proc(), host_state, snapshot_path)?;
    let t_host_done = simkernel::now();

    let device_snapshot_bytes = snapify_wait(&snapshot)?;
    let t_capture_done = simkernel::now();
    let device_done_at = snapshot.capture_completed_at().unwrap_or(t_capture_done);

    snapify_resume(&snapshot)?;
    let t_done = simkernel::now();

    let local_store_bytes = local_store_bytes(world, snapshot_path);
    obs::counter_add("snapify.checkpoints", 1);
    obs::counter_add("snapify.host_snapshot_bytes", host_stats);
    obs::counter_add("snapify.local_store_bytes", local_store_bytes);
    let report = CheckpointReport {
        pause: t_paused - t0,
        host_snapshot: t_host_done - t_paused,
        device_capture: device_done_at - t_paused,
        resume: t_done - t_capture_done,
        total: t_done - t0,
        host_snapshot_bytes: host_stats,
        device_snapshot_bytes,
        local_store_bytes,
    };
    Ok((snapshot, report))
}

/// Host-side BLCR checkpoint of the host process into the snapshot dir.
pub fn host_checkpoint(
    world: &SnapifyWorld,
    host_proc: &SimProcess,
    host_state: &[u8],
    snapshot_path: &str,
) -> Result<u64, SnapifyError> {
    let _span = obs::span!("snapify.host_checkpoint", pid = host_proc.pid());
    let storage: &dyn SnapshotStorage = world.io();
    let mut sink = storage
        .sink(NodeId::HOST, &format!("{snapshot_path}/host_snapshot"))
        .map_err(|e| SnapifyError::Io(e.to_string()))?;
    let stats = blcr_sim::checkpoint(&BlcrConfig::default(), host_proc, host_state, sink.as_mut())
        .map_err(|e| SnapifyError::Io(e.to_string()))?;
    // BLCR fsyncs the context file before reporting success.
    world.server().host().fs().sync();
    Ok(stats.snapshot_bytes)
}

/// Bytes of local store stored under a snapshot directory.
pub fn local_store_bytes(world: &SnapifyWorld, snapshot_path: &str) -> u64 {
    let fs = world.server().host().fs();
    fs.list(&format!("{snapshot_path}/local_store/buf_"))
        .iter()
        .map(|p| fs.len(p).unwrap_or(0))
        .sum()
}

/// Timing breakdown of a restart (Fig 10(c), Fig 11(b)).
#[derive(Clone, Debug)]
pub struct RestartReport {
    /// Host BLCR restart time.
    pub host_restart: SimDuration,
    /// Offload restore time (library + local store copy + device BLCR
    /// restart + channel reconnection + re-registration).
    pub offload_restore: SimDuration,
    /// Resume time.
    pub resume: SimDuration,
    /// End-to-end restart time.
    pub total: SimDuration,
    /// Per-phase split of `offload_restore`, as reported by the daemon.
    pub offload_breakdown: Option<coi_sim::offload::RestoreBreakdown>,
}

/// The result of restarting a checkpointed application.
pub struct RestartedApp {
    /// The restored host process (a *new* process).
    pub host_proc: SimProcess,
    /// The application framework's opaque host state.
    pub host_state: Vec<u8>,
    /// Handle to the restored offload process (already resumed).
    pub handle: CoiProcessHandle,
    /// The snapshot descriptor (reusable for further restores).
    pub snapshot: SnapifyT,
    /// Timing breakdown.
    pub report: RestartReport,
}

/// The Fig 5(c) flow: host BLCR restart, then `snapify_restore` of the
/// offload process on `device`, then `snapify_resume`.
pub fn restart_application(
    world: &SnapifyWorld,
    snapshot_path: &str,
    binary: &str,
    device: usize,
) -> Result<RestartedApp, SnapifyError> {
    let _span = obs::span!("snapify.restart", device = device, path = snapshot_path);
    let t0 = simkernel::now();

    // Host BLCR restart from the host snapshot.
    let storage: &dyn SnapshotStorage = world.io();
    let mut src = storage
        .source(NodeId::HOST, &format!("{snapshot_path}/host_snapshot"))
        .map_err(|e| SnapifyError::Io(e.to_string()))?;
    let restarted = blcr_sim::restart(
        &BlcrConfig::default(),
        world.server().host(),
        world.coi().pids(),
        src.as_mut(),
    )
    .map_err(|e| SnapifyError::Io(e.to_string()))?;
    let host_proc = restarted.proc;
    let host_state = restarted.runtime_state;
    let t_host = simkernel::now();

    // The restored host process re-enters the BLCR callback's "restart"
    // branch (Fig 5(a)) and calls snapify_restore.
    let image_bytes = world
        .coi()
        .registry()
        .get(binary)
        .map(|b| b.image_bytes)
        .unwrap_or(0);
    let handle = CoiProcessHandle::new_detached(
        world.coi().config(),
        world.coi().scif(),
        &host_proc,
        binary,
        image_bytes,
    );
    // The drain locks are conceptually still held from the checkpoint
    // (the host snapshot was taken inside the paused region); mirror that
    // on the fresh handle so resume's release is balanced.
    handle.snapify_hold_host_locks();
    let snapshot = SnapifyT::new(&handle, snapshot_path);
    snapify_restore(&snapshot, device)?;
    let t_restore = simkernel::now();

    snapify_resume(&snapshot)?;
    let t_done = simkernel::now();

    let report = RestartReport {
        host_restart: t_host - t0,
        offload_restore: t_restore - t_host,
        resume: t_done - t_restore,
        total: t_done - t0,
        offload_breakdown: snapshot.restore_breakdown(),
    };
    Ok(RestartedApp {
        host_proc,
        host_state,
        handle,
        snapshot,
        report,
    })
}

/// Measure the span between two instants (helper for reports).
pub fn span(from: SimTime, to: SimTime) -> SimDuration {
    to - from
}

/// The transparent checkpoint entry point of §5 "Command-line tools":
/// BLCR's `cr_checkpoint` utility signals the host process, whose
/// registered handler runs `snapify_blcr_callback` — i.e. the full Fig 5
/// checkpoint flow — without any application modification.
pub struct CrTool {
    signals: simproc::Signals,
    host_proc: simproc::SimProcess,
    results: std::sync::Arc<simkernel::SimChannel<Result<CheckpointReport, SnapifyError>>>,
    counter: std::sync::Arc<simkernel::SimMutex<u64>>,
}

impl CrTool {
    /// Install the Snapify BLCR callback in `handle`'s host process. The
    /// `host_state` closure snapshots the application's resumable control
    /// state at checkpoint time (the stand-in for the host stack BLCR
    /// captures); `path_base` names the snapshot directory family.
    pub fn install(
        world: &SnapifyWorld,
        handle: &CoiProcessHandle,
        host_state: std::sync::Arc<dyn Fn() -> Vec<u8> + Send + Sync>,
        path_base: impl Into<String>,
    ) -> CrTool {
        let host_proc = handle.host_proc().clone();
        let signals = simproc::Signals::new(
            &format!("host-{}", host_proc.pid()),
            world.server().params().signal_latency,
        );
        let results = std::sync::Arc::new(simkernel::SimChannel::unbounded(format!(
            "crtool-{}",
            host_proc.pid()
        )));
        let counter = std::sync::Arc::new(simkernel::SimMutex::new("crtool ctr", 0u64));
        let path_base = path_base.into();
        {
            let world = world.clone();
            let handle = handle.clone();
            let results = std::sync::Arc::clone(&results);
            let counter = std::sync::Arc::clone(&counter);
            signals.register(simproc::signum::SIGCKPT, move || {
                // The signal handler: run snapify_blcr_callback (Fig 5a).
                let n = {
                    let mut c = counter.lock();
                    let n = *c;
                    *c += 1;
                    n
                };
                let state = host_state();
                let path = format!("{path_base}/{n}");
                let outcome = checkpoint_application(&world, &handle, &state, &path)
                    .map(|(_, report)| report);
                let _ = results.send(outcome);
            });
        }
        CrTool {
            signals,
            host_proc,
            results,
            counter,
        }
    }

    /// The `cr_checkpoint <pid>` action: signal the host process and wait
    /// for the checkpoint to complete.
    pub fn request_checkpoint(&self) -> Result<CheckpointReport, SnapifyError> {
        if !self.signals.kill(&self.host_proc, simproc::signum::SIGCKPT) {
            return Err(SnapifyError::Protocol("no BLCR handler installed".into()));
        }
        self.results
            .recv()
            .map_err(|_| SnapifyError::Protocol("host process gone".into()))?
    }

    /// Number of checkpoints taken so far.
    pub fn checkpoints_taken(&self) -> u64 {
        *self.counter.lock()
    }
}
