//! # snapify — consistent snapshots of Xeon Phi offload applications
//!
//! The paper's primary contribution: an application-transparent,
//! *coordinated* way to snapshot the communicating processes of an
//! offload application (host process + COI daemon + offload process) so
//! that the snapshots form a consistent global state, and three
//! capabilities built on it — **checkpoint/restart**, **process
//! swapping**, and **process migration**.
//!
//! * [`api`] — the five functions of Table 1 plus the Fig 6/7 swap and
//!   migration compositions;
//! * [`cr`] — whole-application checkpoint/restart with the host BLCR
//!   callback flow of Fig 5, producing the timing breakdowns of Fig 10;
//! * [`cli`] — the `snapify` command-line utility semantics;
//! * [`world`] — one-call bootstrap of server + COI + Snapify-IO.
//!
//! The COI-side machinery this API drives (drain locks, the daemon's
//! monitor thread, the capture-safe pipeline) lives in `coi-sim`,
//! mirroring how the real Snapify ships as modifications to MPSS; the
//! RDMA snapshot transport is `snapify-io`.
//!
//! ## Example
//!
//! ```
//! use coi_sim::{DeviceBinary, FunctionRegistry};
//! use phi_platform::Payload;
//! use simkernel::Kernel;
//! use snapify::{api, SnapifyWorld};
//!
//! Kernel::run_root(|| {
//!     // A device binary with one offload function.
//!     let registry = FunctionRegistry::new();
//!     registry.register(
//!         DeviceBinary::new("double.so", 1 << 20, 8 << 20).simple_function(
//!             "double",
//!             |ctx| {
//!                 let mut v = ctx.read_buffer(0).to_bytes();
//!                 for b in v.iter_mut() { *b *= 2; }
//!                 ctx.compute(1e9, 60);
//!                 ctx.write_buffer(0, Payload::bytes(v));
//!                 Vec::new()
//!             },
//!         ),
//!     );
//!     let world = SnapifyWorld::boot(registry);
//!     let host = world.coi().create_host_process("app");
//!     let h = world.coi().create_process(&host, 0, "double.so").unwrap();
//!     let buf = h.create_buffer(4).unwrap();
//!     h.buffer_write(&buf, Payload::bytes(vec![1, 2, 3, 4])).unwrap();
//!     h.run_sync("double", Vec::new(), &[&buf]).unwrap();
//!
//!     // Take a consistent snapshot, then resume.
//!     let snap = api::SnapifyT::new(&h, "/snapshots/demo");
//!     api::snapify_pause(&snap).unwrap();
//!     api::snapify_capture(&snap, false).unwrap();
//!     api::snapify_wait(&snap).unwrap();
//!     api::snapify_resume(&snap).unwrap();
//!
//!     assert_eq!(h.buffer_read(&buf).unwrap().to_bytes(), vec![2, 4, 6, 8]);
//!     h.destroy().unwrap();
//! });
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod cli;
pub mod cluster;
pub mod cr;
pub mod fleet;
pub mod scheduler;
pub mod world;

use std::fmt;

pub use api::{
    snapify_capture, snapify_migrate, snapify_pause, snapify_restore, snapify_resume,
    snapify_swapin, snapify_swapout, snapify_wait, SnapifyT,
};
pub use cli::{Command, SnapifyCli};
pub use cluster::MultiNodeCluster;
pub use cr::{
    checkpoint_application, restart_application, CheckpointReport, CrTool, RestartReport,
    RestartedApp,
};
pub use fleet::{AgentStats, FleetConfig, FleetReport, FleetScheduler, MigrationOutcome, NodeLoad};
pub use scheduler::{JobId, SwapScheduler};
pub use world::SnapifyWorld;

/// Errors surfaced by the Snapify API.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapifyError {
    /// Underlying COI failure.
    Coi(coi_sim::CoiError),
    /// Snapshot I/O failure.
    Io(String),
    /// Restore failed (bad snapshot, target device out of memory, …).
    RestoreFailed(String),
    /// Protocol violation.
    Protocol(String),
    /// A cluster operation referenced a node outside the cluster.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Cluster size — valid node indices are `0..nodes`.
        nodes: usize,
    },
}

impl fmt::Display for SnapifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapifyError::Coi(e) => write!(f, "coi: {e}"),
            SnapifyError::Io(m) => write!(f, "snapshot i/o: {m}"),
            SnapifyError::RestoreFailed(m) => write!(f, "restore failed: {m}"),
            SnapifyError::Protocol(m) => write!(f, "protocol error: {m}"),
            SnapifyError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for a {nodes}-node cluster")
            }
        }
    }
}

impl std::error::Error for SnapifyError {}

impl From<coi_sim::CoiError> for SnapifyError {
    fn from(e: coi_sim::CoiError) -> SnapifyError {
        SnapifyError::Coi(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coi_sim::{DeviceBinary, FunctionRegistry, OffloadCtx, OffloadFn, StepOutcome};
    use phi_platform::{Payload, MB};
    use simkernel::time::ms;
    use simkernel::Kernel;
    use std::sync::Arc;

    /// Long multi-step kernel: adds 1 to every buffer byte per step.
    struct SlowInc {
        steps: u64,
    }
    impl OffloadFn for SlowInc {
        fn step(&self, ctx: &mut OffloadCtx<'_>, cursor: u64) -> StepOutcome {
            ctx.compute(2e9, 60); // ~2 ms per step
            let mut v = ctx.read_buffer(0).to_bytes();
            for b in v.iter_mut() {
                *b = b.wrapping_add(1);
            }
            ctx.write_buffer(0, Payload::bytes(v));
            if cursor + 1 >= self.steps {
                StepOutcome::Done((cursor + 1).to_le_bytes().to_vec())
            } else {
                StepOutcome::Yield
            }
        }
    }

    fn registry() -> FunctionRegistry {
        let reg = FunctionRegistry::new();
        reg.register(
            DeviceBinary::new("app.so", 2 * MB, 24 * MB)
                .simple_function("fill", |ctx| {
                    let n = ctx.buffer_len(0);
                    ctx.compute(1e9, 60);
                    ctx.write_buffer(0, Payload::bytes(vec![7u8; n as usize]));
                    Vec::new()
                })
                .function("slow_inc", Arc::new(SlowInc { steps: 50 })),
        );
        reg
    }

    fn setup() -> (SnapifyWorld, coi_sim::CoiProcessHandle) {
        let world = SnapifyWorld::boot(registry());
        let host = world.coi().create_host_process("app");
        let handle = world.coi().create_process(&host, 0, "app.so").unwrap();
        (world, handle)
    }

    #[test]
    fn pause_capture_resume_cycle_preserves_execution() {
        Kernel::run_root(|| {
            let (world, h) = setup();
            let buf = h.create_buffer(64).unwrap();
            h.buffer_write(&buf, Payload::bytes(vec![1u8; 64])).unwrap();

            let snap = SnapifyT::new(&h, "/snap/basic");
            snapify_pause(&snap).unwrap();

            // Invariant at the heart of the paper: all channels drained.
            let rt = world.coi().daemon(0).runtime(h.pid()).unwrap();
            assert!(
                rt.channels_drained(),
                "channels must be drained after pause"
            );

            snapify_capture(&snap, false).unwrap();
            let bytes = snapify_wait(&snap).unwrap();
            assert!(bytes > 24 * MB, "device snapshot includes resident memory");
            assert_eq!(snap.snapshot_bytes(), Some(bytes));
            snapify_resume(&snap).unwrap();

            // The app still works after resume.
            h.run_sync("fill", Vec::new(), &[&buf]).unwrap();
            assert_eq!(h.buffer_read(&buf).unwrap().to_bytes(), vec![7u8; 64]);
            h.destroy().unwrap();
        });
    }

    #[test]
    fn capture_mid_function_restores_and_resumes() {
        Kernel::run_root(|| {
            let (_world, h) = setup();
            let buf = h.create_buffer(8).unwrap();
            h.buffer_write(&buf, Payload::bytes(vec![0u8; 8])).unwrap();

            // Launch a 50-step function (~100 ms) and snapshot mid-flight.
            let run = h.run("slow_inc", Vec::new(), &[&buf]).unwrap();
            simkernel::sleep(ms(20)); // several steps in

            let snap = SnapifyT::new(&h, "/snap/mid");
            snapify_pause(&snap).unwrap();
            snapify_capture(&snap, false).unwrap();
            snapify_wait(&snap).unwrap();
            snapify_resume(&snap).unwrap();

            // The function completes correctly after the snapshot cycle.
            let ret = run.wait().unwrap();
            assert_eq!(u64::from_le_bytes(ret.try_into().unwrap()), 50);
            assert_eq!(h.buffer_read(&buf).unwrap().to_bytes(), vec![50u8; 8]);
            h.destroy().unwrap();
        });
    }

    #[test]
    fn swapout_frees_device_memory_and_swapin_restores() {
        Kernel::run_root(|| {
            let (world, h) = setup();
            let buf = h.create_buffer(4 * MB).unwrap();
            h.buffer_write(&buf, Payload::synthetic(5, 4 * MB)).unwrap();
            let digest_before = world
                .coi()
                .daemon(0)
                .runtime(h.pid())
                .unwrap()
                .local_store_digest();

            let used_before = world.server().device(0).mem().used();
            assert!(used_before > 24 * MB);

            let snap = snapify_swapout(&h, "/snap/swap").unwrap();
            assert!(snap.is_terminated());
            // The offload process is gone; its memory is free.
            assert_eq!(world.coi().daemon(0).live_processes(), 0);
            assert!(world.server().device(0).mem().used() < used_before / 4);

            snapify_swapin(&snap, 0).unwrap();
            assert_eq!(world.coi().daemon(0).live_processes(), 1);
            let digest_after = world
                .coi()
                .daemon(0)
                .runtime(h.pid())
                .unwrap()
                .local_store_digest();
            assert_eq!(digest_before, digest_after);

            // And the app still computes.
            h.run_sync("fill", Vec::new(), &[&buf]).unwrap();
            h.destroy().unwrap();
        });
    }

    #[test]
    fn migration_moves_process_between_devices() {
        Kernel::run_root(|| {
            let (world, h) = setup();
            let buf = h.create_buffer(32).unwrap();
            h.buffer_write(&buf, Payload::bytes(vec![9u8; 32])).unwrap();
            assert_eq!(h.device(), 0);

            snapify_migrate(&h, 1).unwrap();
            assert_eq!(h.device(), 1);
            assert_eq!(world.coi().daemon(0).live_processes(), 0);
            assert_eq!(world.coi().daemon(1).live_processes(), 1);
            // Buffer content survived the move.
            assert_eq!(h.buffer_read(&buf).unwrap().to_bytes(), vec![9u8; 32]);
            // And the process still executes on the new device.
            h.run_sync("fill", Vec::new(), &[&buf]).unwrap();
            assert_eq!(h.buffer_read(&buf).unwrap().to_bytes(), vec![7u8; 32]);
            h.destroy().unwrap();
        });
    }

    #[test]
    fn migrate_scratch_path_is_namespaced_by_host_and_tenant() {
        Kernel::run_root(|| {
            let (_world, h) = setup();
            let pid = h.pid();
            let host_pid = h.host_proc().pid().0;
            let snap = snapify_migrate(&h, 1).unwrap();
            // Regression: the path used to be `/tmp/snapify-migrate-<pid>`,
            // which collides across hosts of a fleet that hand out the
            // same offload pids. It now carries hostname + host pid too.
            assert_eq!(
                snap.snapshot_path,
                format!("/tmp/snapify-migrate-host0-h{host_pid}-p{pid}")
            );
            h.destroy().unwrap();
        });
    }

    #[test]
    fn failed_migration_restores_source_and_cleans_scratch() {
        Kernel::run_root(|| {
            let (world, h) = setup();
            let buf = h.create_buffer(16).unwrap();
            h.buffer_write(&buf, Payload::bytes(vec![4u8; 16])).unwrap();
            // Fill device 1 so the swap-in half of the migration dies.
            world
                .server()
                .device(1)
                .mem()
                .alloc(world.server().device(1).mem().available() - MB)
                .unwrap();

            let err = snapify_migrate(&h, 1).unwrap_err();
            assert!(matches!(err, SnapifyError::RestoreFailed(_)), "got {err:?}");

            // The tenant is back on its source device with its state...
            assert_eq!(h.device(), 0);
            assert_eq!(world.coi().daemon(0).live_processes(), 1);
            assert_eq!(h.buffer_read(&buf).unwrap().to_bytes(), vec![4u8; 16]);
            h.run_sync("fill", Vec::new(), &[&buf]).unwrap();
            // ...and the scratch image is gone from the host fs.
            assert!(
                world
                    .server()
                    .host()
                    .fs()
                    .list("/tmp/snapify-migrate-")
                    .is_empty(),
                "failed migration must not leak its staging directory"
            );
            h.destroy().unwrap();
        });
    }

    #[test]
    fn migration_mid_function_completes_on_new_device() {
        Kernel::run_root(|| {
            let (_world, h) = setup();
            let buf = h.create_buffer(4).unwrap();
            h.buffer_write(&buf, Payload::bytes(vec![0u8; 4])).unwrap();
            let run = h.run("slow_inc", Vec::new(), &[&buf]).unwrap();
            simkernel::sleep(ms(30));
            snapify_migrate(&h, 1).unwrap();
            let ret = run.wait().unwrap();
            assert_eq!(u64::from_le_bytes(ret.try_into().unwrap()), 50);
            assert_eq!(h.buffer_read(&buf).unwrap().to_bytes(), vec![50u8; 4]);
            h.destroy().unwrap();
        });
    }

    #[test]
    fn checkpoint_and_restart_application() {
        Kernel::run_root(|| {
            let (world, h) = setup();
            let buf = h.create_buffer(16).unwrap();
            h.buffer_write(&buf, Payload::bytes(vec![3u8; 16])).unwrap();
            // Host process state the framework would need.
            h.host_proc()
                .memory()
                .map_region("host_data", Payload::bytes(vec![42u8; 1024]))
                .unwrap();

            let (_snap, report) =
                checkpoint_application(&world, &h, b"phase=3", "/snap/cr").unwrap();
            assert!(report.total > report.pause);
            assert!(report.host_snapshot_bytes > 1024);
            assert!(report.device_snapshot_bytes > 24 * MB);
            assert_eq!(report.local_store_bytes, 16);

            // The application continues after the checkpoint...
            h.run_sync("fill", Vec::new(), &[&buf]).unwrap();

            // ...now simulate a full failure: kill everything.
            h.destroy().unwrap();
            h.host_proc().exit();

            // Restart from the snapshot.
            let restarted = restart_application(&world, "/snap/cr", "app.so", 1).unwrap();
            assert_eq!(restarted.host_state, b"phase=3");
            assert_eq!(
                restarted
                    .host_proc
                    .memory()
                    .region("host_data")
                    .unwrap()
                    .to_bytes(),
                vec![42u8; 1024]
            );
            // The restored offload process has the buffer with its
            // checkpoint-time content (3s, not the 7s written after).
            let bufs = restarted.handle.buffers();
            assert_eq!(bufs.len(), 1);
            assert_eq!(
                restarted.handle.buffer_read(&bufs[0]).unwrap().to_bytes(),
                vec![3u8; 16]
            );
            // And it still executes.
            restarted
                .handle
                .run_sync("fill", Vec::new(), &[&bufs[0]])
                .unwrap();
            restarted.handle.destroy().unwrap();
        });
    }

    #[test]
    fn restore_rewrites_rdma_addresses() {
        Kernel::run_root(|| {
            let (_world, h) = setup();
            let buf = h.create_buffer(8).unwrap();
            let addr_before = buf.addr();
            let snap = snapify_swapout(&h, "/snap/addr").unwrap();
            snapify_swapin(&snap, 0).unwrap();
            let addr_after = buf.addr();
            assert_ne!(
                addr_before, addr_after,
                "re-registration must produce a new RDMA address (§4.3)"
            );
            // RDMA through the handle still works (the lookup table was
            // applied).
            h.buffer_write(&buf, Payload::bytes(vec![1u8; 8])).unwrap();
            assert_eq!(h.buffer_read(&buf).unwrap().to_bytes(), vec![1u8; 8]);
            h.destroy().unwrap();
        });
    }

    #[test]
    fn cli_swap_and_migrate() {
        Kernel::run_root(|| {
            let (world, h) = setup();
            let cli = SnapifyCli::new();
            cli.register(&h);
            let host_pid = h.host_proc().pid().0;

            cli.submit(
                host_pid,
                Command::SwapOut {
                    path: "/snap/cli".into(),
                },
            )
            .unwrap();
            assert!(cli.is_swapped_out(host_pid));
            assert_eq!(world.coi().daemon(0).live_processes(), 0);

            cli.submit(host_pid, Command::SwapIn { device: 1 }).unwrap();
            assert!(!cli.is_swapped_out(host_pid));
            assert_eq!(h.device(), 1);

            cli.submit(host_pid, Command::Migrate { device: 0 })
                .unwrap();
            assert_eq!(h.device(), 0);

            let err = cli
                .submit(host_pid, Command::SwapIn { device: 0 })
                .unwrap_err();
            assert!(matches!(err, SnapifyError::Protocol(_)));
            assert!(cli.submit(9999, Command::Migrate { device: 0 }).is_err());
            h.destroy().unwrap();
        });
    }

    #[test]
    fn cr_tool_signal_triggered_checkpoints() {
        // §5 "Command-line tools": cr_checkpoint signals the host process,
        // whose Snapify BLCR callback takes the whole-app checkpoint.
        Kernel::run_root(|| {
            let (world, h) = setup();
            let buf = h.create_buffer(16).unwrap();
            h.buffer_write(&buf, Payload::bytes(vec![1u8; 16])).unwrap();
            let tool =
                cr::CrTool::install(&world, &h, Arc::new(|| b"auto".to_vec()), "/snap/crtool");
            // Two transparent checkpoints, application untouched.
            let r1 = tool.request_checkpoint().unwrap();
            assert!(r1.device_snapshot_bytes > 0);
            h.run_sync("fill", Vec::new(), &[&buf]).unwrap();
            let r2 = tool.request_checkpoint().unwrap();
            assert!(r2.device_snapshot_bytes > 0);
            assert_eq!(tool.checkpoints_taken(), 2);
            // Both snapshot directories exist and are restartable.
            let fs = world.server().host().fs();
            assert!(fs.exists("/snap/crtool/0/device_snapshot"));
            assert!(fs.exists("/snap/crtool/1/host_snapshot"));
            h.destroy().unwrap();
            h.host_proc().exit();
            let restarted = restart_application(&world, "/snap/crtool/1", "app.so", 0).unwrap();
            assert_eq!(restarted.host_state, b"auto");
            restarted.handle.destroy().unwrap();
        });
    }

    #[test]
    fn two_processes_snapshot_independently() {
        Kernel::run_root(|| {
            let world = SnapifyWorld::boot(registry());
            let host = world.coi().create_host_process("app");
            let h0 = world.coi().create_process(&host, 0, "app.so").unwrap();
            let h1 = world.coi().create_process(&host, 1, "app.so").unwrap();
            let b1 = h1.create_buffer(8).unwrap();
            h1.buffer_write(&b1, Payload::bytes(vec![5u8; 8])).unwrap();

            // Snapshot process 0 while process 1 keeps computing.
            let snap = SnapifyT::new(&h0, "/snap/p0");
            snapify_pause(&snap).unwrap();
            h1.run_sync("fill", Vec::new(), &[&b1]).unwrap(); // unaffected
            snapify_capture(&snap, false).unwrap();
            snapify_wait(&snap).unwrap();
            snapify_resume(&snap).unwrap();

            h0.destroy().unwrap();
            h1.destroy().unwrap();
        });
    }
}
