//! Multi-node cluster on parallel time domains.
//!
//! [`MultiNodeCluster`] is the top-level harness for simulations that
//! span several Phi servers: it places cluster nodes onto the
//! multi-domain simkernel (`simkernel::domain`) using the node-granular
//! partitioning from `phi_platform::domains`, and hands out
//! [`cluster_link`]s whose endpoints live in the right domains. Each
//! node's entire software stack — [`SnapifyWorld`], COI daemons,
//! Snapify-IO — runs inside that node's time domain; only node-to-node
//! network traffic crosses domains, so the conservative sync lookahead
//! is the (comparatively large) network latency and domains spend most
//! of their time running undisturbed.
//!
//! Domain count is a pure performance knob: `domains = 1` collapses to
//! the classic serial kernel, and any workload whose cross-node
//! interactions flow through cluster links observes identical virtual
//! timing at every domain count (the links never undercut the
//! lookahead, and conservative sync delivers at exact timestamps).

use std::sync::Arc;

use crate::SnapifyError;
use phi_platform::{DomainPlacement, PlatformParams};
use scif_sim::{cluster_link, ClusterRx, ClusterTx};
use simkernel::domain::{MultiDomainConfig, MultiKernel};
use simkernel::{JoinHandle, SchedPolicy};

/// A cluster of simulated Phi servers spread across parallel time
/// domains, node-granular: node `n` lives in domain `n % domains`.
#[derive(Clone)]
pub struct MultiNodeCluster {
    mk: MultiKernel,
    placement: DomainPlacement,
    params: Arc<PlatformParams>,
    nodes: usize,
}

impl MultiNodeCluster {
    /// A `nodes`-node cluster over `domains` time domains under the
    /// default FIFO policy. The sync lookahead is the platform's
    /// node-to-node network latency.
    pub fn new(nodes: usize, domains: u32, params: PlatformParams) -> MultiNodeCluster {
        MultiNodeCluster::new_with_policy(nodes, domains, params, SchedPolicy::Fifo)
    }

    /// [`MultiNodeCluster::new`] with an explicit scheduling policy
    /// (e.g. `SchedPolicy::Random(seed)` for chaos runs).
    pub fn new_with_policy(
        nodes: usize,
        domains: u32,
        params: PlatformParams,
        policy: SchedPolicy,
    ) -> MultiNodeCluster {
        assert!(nodes >= 1, "need at least one node");
        let lookahead = phi_platform::cluster_lookahead(&params);
        let mk = MultiKernel::new(MultiDomainConfig::new(domains, lookahead).with_policy(policy));
        MultiNodeCluster {
            mk,
            placement: DomainPlacement::new(domains),
            params: Arc::new(params),
            nodes,
        }
    }

    /// The underlying multi-domain kernel.
    pub fn kernel(&self) -> &MultiKernel {
        &self.mk
    }

    /// Node-to-domain placement.
    pub fn placement(&self) -> DomainPlacement {
        self.placement
    }

    /// The platform parameters shared by every node.
    pub fn params(&self) -> &PlatformParams {
        &self.params
    }

    /// Number of cluster nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// A unidirectional network link from node `src` to node `dst`,
    /// with the endpoints placed in the nodes' respective domains.
    ///
    /// Referencing a node outside `0..nodes` returns
    /// [`SnapifyError::NodeOutOfRange`] (it used to panic, which took
    /// the whole simulation down from inside library code). `src == dst`
    /// is a valid *loopback* link: both endpoints land in the same
    /// domain and traffic still pays the full network latency — exactly
    /// what a node talking to its own co-located fleet agent observes,
    /// and what a one-node ring degenerates to.
    pub fn link(&self, src: usize, dst: usize) -> Result<(ClusterTx, ClusterRx), SnapifyError> {
        for node in [src, dst] {
            if node >= self.nodes {
                return Err(SnapifyError::NodeOutOfRange {
                    node,
                    nodes: self.nodes,
                });
            }
        }
        Ok(cluster_link(
            &self.mk,
            format!("n{src}-n{dst}"),
            self.placement.node_domain(src),
            self.placement.node_domain(dst),
            &self.params,
        ))
    }

    /// Links forming a unidirectional ring `0 → 1 → … → n-1 → 0`;
    /// entry `i` is the link *from* node `i` to node `(i+1) % n`.
    pub fn ring(&self) -> Vec<(ClusterTx, ClusterRx)> {
        (0..self.nodes)
            .map(|i| {
                self.link(i, (i + 1) % self.nodes)
                    .expect("ring nodes are in range by construction")
            })
            .collect()
    }

    /// Spawn node `node`'s body in its domain. The closure runs as a
    /// simulated thread of that domain's kernel, so everything it boots
    /// ([`SnapifyWorld`], channels, daemons) lands in the same domain.
    ///
    /// [`SnapifyWorld`]: crate::SnapifyWorld
    pub fn spawn_node<T, F>(&self, node: usize, name: &str, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        assert!(node < self.nodes, "node out of range");
        self.mk
            .domain(self.placement.node_domain(node))
            .spawn(format!("n{node}:{name}"), f)
    }

    /// Run the cluster to completion (panics with a cross-domain dump
    /// on deadlock or failure, like `Kernel::run`).
    pub fn run(&self) {
        self.mk.run();
    }

    /// Merged deterministic fingerprint of the run (requires tracing;
    /// see `MultiKernel::fingerprint`).
    pub fn fingerprint(&self) -> (usize, u64) {
        self.mk.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{api, SnapifyWorld};
    use coi_sim::{DeviceBinary, FunctionRegistry};
    use phi_platform::Payload;
    use simkernel::now;

    fn registry() -> FunctionRegistry {
        let reg = FunctionRegistry::new();
        reg.register(
            DeviceBinary::new("app.so", 1 << 20, 8 << 20).simple_function("fill", |ctx| {
                let n = ctx.buffer_len(0);
                ctx.compute(1e9, 60);
                ctx.write_buffer(0, Payload::bytes(vec![9u8; n as usize]));
                Vec::new()
            }),
        );
        reg
    }

    /// Each node boots a full Snapify world in its own domain, offloads
    /// a fill, snapshots the process, then passes its snapshot size
    /// around a ring of cross-domain links. Returns per-node
    /// `(snapshot bytes, neighbor's snapshot bytes, finish time)`.
    fn ring_run(nodes: usize, domains: u32) -> Vec<(u64, u64, u64)> {
        let cluster = MultiNodeCluster::new(nodes, domains, PlatformParams::default());
        // tx[i] sends i→i+1; after the rotate, rx[i] receives (i-1)→i.
        let (txs, mut rxs): (Vec<_>, Vec<_>) = cluster.ring().into_iter().unzip();
        rxs.rotate_right(1);

        let joins: Vec<_> = txs
            .into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(i, (tx, rx))| {
                cluster.spawn_node(i, "main", move || {
                    let world = SnapifyWorld::boot(registry());
                    let host = world.coi().create_host_process("app");
                    let h = world.coi().create_process(&host, 0, "app.so").unwrap();
                    let buf = h.create_buffer(64 << 10).unwrap();
                    h.buffer_write(&buf, Payload::synthetic(i as u64, 64 << 10))
                        .unwrap();
                    h.run_sync("fill", Vec::new(), &[&buf]).unwrap();

                    let snap = api::SnapifyT::new(&h, format!("/snap/n{i}"));
                    api::snapify_pause(&snap).unwrap();
                    api::snapify_capture(&snap, false).unwrap();
                    let bytes = api::snapify_wait(&snap).unwrap();
                    api::snapify_resume(&snap).unwrap();
                    h.destroy().unwrap();

                    tx.send(Payload::synthetic(bytes, 8)).unwrap();
                    tx.close();
                    let neighbor = rx.recv().unwrap().digest();
                    (bytes, neighbor, now().as_nanos())
                })
            })
            .collect();
        cluster.run();
        joins
            .into_iter()
            .map(|j| j.take_result().unwrap())
            .collect()
    }

    #[test]
    fn four_node_ring_is_identical_across_domain_counts() {
        let serial = ring_run(4, 1);
        let two = ring_run(4, 2);
        let four = ring_run(4, 4);
        assert_eq!(serial, two, "2 domains must not change observable results");
        assert_eq!(serial, four, "4 domains must not change observable results");
        // Every node's neighbor value is a real snapshot digest.
        for (i, (bytes, neighbor, _)) in serial.iter().enumerate() {
            assert!(*bytes > 0, "node {i} captured an empty snapshot");
            let prev = (i + serial.len() - 1) % serial.len();
            assert_eq!(
                *neighbor,
                Payload::synthetic(serial[prev].0, 8).digest(),
                "node {i} must hold node {prev}'s snapshot-size digest"
            );
        }
    }

    #[test]
    fn multi_domain_cluster_runs_are_deterministic() {
        assert_eq!(ring_run(4, 2), ring_run(4, 2));
    }

    /// Regression: `link` used to `assert!` on out-of-range nodes,
    /// panicking from inside library code. It now reports which index
    /// was bad and how big the cluster is.
    #[test]
    fn link_out_of_range_is_a_typed_error() {
        let cluster = MultiNodeCluster::new(3, 1, PlatformParams::default());
        match cluster.link(0, 3) {
            Err(SnapifyError::NodeOutOfRange { node: 3, nodes: 3 }) => {}
            Err(other) => panic!("expected NodeOutOfRange for dst, got {other:?}"),
            Ok(_) => panic!("out-of-range dst must not produce a link"),
        }
        match cluster.link(7, 0) {
            Err(SnapifyError::NodeOutOfRange { node: 7, nodes: 3 }) => {}
            Err(other) => panic!("expected NodeOutOfRange for src, got {other:?}"),
            Ok(_) => panic!("out-of-range src must not produce a link"),
        }
        let msg = match cluster.link(0, 3) {
            Err(e) => e.to_string(),
            Ok(_) => unreachable!(),
        };
        assert!(msg.contains("node 3"), "{msg}");
        assert!(msg.contains("3-node"), "{msg}");
        cluster.kernel().domain(0).spawn("noop", || {});
        cluster.run();
    }

    /// `src == dst` is defined behaviour: a loopback link that still
    /// pays the network latency. A 1-node ring degenerates to exactly
    /// this, and messages round-trip through it.
    #[test]
    fn self_link_is_a_valid_loopback() {
        let cluster = MultiNodeCluster::new(1, 1, PlatformParams::default());
        let (tx, rx) = cluster.link(0, 0).expect("loopback link is valid");
        cluster.spawn_node(0, "loop", move || {
            let t0 = now();
            tx.send(Payload::synthetic(1, 64)).unwrap();
            tx.close();
            let got = rx.recv().unwrap();
            assert_eq!(got.digest(), Payload::synthetic(1, 64).digest());
            assert!(now() > t0, "loopback still pays network latency");
        });
        cluster.run();
    }
}
