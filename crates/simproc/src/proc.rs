//! The simulated process: identity, memory regions, threads, liveness.
//!
//! A [`SimProcess`] is the unit Snapify snapshots. Its state is held in
//! *memory regions* — named, sized, content-carrying allocations charged to
//! the owning node's physical memory pool. Offload-private data (thread
//! stacks, `malloc`ed regions, COI local stores) are all regions, which is
//! exactly the property that makes the GPU-style "save only host-visible
//! buffers" approach insufficient for Xeon Phi (§3 "Saving data private to
//! an offload process") and a full process-image checkpointer necessary.
//!
//! Threads of a process are simulated threads tagged with the process
//! identity. Termination is cooperative: process code observes
//! [`SimProcess::is_alive`] at its blocking points (its control channels
//! are closed on termination), mirroring how the real offload daemon tears
//! processes down through its control plane.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use phi_platform::{MemPool, OutOfMemory, Payload, SimNode};
use simkernel::{JoinHandle, SimCondvar, SimMutex};

/// Process identifier, unique within one simulated world.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u64);

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Allocates process ids deterministically within a simulated world.
#[derive(Clone)]
pub struct PidAllocator {
    next: Arc<SimMutex<u64>>,
}

impl Default for PidAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl PidAllocator {
    /// New allocator starting at pid 1.
    pub fn new() -> PidAllocator {
        PidAllocator {
            next: Arc::new(SimMutex::new("pid-alloc", 1)),
        }
    }

    /// Allocate the next pid.
    pub fn alloc(&self) -> Pid {
        let mut n = self.next.lock();
        let pid = Pid(*n);
        *n += 1;
        pid
    }
}

/// Error from a region operation naming a region that is not mapped (or
/// a grow the node's pool cannot satisfy).
///
/// Historically the accessors panicked on a missing name; under the
/// chaos plane an injected unmap can race a capture, and that must
/// surface as a recoverable error, not a sim abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegionError {
    /// No region with this name is mapped.
    Missing(String),
    /// The node's memory pool could not satisfy a region grow.
    OutOfMemory(OutOfMemory),
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::Missing(name) => write!(f, "no region '{name}'"),
            RegionError::OutOfMemory(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegionError {}

impl From<OutOfMemory> for RegionError {
    fn from(e: OutOfMemory) -> RegionError {
        RegionError::OutOfMemory(e)
    }
}

/// One memory region of a process.
#[derive(Clone)]
pub struct Region {
    /// Region contents (length == region size).
    pub content: Payload,
    /// Mutation counter: bumped on every content-changing update.
    /// Incremental checkpointing uses it to find dirty regions.
    pub version: u64,
    /// Whether the region has been written since the last capture
    /// (dirty-page tracking, cleared by [`ProcMemory::mark_captured`]).
    pub dirty: bool,
}

struct MemState {
    regions: BTreeMap<String, Region>,
    total: u64,
}

/// The memory image of a process: named regions charged to a node's pool.
pub struct ProcMemory {
    pool: MemPool,
    state: SimMutex<MemState>,
}

impl ProcMemory {
    fn new(pool: MemPool, tag: &str) -> ProcMemory {
        ProcMemory {
            pool,
            state: SimMutex::new(
                format!("procmem {tag}"),
                MemState {
                    regions: BTreeMap::new(),
                    total: 0,
                },
            ),
        }
    }

    /// Map a new region with the given contents. Fails (leaving the image
    /// unchanged) if the node's memory pool cannot satisfy it or the name
    /// is taken.
    pub fn map_region(&self, name: &str, content: Payload) -> Result<(), OutOfMemory> {
        let mut st = self.state.lock();
        assert!(
            !st.regions.contains_key(name),
            "region '{name}' already mapped"
        );
        let len = content.len();
        self.pool.alloc(len)?;
        st.total += len;
        st.regions.insert(
            name.to_string(),
            Region {
                content,
                version: 0,
                dirty: true,
            },
        );
        Ok(())
    }

    /// Replace a region's contents (size may change). A byte-identical
    /// replacement is a no-op: the mutation counter is not bumped and
    /// the region stays clean, so dirty tracking does not over-capture
    /// regions an application rewrites with unchanged data.
    pub fn update_region(&self, name: &str, content: Payload) -> Result<(), RegionError> {
        let mut st = self.state.lock();
        let region = st
            .regions
            .get_mut(name)
            .ok_or_else(|| RegionError::Missing(name.to_string()))?;
        let old = region.content.len();
        let new = content.len();
        if new == old && region.content.digest() == content.digest() {
            return Ok(());
        }
        if new > old {
            self.pool.alloc(new - old)?;
        } else {
            self.pool.free(old - new);
        }
        region.content = content;
        region.version += 1;
        region.dirty = true;
        st.total = st.total + new - old;
        Ok(())
    }

    /// Read a region's contents.
    pub fn region(&self, name: &str) -> Result<Payload, RegionError> {
        self.state
            .lock()
            .regions
            .get(name)
            .map(|r| r.content.clone())
            .ok_or_else(|| RegionError::Missing(name.to_string()))
    }

    /// Whether a region exists.
    pub fn has_region(&self, name: &str) -> bool {
        self.state.lock().regions.contains_key(name)
    }

    /// Whether a region has been written since the last capture.
    pub fn region_is_dirty(&self, name: &str) -> Result<bool, RegionError> {
        self.state
            .lock()
            .regions
            .get(name)
            .map(|r| r.dirty)
            .ok_or_else(|| RegionError::Missing(name.to_string()))
    }

    /// Unmap a region, returning its memory to the pool.
    pub fn unmap_region(&self, name: &str) -> Result<Payload, RegionError> {
        let mut st = self.state.lock();
        let region = st
            .regions
            .remove(name)
            .ok_or_else(|| RegionError::Missing(name.to_string()))?;
        let len = region.content.len();
        st.total -= len;
        self.pool.free(len);
        Ok(region.content)
    }

    /// Total mapped bytes.
    pub fn total_bytes(&self) -> u64 {
        self.state.lock().total
    }

    /// Region names and contents, in deterministic (sorted) order — the
    /// raw material of a process snapshot.
    pub fn snapshot_regions(&self) -> Vec<(String, Payload)> {
        self.state
            .lock()
            .regions
            .iter()
            .map(|(k, v)| (k.clone(), v.content.clone()))
            .collect()
    }

    /// Region names, contents and mutation counters, in sorted order —
    /// the raw material of an *incremental* snapshot.
    pub fn snapshot_regions_versioned(&self) -> Vec<(String, Payload, u64)> {
        self.state
            .lock()
            .regions
            .iter()
            .map(|(k, v)| (k.clone(), v.content.clone(), v.version))
            .collect()
    }

    /// Region names, contents and dirty flags, in sorted order — what an
    /// O(dirty) capture consults to skip untouched regions.
    pub fn snapshot_regions_dirty(&self) -> Vec<(String, Payload, bool)> {
        self.state
            .lock()
            .regions
            .iter()
            .map(|(k, v)| (k.clone(), v.content.clone(), v.dirty))
            .collect()
    }

    /// Record a successful capture: every region's dirty flag is
    /// cleared, so the next capture only pays for regions written in
    /// between. Also used after a restore, whose freshly-mapped regions
    /// are byte-identical to the snapshot they came from.
    pub fn mark_captured(&self) {
        for region in self.state.lock().regions.values_mut() {
            region.dirty = false;
        }
    }

    /// Record a successful capture of a single region (the local-store
    /// path saves buffers one file at a time).
    pub fn mark_region_captured(&self, name: &str) -> Result<(), RegionError> {
        self.state
            .lock()
            .regions
            .get_mut(name)
            .map(|r| r.dirty = false)
            .ok_or_else(|| RegionError::Missing(name.to_string()))
    }

    /// Drop every region, returning all memory to the pool (process exit).
    pub fn unmap_all(&self) {
        let mut st = self.state.lock();
        let total = st.total;
        st.regions.clear();
        st.total = 0;
        self.pool.free(total);
    }

    /// Digest of the entire memory image (region names + contents).
    pub fn digest(&self) -> u64 {
        let st = self.state.lock();
        let mut combined = Payload::empty();
        for (name, region) in &st.regions {
            combined.append(Payload::bytes(name.as_bytes().to_vec()));
            combined.append(region.content.clone());
        }
        combined.digest()
    }
}

struct ProcInner {
    pid: Pid,
    name: String,
    node: SimNode,
    memory: ProcMemory,
    alive: SimMutex<bool>,
    exit_cv: SimCondvar,
}

/// A simulated process. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct SimProcess {
    inner: Arc<ProcInner>,
}

impl SimProcess {
    /// Create a process on `node`.
    pub fn new(pid: Pid, name: impl Into<String>, node: &SimNode) -> SimProcess {
        let name = name.into();
        SimProcess {
            inner: Arc::new(ProcInner {
                pid,
                memory: ProcMemory::new(node.mem().clone(), &format!("{pid}:{name}")),
                alive: SimMutex::new(format!("{pid} alive"), true),
                exit_cv: SimCondvar::new(format!("{pid} exit")),
                node: node.clone(),
                name,
            }),
        }
    }

    /// Process id.
    pub fn pid(&self) -> Pid {
        self.inner.pid
    }

    /// Process name (diagnostics).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The node this process runs on.
    pub fn node(&self) -> &SimNode {
        &self.inner.node
    }

    /// The process memory image.
    pub fn memory(&self) -> &ProcMemory {
        &self.inner.memory
    }

    /// Spawn a thread belonging to this process.
    pub fn spawn_thread<T, F>(&self, name: &str, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        simkernel::spawn(format!("{}:{}", self.inner.name, name), f)
    }

    /// Spawn a *service* thread of this process: a server loop that blocks
    /// indefinitely waiting for requests. Service threads do not keep the
    /// simulation alive (see [`simkernel::Kernel::spawn_daemon`]).
    pub fn spawn_service<T, F>(&self, name: &str, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (kernel, _) = simkernel::current();
        kernel.spawn_daemon(format!("{}:{}", self.inner.name, name), f)
    }

    /// Whether the process is still alive.
    pub fn is_alive(&self) -> bool {
        *self.inner.alive.lock()
    }

    /// Mark the process exited: releases all memory and wakes waiters.
    /// Idempotent.
    pub fn exit(&self) {
        let mut alive = self.inner.alive.lock();
        if !*alive {
            return;
        }
        *alive = false;
        drop(alive);
        self.inner.memory.unmap_all();
        self.inner.exit_cv.notify_all();
    }

    /// Block until the process exits (used by the COI daemon to monitor
    /// its processes).
    pub fn wait_exit(&self) {
        let mut alive = self.inner.alive.lock();
        while *alive {
            alive = self.inner.exit_cv.wait(alive);
        }
    }
}

impl fmt::Debug for SimProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimProcess")
            .field("pid", &self.inner.pid)
            .field("name", &self.inner.name)
            .field("node", &self.inner.node.id())
            .field("alive", &self.is_alive())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::{PlatformParams, GB, MB};
    use simkernel::{sleep, time::ms, Kernel};

    fn phi_node() -> SimNode {
        SimNode::phi(&PlatformParams::default(), 0)
    }

    #[test]
    fn pid_allocation_is_sequential() {
        Kernel::run_root(|| {
            let alloc = PidAllocator::new();
            assert_eq!(alloc.alloc(), Pid(1));
            assert_eq!(alloc.alloc(), Pid(2));
        });
    }

    #[test]
    fn regions_charge_node_memory() {
        Kernel::run_root(|| {
            let node = phi_node();
            let proc = SimProcess::new(Pid(1), "offload", &node);
            proc.memory()
                .map_region("heap", Payload::synthetic(1, GB))
                .unwrap();
            assert_eq!(node.mem().used(), GB);
            assert_eq!(proc.memory().total_bytes(), GB);
            proc.memory().unmap_region("heap").unwrap();
            assert_eq!(node.mem().used(), 0);
        });
    }

    #[test]
    fn oom_on_oversized_region() {
        Kernel::run_root(|| {
            let node = phi_node();
            let proc = SimProcess::new(Pid(1), "p", &node);
            let err = proc
                .memory()
                .map_region("big", Payload::synthetic(1, 9 * GB))
                .unwrap_err();
            assert_eq!(err.requested, 9 * GB);
            assert!(!proc.memory().has_region("big"));
        });
    }

    #[test]
    fn update_region_adjusts_accounting() {
        Kernel::run_root(|| {
            let node = phi_node();
            let proc = SimProcess::new(Pid(1), "p", &node);
            proc.memory()
                .map_region("buf", Payload::synthetic(1, 10 * MB))
                .unwrap();
            proc.memory()
                .update_region("buf", Payload::synthetic(2, 4 * MB))
                .unwrap();
            assert_eq!(node.mem().used(), 4 * MB);
            proc.memory()
                .update_region("buf", Payload::synthetic(3, 20 * MB))
                .unwrap();
            assert_eq!(node.mem().used(), 20 * MB);
        });
    }

    #[test]
    fn missing_region_ops_are_typed_errors() {
        // Regression: these were `panic!("no region ...")` and aborted
        // the simulation when a chaos-injected unmap raced an accessor.
        Kernel::run_root(|| {
            let node = phi_node();
            let proc = SimProcess::new(Pid(1), "p", &node);
            let missing = RegionError::Missing("ghost".to_string());
            assert_eq!(
                proc.memory()
                    .update_region("ghost", Payload::empty())
                    .unwrap_err(),
                missing
            );
            assert_eq!(proc.memory().region("ghost").unwrap_err(), missing);
            assert_eq!(proc.memory().unmap_region("ghost").unwrap_err(), missing);
            assert_eq!(proc.memory().region_is_dirty("ghost").unwrap_err(), missing);
            assert_eq!(
                proc.memory().mark_region_captured("ghost").unwrap_err(),
                missing
            );
            assert_eq!(format!("{missing}"), "no region 'ghost'");
        });
    }

    #[test]
    fn identical_update_skips_version_bump_and_stays_clean() {
        // Regression: rewriting a region with byte-identical content
        // bumped `version`, which would make dirty tracking over-capture
        // clean regions.
        Kernel::run_root(|| {
            let node = phi_node();
            let proc = SimProcess::new(Pid(1), "p", &node);
            proc.memory()
                .map_region("buf", Payload::synthetic(7, MB))
                .unwrap();
            proc.memory().mark_captured();
            proc.memory()
                .update_region("buf", Payload::synthetic(7, MB))
                .unwrap();
            let snap = proc.memory().snapshot_regions_versioned();
            assert_eq!(snap[0].2, 0, "identical rewrite must not bump version");
            assert!(!proc.memory().region_is_dirty("buf").unwrap());
            // A real change still bumps and dirties.
            proc.memory()
                .update_region("buf", Payload::synthetic(8, MB))
                .unwrap();
            assert_eq!(proc.memory().snapshot_regions_versioned()[0].2, 1);
            assert!(proc.memory().region_is_dirty("buf").unwrap());
        });
    }

    #[test]
    fn capture_clears_dirty_flags() {
        Kernel::run_root(|| {
            let node = phi_node();
            let proc = SimProcess::new(Pid(1), "p", &node);
            proc.memory()
                .map_region("a", Payload::synthetic(1, MB))
                .unwrap();
            proc.memory()
                .map_region("b", Payload::synthetic(2, MB))
                .unwrap();
            // Freshly mapped regions are dirty: nothing captured yet.
            assert!(proc.memory().region_is_dirty("a").unwrap());
            proc.memory().mark_captured();
            assert!(!proc.memory().region_is_dirty("a").unwrap());
            assert!(!proc.memory().region_is_dirty("b").unwrap());
            proc.memory()
                .update_region("a", Payload::synthetic(3, MB))
                .unwrap();
            let dirty: Vec<(String, bool)> = proc
                .memory()
                .snapshot_regions_dirty()
                .into_iter()
                .map(|(n, _, d)| (n, d))
                .collect();
            assert_eq!(
                dirty,
                vec![("a".to_string(), true), ("b".to_string(), false)]
            );
            proc.memory().mark_region_captured("a").unwrap();
            assert!(!proc.memory().region_is_dirty("a").unwrap());
        });
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn duplicate_region_panics() {
        Kernel::run_root(|| {
            let node = phi_node();
            let proc = SimProcess::new(Pid(1), "p", &node);
            proc.memory().map_region("r", Payload::empty()).unwrap();
            proc.memory().map_region("r", Payload::empty()).unwrap();
        });
    }

    #[test]
    fn snapshot_regions_sorted_and_digest_stable() {
        Kernel::run_root(|| {
            let node = phi_node();
            let proc = SimProcess::new(Pid(1), "p", &node);
            proc.memory()
                .map_region("b", Payload::synthetic(2, 100))
                .unwrap();
            proc.memory()
                .map_region("a", Payload::synthetic(1, 50))
                .unwrap();
            let snap = proc.memory().snapshot_regions();
            assert_eq!(snap[0].0, "a");
            assert_eq!(snap[1].0, "b");
            let d1 = proc.memory().digest();
            proc.memory()
                .update_region("a", Payload::synthetic(9, 50))
                .unwrap();
            assert_ne!(proc.memory().digest(), d1);
        });
    }

    #[test]
    fn exit_releases_memory_and_wakes_waiters() {
        Kernel::run_root(|| {
            let node = phi_node();
            let proc = SimProcess::new(Pid(1), "p", &node);
            proc.memory()
                .map_region("heap", Payload::synthetic(1, GB))
                .unwrap();
            let p2 = proc.clone();
            let waiter = proc.spawn_thread("monitor", move || {
                p2.wait_exit();
                simkernel::now()
            });
            sleep(ms(5));
            assert!(proc.is_alive());
            proc.exit();
            proc.exit(); // idempotent
            assert!(!proc.is_alive());
            assert_eq!(node.mem().used(), 0);
            let woke = waiter.join();
            assert_eq!(woke.as_nanos(), 5_000_000);
        });
    }

    #[test]
    fn wait_exit_on_dead_process_returns_immediately() {
        Kernel::run_root(|| {
            let node = phi_node();
            let proc = SimProcess::new(Pid(1), "p", &node);
            proc.exit();
            proc.wait_exit();
        });
    }
}
