//! Byte-stream abstractions: the simulated equivalent of UNIX file
//! descriptors.
//!
//! Snapify's key I/O trick is that BLCR on the coprocessor is handed a
//! plain file descriptor and neither knows nor cares whether it writes to
//! a local file or to a Snapify-IO socket that RDMAs the stream to the
//! host (§6). [`ByteSink`] and [`ByteSource`] play that role here: the
//! checkpointer streams [`Payload`] chunks into *some* sink; local files,
//! NFS mounts, scp pipes, and Snapify-IO all implement the same trait pair.

use std::fmt;

use phi_platform::{FsError, Payload, SimFs};

/// Errors from simulated stream I/O.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoError {
    /// Underlying file-system error.
    Fs(FsError),
    /// The peer closed the stream.
    Closed,
    /// A transport round-trip timed out (transient: a retry may
    /// succeed). The message names the transport and operation.
    Timeout(String),
    /// The transport connection reset mid-stream (transient: a retry
    /// re-establishes it and may resume). The message names the
    /// transport and how far the stream got.
    ConnReset(String),
    /// Anything else (message carries detail).
    Other(String),
}

impl IoError {
    /// Whether a retry of the failed operation could plausibly succeed
    /// (the error models a transient condition, not a hard failure).
    pub fn is_transient(&self) -> bool {
        matches!(self, IoError::Timeout(_) | IoError::ConnReset(_))
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Fs(e) => write!(f, "{e}"),
            IoError::Closed => write!(f, "stream closed"),
            IoError::Timeout(s) => write!(f, "timeout: {s}"),
            IoError::ConnReset(s) => write!(f, "connection reset: {s}"),
            IoError::Other(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<FsError> for IoError {
    fn from(e: FsError) -> IoError {
        IoError::Fs(e)
    }
}

/// A writable byte stream (simulated `write(2)` target).
pub trait ByteSink: Send {
    /// Write one chunk.
    fn write(&mut self, data: Payload) -> Result<(), IoError>;

    /// Finish the stream: flush buffered data and signal end-of-stream to
    /// the consumer. Must be called exactly once.
    fn close(&mut self) -> Result<(), IoError>;

    /// Declare the granularity at which the writer *logically* issues
    /// writes. A checkpointer that dumps memory page-by-page calls
    /// `set_write_granularity(Some(4096))` and may then pass large payload
    /// chunks to [`ByteSink::write`]; a per-operation-priced sink (NFS)
    /// charges one operation per `granularity` bytes. Sinks that buffer or
    /// that are bandwidth-priced ignore this. Default: no-op.
    fn set_write_granularity(&mut self, granularity: Option<u64>) {
        let _ = granularity;
    }

    /// Hint that the bytes written so far form a natural record boundary
    /// (e.g. the frame writer is about to start a new payload). Chunking
    /// sinks (the content-addressed snapshot store) cut a chunk here so
    /// identical regions dedup even when their offsets shift between
    /// snapshots. Non-chunking sinks ignore this. Default: no-op.
    fn mark_boundary(&mut self) {}

    /// Declare that the bytes written from here on form one logical
    /// *record* (e.g. one BLCR region frame) whose payload content has
    /// the given digest and length. Record-aware sinks (the snapshot
    /// store) remember which chunks the record produced so a later
    /// capture of the same stream can reuse them via
    /// [`ByteSink::write_cached_record`]. An empty `name` terminates the
    /// current record without starting a new one (trailer bytes follow).
    /// Default: no-op.
    fn begin_record(&mut self, name: &str, digest: u64, len: u64) {
        let _ = (name, digest, len);
    }

    /// Ask the sink to emit the named record from content it already
    /// holds (a prior snapshot at the same path), skipping the byte
    /// stream entirely. Returns `Ok(true)` if the sink satisfied the
    /// record — the caller must then *not* stream the record's bytes —
    /// or `Ok(false)` if it cannot (no prior capture, content changed,
    /// rebase due, or the sink does not cache); the caller falls back to
    /// [`ByteSink::begin_record`] + [`ByteSink::write`]. This is what
    /// makes warm capture O(dirty): clean regions cost neither a read
    /// nor a hash. Default: `Ok(false)` — plain sinks always stream.
    fn write_cached_record(&mut self, name: &str, digest: u64, len: u64) -> Result<bool, IoError> {
        let _ = (name, digest, len);
        Ok(false)
    }
}

/// A readable byte stream (simulated `read(2)` source).
pub trait ByteSource: Send {
    /// Read the next chunk of at most `max` bytes. `Ok(None)` = EOF.
    fn read(&mut self, max: u64) -> Result<Option<Payload>, IoError>;
}

/// Factory for cross-node snapshot streams.
///
/// `local` is the node performing the I/O; `path` names a file on the
/// target file system (usually the host's). The returned sink/source
/// charge whatever transport the implementation models — Snapify-IO's
/// RDMA pipeline, an NFS mount, scp, or the local RAM fs.
pub trait SnapshotStorage: Send + Sync {
    /// Open `path` for writing from node `local`.
    fn sink(&self, local: phi_platform::NodeId, path: &str) -> Result<Box<dyn ByteSink>, IoError>;
    /// Open `path` for reading from node `local`.
    fn source(
        &self,
        local: phi_platform::NodeId,
        path: &str,
    ) -> Result<Box<dyn ByteSource>, IoError>;
    /// Human-readable method name (benchmark labels).
    fn label(&self) -> &'static str;
}

/// Sink appending to a file on a [`SimFs`] (costs charged by the fs model).
pub struct FsSink {
    fs: SimFs,
    path: String,
    closed: bool,
}

impl FsSink {
    /// Create (truncate) `path` on `fs` and return a sink appending to it.
    pub fn create(fs: &SimFs, path: &str) -> FsSink {
        fs.create_or_truncate(path);
        FsSink {
            fs: fs.clone(),
            path: path.to_string(),
            closed: false,
        }
    }

    /// The destination path.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl ByteSink for FsSink {
    fn write(&mut self, data: Payload) -> Result<(), IoError> {
        // A typed error (not a panic): error-path double-writes happen in
        // chaos repros, and the world must stay replayable through them.
        if self.closed {
            return Err(IoError::Closed);
        }
        self.fs.append(&self.path, data)?;
        Ok(())
    }

    fn close(&mut self) -> Result<(), IoError> {
        self.closed = true;
        Ok(())
    }
}

/// Source streaming a file from a [`SimFs`].
pub struct FsSource {
    fs: SimFs,
    path: String,
    offset: u64,
}

impl FsSource {
    /// Open `path` on `fs` for sequential reading.
    pub fn open(fs: &SimFs, path: &str) -> Result<FsSource, IoError> {
        if !fs.exists(path) {
            return Err(IoError::Fs(FsError::NotFound(path.to_string())));
        }
        Ok(FsSource {
            fs: fs.clone(),
            path: path.to_string(),
            offset: 0,
        })
    }
}

impl ByteSource for FsSource {
    fn read(&mut self, max: u64) -> Result<Option<Payload>, IoError> {
        let size = self.fs.len(&self.path)?;
        if self.offset >= size {
            return Ok(None);
        }
        let take = max.min(size - self.offset);
        let chunk = self.fs.read(&self.path, self.offset, take)?;
        self.offset += take;
        Ok(Some(chunk))
    }
}

/// An in-memory sink that just accumulates chunks (testing aid).
#[derive(Default)]
pub struct VecSink {
    /// Chunks written so far.
    pub chunks: Vec<Payload>,
    /// Whether the stream was closed.
    pub closed: bool,
}

impl VecSink {
    /// New empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// Everything written, concatenated.
    pub fn payload(&self) -> Payload {
        Payload::concat(self.chunks.iter().cloned())
    }
}

impl ByteSink for VecSink {
    fn write(&mut self, data: Payload) -> Result<(), IoError> {
        assert!(!self.closed, "write after close");
        self.chunks.push(data);
        Ok(())
    }

    fn close(&mut self) -> Result<(), IoError> {
        self.closed = true;
        Ok(())
    }
}

/// An in-memory source over a payload (testing aid).
pub struct PayloadSource {
    payload: Payload,
    offset: u64,
}

impl PayloadSource {
    /// Source reading from `payload`.
    pub fn new(payload: Payload) -> PayloadSource {
        PayloadSource { payload, offset: 0 }
    }
}

impl ByteSource for PayloadSource {
    fn read(&mut self, max: u64) -> Result<Option<Payload>, IoError> {
        let size = self.payload.len();
        if self.offset >= size {
            return Ok(None);
        }
        let take = max.min(size - self.offset);
        let chunk = self.payload.slice(self.offset, take);
        self.offset += take;
        Ok(Some(chunk))
    }
}

/// Copy a source to a sink in `chunk`-byte reads. Returns bytes copied.
pub fn copy(src: &mut dyn ByteSource, dst: &mut dyn ByteSink, chunk: u64) -> Result<u64, IoError> {
    assert!(chunk > 0);
    let mut total = 0;
    while let Some(data) = src.read(chunk)? {
        total += data.len();
        dst.write(data)?;
    }
    dst.close()?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::{FsConfig, MemPool, SimFs};
    use simkernel::{Bandwidth, Kernel, SimDuration};

    fn test_fs() -> SimFs {
        SimFs::new(
            "t",
            FsConfig::ram(Bandwidth::gb_per_sec(1.0), SimDuration::ZERO),
            None,
        )
    }

    #[test]
    fn fs_sink_source_roundtrip() {
        Kernel::run_root(|| {
            let fs = test_fs();
            let mut sink = FsSink::create(&fs, "/f");
            sink.write(Payload::bytes(vec![1, 2, 3])).unwrap();
            sink.write(Payload::bytes(vec![4])).unwrap();
            sink.close().unwrap();
            let mut src = FsSource::open(&fs, "/f").unwrap();
            let a = src.read(2).unwrap().unwrap();
            assert_eq!(a.to_bytes(), vec![1, 2]);
            let b = src.read(100).unwrap().unwrap();
            assert_eq!(b.to_bytes(), vec![3, 4]);
            assert!(src.read(100).unwrap().is_none());
        });
    }

    #[test]
    fn fs_source_missing_file() {
        Kernel::run_root(|| {
            let fs = test_fs();
            assert!(FsSource::open(&fs, "/missing").is_err());
        });
    }

    #[test]
    fn fs_sink_truncates_existing() {
        Kernel::run_root(|| {
            let fs = test_fs();
            fs.append("/f", Payload::bytes(vec![9; 10])).unwrap();
            let mut sink = FsSink::create(&fs, "/f");
            sink.write(Payload::bytes(vec![1])).unwrap();
            sink.close().unwrap();
            assert_eq!(fs.len("/f").unwrap(), 1);
        });
    }

    #[test]
    fn copy_preserves_digest() {
        Kernel::run_root(|| {
            let src_payload = Payload::synthetic(42, 1_000_000);
            let mut src = PayloadSource::new(src_payload.clone());
            let mut sink = VecSink::new();
            let n = copy(&mut src, &mut sink, 4096).unwrap();
            assert_eq!(n, 1_000_000);
            assert!(sink.closed);
            assert_eq!(sink.payload().digest(), src_payload.digest());
        });
    }

    #[test]
    fn copy_empty_source() {
        Kernel::run_root(|| {
            let mut src = PayloadSource::new(Payload::empty());
            let mut sink = VecSink::new();
            assert_eq!(copy(&mut src, &mut sink, 64).unwrap(), 0);
            assert!(sink.closed);
        });
    }

    #[test]
    fn write_after_close_is_typed_error_not_panic() {
        Kernel::run_root(|| {
            let fs = test_fs();
            let mut sink = FsSink::create(&fs, "/f");
            sink.write(Payload::bytes(vec![1])).unwrap();
            sink.close().unwrap();
            let err = sink.write(Payload::bytes(vec![2])).unwrap_err();
            assert_eq!(err, IoError::Closed);
            assert!(!err.is_transient());
            // The stray write left no trace.
            assert_eq!(fs.len("/f").unwrap(), 1);
        });
    }

    #[test]
    fn ram_fs_sink_oom_propagates() {
        Kernel::run_root(|| {
            let pool = MemPool::new("p", 100);
            let fs = SimFs::new(
                "ram",
                FsConfig::ram(Bandwidth::gb_per_sec(1.0), SimDuration::ZERO),
                Some(pool),
            );
            let mut sink = FsSink::create(&fs, "/f");
            let err = sink.write(Payload::synthetic(1, 200)).unwrap_err();
            assert!(matches!(err, IoError::Fs(FsError::OutOfMemory(_))));
        });
    }
}
