//! # simproc — simulated OS process model
//!
//! The process-level substrate under COI and Snapify:
//!
//! * [`SimProcess`] — pid, node, liveness, threads, and a memory image of
//!   named regions charged to the node's physical memory pool;
//! * [`ProcMemory`] — the snapshot-able memory image (regions are what
//!   BLCR serializes);
//! * [`Signals`] — asynchronous signal delivery (how the COI daemon pokes
//!   the offload process, and how BLCR checkpoints are triggered);
//! * [`io`] — `ByteSink`/`ByteSource`, the simulated file-descriptor
//!   abstraction that lets the checkpointer stream to a local file, an NFS
//!   mount, or a Snapify-IO socket without knowing which.

#![warn(missing_docs)]

pub mod io;
pub mod proc;
pub mod signal;

pub use io::{
    copy, ByteSink, ByteSource, FsSink, FsSource, IoError, PayloadSource, SnapshotStorage, VecSink,
};
pub use proc::{Pid, PidAllocator, ProcMemory, Region, RegionError, SimProcess};
pub use signal::{signum, Signals};
