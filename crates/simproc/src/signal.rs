//! Asynchronous signal delivery between simulated processes.
//!
//! Snapify's pause protocol begins with the COI daemon *signalling* the
//! offload process; the process's signal handler then opens the pipe the
//! daemon created and acknowledges (§4.1, Fig 3). BLCR's checkpoint request
//! is likewise signal-initiated. [`Signals`] reproduces that shape: a
//! handler is registered per signal number, and [`Signals::kill`] runs it
//! on a fresh thread of the target process after the configured delivery
//! latency, concurrently with the process's other threads — the same
//! concurrency structure as a real signal handler thread.

use std::collections::HashMap;
use std::sync::Arc;

use simkernel::{SimDuration, SimMutex};

use crate::proc::SimProcess;

/// Conventional signal numbers used by the reproduction.
pub mod signum {
    /// Checkpoint-trigger signal (BLCR uses a real-time signal).
    pub const SIGCKPT: i32 = 64;
    /// Snapify command signal (the `snapify` CLI signals the host process).
    pub const SIGSNAPIFY: i32 = 63;
}

type Handler = Arc<dyn Fn() + Send + Sync>;

/// Per-process signal-handler table.
#[derive(Clone)]
pub struct Signals {
    latency: SimDuration,
    handlers: Arc<SimMutex<HashMap<i32, Handler>>>,
}

impl Signals {
    /// Create a table with the given delivery latency.
    pub fn new(tag: &str, latency: SimDuration) -> Signals {
        Signals {
            latency,
            handlers: Arc::new(SimMutex::new(format!("signals {tag}"), HashMap::new())),
        }
    }

    /// Install (or replace) the handler for `signo`.
    pub fn register(&self, signo: i32, handler: impl Fn() + Send + Sync + 'static) {
        self.handlers.lock().insert(signo, Arc::new(handler));
    }

    /// Remove the handler for `signo`.
    pub fn unregister(&self, signo: i32) {
        self.handlers.lock().remove(&signo);
    }

    /// Deliver `signo` to `target`: after the delivery latency, the
    /// registered handler runs on a new thread of the target process.
    /// Returns `false` (without running anything) if no handler is
    /// installed or the process is dead — the simulated equivalent of the
    /// default disposition being to ignore.
    pub fn kill(&self, target: &SimProcess, signo: i32) -> bool {
        let handler = match self.handlers.lock().get(&signo) {
            Some(h) => Arc::clone(h),
            None => return false,
        };
        if !target.is_alive() {
            return false;
        }
        let latency = self.latency;
        let target = target.clone();
        target
            .clone()
            .spawn_thread(&format!("sig{signo}"), move || {
                simkernel::sleep(latency);
                if target.is_alive() {
                    handler();
                }
            });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::{Pid, SimProcess};
    use phi_platform::{PlatformParams, SimNode};
    use simkernel::time::us;
    use simkernel::{now, sleep, Kernel};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn setup() -> (SimProcess, Signals) {
        let node = SimNode::phi(&PlatformParams::default(), 0);
        let proc = SimProcess::new(Pid(7), "offload", &node);
        let sig = Signals::new("test", us(50));
        (proc, sig)
    }

    #[test]
    fn handler_runs_after_latency() {
        Kernel::run_root(|| {
            let (proc, sig) = setup();
            let fired = Arc::new(SimMutex::new("fired", None));
            let f2 = Arc::clone(&fired);
            sig.register(signum::SIGCKPT, move || {
                *f2.lock() = Some(now());
            });
            let t0 = now();
            assert!(sig.kill(&proc, signum::SIGCKPT));
            sleep(us(200));
            let fired_at = fired.lock().expect("handler did not run");
            assert_eq!(fired_at - t0, us(50));
        });
    }

    #[test]
    fn unhandled_signal_is_ignored() {
        Kernel::run_root(|| {
            let (proc, sig) = setup();
            assert!(!sig.kill(&proc, 99));
        });
    }

    #[test]
    fn unregister_removes_handler() {
        Kernel::run_root(|| {
            let (proc, sig) = setup();
            sig.register(signum::SIGCKPT, || {});
            sig.unregister(signum::SIGCKPT);
            assert!(!sig.kill(&proc, signum::SIGCKPT));
        });
    }

    #[test]
    fn signal_to_dead_process_is_dropped() {
        Kernel::run_root(|| {
            let (proc, sig) = setup();
            let count = Arc::new(AtomicU32::new(0));
            let c2 = Arc::clone(&count);
            sig.register(signum::SIGSNAPIFY, move || {
                c2.fetch_add(1, Ordering::Relaxed);
            });
            proc.exit();
            assert!(!sig.kill(&proc, signum::SIGSNAPIFY));
            sleep(us(500));
            assert_eq!(count.load(Ordering::Relaxed), 0);
        });
    }

    #[test]
    fn process_dying_mid_delivery_suppresses_handler() {
        Kernel::run_root(|| {
            let (proc, sig) = setup();
            let count = Arc::new(AtomicU32::new(0));
            let c2 = Arc::clone(&count);
            sig.register(signum::SIGSNAPIFY, move || {
                c2.fetch_add(1, Ordering::Relaxed);
            });
            assert!(sig.kill(&proc, signum::SIGSNAPIFY));
            proc.exit(); // dies before the 50us delivery completes
            sleep(us(500));
            assert_eq!(count.load(Ordering::Relaxed), 0);
        });
    }

    #[test]
    fn multiple_signals_each_delivered() {
        Kernel::run_root(|| {
            let (proc, sig) = setup();
            let count = Arc::new(AtomicU32::new(0));
            let c2 = Arc::clone(&count);
            sig.register(signum::SIGCKPT, move || {
                c2.fetch_add(1, Ordering::Relaxed);
            });
            for _ in 0..3 {
                sig.kill(&proc, signum::SIGCKPT);
            }
            sleep(us(500));
            assert_eq!(count.load(Ordering::Relaxed), 3);
        });
    }
}
