//! Property tests of the payload algebra: slicing, chunking,
//! concatenation and digesting must behave like operations on a real byte
//! string, for both real-byte and synthetic payloads. Every transport and
//! snapshot format in the workspace leans on these laws.

use phi_platform::{Payload, Segment};
use proptest::prelude::*;

/// A payload mixing real and synthetic segments.
fn mixed_payload() -> impl Strategy<Value = Payload> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(any::<u8>(), 0..64).prop_map(Payload::bytes),
            (any::<u64>(), 0u64..10_000).prop_map(|(tag, len)| Payload::synthetic(tag, len)),
        ],
        0..8,
    )
    .prop_map(Payload::concat)
}

proptest! {
    /// slice(0, len) is the identity (up to normalization).
    #[test]
    fn full_slice_is_identity(p in mixed_payload()) {
        let s = p.slice(0, p.len());
        prop_assert_eq!(s.len(), p.len());
        prop_assert_eq!(s.digest(), p.digest());
    }

    /// Chunk-and-reassemble preserves length and digest for any chunk size.
    #[test]
    fn chunking_roundtrips(p in mixed_payload(), chunk in 1u64..5000) {
        let again = Payload::concat(p.chunks(chunk));
        prop_assert_eq!(again.len(), p.len());
        prop_assert_eq!(again.digest(), p.digest());
    }

    /// Adjacent slices concatenate to the covering slice.
    #[test]
    fn slice_concat_associates(p in mixed_payload(), cut in any::<prop::sample::Index>()) {
        prop_assume!(!p.is_empty());
        let mid = cut.index(p.len() as usize) as u64;
        let left = p.slice(0, mid);
        let right = p.slice(mid, p.len() - mid);
        let joined = Payload::concat([left, right]);
        prop_assert_eq!(joined.digest(), p.digest());
    }

    /// replace() preserves total length, changes the digest iff the
    /// replacement differs from the original range.
    #[test]
    fn replace_laws(
        data in prop::collection::vec(any::<u8>(), 1..256),
        rep in prop::collection::vec(any::<u8>(), 0..64),
        at in any::<prop::sample::Index>(),
    ) {
        let p = Payload::bytes(data.clone());
        prop_assume!(rep.len() <= data.len());
        let offset = at.index(data.len() - rep.len() + 1) as u64;
        let replaced = p.replace(offset, Payload::bytes(rep.clone()));
        prop_assert_eq!(replaced.len(), p.len());
        let mut expect = data.clone();
        expect[offset as usize..offset as usize + rep.len()].copy_from_slice(&rep);
        prop_assert_eq!(replaced.to_bytes(), expect);
    }

    /// Digest distinguishes different synthetic contents (no trivial
    /// collisions across tag/len).
    #[test]
    fn digest_separates_synthetic(tag1 in any::<u64>(), tag2 in any::<u64>(), len in 1u64..10_000) {
        prop_assume!(tag1 != tag2);
        prop_assert_ne!(
            Payload::synthetic(tag1, len).digest(),
            Payload::synthetic(tag2, len).digest()
        );
    }

    /// normalize() is idempotent and digest-preserving.
    #[test]
    fn normalize_idempotent(p in mixed_payload()) {
        let n1 = p.normalize();
        let n2 = n1.normalize();
        prop_assert_eq!(n1.segments().len(), n2.segments().len());
        prop_assert_eq!(p.digest(), n1.digest());
    }

    /// Synthetic slices track absolute offsets, so re-slicing composes.
    #[test]
    fn synthetic_slice_composes(tag in any::<u64>(), len in 10u64..10_000, a in any::<prop::sample::Index>(), b in any::<prop::sample::Index>()) {
        let p = Payload::synthetic(tag, len);
        let off1 = a.index((len - 1) as usize) as u64;
        let len1 = len - off1;
        let s1 = p.slice(off1, len1);
        prop_assume!(len1 > 1);
        let off2 = b.index((len1 - 1) as usize) as u64;
        let s2 = s1.slice(off2, len1 - off2);
        // Equivalent to one direct slice.
        let direct = p.slice(off1 + off2, len1 - off2);
        prop_assert_eq!(s2.digest(), direct.digest());
        match (s2.segments().first(), direct.segments().first()) {
            (Some(Segment::Synthetic { offset: o1, .. }), Some(Segment::Synthetic { offset: o2, .. })) => {
                prop_assert_eq!(o1, o2);
            }
            _ => prop_assert!(false, "expected synthetic segments"),
        }
    }
}
