//! Simulated compute nodes (the host and the Xeon Phi coprocessors).

use std::fmt;
use std::sync::Arc;

use simkernel::{Bandwidth, BandwidthResource, SimDuration};

use crate::fs::{FsConfig, SimFs};
use crate::memory::MemPool;
use crate::params::PlatformParams;

/// SCIF-style node numbering: the host is node 0; coprocessors are 1..=N.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The host node.
    pub const HOST: NodeId = NodeId(0);

    /// Whether this is the host node.
    pub fn is_host(self) -> bool {
        self.0 == 0
    }

    /// The zero-based coprocessor index, if this is a coprocessor node.
    pub fn device_index(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 as usize - 1)
        }
    }

    /// Node id of coprocessor `index` (zero-based).
    pub fn device(index: usize) -> NodeId {
        NodeId(index as u16 + 1)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_host() {
            write!(f, "host")
        } else {
            write!(f, "mic{}", self.0 - 1)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The kind of a simulated node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// The host processor.
    Host,
    /// A Xeon Phi coprocessor.
    Phi,
}

struct NodeInner {
    id: NodeId,
    kind: NodeKind,
    name: String,
    mem: MemPool,
    fs: SimFs,
    cores: u32,
    flops_per_core: f64,
    /// Single-threaded memory-copy engine (socket copies, buffer staging).
    memcpy: BandwidthResource,
    parallel_overhead: SimDuration,
}

/// A simulated node. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct SimNode {
    inner: Arc<NodeInner>,
}

impl SimNode {
    /// Build the host node from platform parameters.
    pub fn host(params: &PlatformParams) -> SimNode {
        let mem = MemPool::new("host", params.host_mem);
        let fs = SimFs::new(
            "host-fs",
            FsConfig::disk(
                params.host_cache_bw,
                params.host_disk_bw,
                params.host_fs_latency,
            ),
            None, // host fs is disk-backed; it does not charge host RAM
        );
        SimNode {
            inner: Arc::new(NodeInner {
                id: NodeId::HOST,
                kind: NodeKind::Host,
                name: "host".to_string(),
                mem,
                fs,
                cores: params.host_cores,
                flops_per_core: params.host_gflops_per_core * 1e9,
                memcpy: BandwidthResource::new(
                    "host-memcpy",
                    params.host_memcpy_bw,
                    SimDuration::ZERO,
                ),
                parallel_overhead: params.parallel_region_overhead,
            }),
        }
    }

    /// Build coprocessor node `index` from platform parameters. The RAM
    /// file system charges the card's memory pool.
    pub fn phi(params: &PlatformParams, index: usize) -> SimNode {
        let id = NodeId::device(index);
        let name = format!("mic{index}");
        let mem = MemPool::new(&name, params.phi_mem);
        let fs = SimFs::new(
            format!("{name}-ramfs"),
            FsConfig::ram(params.phi_ramfs_bw, params.phi_ramfs_latency),
            Some(mem.clone()),
        );
        SimNode {
            inner: Arc::new(NodeInner {
                id,
                kind: NodeKind::Phi,
                mem,
                fs,
                cores: params.phi_cores,
                flops_per_core: params.phi_gflops_per_core * 1e9,
                memcpy: BandwidthResource::new(
                    format!("{name}-memcpy"),
                    params.phi_memcpy_bw,
                    SimDuration::ZERO,
                ),
                parallel_overhead: params.parallel_region_overhead,
                name,
            }),
        }
    }

    /// SCIF node id.
    pub fn id(&self) -> NodeId {
        self.inner.id
    }

    /// Node kind.
    pub fn kind(&self) -> NodeKind {
        self.inner.kind
    }

    /// Node name (`"host"`, `"mic0"`, …).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Physical memory pool.
    pub fn mem(&self) -> &MemPool {
        &self.inner.mem
    }

    /// The node's file system (host: disk-backed; Phi: RAM-backed).
    pub fn fs(&self) -> &SimFs {
        &self.inner.fs
    }

    /// Core count.
    pub fn cores(&self) -> u32 {
        self.inner.cores
    }

    /// Time to execute `flops` of perfectly-parallel work on `threads`
    /// threads (capped at the core count), including the parallel-region
    /// entry overhead.
    pub fn parallel_compute_time(&self, flops: f64, threads: u32) -> SimDuration {
        let eff_threads = threads.min(self.inner.cores).max(1);
        let rate = eff_threads as f64 * self.inner.flops_per_core;
        self.inner.parallel_overhead + SimDuration::from_secs_f64(flops / rate)
    }

    /// Execute (block for) a parallel compute region.
    pub fn parallel_compute(&self, flops: f64, threads: u32) {
        simkernel::sleep(self.parallel_compute_time(flops, threads));
    }

    /// Execute a single-threaded compute region.
    pub fn serial_compute(&self, flops: f64) {
        simkernel::sleep(SimDuration::from_secs_f64(
            flops / self.inner.flops_per_core,
        ));
    }

    /// Perform a memory copy of `bytes` on this node (occupies the node's
    /// copy engine; concurrent copies serialize).
    pub fn memcpy(&self, bytes: u64) {
        self.inner.memcpy.transfer(bytes);
    }

    /// Memcpy cost without occupying the engine (cost-model query).
    pub fn memcpy_time(&self, bytes: u64) -> SimDuration {
        self.inner.memcpy.service_time(bytes)
    }

    /// Memory-copy bandwidth of the node.
    pub fn memcpy_bw(&self) -> Bandwidth {
        self.inner.memcpy.bandwidth()
    }
}

impl fmt::Debug for SimNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNode")
            .field("id", &self.inner.id)
            .field("kind", &self.inner.kind)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GB;
    use simkernel::{now, Kernel, SimTime};

    #[test]
    fn node_ids() {
        assert!(NodeId::HOST.is_host());
        assert_eq!(NodeId::HOST.device_index(), None);
        assert_eq!(NodeId::device(0), NodeId(1));
        assert_eq!(NodeId::device(1).device_index(), Some(1));
        assert_eq!(format!("{}", NodeId::HOST), "host");
        assert_eq!(format!("{}", NodeId::device(1)), "mic1");
    }

    #[test]
    fn phi_node_has_ram_fs_charging_memory() {
        Kernel::run_root(|| {
            let params = PlatformParams::default();
            let phi = SimNode::phi(&params, 0);
            assert_eq!(phi.mem().capacity(), 8 * GB);
            phi.fs()
                .append("/tmp/f", crate::data::Payload::synthetic(1, GB))
                .unwrap();
            assert_eq!(phi.mem().used(), GB);
        });
    }

    #[test]
    fn host_fs_does_not_charge_host_ram() {
        Kernel::run_root(|| {
            let params = PlatformParams::default();
            let host = SimNode::host(&params);
            host.fs()
                .append("/snap/f", crate::data::Payload::synthetic(1, GB))
                .unwrap();
            assert_eq!(host.mem().used(), 0);
        });
    }

    #[test]
    fn parallel_compute_scales_with_threads() {
        let params = PlatformParams::default();
        Kernel::run_root(move || {
            let phi = SimNode::phi(&params, 0);
            let t1 = phi.parallel_compute_time(1e12, 1);
            let t60 = phi.parallel_compute_time(1e12, 60);
            let t240 = phi.parallel_compute_time(1e12, 240); // capped at 60 cores
            assert!(t1 > t60 * 50);
            assert_eq!(t60, t240);
        });
    }

    #[test]
    fn compute_blocks_for_modeled_time() {
        let params = PlatformParams::default();
        Kernel::run_root(move || {
            let phi = SimNode::phi(&params, 0);
            let expect = phi.parallel_compute_time(1e12, 60);
            phi.parallel_compute(1e12, 60);
            assert_eq!(now() - SimTime::ZERO, expect);
        });
    }

    #[test]
    fn memcpy_occupies_engine() {
        let params = PlatformParams::default();
        Kernel::run_root(move || {
            let host = SimNode::host(&params);
            let t0 = now();
            host.memcpy(6_000_000_000); // 1s at 6 GB/s
            assert_eq!((now() - t0).as_secs_f64().round() as i64, 1);
        });
    }
}
