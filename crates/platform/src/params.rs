//! Calibrated platform parameters.
//!
//! These model the testbed in Table 2 of the paper: a dual-socket Xeon
//! E5-2630 host with 32 GB of RAM and two Xeon Phi 5110P coprocessors
//! (60 cores / 240 threads, 8 GB in the evaluation configuration) attached
//! over PCIe gen2 x16, running MPSS 2.1.
//!
//! Absolute magnitudes are calibrated so that the reproduction lands in the
//! ranges the paper reports (checkpoint 3–21 s, Snapify-IO ≈6× NFS write at
//! 1 GB, …); the *structure* of the model — what is latency-bound, what is
//! bandwidth-bound, what overlaps with what — is taken from the paper's own
//! explanations. Every benchmark harness prints the parameter set it ran
//! with.

use std::fmt;

use simkernel::time::{ms, us};
use simkernel::{Bandwidth, SimDuration};

/// Sizes in convenient units.
pub const KB: u64 = 1 << 10;
/// 1 MiB.
pub const MB: u64 = 1 << 20;
/// 1 GiB.
pub const GB: u64 = 1 << 30;

/// The full parameter set for a simulated Xeon Phi server.
#[derive(Clone, Debug)]
pub struct PlatformParams {
    // ----- topology -----
    /// Host name of this server — distinguishes nodes in a multi-node
    /// cluster so host-side scratch paths (e.g. migration staging
    /// directories) never collide across machines that happen to hand
    /// out the same pids.
    pub hostname: String,
    /// Number of Xeon Phi coprocessors per server.
    pub num_devices: usize,
    /// Host physical memory in bytes.
    pub host_mem: u64,
    /// Xeon Phi physical memory in bytes (8 GB in the evaluation setup).
    pub phi_mem: u64,

    // ----- compute -----
    /// Host cores (one socket's worth used for the sequential part).
    pub host_cores: u32,
    /// Host double-precision GFLOPS per core.
    pub host_gflops_per_core: f64,
    /// Xeon Phi cores.
    pub phi_cores: u32,
    /// Xeon Phi double-precision GFLOPS per core (vector unit).
    pub phi_gflops_per_core: f64,
    /// Fork/join overhead of entering an offload/parallel region.
    pub parallel_region_overhead: SimDuration,

    // ----- memory copies -----
    /// Single-threaded memcpy bandwidth on the host.
    pub host_memcpy_bw: Bandwidth,
    /// Single-threaded memcpy bandwidth on a Phi core (in-order, slow).
    pub phi_memcpy_bw: Bandwidth,

    // ----- PCIe -----
    /// RDMA (DMA engine) bandwidth of one PCIe gen2 x16 link.
    pub pcie_rdma_bw: Bandwidth,
    /// Setup latency per RDMA operation (descriptor + doorbell).
    pub pcie_rdma_latency: SimDuration,
    /// Latency of a small SCIF message.
    pub scif_msg_latency: SimDuration,
    /// Bandwidth of the SCIF message path (driver-mediated copies).
    pub scif_msg_bw: Bandwidth,

    // ----- storage -----
    /// Host page-cache (memory) bandwidth seen by file writers/readers.
    pub host_cache_bw: Bandwidth,
    /// Host secondary-storage bandwidth (async flush target).
    pub host_disk_bw: Bandwidth,
    /// Host per-file-op latency.
    pub host_fs_latency: SimDuration,
    /// Phi RAM-fs bandwidth (memcpy bound on a Phi core).
    pub phi_ramfs_bw: Bandwidth,
    /// Phi RAM-fs per-op latency.
    pub phi_ramfs_latency: SimDuration,

    // ----- cluster interconnect (for MPI) -----
    /// Node-to-node network bandwidth (10 GbE).
    pub net_bw: Bandwidth,
    /// Node-to-node message latency.
    pub net_latency: SimDuration,

    // ----- OS / runtime fixed costs -----
    /// Cost of delivering a signal to a process.
    pub signal_latency: SimDuration,
    /// Cost of a local pipe/unix-socket message.
    pub pipe_latency: SimDuration,
    /// Cost of spawning a process (fork+exec on the Phi).
    pub process_spawn: SimDuration,
    /// Cost of loading the offload shared library into a process.
    pub library_load: SimDuration,
}

impl Default for PlatformParams {
    fn default() -> PlatformParams {
        PlatformParams {
            hostname: "host0".into(),
            num_devices: 2,
            host_mem: 32 * GB,
            phi_mem: 8 * GB,

            host_cores: 6,
            host_gflops_per_core: 18.4, // E5-2630 @ 2.3 GHz, AVX
            phi_cores: 60,
            phi_gflops_per_core: 16.8, // 5110P ≈ 1.01 TFLOPS DP
            parallel_region_overhead: us(30),

            host_memcpy_bw: Bandwidth::gb_per_sec(6.0),
            phi_memcpy_bw: Bandwidth::gb_per_sec(1.7),

            pcie_rdma_bw: Bandwidth::gb_per_sec(6.0),
            pcie_rdma_latency: us(20),
            scif_msg_latency: us(15),
            scif_msg_bw: Bandwidth::mb_per_sec(600.0),

            host_cache_bw: Bandwidth::gb_per_sec(4.0),
            host_disk_bw: Bandwidth::mb_per_sec(450.0),
            host_fs_latency: us(60),
            phi_ramfs_bw: Bandwidth::gb_per_sec(1.5),
            phi_ramfs_latency: us(10),

            net_bw: Bandwidth::gb_per_sec(1.25),
            net_latency: us(50),

            signal_latency: us(50),
            pipe_latency: us(8),
            process_spawn: ms(120),
            library_load: ms(180),
        }
    }
}

impl PlatformParams {
    /// The default parameter set renamed for cluster node `n` — every
    /// node of a fleet gets a distinct `hostname` (`node0`, `node1`, …)
    /// while sharing the Table 2 hardware configuration.
    pub fn for_cluster_node(n: usize) -> PlatformParams {
        PlatformParams {
            hostname: format!("node{n}"),
            ..PlatformParams::default()
        }
    }

    /// Effective parallel compute throughput of one Phi card, in FLOPS.
    pub fn phi_flops(&self) -> f64 {
        self.phi_cores as f64 * self.phi_gflops_per_core * 1e9
    }

    /// Effective parallel compute throughput of the host, in FLOPS.
    pub fn host_flops(&self) -> f64 {
        self.host_cores as f64 * self.host_gflops_per_core * 1e9
    }

    /// Render the configuration as a Table 2-style block (printed in every
    /// benchmark header).
    pub fn table2(&self) -> String {
        format!(
            "Simulated testbed (paper Table 2 equivalent):\n\
             \x20 Host     : {} cores @ {:.1} GFLOPS/core, {} GB RAM, disk {:.0} MB/s\n\
             \x20 Phi (x{}) : {} cores @ {:.1} GFLOPS/core, {} GB RAM (RAM-fs)\n\
             \x20 PCIe     : RDMA {:.1} GB/s (+{} setup), SCIF msg {} lat\n\
             \x20 Network  : {:.2} GB/s, {} lat",
            self.host_cores,
            self.host_gflops_per_core,
            self.host_mem / GB,
            self.host_disk_bw.0 / 1e6,
            self.num_devices,
            self.phi_cores,
            self.phi_gflops_per_core,
            self.phi_mem / GB,
            self.pcie_rdma_bw.0 / 1e9,
            self.pcie_rdma_latency,
            self.scif_msg_latency,
            self.net_bw.0 / 1e9,
            self.net_latency,
        )
    }
}

impl fmt::Display for PlatformParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_testbed() {
        let p = PlatformParams::default();
        assert_eq!(p.num_devices, 2);
        assert_eq!(p.phi_cores, 60);
        assert_eq!(p.phi_mem, 8 * GB);
        assert_eq!(p.host_mem, 32 * GB);
        // 5110P is ~1 TFLOP DP.
        assert!((p.phi_flops() - 1.008e12).abs() < 1e10);
    }

    #[test]
    fn table2_renders() {
        let s = PlatformParams::default().table2();
        assert!(s.contains("60 cores"));
        assert!(s.contains("8 GB"));
    }

    #[test]
    fn unit_constants() {
        assert_eq!(KB, 1024);
        assert_eq!(MB, 1024 * 1024);
        assert_eq!(GB, 1024 * 1024 * 1024);
    }
}
