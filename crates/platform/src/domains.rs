//! Time-domain placement and lookahead extraction.
//!
//! The multi-domain simkernel (`simkernel::domain`) synchronizes its
//! parallel time domains conservatively: a domain may only advance to
//! `min(neighbor clocks) + lookahead`, where the lookahead is the
//! minimum latency of any link that *crosses* a domain boundary. This
//! module derives that bound from [`PlatformParams`] for the two
//! partitionings the workspace uses:
//!
//! * **Node-granular** (the default): every cluster node — a host plus
//!   its coprocessors — is one domain, so the only cross-domain links
//!   are node-to-node network hops ([`PlatformParams::net_latency`]).
//!   SCIF messages and PCIe DMA stay *inside* a domain and impose no
//!   sync cost, which is why this partitioning parallelizes well.
//! * **Device-granular**: host and coprocessors are split into separate
//!   domains, so SCIF/PCIe traffic crosses domains and the lookahead
//!   collapses to the fastest bus latency. Supported for completeness;
//!   the tighter bound means more barriers per simulated second.
//!
//! Placement is a pure function of `(node index, domain count)` so a
//! topology keeps identical per-domain schedules across runs.

use simkernel::time::SimDuration;
use simkernel::DomainId;

use crate::params::PlatformParams;

/// Lookahead for the node-granular partitioning: each cluster node is
/// one time domain, so the minimum cross-domain link latency is the
/// node-to-node network latency.
pub fn cluster_lookahead(params: &PlatformParams) -> SimDuration {
    params.net_latency
}

/// Lookahead for the device-granular partitioning (host and Phi cards
/// in separate domains): the fastest latency among the links that now
/// cross domains — SCIF messages, PCIe RDMA setup, and the network.
pub fn device_lookahead(params: &PlatformParams) -> SimDuration {
    params
        .scif_msg_latency
        .min(params.pcie_rdma_latency)
        .min(params.net_latency)
}

/// Static placement of cluster nodes onto time domains.
///
/// Round-robin by node index: with `nodes >= domains` every domain gets
/// `⌈nodes/domains⌉` or `⌊nodes/domains⌋` nodes, and `domains = 1`
/// collapses everything onto domain 0 (the serial compatibility mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DomainPlacement {
    domains: u32,
}

impl DomainPlacement {
    /// Placement over `domains` time domains (≥ 1).
    pub fn new(domains: u32) -> DomainPlacement {
        assert!(domains >= 1, "need at least one domain");
        DomainPlacement { domains }
    }

    /// Number of time domains.
    pub fn domains(&self) -> u32 {
        self.domains
    }

    /// The domain hosting cluster node `node`.
    pub fn node_domain(&self, node: usize) -> DomainId {
        (node as u32) % self.domains
    }

    /// Whether a link between two nodes crosses a domain boundary (and
    /// therefore must respect the lookahead).
    pub fn crosses(&self, a: usize, b: usize) -> bool {
        self.node_domain(a) != self.node_domain(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::time::us;

    #[test]
    fn cluster_lookahead_is_net_latency() {
        let p = PlatformParams::default();
        assert_eq!(cluster_lookahead(&p), p.net_latency);
        assert_eq!(cluster_lookahead(&p), us(50));
    }

    #[test]
    fn device_lookahead_is_fastest_crossing_link() {
        let p = PlatformParams::default();
        // scif_msg (15us) < pcie_rdma (20us) < net (50us).
        assert_eq!(device_lookahead(&p), p.scif_msg_latency);
    }

    #[test]
    fn placement_round_robins_and_collapses_to_one() {
        let p = DomainPlacement::new(4);
        assert_eq!(
            (0..8).map(|n| p.node_domain(n)).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 0, 1, 2, 3]
        );
        assert!(p.crosses(0, 1));
        assert!(!p.crosses(0, 4));
        let serial = DomainPlacement::new(1);
        assert!((0..8).all(|n| serial.node_domain(n) == 0));
        assert!(!serial.crosses(0, 7));
    }
}
