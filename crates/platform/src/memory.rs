//! Physical-memory accounting for simulated nodes.
//!
//! The paper's storage problem is a memory problem: the Xeon Phi's root
//! file system lives in the card's 8 GB of RAM, so a locally-saved snapshot
//! competes with live processes for physical memory (§3 "Storing and
//! retrieving snapshots"). [`MemPool`] makes that competition explicit —
//! process allocations, COI buffers, and RAM-fs file bytes all charge the
//! same pool, and exhaustion is a first-class, testable error.

use std::fmt;
use std::sync::Arc;

use simkernel::{obs, SimMutex};

use crate::fault::{FaultHook, FaultKind, FaultPlane, FaultTarget};
use crate::node::NodeId;

/// Error returned when a [`MemPool`] allocation exceeds available memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Pool name (e.g. `"mic0"`).
    pub pool: String,
    /// Requested allocation in bytes.
    pub requested: u64,
    /// Bytes available at the time of the request.
    pub available: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory on '{}': requested {} bytes, only {} available",
            self.pool, self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

struct PoolState {
    used: u64,
    peak: u64,
}

/// A fixed-capacity physical memory pool. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct MemPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    name: String,
    capacity: u64,
    state: SimMutex<PoolState>,
    /// Chaos-plane hookup (inert until wired at world boot).
    faults: FaultHook,
}

impl MemPool {
    /// Create a pool of `capacity` bytes.
    pub fn new(name: impl Into<String>, capacity: u64) -> MemPool {
        let name = name.into();
        MemPool {
            inner: Arc::new(PoolInner {
                state: SimMutex::new(format!("mempool '{name}'"), PoolState { used: 0, peak: 0 }),
                name,
                capacity,
                faults: FaultHook::new(),
            }),
        }
    }

    /// Wire this pool to a fault plane as `mem.<node>` (done once at
    /// world boot; later calls are ignored).
    pub fn attach_faults(&self, plane: &FaultPlane, node: NodeId) {
        self.inner.faults.attach(plane, FaultTarget::Mem(node));
    }

    /// Reserve `bytes` from the pool.
    pub fn alloc(&self, bytes: u64) -> Result<(), OutOfMemory> {
        // Chaos plane: a due OOM fault makes this one allocation fail
        // spuriously (transient pressure — a retry may succeed).
        if matches!(self.inner.faults.take(), Some(FaultKind::Oom)) {
            obs::counter_add("chaos.mem.oom", 1);
            let st = self.inner.state.lock();
            return Err(OutOfMemory {
                pool: self.inner.name.clone(),
                requested: bytes,
                available: self.inner.capacity - st.used,
            });
        }
        let mut st = self.inner.state.lock();
        let available = self.inner.capacity - st.used;
        if bytes > available {
            return Err(OutOfMemory {
                pool: self.inner.name.clone(),
                requested: bytes,
                available,
            });
        }
        st.used += bytes;
        st.peak = st.peak.max(st.used);
        Ok(())
    }

    /// Return `bytes` to the pool. Panics on over-free (accounting bug).
    pub fn free(&self, bytes: u64) {
        let mut st = self.inner.state.lock();
        assert!(
            st.used >= bytes,
            "over-free on pool '{}': freeing {} with only {} used",
            self.inner.name,
            bytes,
            st.used
        );
        st.used -= bytes;
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.inner.state.lock().used
    }

    /// Bytes currently free.
    pub fn available(&self) -> u64 {
        self.inner.capacity - self.used()
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    /// High-water mark of usage.
    pub fn peak(&self) -> u64 {
        self.inner.state.lock().peak
    }

    /// Pool name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }
}

impl fmt::Debug for MemPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemPool")
            .field("name", &self.inner.name)
            .field("capacity", &self.inner.capacity)
            .field("used", &self.used())
            .finish()
    }
}

/// RAII allocation: frees its bytes when dropped.
pub struct MemAlloc {
    pool: MemPool,
    bytes: u64,
}

impl MemAlloc {
    /// Allocate `bytes` from `pool`, returning a guard that frees on drop.
    pub fn new(pool: &MemPool, bytes: u64) -> Result<MemAlloc, OutOfMemory> {
        pool.alloc(bytes)?;
        Ok(MemAlloc {
            pool: pool.clone(),
            bytes,
        })
    }

    /// Size of this allocation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Grow or shrink the allocation in place.
    pub fn resize(&mut self, new_bytes: u64) -> Result<(), OutOfMemory> {
        if new_bytes > self.bytes {
            self.pool.alloc(new_bytes - self.bytes)?;
        } else {
            self.pool.free(self.bytes - new_bytes);
        }
        self.bytes = new_bytes;
        Ok(())
    }
}

impl Drop for MemAlloc {
    fn drop(&mut self) {
        self.pool.free(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::Kernel;

    #[test]
    fn alloc_free_roundtrip() {
        Kernel::run_root(|| {
            let pool = MemPool::new("p", 100);
            pool.alloc(60).unwrap();
            assert_eq!(pool.used(), 60);
            assert_eq!(pool.available(), 40);
            pool.free(60);
            assert_eq!(pool.used(), 0);
        });
    }

    #[test]
    fn oom_reports_details() {
        Kernel::run_root(|| {
            let pool = MemPool::new("mic0", 100);
            pool.alloc(90).unwrap();
            let err = pool.alloc(20).unwrap_err();
            assert_eq!(err.requested, 20);
            assert_eq!(err.available, 10);
            assert_eq!(err.pool, "mic0");
            assert!(err.to_string().contains("mic0"));
        });
    }

    #[test]
    fn peak_tracks_high_water() {
        Kernel::run_root(|| {
            let pool = MemPool::new("p", 100);
            pool.alloc(80).unwrap();
            pool.free(50);
            pool.alloc(10).unwrap();
            assert_eq!(pool.peak(), 80);
        });
    }

    #[test]
    #[should_panic(expected = "over-free")]
    fn over_free_panics() {
        Kernel::run_root(|| {
            let pool = MemPool::new("p", 100);
            pool.free(1);
        });
    }

    #[test]
    fn injected_oom_fails_one_alloc_then_recovers() {
        use crate::fault::{FaultPlane, FaultSchedule};
        use simkernel::SimTime;
        Kernel::run_root(|| {
            let pool = MemPool::new("mic0", 1000);
            let plane = FaultPlane::new(FaultSchedule::none().with(
                SimTime::ZERO,
                FaultTarget::Mem(NodeId::device(0)),
                FaultKind::Oom,
            ));
            pool.attach_faults(&plane, NodeId::device(0));
            let err = pool.alloc(10).unwrap_err();
            assert_eq!(err.available, 1000, "spurious OOM: memory was free");
            assert_eq!(pool.used(), 0);
            // One-shot: the retry succeeds.
            pool.alloc(10).unwrap();
            assert_eq!(pool.used(), 10);
        });
    }

    #[test]
    fn raii_alloc_frees_on_drop() {
        Kernel::run_root(|| {
            let pool = MemPool::new("p", 100);
            {
                let _a = MemAlloc::new(&pool, 70).unwrap();
                assert_eq!(pool.used(), 70);
                assert!(MemAlloc::new(&pool, 50).is_err());
            }
            assert_eq!(pool.used(), 0);
        });
    }

    #[test]
    fn raii_resize() {
        Kernel::run_root(|| {
            let pool = MemPool::new("p", 100);
            let mut a = MemAlloc::new(&pool, 10).unwrap();
            a.resize(40).unwrap();
            assert_eq!(pool.used(), 40);
            a.resize(5).unwrap();
            assert_eq!(pool.used(), 5);
            assert!(a.resize(200).is_err());
            assert_eq!(pool.used(), 5);
        });
    }
}
