//! The PCIe interconnect between the host and the coprocessors.
//!
//! Each Xeon Phi card has its own PCIe gen2 x16 link to the host. A link
//! carries two traffic classes with different cost models, mirroring SCIF:
//!
//! * **messages** (`scif_send`/`scif_recv`): driver-mediated small
//!   transfers — latency-dominated, modest bandwidth;
//! * **RDMA** (`scif_(v)readfrom`/`scif_(v)writeto`): DMA-engine
//!   transfers — high bandwidth, fixed setup cost per operation.
//!
//! Both classes of one link share the physical wires; for simplicity each
//! class is its own FIFO resource (the DMA engine and the message path do
//! not contend in this model — acceptable because the paper's protocol
//! never saturates both at once).

use std::fmt;
use std::sync::Arc;

use simkernel::{obs, BandwidthResource, SimDuration};

use crate::fault::{FaultHook, FaultKind, FaultPlane, FaultTarget};
use crate::node::NodeId;
use crate::params::PlatformParams;

struct LinkInner {
    /// The device end of the link.
    device: NodeId,
    /// DMA engine, host↔device (full duplex is NOT modeled: one engine).
    rdma: BandwidthResource,
    /// Message path.
    msg: BandwidthResource,
    msg_latency: SimDuration,
    /// Chaos-plane hookup (inert until wired at world boot).
    faults: FaultHook,
}

/// One PCIe link between the host and a coprocessor. Cheap to clone.
#[derive(Clone)]
pub struct PcieLink {
    inner: Arc<LinkInner>,
}

impl PcieLink {
    /// Build the link for coprocessor `device` from platform parameters.
    pub fn new(params: &PlatformParams, device: NodeId) -> PcieLink {
        assert!(!device.is_host());
        PcieLink {
            inner: Arc::new(LinkInner {
                device,
                rdma: BandwidthResource::new(
                    format!("pcie-{device}-rdma"),
                    params.pcie_rdma_bw,
                    params.pcie_rdma_latency,
                ),
                msg: BandwidthResource::new(
                    format!("pcie-{device}-msg"),
                    params.scif_msg_bw,
                    params.scif_msg_latency,
                ),
                msg_latency: params.scif_msg_latency,
                faults: FaultHook::new(),
            }),
        }
    }

    /// Wire this link to a fault plane as `bus<device_index>` (done once
    /// at world boot; later calls are ignored).
    pub fn attach_faults(&self, plane: &FaultPlane) {
        let idx = self
            .inner
            .device
            .device_index()
            .expect("link has a device end");
        self.inner.faults.attach(plane, FaultTarget::Bus(idx));
    }

    /// The coprocessor this link attaches.
    pub fn device(&self) -> NodeId {
        self.inner.device
    }

    /// Consume a due bus fault, paying its cost on `res`: a CRC error
    /// replays the transfer once at link level (the PCIe contract —
    /// callers never see it, only the latency); a delay spike stalls.
    /// Returns the extra time paid.
    fn fault_penalty(&self, res: &BandwidthResource, bytes: u64) -> SimDuration {
        match self.inner.faults.take() {
            Some(FaultKind::BusError) => {
                obs::counter_add("chaos.bus.replays", 1);
                res.transfer(bytes)
            }
            Some(FaultKind::BusDelay(d)) => {
                obs::counter_add("chaos.bus.delays", 1);
                simkernel::sleep(d);
                d
            }
            _ => SimDuration::ZERO,
        }
    }

    /// Perform an RDMA transfer of `bytes` (blocks for the DMA time).
    pub fn rdma_transfer(&self, bytes: u64) -> SimDuration {
        let penalty = self.fault_penalty(&self.inner.rdma, bytes);
        self.inner.rdma.transfer(bytes) + penalty
    }

    /// Send a message of `bytes` over the message path (blocks for the
    /// wire time; delivery latency is handled by the channel layer).
    pub fn message_transfer(&self, bytes: u64) -> SimDuration {
        let penalty = self.fault_penalty(&self.inner.msg, bytes);
        self.inner.msg.transfer(bytes) + penalty
    }

    /// One-way small-message latency of this link.
    pub fn msg_latency(&self) -> SimDuration {
        self.inner.msg_latency
    }

    /// Cumulative (bytes, ops) moved by the DMA engine.
    pub fn rdma_stats(&self) -> (u64, u64) {
        self.inner.rdma.stats()
    }

    /// Cost-model query: RDMA time for `bytes`, ignoring queueing.
    pub fn rdma_time(&self, bytes: u64) -> SimDuration {
        self.inner.rdma.service_time(bytes)
    }
}

impl fmt::Debug for PcieLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PcieLink")
            .field("device", &self.inner.device)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::{now, spawn, Kernel, SimTime};

    #[test]
    fn rdma_is_bandwidth_bound() {
        let params = PlatformParams::default();
        Kernel::run_root(move || {
            let link = PcieLink::new(&params, NodeId::device(0));
            let d = link.rdma_transfer(6_000_000_000);
            // ~1 s at 6 GB/s plus 20 us setup.
            assert!((d.as_secs_f64() - 1.00002).abs() < 1e-4);
        });
    }

    #[test]
    fn messages_are_latency_bound() {
        let params = PlatformParams::default();
        Kernel::run_root(move || {
            let link = PcieLink::new(&params, NodeId::device(0));
            let d = link.message_transfer(64);
            // Dominated by the 15 us per-op latency.
            assert!(d.as_nanos() >= 15_000);
            assert!(d.as_nanos() < 20_000);
        });
    }

    #[test]
    fn concurrent_rdma_serializes_on_one_link() {
        let params = PlatformParams::default();
        Kernel::run_root(move || {
            let link = PcieLink::new(&params, NodeId::device(0));
            let l2 = link.clone();
            let h = spawn("second", move || {
                l2.rdma_transfer(6_000_000_000);
                now()
            });
            link.rdma_transfer(6_000_000_000);
            let first_done = now();
            let second_done = h.join();
            assert!(second_done > first_done);
            assert!(second_done >= SimTime::ZERO + simkernel::secs(2));
        });
    }

    #[test]
    fn injected_bus_error_is_replayed_transparently() {
        use crate::fault::{FaultPlane, FaultSchedule};
        let params = PlatformParams::default();
        Kernel::run_root(move || {
            let link = PcieLink::new(&params, NodeId::device(0));
            let plane = FaultPlane::new(FaultSchedule::none().with(
                SimTime::ZERO,
                FaultTarget::Bus(0),
                FaultKind::BusError,
            ));
            link.attach_faults(&plane);
            let clean = link.rdma_time(6_000_000_000);
            let d = link.rdma_transfer(6_000_000_000);
            assert!(d >= clean * 2, "CRC replay must roughly double the time");
            // One-shot: the next transfer is clean again.
            let d2 = link.rdma_transfer(6_000_000_000);
            assert!(d2 < clean * 2);
            assert_eq!(plane.fired_count(), 1);
        });
    }

    #[test]
    fn injected_bus_delay_stalls_one_transfer() {
        use crate::fault::{FaultPlane, FaultSchedule};
        let params = PlatformParams::default();
        Kernel::run_root(move || {
            let link = PcieLink::new(&params, NodeId::device(0));
            let plane = FaultPlane::new(FaultSchedule::none().with(
                SimTime::ZERO,
                FaultTarget::Bus(0),
                FaultKind::BusDelay(simkernel::ms(3)),
            ));
            link.attach_faults(&plane);
            let clean = link.message_transfer(64);
            // The *first* transfer consumed the fault already, so issue a
            // fresh pair on a second link to compare.
            assert!(clean >= simkernel::ms(3), "delay spike must be paid");
            let next = link.message_transfer(64);
            assert!(next < simkernel::ms(3));
        });
    }

    #[test]
    fn separate_links_do_not_contend() {
        let params = PlatformParams::default();
        Kernel::run_root(move || {
            let l0 = PcieLink::new(&params, NodeId::device(0));
            let l1 = PcieLink::new(&params, NodeId::device(1));
            let h = spawn("on-l1", move || {
                l1.rdma_transfer(6_000_000_000);
                now()
            });
            l0.rdma_transfer(6_000_000_000);
            let t0 = now();
            let t1 = h.join();
            // Both finish at ~1 s: independent DMA engines.
            assert_eq!(t0.as_secs_f64().round() as i64, 1);
            assert_eq!(t1.as_secs_f64().round() as i64, 1);
        });
    }
}
