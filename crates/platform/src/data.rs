//! Simulated data payloads.
//!
//! The evaluation of Snapify moves gigabytes (snapshots, COI buffers, local
//! stores). Materializing those as real byte vectors would make the
//! simulation memory-bound for no benefit, so a [`Payload`] represents data
//! either as **real bytes** (used by correctness tests, byte-exact) or as a
//! **synthetic extent** — a `(tag, offset, length)` triple standing for
//! `length` bytes of deterministic content identified by `tag`.
//!
//! Synthetic extents behave like real data for everything the simulation
//! cares about: they can be sliced, concatenated, and digested, and a
//! digest survives *any* re-chunking (transfer pipelines split payloads at
//! buffer granularity) because [`Payload::normalize`] re-merges contiguous
//! extents before hashing. A data-path bug that drops, duplicates, or
//! reorders a chunk therefore changes the digest even for synthetic data.

use std::fmt;
use std::sync::Arc;

/// One segment of a payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Segment {
    /// Real bytes (shared, cheap to clone).
    Bytes(Arc<Vec<u8>>),
    /// `len` bytes of deterministic synthetic content: the bytes of extent
    /// `tag` starting at `offset`.
    Synthetic {
        /// Content identity (e.g. "buffer 7 of process 3").
        tag: u64,
        /// Starting offset within the tagged content.
        offset: u64,
        /// Extent length in bytes.
        len: u64,
    },
}

impl Segment {
    /// Segment length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Segment::Bytes(b) => b.len() as u64,
            Segment::Synthetic { len, .. } => *len,
        }
    }

    /// Whether the segment is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A logical byte string: a sequence of segments.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Payload {
    segments: Vec<Segment>,
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Payload[{} bytes, {} segs]",
            self.len(),
            self.segments.len()
        )
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn fnv_byte(state: u64, b: u8) -> u64 {
    (state ^ b as u64).wrapping_mul(FNV_PRIME)
}

fn fnv_u64(mut state: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        state = fnv_byte(state, b);
    }
    state
}

impl Payload {
    /// The empty payload.
    pub fn empty() -> Payload {
        Payload::default()
    }

    /// A payload of real bytes.
    pub fn bytes(data: impl Into<Vec<u8>>) -> Payload {
        let v: Vec<u8> = data.into();
        if v.is_empty() {
            return Payload::empty();
        }
        Payload {
            segments: vec![Segment::Bytes(Arc::new(v))],
        }
    }

    /// A synthetic payload of `len` bytes tagged `tag` (offset 0).
    pub fn synthetic(tag: u64, len: u64) -> Payload {
        if len == 0 {
            return Payload::empty();
        }
        Payload {
            segments: vec![Segment::Synthetic {
                tag,
                offset: 0,
                len,
            }],
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> u64 {
        self.segments.iter().map(Segment::len).sum()
    }

    /// Whether the payload is zero-length.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The segments, in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Append another payload.
    pub fn append(&mut self, other: Payload) {
        self.segments.extend(other.segments);
    }

    /// Concatenate payloads.
    pub fn concat<I: IntoIterator<Item = Payload>>(parts: I) -> Payload {
        let mut out = Payload::empty();
        for p in parts {
            out.append(p);
        }
        out
    }

    /// Extract `len` bytes starting at `offset`. Panics if out of range.
    pub fn slice(&self, offset: u64, len: u64) -> Payload {
        assert!(
            offset + len <= self.len(),
            "slice [{offset}, {offset}+{len}) out of range for payload of {} bytes",
            self.len()
        );
        let mut out = Vec::new();
        let mut pos = 0u64;
        let mut remaining_skip = offset;
        let mut remaining_take = len;
        for seg in &self.segments {
            if remaining_take == 0 {
                break;
            }
            let seg_len = seg.len();
            if remaining_skip >= seg_len {
                remaining_skip -= seg_len;
                pos += seg_len;
                continue;
            }
            let start = remaining_skip;
            let take = (seg_len - start).min(remaining_take);
            remaining_skip = 0;
            remaining_take -= take;
            pos += seg_len;
            let _ = pos;
            match seg {
                Segment::Bytes(b) => {
                    out.push(Segment::Bytes(Arc::new(
                        b[start as usize..(start + take) as usize].to_vec(),
                    )));
                }
                Segment::Synthetic {
                    tag, offset: so, ..
                } => {
                    out.push(Segment::Synthetic {
                        tag: *tag,
                        offset: so + start,
                        len: take,
                    });
                }
            }
        }
        Payload { segments: out }
    }

    /// Split into chunks of at most `chunk` bytes (transfer granularity).
    pub fn chunks(&self, chunk: u64) -> Vec<Payload> {
        assert!(chunk > 0);
        let total = self.len();
        let mut out = Vec::with_capacity(total.div_ceil(chunk) as usize);
        let mut off = 0;
        while off < total {
            let take = chunk.min(total - off);
            out.push(self.slice(off, take));
            off += take;
        }
        out
    }

    /// Canonical form: adjacent synthetic extents with the same tag and
    /// contiguous offsets are merged; adjacent real-byte segments are
    /// coalesced. Two payloads representing the same logical byte string
    /// normalize to equal values regardless of how they were chunked.
    pub fn normalize(&self) -> Payload {
        let mut out: Vec<Segment> = Vec::new();
        for seg in &self.segments {
            if seg.is_empty() {
                continue;
            }
            match (out.last_mut(), seg) {
                (
                    Some(Segment::Synthetic {
                        tag: t1,
                        offset: o1,
                        len: l1,
                    }),
                    Segment::Synthetic {
                        tag: t2,
                        offset: o2,
                        len: l2,
                    },
                ) if *t1 == *t2 && *o1 + *l1 == *o2 => {
                    *l1 += *l2;
                }
                (Some(Segment::Bytes(b1)), Segment::Bytes(b2)) => {
                    let mut merged = (**b1).clone();
                    merged.extend_from_slice(b2);
                    *out.last_mut().unwrap() = Segment::Bytes(Arc::new(merged));
                }
                _ => out.push(seg.clone()),
            }
        }
        Payload { segments: out }
    }

    /// Chunking-invariant content digest (FNV-1a over the normalized
    /// segment stream). Equal digests ⇒ same logical content, with
    /// overwhelming probability.
    pub fn digest(&self) -> u64 {
        let norm = self.normalize();
        let mut h = FNV_OFFSET;
        for seg in &norm.segments {
            match seg {
                Segment::Bytes(b) => {
                    h = fnv_byte(h, 0x01);
                    for &byte in b.iter() {
                        h = fnv_byte(h, byte);
                    }
                }
                Segment::Synthetic { tag, offset, len } => {
                    h = fnv_byte(h, 0x02);
                    h = fnv_u64(h, *tag);
                    h = fnv_u64(h, *offset);
                    h = fnv_u64(h, *len);
                }
            }
        }
        h
    }

    /// Replace the byte range `[offset, offset + replacement.len())` with
    /// `replacement`, leaving the rest unchanged (an RDMA write into a
    /// registered window). Panics if the range exceeds the payload.
    pub fn replace(&self, offset: u64, replacement: Payload) -> Payload {
        let rep_len = replacement.len();
        assert!(
            offset + rep_len <= self.len(),
            "replace [{offset}, {offset}+{rep_len}) out of range for payload of {} bytes",
            self.len()
        );
        let mut out = self.slice(0, offset);
        out.append(replacement);
        out.append(self.slice(offset + rep_len, self.len() - offset - rep_len));
        out
    }

    /// Materialize to real bytes. Panics on synthetic segments (tests that
    /// need byte access must use real-byte payloads).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len() as usize);
        for seg in &self.segments {
            match seg {
                Segment::Bytes(b) => out.extend_from_slice(b),
                Segment::Synthetic { .. } => {
                    panic!("cannot materialize synthetic payload to bytes")
                }
            }
        }
        out
    }

    /// Whether any segment is synthetic.
    pub fn is_synthetic(&self) -> bool {
        self.segments
            .iter()
            .any(|s| matches!(s, Segment::Synthetic { .. }))
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::bytes(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Payload {
        Payload::bytes(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let p = Payload::bytes(vec![1, 2, 3, 4]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.to_bytes(), vec![1, 2, 3, 4]);
        assert!(!p.is_synthetic());
    }

    #[test]
    fn synthetic_basics() {
        let p = Payload::synthetic(42, 1 << 30);
        assert_eq!(p.len(), 1 << 30);
        assert!(p.is_synthetic());
    }

    #[test]
    fn empty_edge_cases() {
        assert!(Payload::empty().is_empty());
        assert_eq!(Payload::bytes(Vec::new()).len(), 0);
        assert_eq!(Payload::synthetic(1, 0).len(), 0);
        assert_eq!(Payload::empty().digest(), Payload::empty().digest());
    }

    #[test]
    fn slice_bytes() {
        let p = Payload::bytes(vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(p.slice(2, 3).to_bytes(), vec![2, 3, 4]);
        assert_eq!(p.slice(0, 0).len(), 0);
        assert_eq!(p.slice(6, 0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        Payload::bytes(vec![1, 2, 3]).slice(2, 5);
    }

    #[test]
    fn slice_spanning_segments() {
        let p = Payload::concat([Payload::bytes(vec![0, 1, 2]), Payload::bytes(vec![3, 4, 5])]);
        assert_eq!(p.slice(1, 4).to_bytes(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn synthetic_slice_tracks_offset() {
        let p = Payload::synthetic(7, 100);
        let s = p.slice(10, 20);
        assert_eq!(
            s.segments(),
            &[Segment::Synthetic {
                tag: 7,
                offset: 10,
                len: 20
            }]
        );
    }

    #[test]
    fn digest_is_chunking_invariant_synthetic() {
        let p = Payload::synthetic(99, 10_000_000);
        let rechunked = Payload::concat(p.chunks(4096));
        let rechunked2 = Payload::concat(p.chunks(777));
        assert_eq!(p.digest(), rechunked.digest());
        assert_eq!(p.digest(), rechunked2.digest());
    }

    #[test]
    fn digest_is_chunking_invariant_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let p = Payload::bytes(data);
        let rechunked = Payload::concat(p.chunks(333));
        assert_eq!(p.digest(), rechunked.digest());
    }

    #[test]
    fn digest_detects_dropped_chunk() {
        let p = Payload::synthetic(5, 1000);
        let mut chunks = p.chunks(100);
        chunks.remove(3);
        assert_ne!(p.digest(), Payload::concat(chunks).digest());
    }

    #[test]
    fn digest_detects_reordered_chunks() {
        let p = Payload::synthetic(5, 1000);
        let mut chunks = p.chunks(100);
        chunks.swap(2, 7);
        assert_ne!(p.digest(), Payload::concat(chunks).digest());
    }

    #[test]
    fn digest_detects_duplicated_chunk() {
        let p = Payload::synthetic(5, 1000);
        let mut chunks = p.chunks(100);
        let dup = chunks[4].clone();
        chunks.insert(4, dup);
        assert_ne!(p.digest(), Payload::concat(chunks).digest());
    }

    #[test]
    fn different_tags_have_different_digests() {
        assert_ne!(
            Payload::synthetic(1, 100).digest(),
            Payload::synthetic(2, 100).digest()
        );
    }

    #[test]
    fn bytes_digest_differs_on_content() {
        assert_ne!(
            Payload::bytes(vec![1, 2, 3]).digest(),
            Payload::bytes(vec![1, 2, 4]).digest()
        );
    }

    #[test]
    fn normalize_merges_bytes() {
        let p = Payload::concat([Payload::bytes(vec![1]), Payload::bytes(vec![2, 3])]);
        let n = p.normalize();
        assert_eq!(n.segments().len(), 1);
        assert_eq!(n.to_bytes(), vec![1, 2, 3]);
    }

    #[test]
    fn replace_middle_range() {
        let p = Payload::bytes(vec![0, 1, 2, 3, 4, 5]);
        let r = p.replace(2, Payload::bytes(vec![9, 9]));
        assert_eq!(r.to_bytes(), vec![0, 1, 9, 9, 4, 5]);
    }

    #[test]
    fn replace_whole_and_edges() {
        let p = Payload::bytes(vec![1, 2, 3]);
        assert_eq!(
            p.replace(0, Payload::bytes(vec![7, 8, 9])).to_bytes(),
            vec![7, 8, 9]
        );
        assert_eq!(
            p.replace(0, Payload::bytes(vec![7])).to_bytes(),
            vec![7, 2, 3]
        );
        assert_eq!(
            p.replace(2, Payload::bytes(vec![7])).to_bytes(),
            vec![1, 2, 7]
        );
        assert_eq!(p.replace(3, Payload::empty()).to_bytes(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn replace_out_of_range_panics() {
        Payload::bytes(vec![1, 2]).replace(1, Payload::bytes(vec![1, 2]));
    }

    #[test]
    fn chunks_cover_exactly() {
        let p = Payload::synthetic(3, 1050);
        let chunks = p.chunks(100);
        assert_eq!(chunks.len(), 11);
        assert_eq!(chunks.iter().map(Payload::len).sum::<u64>(), 1050);
        assert_eq!(chunks.last().unwrap().len(), 50);
    }
}
