//! Simulated file systems with storage cost models.
//!
//! Two media matter to Snapify:
//!
//! * the **host file system** (disk-backed, write-back page cache): writes
//!   complete at memory speed and are flushed to disk asynchronously — this
//!   is why Snapify-IO's phi→host direction outruns host→phi (§7,
//!   "Snapify-IO daemon on the host flushes the file to the secondary
//!   storage asynchronously");
//! * the **Xeon Phi RAM file system**: every file byte is charged against
//!   the card's physical memory pool, so writing a 4 GB snapshot locally on
//!   an 8 GB card fails exactly as the paper's Table 4 `Local` column does.
//!
//! Files are append-streamed [`Payload`]s: writers append chunks, readers
//! stream them back, matching how BLCR and Snapify-IO actually move
//! snapshot data.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use simkernel::{obs, Bandwidth, BandwidthResource, SimDuration, SimMutex};

use crate::data::Payload;
use crate::fault::{FaultHook, FaultKind, FaultPlane, FaultTarget};
use crate::memory::{MemPool, OutOfMemory};
use crate::node::NodeId;

/// Errors from simulated file operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound(String),
    /// Path already exists (exclusive create).
    AlreadyExists(String),
    /// RAM-backed file system ran out of physical memory.
    OutOfMemory(OutOfMemory),
    /// Read past the end of a file.
    OutOfRange {
        /// Offending path.
        path: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual file size.
        size: u64,
    },
    /// The backing store is full: nothing was written (injected by the
    /// chaos plane's [`FaultKind::DiskFull`]).
    DiskFull {
        /// Offending path.
        path: String,
    },
    /// Only a prefix of the write persisted (injected by the chaos
    /// plane's [`FaultKind::ShortWrite`]). The caller may resume from
    /// `written`.
    ShortWrite {
        /// Offending path.
        path: String,
        /// Bytes that actually persisted (a prefix of the data).
        written: u64,
        /// Bytes the caller asked to write.
        requested: u64,
    },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            FsError::OutOfMemory(e) => write!(f, "{e}"),
            FsError::OutOfRange {
                path,
                offset,
                len,
                size,
            } => write!(
                f,
                "read [{offset}, {offset}+{len}) past end of {path} ({size} bytes)"
            ),
            FsError::DiskFull { path } => write!(f, "disk full writing {path}"),
            FsError::ShortWrite {
                path,
                written,
                requested,
            } => write!(
                f,
                "short write on {path}: {written} of {requested} bytes persisted"
            ),
        }
    }
}

impl std::error::Error for FsError {}

impl From<OutOfMemory> for FsError {
    fn from(e: OutOfMemory) -> FsError {
        FsError::OutOfMemory(e)
    }
}

/// Cost-model configuration for a file system.
#[derive(Clone, Debug)]
pub struct FsConfig {
    /// Bandwidth the *writer* pays synchronously (page-cache / memcpy).
    pub write_bw: Bandwidth,
    /// Per-write-operation latency paid by the writer.
    pub write_latency: SimDuration,
    /// If `Some((bw, latency))`, writes are additionally flushed to a
    /// backing store asynchronously at this rate; `fsync` waits for it.
    pub flush: Option<(Bandwidth, SimDuration)>,
    /// Bandwidth readers pay.
    pub read_bw: Bandwidth,
    /// Per-read-operation latency.
    pub read_latency: SimDuration,
}

impl FsConfig {
    /// A disk-backed file system with a write-back cache: writers run at
    /// `cache_bw`; dirty data drains to disk at `disk_bw` in the background.
    pub fn disk(cache_bw: Bandwidth, disk_bw: Bandwidth, op_latency: SimDuration) -> FsConfig {
        FsConfig {
            write_bw: cache_bw,
            write_latency: op_latency,
            flush: Some((disk_bw, op_latency)),
            read_bw: cache_bw,
            read_latency: op_latency,
        }
    }

    /// A RAM-backed file system: reads and writes at memory-copy speed,
    /// no backing store.
    pub fn ram(mem_bw: Bandwidth, op_latency: SimDuration) -> FsConfig {
        FsConfig {
            write_bw: mem_bw,
            write_latency: op_latency,
            flush: None,
            read_bw: mem_bw,
            read_latency: op_latency,
        }
    }
}

struct FileData {
    content: Payload,
}

struct FsInner {
    name: String,
    files: SimMutex<HashMap<String, FileData>>,
    /// Synchronous path (writer-visible).
    write_res: BandwidthResource,
    read_res: BandwidthResource,
    /// Asynchronous flush to backing store, if any.
    flush_res: Option<BandwidthResource>,
    /// Memory pool charged for file bytes (RAM fs), if any.
    mem: Option<MemPool>,
    /// Chaos-plane hookup (inert until wired at world boot).
    faults: FaultHook,
}

/// A simulated file system. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct SimFs {
    inner: Arc<FsInner>,
}

impl SimFs {
    /// Create a file system with the given cost model. If `mem` is `Some`,
    /// file bytes are charged to that pool (RAM file system).
    pub fn new(name: impl Into<String>, config: FsConfig, mem: Option<MemPool>) -> SimFs {
        let name = name.into();
        SimFs {
            inner: Arc::new(FsInner {
                files: SimMutex::new(format!("fs '{name}'"), HashMap::new()),
                write_res: BandwidthResource::new(
                    format!("fs '{name}' write"),
                    config.write_bw,
                    config.write_latency,
                ),
                read_res: BandwidthResource::new(
                    format!("fs '{name}' read"),
                    config.read_bw,
                    config.read_latency,
                ),
                flush_res: config
                    .flush
                    .map(|(bw, lat)| BandwidthResource::new(format!("fs '{name}' disk"), bw, lat)),
                mem,
                faults: FaultHook::new(),
                name,
            }),
        }
    }

    /// Wire this file system to a fault plane as `fs.<node>` (done once
    /// at world boot; later calls are ignored).
    pub fn attach_faults(&self, plane: &FaultPlane, node: NodeId) {
        self.inner.faults.attach(plane, FaultTarget::Fs(node));
    }

    /// Create an empty file, failing if it exists.
    pub fn create(&self, path: &str) -> Result<(), FsError> {
        let mut files = self.inner.files.lock();
        if files.contains_key(path) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        files.insert(
            path.to_string(),
            FileData {
                content: Payload::empty(),
            },
        );
        Ok(())
    }

    /// Create or truncate a file.
    pub fn create_or_truncate(&self, path: &str) {
        let mut files = self.inner.files.lock();
        let old_len = files.get(path).map(|f| f.content.len()).unwrap_or(0);
        if old_len > 0 {
            if let Some(mem) = &self.inner.mem {
                mem.free(old_len);
            }
        }
        files.insert(
            path.to_string(),
            FileData {
                content: Payload::empty(),
            },
        );
    }

    /// Append `data` to a file, paying the write cost model. Creates the
    /// file if needed. On a RAM fs, charges the memory pool first and fails
    /// with [`FsError::OutOfMemory`] without writing if it cannot.
    pub fn append(&self, path: &str, data: Payload) -> Result<(), FsError> {
        self.append_inner(path, data, true)
    }

    /// Append without blocking the caller: both the cache copy and the
    /// flush are scheduled asynchronously (the file server's write path —
    /// this is why Snapify-IO's phi→host direction outruns host→phi).
    /// `SimFs::sync` waits for completion. RAM file systems still charge
    /// memory synchronously.
    pub fn append_async(&self, path: &str, data: Payload) -> Result<(), FsError> {
        self.append_inner(path, data, false)
    }

    fn append_inner(&self, path: &str, data: Payload, sync: bool) -> Result<(), FsError> {
        // Chaos plane: a disk-full write fails before any byte moves; a
        // short write persists only the first half and reports how far it
        // got, so a resuming caller can pick up from `written`.
        let (data, injected) = match self.inner.faults.take() {
            Some(FaultKind::DiskFull) => {
                obs::counter_add("chaos.fs.diskfull", 1);
                return Err(FsError::DiskFull {
                    path: path.to_string(),
                });
            }
            Some(FaultKind::ShortWrite) => {
                let requested = data.len();
                let written = requested / 2;
                obs::counter_add("chaos.fs.shortwrite", 1);
                (
                    data.slice(0, written),
                    Some(FsError::ShortWrite {
                        path: path.to_string(),
                        written,
                        requested,
                    }),
                )
            }
            _ => (data, None),
        };
        let len = data.len();
        if let Some(mem) = &self.inner.mem {
            mem.alloc(len)?;
        }
        if sync {
            // Pay the synchronous (cache) cost.
            self.inner.write_res.transfer(len);
        } else {
            self.inner.write_res.schedule(len);
        }
        // Schedule the asynchronous flush, if this fs has a backing store.
        if let Some(flush) = &self.inner.flush_res {
            flush.schedule(len);
        }
        let mut files = self.inner.files.lock();
        files
            .entry(path.to_string())
            .or_insert_with(|| FileData {
                content: Payload::empty(),
            })
            .content
            .append(data);
        drop(files);
        match injected {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Read `len` bytes at `offset`, paying the read cost model.
    pub fn read(&self, path: &str, offset: u64, len: u64) -> Result<Payload, FsError> {
        let chunk = {
            let files = self.inner.files.lock();
            let file = files
                .get(path)
                .ok_or_else(|| FsError::NotFound(path.to_string()))?;
            let size = file.content.len();
            if offset + len > size {
                return Err(FsError::OutOfRange {
                    path: path.to_string(),
                    offset,
                    len,
                    size,
                });
            }
            file.content.slice(offset, len)
        };
        self.inner.read_res.transfer(len);
        Ok(chunk)
    }

    /// Read an entire file.
    pub fn read_all(&self, path: &str) -> Result<Payload, FsError> {
        let len = self.len(path)?;
        self.read(path, 0, len)
    }

    /// File size in bytes.
    pub fn len(&self, path: &str) -> Result<u64, FsError> {
        let files = self.inner.files.lock();
        files
            .get(path)
            .map(|f| f.content.len())
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.files.lock().contains_key(path)
    }

    /// Delete a file, releasing RAM-fs memory.
    pub fn delete(&self, path: &str) -> Result<(), FsError> {
        let mut files = self.inner.files.lock();
        let file = files
            .remove(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        if let Some(mem) = &self.inner.mem {
            mem.free(file.content.len());
        }
        Ok(())
    }

    /// Delete every file whose path starts with `prefix`. Returns the
    /// number of files removed.
    pub fn delete_prefix(&self, prefix: &str) -> usize {
        let mut files = self.inner.files.lock();
        let doomed: Vec<String> = files
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        let mut freed = 0u64;
        for p in &doomed {
            if let Some(f) = files.remove(p) {
                freed += f.content.len();
            }
        }
        if freed > 0 {
            if let Some(mem) = &self.inner.mem {
                mem.free(freed);
            }
        }
        doomed.len()
    }

    /// Paths currently present, sorted (for deterministic iteration).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let files = self.inner.files.lock();
        let mut v: Vec<String> = files
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .files
            .lock()
            .values()
            .map(|f| f.content.len())
            .sum()
    }

    /// Wait for all asynchronously-scheduled flushes to complete (fsync).
    pub fn sync(&self) {
        self.inner.write_res.wait_idle();
        if let Some(flush) = &self.inner.flush_res {
            flush.wait_idle();
        }
    }

    /// The file system's diagnostic name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }
}

impl fmt::Debug for SimFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimFs")
            .field("name", &self.inner.name)
            .field("files", &self.inner.files.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::time::{ms, secs};
    use simkernel::{now, Kernel, SimTime};

    fn ram_fs(pool: &MemPool) -> SimFs {
        SimFs::new(
            "ramfs",
            FsConfig::ram(Bandwidth::gb_per_sec(2.0), SimDuration::ZERO),
            Some(pool.clone()),
        )
    }

    #[test]
    fn append_read_roundtrip() {
        Kernel::run_root(|| {
            let fs = SimFs::new(
                "fs",
                FsConfig::ram(Bandwidth::gb_per_sec(1.0), SimDuration::ZERO),
                None,
            );
            fs.append("/a", Payload::bytes(vec![1, 2, 3])).unwrap();
            fs.append("/a", Payload::bytes(vec![4, 5])).unwrap();
            assert_eq!(fs.len("/a").unwrap(), 5);
            assert_eq!(fs.read("/a", 1, 3).unwrap().to_bytes(), vec![2, 3, 4]);
            assert_eq!(fs.read_all("/a").unwrap().to_bytes(), vec![1, 2, 3, 4, 5]);
        });
    }

    #[test]
    fn missing_file_errors() {
        Kernel::run_root(|| {
            let fs = SimFs::new(
                "fs",
                FsConfig::ram(Bandwidth::gb_per_sec(1.0), SimDuration::ZERO),
                None,
            );
            assert!(matches!(fs.read_all("/nope"), Err(FsError::NotFound(_))));
            assert!(matches!(fs.delete("/nope"), Err(FsError::NotFound(_))));
            assert!(matches!(fs.len("/nope"), Err(FsError::NotFound(_))));
        });
    }

    #[test]
    fn read_past_end_errors() {
        Kernel::run_root(|| {
            let fs = SimFs::new(
                "fs",
                FsConfig::ram(Bandwidth::gb_per_sec(1.0), SimDuration::ZERO),
                None,
            );
            fs.append("/a", Payload::bytes(vec![1, 2, 3])).unwrap();
            assert!(matches!(
                fs.read("/a", 2, 5),
                Err(FsError::OutOfRange { .. })
            ));
        });
    }

    #[test]
    fn exclusive_create() {
        Kernel::run_root(|| {
            let fs = SimFs::new(
                "fs",
                FsConfig::ram(Bandwidth::gb_per_sec(1.0), SimDuration::ZERO),
                None,
            );
            fs.create("/a").unwrap();
            assert!(matches!(fs.create("/a"), Err(FsError::AlreadyExists(_))));
        });
    }

    #[test]
    fn ram_fs_charges_memory_pool() {
        Kernel::run_root(|| {
            let pool = MemPool::new("mic0", 1000);
            let fs = ram_fs(&pool);
            fs.append("/f", Payload::synthetic(1, 600)).unwrap();
            assert_eq!(pool.used(), 600);
            // A 500-byte file no longer fits: the OOM arrives *before* any
            // bytes are written.
            let err = fs.append("/g", Payload::synthetic(2, 500)).unwrap_err();
            assert!(matches!(err, FsError::OutOfMemory(_)));
            assert!(!fs.exists("/g"));
            fs.delete("/f").unwrap();
            assert_eq!(pool.used(), 0);
        });
    }

    #[test]
    fn truncate_releases_memory() {
        Kernel::run_root(|| {
            let pool = MemPool::new("mic0", 1000);
            let fs = ram_fs(&pool);
            fs.append("/f", Payload::synthetic(1, 600)).unwrap();
            fs.create_or_truncate("/f");
            assert_eq!(pool.used(), 0);
            assert_eq!(fs.len("/f").unwrap(), 0);
        });
    }

    #[test]
    fn write_time_follows_cache_bandwidth() {
        Kernel::run_root(|| {
            let fs = SimFs::new(
                "fs",
                FsConfig::disk(
                    Bandwidth::gb_per_sec(1.0),
                    Bandwidth::mb_per_sec(100.0),
                    SimDuration::ZERO,
                ),
                None,
            );
            let t0 = now();
            fs.append("/a", Payload::synthetic(0, 1_000_000_000))
                .unwrap();
            // Writer pays cache speed (1s), not disk speed (10s).
            assert_eq!(now() - t0, secs(1));
            // fsync waits for the async flush, which starts once the data
            // is in the cache: 1s (cache) + 10s (disk).
            fs.sync();
            assert_eq!(now() - t0, secs(11));
        });
    }

    #[test]
    fn sync_on_ram_fs_is_instant() {
        Kernel::run_root(|| {
            let pool = MemPool::new("p", 1 << 30);
            let fs = ram_fs(&pool);
            fs.append("/a", Payload::synthetic(0, 1 << 20)).unwrap();
            let t = now();
            fs.sync();
            assert_eq!(now(), t);
        });
    }

    #[test]
    fn list_and_delete_prefix() {
        Kernel::run_root(|| {
            let pool = MemPool::new("p", 1 << 20);
            let fs = ram_fs(&pool);
            fs.append("/snap/1", Payload::synthetic(1, 10)).unwrap();
            fs.append("/snap/2", Payload::synthetic(2, 20)).unwrap();
            fs.append("/other", Payload::synthetic(3, 5)).unwrap();
            assert_eq!(fs.list("/snap/"), vec!["/snap/1", "/snap/2"]);
            assert_eq!(fs.delete_prefix("/snap/"), 2);
            assert_eq!(pool.used(), 5);
            assert_eq!(fs.total_bytes(), 5);
        });
    }

    #[test]
    fn append_async_does_not_block_caller() {
        Kernel::run_root(|| {
            let fs = SimFs::new(
                "fs",
                FsConfig::disk(
                    Bandwidth::gb_per_sec(1.0),
                    Bandwidth::mb_per_sec(100.0),
                    SimDuration::ZERO,
                ),
                None,
            );
            let t0 = now();
            fs.append_async("/a", Payload::synthetic(0, 1_000_000_000))
                .unwrap();
            assert_eq!(now(), t0); // caller not charged
            assert_eq!(fs.len("/a").unwrap(), 1_000_000_000);
            fs.sync();
            // cache (1s) and disk flush (10s) run concurrently from t0.
            assert_eq!(now() - t0, secs(10));
        });
    }

    #[test]
    fn append_async_on_ram_fs_still_charges_memory() {
        Kernel::run_root(|| {
            let pool = MemPool::new("p", 500);
            let fs = ram_fs(&pool);
            fs.append_async("/a", Payload::synthetic(0, 400)).unwrap();
            assert_eq!(pool.used(), 400);
            assert!(fs.append_async("/b", Payload::synthetic(1, 200)).is_err());
        });
    }

    #[test]
    fn injected_disk_full_fails_before_writing() {
        use crate::fault::{FaultKind, FaultPlane, FaultSchedule, FaultTarget};
        Kernel::run_root(|| {
            let fs = SimFs::new(
                "fs",
                FsConfig::ram(Bandwidth::gb_per_sec(1.0), SimDuration::ZERO),
                None,
            );
            let plane = FaultPlane::new(FaultSchedule::none().with(
                SimTime::ZERO,
                FaultTarget::Fs(NodeId::HOST),
                FaultKind::DiskFull,
            ));
            fs.attach_faults(&plane, NodeId::HOST);
            let err = fs.append("/a", Payload::synthetic(1, 100)).unwrap_err();
            assert!(matches!(err, FsError::DiskFull { .. }));
            assert!(!fs.exists("/a"), "disk-full must not write any bytes");
            // One-shot: the retry succeeds.
            fs.append("/a", Payload::synthetic(1, 100)).unwrap();
            assert_eq!(fs.len("/a").unwrap(), 100);
        });
    }

    #[test]
    fn injected_short_write_persists_resumable_prefix() {
        use crate::fault::{FaultKind, FaultPlane, FaultSchedule, FaultTarget};
        Kernel::run_root(|| {
            let fs = SimFs::new(
                "fs",
                FsConfig::ram(Bandwidth::gb_per_sec(1.0), SimDuration::ZERO),
                None,
            );
            let plane = FaultPlane::new(FaultSchedule::none().with(
                SimTime::ZERO,
                FaultTarget::Fs(NodeId::HOST),
                FaultKind::ShortWrite,
            ));
            fs.attach_faults(&plane, NodeId::HOST);
            let data = Payload::bytes((0..100u8).collect::<Vec<_>>());
            let err = fs.append("/a", data.clone()).unwrap_err();
            let FsError::ShortWrite {
                written, requested, ..
            } = err
            else {
                panic!("expected ShortWrite, got {err}");
            };
            assert_eq!((written, requested), (50, 100));
            assert_eq!(fs.len("/a").unwrap(), 50);
            // Resume from the reported offset: the file ends up intact.
            fs.append("/a", data.slice(written, requested - written))
                .unwrap();
            assert_eq!(fs.read_all("/a").unwrap().to_bytes(), data.to_bytes());
        });
    }

    #[test]
    fn read_time_follows_read_bandwidth() {
        Kernel::run_root(|| {
            let fs = SimFs::new(
                "fs",
                FsConfig {
                    write_bw: Bandwidth::gb_per_sec(100.0),
                    write_latency: SimDuration::ZERO,
                    flush: None,
                    read_bw: Bandwidth::mb_per_sec(100.0),
                    read_latency: ms(1),
                },
                None,
            );
            fs.append("/a", Payload::synthetic(0, 100_000_000)).unwrap();
            let t0 = now();
            fs.read_all("/a").unwrap();
            assert_eq!(now() - t0, secs(1) + ms(1));
            assert!(now() > SimTime::ZERO);
        });
    }
}
