//! The deterministic fault-injection plane (`simchaos`).
//!
//! Real Xeon Phi deployments fail in mundane ways the paper's protocol
//! must survive: PCIe transfers are replayed after CRC errors, the host
//! disk fills mid-snapshot, NFS mounts stall, a card runs out of
//! physical memory at the worst moment. This module makes those events
//! *schedulable*: a [`FaultSchedule`] is a declarative list of
//! `(virtual time, target, fault)` entries injected at world boot, and
//! every component of the platform consults the shared [`FaultPlane`]
//! at its operation sites.
//!
//! Two properties make this a reproducibility tool rather than a fuzzer:
//!
//! * **Determinism.** Faults fire on the *first matching operation at or
//!   after* their virtual time. Since the simulation is a deterministic
//!   function of its inputs, `(program, schedule, scheduler seed)`
//!   always produces the same run — a failing chaos case replays
//!   exactly from its one-line repro.
//! * **Replayability.** [`FaultSchedule`] round-trips through a compact
//!   text form (see [`FaultSchedule::parse`]) designed to be pasted into
//!   an environment variable (`SIMCHAOS_FAULTS=…`).
//!
//! Every injection is counted through `snapify-obs`
//! (`chaos.injected.*`), so a run's fault activity is visible in the
//! metrics dump even when everything is survived silently.

use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use simkernel::obs;
use simkernel::time::us;
use simkernel::{SimDuration, SimTime};

use crate::node::NodeId;

/// What kind of fault to inject. Kinds are target-specific: a kind
/// scheduled against a target that cannot exhibit it (e.g. [`Oom`] on a
/// bus) is ignored by the component that consumes it.
///
/// [`Oom`]: FaultKind::Oom
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// PCIe CRC error: the transfer is replayed once at link level
    /// (survived transparently, at 2× the transfer cost).
    BusError,
    /// Latency spike: the next transfer on the link stalls this long
    /// before starting.
    BusDelay(SimDuration),
    /// The next file-system write fails with [`crate::FsError::DiskFull`].
    DiskFull,
    /// The next file-system write persists only half its bytes and
    /// fails with [`crate::FsError::ShortWrite`].
    ShortWrite,
    /// The next memory-pool allocation spuriously fails.
    Oom,
    /// The next NFS round-trip stalls this long, then times out.
    NfsTimeout(SimDuration),
    /// The scp stream's connection resets mid-transfer.
    ConnReset,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::BusError => write!(f, "buserr"),
            FaultKind::BusDelay(d) => write!(f, "busdelay={}", d.as_nanos() / 1_000),
            FaultKind::DiskFull => write!(f, "diskfull"),
            FaultKind::ShortWrite => write!(f, "shortwrite"),
            FaultKind::Oom => write!(f, "oom"),
            FaultKind::NfsTimeout(d) => write!(f, "nfstimeout={}", d.as_nanos() / 1_000),
            FaultKind::ConnReset => write!(f, "connreset"),
        }
    }
}

impl FaultKind {
    fn parse(s: &str) -> Result<FaultKind, String> {
        let (name, arg) = match s.split_once('=') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        let arg_us = |what: &str| -> Result<SimDuration, String> {
            let a = arg.ok_or_else(|| format!("{what} needs '=<microseconds>'"))?;
            let n: u64 = a.parse().map_err(|_| format!("bad duration '{a}'"))?;
            Ok(us(n))
        };
        match name {
            "buserr" => Ok(FaultKind::BusError),
            "busdelay" => Ok(FaultKind::BusDelay(arg_us("busdelay")?)),
            "diskfull" => Ok(FaultKind::DiskFull),
            "shortwrite" => Ok(FaultKind::ShortWrite),
            "oom" => Ok(FaultKind::Oom),
            "nfstimeout" => Ok(FaultKind::NfsTimeout(arg_us("nfstimeout")?)),
            "connreset" => Ok(FaultKind::ConnReset),
            other => Err(format!("unknown fault kind '{other}'")),
        }
    }

    /// Short label for per-kind observability counters.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::BusError => "buserr",
            FaultKind::BusDelay(_) => "busdelay",
            FaultKind::DiskFull => "diskfull",
            FaultKind::ShortWrite => "shortwrite",
            FaultKind::Oom => "oom",
            FaultKind::NfsTimeout(_) => "nfstimeout",
            FaultKind::ConnReset => "connreset",
        }
    }
}

/// Which component a fault targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// The PCIe link of coprocessor `index`.
    Bus(usize),
    /// The file system of a node.
    Fs(NodeId),
    /// The memory pool of a node.
    Mem(NodeId),
    /// The NFS transport (any mount).
    Nfs,
    /// The scp transport (any stream).
    Scp,
    /// The cluster network interface of fleet node `index` (chunk-pool
    /// transfers and control traffic to/from that node).
    Net(usize),
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Bus(i) => write!(f, "bus{i}"),
            FaultTarget::Fs(n) => write!(f, "fs.{n}"),
            FaultTarget::Mem(n) => write!(f, "mem.{n}"),
            FaultTarget::Nfs => write!(f, "nfs"),
            FaultTarget::Scp => write!(f, "scp"),
            FaultTarget::Net(i) => write!(f, "net{i}"),
        }
    }
}

impl FaultTarget {
    fn parse(s: &str) -> Result<FaultTarget, String> {
        let node = |n: &str| -> Result<NodeId, String> {
            if n == "host" {
                Ok(NodeId::HOST)
            } else if let Some(i) = n.strip_prefix("mic") {
                let i: usize = i.parse().map_err(|_| format!("bad node '{n}'"))?;
                Ok(NodeId::device(i))
            } else {
                Err(format!("bad node '{n}' (expected 'host' or 'mic<i>')"))
            }
        };
        if let Some(i) = s.strip_prefix("bus") {
            let i: usize = i.parse().map_err(|_| format!("bad bus index in '{s}'"))?;
            Ok(FaultTarget::Bus(i))
        } else if let Some(n) = s.strip_prefix("fs.") {
            Ok(FaultTarget::Fs(node(n)?))
        } else if let Some(n) = s.strip_prefix("mem.") {
            Ok(FaultTarget::Mem(node(n)?))
        } else if s == "nfs" {
            Ok(FaultTarget::Nfs)
        } else if s == "scp" {
            Ok(FaultTarget::Scp)
        } else if let Some(i) = s.strip_prefix("net") {
            let i: usize = i.parse().map_err(|_| format!("bad net index in '{s}'"))?;
            Ok(FaultTarget::Net(i))
        } else {
            Err(format!("unknown fault target '{s}'"))
        }
    }
}

/// One scheduled fault: fires on the first operation against `target`
/// at or after virtual time `at`. One-shot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEntry {
    /// Earliest virtual time at which this fault may fire.
    pub at: SimTime,
    /// The component it strikes.
    pub target: FaultTarget,
    /// What happens.
    pub fault: FaultKind,
}

impl fmt::Display for FaultEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}",
            self.at.as_nanos() / 1_000,
            self.target,
            self.fault
        )
    }
}

/// A declarative list of faults to inject into a world.
///
/// The text form is `<at_us>:<target>:<kind>` entries joined with `;`,
/// e.g. `1500:bus0:buserr;20000:fs.mic0:diskfull;30000:nfs:nfstimeout=500`.
/// `Display` and [`FaultSchedule::parse`] round-trip, which is the
/// replay contract: a failing chaos run prints its schedule in this
/// form and `SIMCHAOS_FAULTS=<that string>` reproduces it exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// The scheduled faults (order is irrelevant; firing order is
    /// decided by operation order at runtime).
    pub entries: Vec<FaultEntry>,
}

impl FaultSchedule {
    /// The empty schedule (no faults).
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Add an entry (builder-style).
    pub fn with(mut self, at: SimTime, target: FaultTarget, fault: FaultKind) -> FaultSchedule {
        self.entries.push(FaultEntry { at, target, fault });
        self
    }

    /// Whether no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parse the text form produced by `Display` (empty string = empty
    /// schedule).
    pub fn parse(s: &str) -> Result<FaultSchedule, String> {
        let mut entries = Vec::new();
        for part in s.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let mut it = part.splitn(3, ':');
            let (t, tg, k) = match (it.next(), it.next(), it.next()) {
                (Some(t), Some(tg), Some(k)) => (t, tg, k),
                _ => return Err(format!("bad fault entry '{part}' (want at:target:kind)")),
            };
            let at_us: u64 = t
                .parse()
                .map_err(|_| format!("bad fault time '{t}' in '{part}'"))?;
            entries.push(FaultEntry {
                at: SimTime::ZERO + us(at_us),
                target: FaultTarget::parse(tg)?,
                fault: FaultKind::parse(k)?,
            });
        }
        Ok(FaultSchedule { entries })
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

struct PlaneInner {
    schedule: FaultSchedule,
    /// Which entries have fired (indices into `schedule.entries`).
    fired: Mutex<Vec<bool>>,
}

/// The shared, queryable fault plane of one world. Cheap to clone.
///
/// Components are wired to the plane at construction (see
/// `PhiServer::new_with_faults`) and call [`FaultPlane::take`] at their
/// operation sites; an empty plane costs one branch per query.
#[derive(Clone)]
pub struct FaultPlane {
    inner: Arc<PlaneInner>,
}

impl FaultPlane {
    /// Build a plane from a schedule.
    pub fn new(schedule: FaultSchedule) -> FaultPlane {
        let n = schedule.entries.len();
        FaultPlane {
            inner: Arc::new(PlaneInner {
                schedule,
                fired: Mutex::new(vec![false; n]),
            }),
        }
    }

    /// An empty plane (injects nothing).
    pub fn none() -> FaultPlane {
        FaultPlane::new(FaultSchedule::none())
    }

    /// Whether this plane has no scheduled faults at all.
    pub fn is_empty(&self) -> bool {
        self.inner.schedule.is_empty()
    }

    /// The schedule this plane was built from.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.inner.schedule
    }

    /// Consume the first unfired fault aimed at `target` whose time has
    /// come (entry time ≤ current virtual time). Returns `None` outside
    /// a simulation, when the plane is empty, or when nothing is due.
    /// Each injection bumps the `chaos.injected` and
    /// `chaos.injected.<kind>` counters.
    pub fn take(&self, target: FaultTarget) -> Option<FaultKind> {
        if self.inner.schedule.is_empty() || !simkernel::in_simulation() {
            return None;
        }
        let now = simkernel::now();
        let mut fired = self.inner.fired.lock().unwrap();
        for (i, e) in self.inner.schedule.entries.iter().enumerate() {
            if !fired[i] && e.target == target && e.at <= now {
                fired[i] = true;
                obs::counter_add("chaos.injected", 1);
                obs::counter_add(&format!("chaos.injected.{}", e.fault.label()), 1);
                return Some(e.fault);
            }
        }
        None
    }

    /// Number of faults that have fired so far.
    pub fn fired_count(&self) -> usize {
        self.inner
            .fired
            .lock()
            .unwrap()
            .iter()
            .filter(|f| **f)
            .count()
    }
}

impl fmt::Debug for FaultPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlane")
            .field("schedule", &self.inner.schedule.to_string())
            .field("fired", &self.fired_count())
            .finish()
    }
}

/// A lazily-attached fault hookup: components embed one of these and
/// the world wires it once at boot. Querying an unwired hookup is free.
pub(crate) struct FaultHook {
    slot: OnceLock<(FaultPlane, FaultTarget)>,
}

impl FaultHook {
    pub(crate) fn new() -> FaultHook {
        FaultHook {
            slot: OnceLock::new(),
        }
    }

    pub(crate) fn attach(&self, plane: &FaultPlane, target: FaultTarget) {
        // Re-attachment is ignored (first wiring wins): worlds are wired
        // exactly once at boot.
        let _ = self.slot.set((plane.clone(), target));
    }

    pub(crate) fn take(&self) -> Option<FaultKind> {
        let (plane, target) = self.slot.get()?;
        plane.take(*target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::time::ms;
    use simkernel::Kernel;

    #[test]
    fn schedule_text_roundtrip() {
        let s = FaultSchedule::none()
            .with(
                SimTime::ZERO + ms(1) + us(500),
                FaultTarget::Bus(0),
                FaultKind::BusError,
            )
            .with(
                SimTime::ZERO + ms(20),
                FaultTarget::Fs(NodeId::device(0)),
                FaultKind::DiskFull,
            )
            .with(
                SimTime::ZERO + ms(30),
                FaultTarget::Nfs,
                FaultKind::NfsTimeout(us(500)),
            )
            .with(
                SimTime::ZERO,
                FaultTarget::Mem(NodeId::HOST),
                FaultKind::Oom,
            )
            .with(
                SimTime::ZERO + us(7),
                FaultTarget::Scp,
                FaultKind::ConnReset,
            )
            .with(
                SimTime::ZERO + us(9),
                FaultTarget::Bus(1),
                FaultKind::BusDelay(ms(2)),
            )
            .with(
                SimTime::ZERO + us(11),
                FaultTarget::Net(3),
                FaultKind::ConnReset,
            );
        let text = s.to_string();
        assert_eq!(
            text,
            "1500:bus0:buserr;20000:fs.mic0:diskfull;30000:nfs:nfstimeout=500;0:mem.host:oom;7:scp:connreset;9:bus1:busdelay=2000;11:net3:connreset"
        );
        assert_eq!(FaultSchedule::parse(&text).unwrap(), s);
        assert_eq!(FaultSchedule::parse("").unwrap(), FaultSchedule::none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSchedule::parse("nonsense").is_err());
        assert!(FaultSchedule::parse("12:bus0:frobnicate").is_err());
        assert!(FaultSchedule::parse("12:frob:oom").is_err());
        assert!(FaultSchedule::parse("x:bus0:buserr").is_err());
        assert!(
            FaultSchedule::parse("5:nfs:nfstimeout").is_err(),
            "missing duration arg"
        );
    }

    #[test]
    fn faults_fire_once_at_or_after_their_time() {
        Kernel::run_root(|| {
            let plane = FaultPlane::new(
                FaultSchedule::none()
                    .with(
                        SimTime::ZERO + ms(5),
                        FaultTarget::Nfs,
                        FaultKind::NfsTimeout(ms(1)),
                    )
                    .with(SimTime::ZERO, FaultTarget::Scp, FaultKind::ConnReset),
            );
            // Not yet due.
            assert_eq!(plane.take(FaultTarget::Nfs), None);
            // Due immediately; fires exactly once.
            assert_eq!(plane.take(FaultTarget::Scp), Some(FaultKind::ConnReset));
            assert_eq!(plane.take(FaultTarget::Scp), None);
            simkernel::sleep(ms(5));
            // Other targets never see it.
            assert_eq!(plane.take(FaultTarget::Bus(0)), None);
            assert_eq!(
                plane.take(FaultTarget::Nfs),
                Some(FaultKind::NfsTimeout(ms(1)))
            );
            assert_eq!(plane.fired_count(), 2);
        });
    }

    #[test]
    fn empty_plane_is_inert() {
        Kernel::run_root(|| {
            let plane = FaultPlane::none();
            assert!(plane.is_empty());
            assert_eq!(plane.take(FaultTarget::Nfs), None);
        });
    }
}
