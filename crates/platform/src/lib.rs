//! # phi-platform — the simulated Xeon Phi server
//!
//! This crate is the hardware substitution layer of the Snapify
//! reproduction (the real Knights Corner cards and their MPSS stack are
//! discontinued). It models, on top of [`simkernel`]'s virtual clock:
//!
//! * [`SimNode`] — the host and each coprocessor: core counts and compute
//!   rates, a physical [`MemPool`], a single-threaded memcpy engine, and a
//!   node file system;
//! * [`SimFs`] — the host's disk-backed file system (write-back cache with
//!   asynchronous flush) and the Phi's RAM-backed file system (file bytes
//!   charge the card's memory pool — the root cause of the paper's
//!   snapshot-storage problem);
//! * [`PcieLink`] — per-card PCIe gen2 x16 links with distinct message and
//!   RDMA cost models;
//! * [`PhiServer`] / [`Cluster`] — assembled topologies, including the
//!   4-node cluster of the MPI experiments;
//! * [`Payload`] — simulated data that supports paper-scale sizes without
//!   materializing gigabytes, with chunking-invariant digests for
//!   end-to-end integrity checks;
//! * [`PlatformParams`] — every calibrated constant, in one place,
//!   printed by every benchmark;
//! * [`FaultPlane`] / [`FaultSchedule`] — the deterministic chaos plane:
//!   declarative `(virtual time, target, fault)` schedules injected at
//!   world boot and consumed at bus/fs/memory operation sites.

#![warn(missing_docs)]

pub mod bus;
pub mod data;
pub mod domains;
pub mod fault;
pub mod fs;
pub mod memory;
pub mod node;
pub mod params;
pub mod server;

pub use bus::PcieLink;
pub use data::{Payload, Segment};
pub use domains::{cluster_lookahead, device_lookahead, DomainPlacement};
pub use fault::{FaultEntry, FaultKind, FaultPlane, FaultSchedule, FaultTarget};
pub use fs::{FsConfig, FsError, SimFs};
pub use memory::{MemAlloc, MemPool, OutOfMemory};
pub use node::{NodeId, NodeKind, SimNode};
pub use params::{PlatformParams, GB, KB, MB};
pub use server::{Cluster, PhiServer};
