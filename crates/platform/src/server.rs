//! Server and cluster assembly: one host plus its coprocessors, and
//! multi-node clusters for the MPI experiments.

use std::fmt;
use std::sync::Arc;

use simkernel::{BandwidthResource, SimDuration};

use crate::bus::PcieLink;
use crate::fault::{FaultPlane, FaultSchedule};
use crate::node::{NodeId, SimNode};
use crate::params::PlatformParams;

struct ServerInner {
    params: PlatformParams,
    host: SimNode,
    devices: Vec<SimNode>,
    links: Vec<PcieLink>,
    faults: FaultPlane,
}

/// A simulated Xeon Phi server: one host node, `num_devices` coprocessors,
/// one PCIe link per coprocessor. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct PhiServer {
    inner: Arc<ServerInner>,
}

impl PhiServer {
    /// Build a server from parameters (no faults scheduled).
    pub fn new(params: PlatformParams) -> PhiServer {
        PhiServer::new_with_faults(params, FaultSchedule::none())
    }

    /// Build a server with a chaos-plane [`FaultSchedule`]: every node's
    /// file system and memory pool and every PCIe link is wired to the
    /// resulting [`FaultPlane`], and transports built on this server
    /// (NFS, scp) consult it via [`PhiServer::faults`].
    pub fn new_with_faults(params: PlatformParams, schedule: FaultSchedule) -> PhiServer {
        let faults = FaultPlane::new(schedule);
        let host = SimNode::host(&params);
        host.fs().attach_faults(&faults, NodeId::HOST);
        host.mem().attach_faults(&faults, NodeId::HOST);
        let devices: Vec<SimNode> = (0..params.num_devices)
            .map(|i| {
                let dev = SimNode::phi(&params, i);
                dev.fs().attach_faults(&faults, NodeId::device(i));
                dev.mem().attach_faults(&faults, NodeId::device(i));
                dev
            })
            .collect();
        let links: Vec<PcieLink> = (0..params.num_devices)
            .map(|i| {
                let link = PcieLink::new(&params, NodeId::device(i));
                link.attach_faults(&faults);
                link
            })
            .collect();
        PhiServer {
            inner: Arc::new(ServerInner {
                params,
                host,
                devices,
                links,
                faults,
            }),
        }
    }

    /// The chaos plane of this server (empty unless built via
    /// [`PhiServer::new_with_faults`]).
    pub fn faults(&self) -> &FaultPlane {
        &self.inner.faults
    }

    /// Build a server with default (paper Table 2) parameters.
    pub fn default_server() -> PhiServer {
        PhiServer::new(PlatformParams::default())
    }

    /// The platform parameters this server was built with.
    pub fn params(&self) -> &PlatformParams {
        &self.inner.params
    }

    /// The host node.
    pub fn host(&self) -> &SimNode {
        &self.inner.host
    }

    /// Coprocessor `index` (zero-based). Panics if out of range.
    pub fn device(&self, index: usize) -> &SimNode {
        &self.inner.devices[index]
    }

    /// All coprocessors.
    pub fn devices(&self) -> &[SimNode] {
        &self.inner.devices
    }

    /// Number of coprocessors.
    pub fn num_devices(&self) -> usize {
        self.inner.devices.len()
    }

    /// The PCIe link of coprocessor `index`.
    pub fn link(&self, index: usize) -> &PcieLink {
        &self.inner.links[index]
    }

    /// Resolve a SCIF node id to a node.
    pub fn node(&self, id: NodeId) -> &SimNode {
        match id.device_index() {
            None => &self.inner.host,
            Some(i) => &self.inner.devices[i],
        }
    }

    /// The PCIe link used for traffic between `a` and `b`. For
    /// device-to-device traffic (peer-to-peer over the PCIe switch), the
    /// transfer crosses both devices' links; this returns the link of the
    /// *lower-numbered* endpoint for accounting and the caller charges both
    /// via [`PhiServer::rdma_between`].
    pub fn link_between(&self, a: NodeId, b: NodeId) -> &PcieLink {
        assert_ne!(a, b, "no link from a node to itself");
        let dev = match (a.device_index(), b.device_index()) {
            (None, Some(i)) | (Some(i), None) => i,
            (Some(i), Some(j)) => i.min(j),
            (None, None) => unreachable!("host-to-host has no PCIe link"),
        };
        &self.inner.links[dev]
    }

    /// RDMA `bytes` between two nodes of this server, charging every PCIe
    /// link the transfer crosses (device↔device crosses two).
    pub fn rdma_between(&self, a: NodeId, b: NodeId, bytes: u64) -> SimDuration {
        match (a.device_index(), b.device_index()) {
            (None, Some(i)) | (Some(i), None) => self.inner.links[i].rdma_transfer(bytes),
            (Some(i), Some(j)) if i != j => {
                // Peer-to-peer: occupy both links, serialized (store &
                // forward through the PCIe switch at link speed).
                let d1 = self.inner.links[i].rdma_transfer(bytes);
                let d2 = self.inner.links[j].rdma_transfer(bytes);
                d1 + d2
            }
            _ => panic!("rdma_between requires two distinct nodes with a PCIe path"),
        }
    }
}

impl fmt::Debug for PhiServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhiServer")
            .field("devices", &self.inner.devices.len())
            .finish()
    }
}

struct ClusterInner {
    servers: Vec<PhiServer>,
    /// One NIC resource per server (full-duplex not modeled).
    nics: Vec<BandwidthResource>,
    net_latency: SimDuration,
}

/// A cluster of Xeon Phi servers connected by a network, for the MPI
/// experiments (Fig 11). Cheap to clone.
#[derive(Clone)]
pub struct Cluster {
    inner: Arc<ClusterInner>,
}

impl Cluster {
    /// Build a cluster of `n` identical servers.
    pub fn new(n: usize, params: PlatformParams) -> Cluster {
        let servers: Vec<PhiServer> = (0..n).map(|_| PhiServer::new(params.clone())).collect();
        let nics = (0..n)
            .map(|i| BandwidthResource::new(format!("nic{i}"), params.net_bw, params.net_latency))
            .collect();
        Cluster {
            inner: Arc::new(ClusterInner {
                servers,
                nics,
                net_latency: params.net_latency,
            }),
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.inner.servers.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.servers.is_empty()
    }

    /// Server `i`.
    pub fn server(&self, i: usize) -> &PhiServer {
        &self.inner.servers[i]
    }

    /// Transfer `bytes` from server `from` to server `to` over the
    /// network, occupying both NICs.
    pub fn net_transfer(&self, from: usize, to: usize, bytes: u64) -> SimDuration {
        assert_ne!(from, to, "network transfer to self");
        let d1 = self.inner.nics[from].transfer(bytes);
        let d2 = self.inner.nics[to].transfer(bytes);
        d1 + d2
    }

    /// One-way network message latency.
    pub fn net_latency(&self) -> SimDuration {
        self.inner.net_latency
    }
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("servers", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GB;
    use simkernel::Kernel;

    #[test]
    fn server_topology() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            assert_eq!(server.num_devices(), 2);
            assert!(server.host().id().is_host());
            assert_eq!(server.device(0).id(), NodeId::device(0));
            assert_eq!(server.node(NodeId::device(1)).name(), "mic1");
            assert_eq!(server.node(NodeId::HOST).name(), "host");
        });
    }

    #[test]
    fn device_memories_are_independent() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            server.device(0).mem().alloc(4 * GB).unwrap();
            assert_eq!(server.device(1).mem().used(), 0);
        });
    }

    #[test]
    fn link_between_resolves() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let l = server.link_between(NodeId::HOST, NodeId::device(1));
            assert_eq!(l.device(), NodeId::device(1));
            let l = server.link_between(NodeId::device(0), NodeId::device(1));
            assert_eq!(l.device(), NodeId::device(0));
        });
    }

    #[test]
    fn p2p_rdma_charges_both_links() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            server.rdma_between(NodeId::device(0), NodeId::device(1), GB);
            let (b0, _) = server.link(0).rdma_stats();
            let (b1, _) = server.link(1).rdma_stats();
            assert_eq!(b0, GB);
            assert_eq!(b1, GB);
        });
    }

    #[test]
    #[should_panic(expected = "distinct nodes")]
    fn rdma_to_self_panics() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            server.rdma_between(NodeId::device(0), NodeId::device(0), 1);
        });
    }

    #[test]
    fn cluster_transfer_charges_both_nics() {
        Kernel::run_root(|| {
            let cluster = Cluster::new(4, PlatformParams::default());
            assert_eq!(cluster.len(), 4);
            cluster.net_transfer(0, 3, 1_000_000);
            let d = cluster.net_transfer(1, 2, 1_250_000_000);
            assert!(d.as_secs_f64() >= 2.0); // two NIC crossings at 1.25 GB/s
        });
    }
}
