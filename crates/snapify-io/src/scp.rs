//! scp baseline: streaming copy over ssh (Table 3's slowest method).
//!
//! The bottleneck is the cipher running on a single in-order Xeon Phi
//! core: the stream is encrypted/decrypted at ~34 MB/s regardless of the
//! PCIe link's capability, which is why Snapify-IO beats scp by 20–30×.

use std::sync::Arc;

use phi_platform::{FaultKind, FaultTarget, NodeId, Payload, PhiServer};
use simkernel::obs;
use simkernel::{BandwidthResource, SimDuration, SimMutex};
use simproc::{ByteSink, ByteSource, IoError};

use crate::config::ScpConfig;
use crate::storage::SnapshotStorage;

struct ScpInner {
    server: PhiServer,
    config: ScpConfig,
    /// One cipher engine per node (a single busy core).
    ciphers: SimMutex<Vec<Option<BandwidthResource>>>,
}

/// The scp transport.
#[derive(Clone)]
pub struct Scp {
    inner: Arc<ScpInner>,
}

impl Scp {
    /// Create the scp model for `server`.
    pub fn new(server: &PhiServer, config: ScpConfig) -> Scp {
        let slots = server.num_devices() + 1;
        Scp {
            inner: Arc::new(ScpInner {
                server: server.clone(),
                config,
                ciphers: SimMutex::new("scp ciphers", (0..slots).map(|_| None).collect()),
            }),
        }
    }

    fn cipher(&self, node: NodeId) -> BandwidthResource {
        let mut ciphers = self.inner.ciphers.lock();
        let slot = node.0 as usize;
        if ciphers[slot].is_none() {
            ciphers[slot] = Some(BandwidthResource::new(
                format!("scp-cipher-{node}"),
                self.inner.config.cipher_bw,
                SimDuration::ZERO,
            ));
        }
        ciphers[slot].clone().unwrap()
    }

    /// Consume any due chaos-plane connection resets, reconnecting
    /// (another ssh handshake, with exponential backoff) while the
    /// retry budget lasts. `resets` carries the reset count across one
    /// logical operation so the budget is per-call, not per-chunk; a
    /// surfaced failure returns [`IoError::ConnReset`] tagged with
    /// `context`. Chunks already shipped before the reset stand — the
    /// caller resumes from the last fully-shipped chunk.
    fn absorb_resets(&self, resets: &mut u32, context: &str) -> Result<(), IoError> {
        let retry = self.inner.config.retry;
        // Label with the verb only ("push", not "push /path"): paths
        // would explode label cardinality.
        let verb = context.split_whitespace().next().unwrap_or(context);
        loop {
            match self.inner.server.faults().take(FaultTarget::Scp) {
                Some(FaultKind::ConnReset) => {
                    obs::counter_add("chaos.scp.resets", 1);
                    obs::counter_add_labeled("io.resets", &[("op", verb), ("transport", "scp")], 1);
                    if *resets >= retry.max_retries {
                        obs::counter_add("chaos.surfaced", 1);
                        obs::counter_add_labeled(
                            "io.errors_surfaced",
                            &[("op", verb), ("transport", "scp")],
                            1,
                        );
                        return Err(IoError::ConnReset(format!(
                            "scp {context}: connection reset, retry budget exhausted"
                        )));
                    }
                    obs::counter_add("chaos.retried", 1);
                    obs::counter_add_labeled(
                        "io.retries",
                        &[("op", verb), ("transport", "scp")],
                        1,
                    );
                    simkernel::sleep(retry.backoff_for(*resets));
                    // Reconnect: pay the ssh handshake again.
                    simkernel::sleep(self.inner.config.setup);
                    obs::counter_add("chaos.scp.reconnects", 1);
                    *resets += 1;
                }
                // Other kinds aimed at the scp target have no scp
                // failure mode to model; consume them, but count the
                // drop so a misconfigured schedule is visible.
                Some(other) => {
                    obs::counter_add("chaos.scp.ignored", 1);
                    obs::counter_add(&format!("chaos.scp.ignored.{}", other.label()), 1);
                }
                None => return Ok(()),
            }
        }
    }

    fn stream_cost(&self, local: NodeId, bytes: u64) {
        // Encrypt on the slow side, ship over the virtio network path.
        self.cipher(local).transfer(bytes);
        if !local.is_host() {
            self.inner
                .server
                .link_between(local, NodeId::HOST)
                .message_transfer(bytes);
        }
    }
}

/// scp push (local → host file).
pub struct ScpSink {
    scp: Scp,
    local: NodeId,
    path: String,
    closed: bool,
}

impl ByteSink for ScpSink {
    fn write(&mut self, data: Payload) -> Result<(), IoError> {
        // Typed error, not a panic: chaos repros replay error-path
        // double-writes, and the simulated world must survive them.
        if self.closed {
            return Err(IoError::Closed);
        }
        let total = data.len();
        let t0 = simkernel::now();
        let mut shipped = 0u64;
        let mut resets = 0u32;
        for chunk in data.chunks(self.scp.inner.config.chunk) {
            // Chaos plane: a due reset drops the stream *before* this
            // chunk ships; everything appended so far stands, and a
            // successful reconnect resumes from this chunk (partial
            // transfer + resume, never silent corruption).
            self.scp.absorb_resets(
                &mut resets,
                &format!("push {} at byte {shipped} of {total}", self.path),
            )?;
            let chunk_len = chunk.len();
            self.scp.stream_cost(self.local, chunk_len);
            self.scp
                .inner
                .server
                .host()
                .fs()
                .append_async(&self.path, chunk)?;
            shipped += chunk_len;
            obs::counter_add("io.scp.bytes_written", chunk_len);
        }
        if obs::is_enabled() {
            obs::sketch_observe_labeled(
                "io.write_ns",
                &[("op", "write"), ("transport", "scp")],
                (simkernel::now() - t0).as_nanos(),
            );
        }
        Ok(())
    }

    fn close(&mut self) -> Result<(), IoError> {
        // The writes above append asynchronously on the host; scp only
        // reports success once the remote side acknowledges the final
        // exchange. Model that: a reset landing between the last append
        // and the close still costs a reconnect (or surfaces), and the
        // host-side appends are drained before we report the file
        // durable. Without this, a snapshot could be declared complete
        // with appends still in flight.
        let mut resets = 0u32;
        self.scp
            .absorb_resets(&mut resets, &format!("close {}", self.path))?;
        self.scp.inner.server.host().fs().sync();
        self.closed = true;
        Ok(())
    }
}

/// scp pull (host file → local).
pub struct ScpSource {
    scp: Scp,
    local: NodeId,
    path: String,
    offset: u64,
}

impl ByteSource for ScpSource {
    fn read(&mut self, max: u64) -> Result<Option<Payload>, IoError> {
        // Chaos plane: a reset before the chunk moves costs a reconnect
        // (or surfaces); the offset only advances on success, so a
        // later read resumes exactly where the stream broke.
        let mut resets = 0u32;
        self.scp.absorb_resets(
            &mut resets,
            &format!("pull {} at byte {}", self.path, self.offset),
        )?;
        let fs = self.scp.inner.server.host().fs();
        let size = fs.len(&self.path)?;
        if self.offset >= size {
            return Ok(None);
        }
        let take = max.min(size - self.offset).min(self.scp.inner.config.chunk);
        let chunk = fs.read(&self.path, self.offset, take)?;
        self.offset += take;
        self.scp.stream_cost(self.local, take);
        obs::counter_add("io.scp.bytes_read", take);
        Ok(Some(chunk))
    }
}

impl SnapshotStorage for Scp {
    fn sink(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSink>, IoError> {
        simkernel::sleep(self.inner.config.setup);
        self.inner.server.host().fs().create_or_truncate(path);
        Ok(Box::new(ScpSink {
            scp: self.clone(),
            local,
            path: path.to_string(),
            closed: false,
        }))
    }

    fn source(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSource>, IoError> {
        if !self.inner.server.host().fs().exists(path) {
            return Err(IoError::Fs(phi_platform::FsError::NotFound(
                path.to_string(),
            )));
        }
        simkernel::sleep(self.inner.config.setup);
        Ok(Box::new(ScpSource {
            scp: self.clone(),
            local,
            path: path.to_string(),
            offset: 0,
        }))
    }

    fn label(&self) -> &'static str {
        "scp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::GB;
    use simkernel::{now, Kernel};

    #[test]
    fn scp_is_cipher_bound() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let scp = Scp::new(&server, ScpConfig::default());
            let mut sink = scp.sink(NodeId::device(0), "/snap/f").unwrap();
            let t0 = now();
            for chunk in Payload::synthetic(1, GB).chunks(8 << 20) {
                sink.write(chunk).unwrap();
            }
            sink.close().unwrap();
            let t = (now() - t0).as_secs_f64();
            // ≈ 1 GiB / 34 MB/s ≈ 31 s.
            assert!(t > 25.0 && t < 40.0, "t = {t}");
        });
    }

    #[test]
    fn scp_read_roughly_matches_write() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let scp = Scp::new(&server, ScpConfig::default());
            server
                .host()
                .fs()
                .append("/snap/r", Payload::synthetic(1, 256 << 20))
                .unwrap();
            let mut src = scp.source(NodeId::device(0), "/snap/r").unwrap();
            let t0 = now();
            while src.read(8 << 20).unwrap().is_some() {}
            let read = (now() - t0).as_secs_f64();
            assert!(read > 6.0 && read < 12.0, "read = {read}");
        });
    }

    #[test]
    fn conn_reset_mid_transfer_is_resumed_after_reconnect() {
        use phi_platform::{FaultSchedule, PlatformParams};
        use simkernel::time::{ms, SimTime};
        Kernel::run_root(|| {
            // Fire a reset 500 ms in — mid-way through the multi-chunk
            // push, after some chunks have already landed on the host.
            let schedule = FaultSchedule::none().with(
                SimTime(ms(500).as_nanos()),
                FaultTarget::Scp,
                FaultKind::ConnReset,
            );
            let server = PhiServer::new_with_faults(PlatformParams::default(), schedule);
            let scp = Scp::new(&server, ScpConfig::default());
            let data = Payload::synthetic(5, 64 << 20);
            let mut sink = scp.sink(NodeId::device(0), "/snap/resume").unwrap();
            let t0 = now();
            for chunk in data.chunks(8 << 20) {
                sink.write(chunk).unwrap();
            }
            sink.close().unwrap();
            let t = (now() - t0).as_secs_f64();
            assert_eq!(server.faults().fired_count(), 1, "reset fired");
            // The reconnect pays the ssh handshake again.
            assert!(t > 64.0 / 34.0 + 0.17, "t = {t} should include a reconnect");
            // Partial transfer resumed, not restarted: content intact.
            let mut src = scp.source(NodeId::device(0), "/snap/resume").unwrap();
            let mut out = Payload::empty();
            while let Some(c) = src.read(8 << 20).unwrap() {
                out.append(c);
            }
            assert_eq!(out.digest(), data.digest());
        });
    }

    #[test]
    fn conn_reset_surfaces_typed_error_when_retries_disabled() {
        use crate::config::RetryPolicy;
        use phi_platform::{FaultSchedule, PlatformParams};
        use simkernel::time::SimTime;
        Kernel::run_root(|| {
            let schedule =
                FaultSchedule::none().with(SimTime::ZERO, FaultTarget::Scp, FaultKind::ConnReset);
            let server = PhiServer::new_with_faults(PlatformParams::default(), schedule);
            let config = ScpConfig {
                retry: RetryPolicy::disabled(),
                ..ScpConfig::default()
            };
            let scp = Scp::new(&server, config);
            let mut sink = scp.sink(NodeId::device(0), "/snap/hard").unwrap();
            let err = sink.write(Payload::synthetic(5, 1 << 20)).unwrap_err();
            assert!(matches!(err, IoError::ConnReset(_)), "got {err}");
            assert!(err.is_transient());
            assert!(err.to_string().contains("at byte 0"), "err = {err}");
            // The reset hit before the first chunk shipped.
            assert_eq!(server.host().fs().len("/snap/hard").unwrap(), 0);
        });
    }

    #[test]
    fn reset_between_last_append_and_close_surfaces() {
        use crate::config::RetryPolicy;
        use phi_platform::{FaultSchedule, PlatformParams};
        use simkernel::time::{ms, SimTime};
        Kernel::run_root(|| {
            // The reset becomes due *after* every write returned but
            // *before* close. The old no-op close never looked at the
            // fault plane (or the in-flight appends), so the snapshot
            // was reported durable with the connection already dead:
            // fired_count() stayed 0 and close returned Ok.
            let schedule = FaultSchedule::none().with(
                SimTime(ms(800).as_nanos()),
                FaultTarget::Scp,
                FaultKind::ConnReset,
            );
            let server = PhiServer::new_with_faults(PlatformParams::default(), schedule);
            let config = ScpConfig {
                retry: RetryPolicy::disabled(),
                ..ScpConfig::default()
            };
            let scp = Scp::new(&server, config);
            let mut sink = scp.sink(NodeId::device(0), "/snap/late").unwrap();
            sink.write(Payload::synthetic(5, 8 << 20)).unwrap();
            // All writes done (≈ 8 MiB / 34 MB/s ≈ 0.24 s); let the
            // scheduled reset come due before the close handshake.
            simkernel::sleep(ms(1000));
            let err = sink.close().unwrap_err();
            assert!(matches!(err, IoError::ConnReset(_)), "got {err}");
            assert!(err.to_string().contains("close"), "err = {err}");
            assert_eq!(server.faults().fired_count(), 1, "close saw the reset");
        });
    }

    #[test]
    fn close_drains_async_appends_before_reporting_durable() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let scp = Scp::new(&server, ScpConfig::default());
            let mut sink = scp.sink(NodeId::device(0), "/snap/drain").unwrap();
            sink.write(Payload::synthetic(5, 64 << 20)).unwrap();
            let before = now();
            sink.close().unwrap();
            // The host-side flush of 64 MiB at 450 MB/s mostly overlaps
            // the slow cipher, but close must still wait out the tail
            // rather than return instantly.
            assert!(now() > before, "close waited for the host-side flush");
        });
    }

    #[test]
    fn write_after_close_is_typed_error() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let scp = Scp::new(&server, ScpConfig::default());
            let mut sink = scp.sink(NodeId::device(0), "/snap/wc").unwrap();
            sink.write(Payload::synthetic(5, 1 << 20)).unwrap();
            sink.close().unwrap();
            let err = sink.write(Payload::synthetic(5, 1 << 20)).unwrap_err();
            assert_eq!(err, IoError::Closed);
        });
    }

    #[test]
    fn ignored_fault_kinds_are_counted() {
        use phi_platform::{FaultSchedule, PlatformParams};
        use simkernel::time::SimTime;
        Kernel::run_root(|| {
            // A DiskFull aimed at the scp target has no scp failure mode;
            // it must be consumed (not left to fire forever) and counted.
            let schedule =
                FaultSchedule::none().with(SimTime::ZERO, FaultTarget::Scp, FaultKind::DiskFull);
            let server = PhiServer::new_with_faults(PlatformParams::default(), schedule);
            let scp = Scp::new(&server, ScpConfig::default());
            let mut sink = scp.sink(NodeId::device(0), "/snap/ig").unwrap();
            sink.write(Payload::synthetic(5, 1 << 20)).unwrap();
            sink.close().unwrap();
            assert_eq!(server.faults().fired_count(), 1, "fault was consumed");
        });
    }

    #[test]
    fn roundtrip_content() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let scp = Scp::new(&server, ScpConfig::default());
            let data = Payload::bytes(vec![9u8; 1000]);
            let mut sink = scp.sink(NodeId::device(1), "/snap/rt").unwrap();
            sink.write(data.clone()).unwrap();
            sink.close().unwrap();
            let mut src = scp.source(NodeId::device(1), "/snap/rt").unwrap();
            let mut out = Payload::empty();
            while let Some(c) = src.read(512).unwrap() {
                out.append(c);
            }
            assert_eq!(out.to_bytes(), data.to_bytes());
        });
    }
}
