//! scp baseline: streaming copy over ssh (Table 3's slowest method).
//!
//! The bottleneck is the cipher running on a single in-order Xeon Phi
//! core: the stream is encrypted/decrypted at ~34 MB/s regardless of the
//! PCIe link's capability, which is why Snapify-IO beats scp by 20–30×.

use std::sync::Arc;

use phi_platform::{NodeId, Payload, PhiServer};
use simkernel::obs;
use simkernel::{BandwidthResource, SimDuration, SimMutex};
use simproc::{ByteSink, ByteSource, IoError};

use crate::config::ScpConfig;
use crate::storage::SnapshotStorage;

struct ScpInner {
    server: PhiServer,
    config: ScpConfig,
    /// One cipher engine per node (a single busy core).
    ciphers: SimMutex<Vec<Option<BandwidthResource>>>,
}

/// The scp transport.
#[derive(Clone)]
pub struct Scp {
    inner: Arc<ScpInner>,
}

impl Scp {
    /// Create the scp model for `server`.
    pub fn new(server: &PhiServer, config: ScpConfig) -> Scp {
        let slots = server.num_devices() + 1;
        Scp {
            inner: Arc::new(ScpInner {
                server: server.clone(),
                config,
                ciphers: SimMutex::new("scp ciphers", (0..slots).map(|_| None).collect()),
            }),
        }
    }

    fn cipher(&self, node: NodeId) -> BandwidthResource {
        let mut ciphers = self.inner.ciphers.lock();
        let slot = node.0 as usize;
        if ciphers[slot].is_none() {
            ciphers[slot] = Some(BandwidthResource::new(
                format!("scp-cipher-{node}"),
                self.inner.config.cipher_bw,
                SimDuration::ZERO,
            ));
        }
        ciphers[slot].clone().unwrap()
    }

    fn stream_cost(&self, local: NodeId, bytes: u64) {
        // Encrypt on the slow side, ship over the virtio network path.
        self.cipher(local).transfer(bytes);
        if !local.is_host() {
            self.inner
                .server
                .link_between(local, NodeId::HOST)
                .message_transfer(bytes);
        }
    }
}

/// scp push (local → host file).
pub struct ScpSink {
    scp: Scp,
    local: NodeId,
    path: String,
    closed: bool,
}

impl ByteSink for ScpSink {
    fn write(&mut self, data: Payload) -> Result<(), IoError> {
        assert!(!self.closed);
        obs::counter_add("io.scp.bytes_written", data.len());
        for chunk in data.chunks(self.scp.inner.config.chunk) {
            self.scp.stream_cost(self.local, chunk.len());
            self.scp
                .inner
                .server
                .host()
                .fs()
                .append_async(&self.path, chunk)?;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<(), IoError> {
        self.closed = true;
        Ok(())
    }
}

/// scp pull (host file → local).
pub struct ScpSource {
    scp: Scp,
    local: NodeId,
    path: String,
    offset: u64,
}

impl ByteSource for ScpSource {
    fn read(&mut self, max: u64) -> Result<Option<Payload>, IoError> {
        let fs = self.scp.inner.server.host().fs();
        let size = fs.len(&self.path)?;
        if self.offset >= size {
            return Ok(None);
        }
        let take = max.min(size - self.offset).min(self.scp.inner.config.chunk);
        let chunk = fs.read(&self.path, self.offset, take)?;
        self.offset += take;
        self.scp.stream_cost(self.local, take);
        obs::counter_add("io.scp.bytes_read", take);
        Ok(Some(chunk))
    }
}

impl SnapshotStorage for Scp {
    fn sink(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSink>, IoError> {
        simkernel::sleep(self.inner.config.setup);
        self.inner.server.host().fs().create_or_truncate(path);
        Ok(Box::new(ScpSink {
            scp: self.clone(),
            local,
            path: path.to_string(),
            closed: false,
        }))
    }

    fn source(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSource>, IoError> {
        if !self.inner.server.host().fs().exists(path) {
            return Err(IoError::Fs(phi_platform::FsError::NotFound(
                path.to_string(),
            )));
        }
        simkernel::sleep(self.inner.config.setup);
        Ok(Box::new(ScpSource {
            scp: self.clone(),
            local,
            path: path.to_string(),
            offset: 0,
        }))
    }

    fn label(&self) -> &'static str {
        "scp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::GB;
    use simkernel::{now, Kernel};

    #[test]
    fn scp_is_cipher_bound() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let scp = Scp::new(&server, ScpConfig::default());
            let mut sink = scp.sink(NodeId::device(0), "/snap/f").unwrap();
            let t0 = now();
            for chunk in Payload::synthetic(1, GB).chunks(8 << 20) {
                sink.write(chunk).unwrap();
            }
            sink.close().unwrap();
            let t = (now() - t0).as_secs_f64();
            // ≈ 1 GiB / 34 MB/s ≈ 31 s.
            assert!(t > 25.0 && t < 40.0, "t = {t}");
        });
    }

    #[test]
    fn scp_read_roughly_matches_write() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let scp = Scp::new(&server, ScpConfig::default());
            server
                .host()
                .fs()
                .append("/snap/r", Payload::synthetic(1, 256 << 20))
                .unwrap();
            let mut src = scp.source(NodeId::device(0), "/snap/r").unwrap();
            let t0 = now();
            while src.read(8 << 20).unwrap().is_some() {}
            let read = (now() - t0).as_secs_f64();
            assert!(read > 6.0 && read < 12.0, "read = {read}");
        });
    }

    #[test]
    fn roundtrip_content() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let scp = Scp::new(&server, ScpConfig::default());
            let data = Payload::bytes(vec![9u8; 1000]);
            let mut sink = scp.sink(NodeId::device(1), "/snap/rt").unwrap();
            sink.write(data.clone()).unwrap();
            sink.close().unwrap();
            let mut src = scp.source(NodeId::device(1), "/snap/rt").unwrap();
            let mut out = Payload::empty();
            while let Some(c) = src.read(512).unwrap() {
                out.append(c);
            }
            assert_eq!(out.to_bytes(), data.to_bytes());
        });
    }
}
