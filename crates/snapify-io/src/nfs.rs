//! NFS-based snapshot storage: the paper's baseline and its two buffered
//! optimizations (§6 "NFS").
//!
//! Three write paths are modeled:
//!
//! * [`NfsMode::Plain`] — the stock NFS mount: every logical `write(2)`
//!   pays client-side cost, data moves in serial `wsize` RPCs, and
//!   sub-page writes degenerate to synchronous read-modify-write RPC
//!   pairs. This is what makes BLCR (a page-at-a-time, small-preamble
//!   writer) slow in Table 4;
//! * [`NfsMode::BufferedKernel`] — the paper's modified BLCR kernel module
//!   that coalesces writes into large chunks before they reach NFS; the
//!   coalesced stream keeps multiple RPCs in flight, so it runs at wire
//!   bandwidth plus one RPC latency per chunk;
//! * [`NfsMode::BufferedUser`] — the user-space utility that buffers
//!   BLCR's output through a pipe: same coalescing, plus one extra copy
//!   and a small per-write pipe cost.
//!
//! Reads are identical in all modes (buffering "does not apply to the
//! cases of restarting or restoring", §7): serial `rsize` RPCs against the
//! host file system.

use std::sync::Arc;

use phi_platform::{FaultKind, FaultTarget, NodeId, Payload, PhiServer};
use simkernel::obs;
use simkernel::{BandwidthResource, SimMutex};
use simproc::{ByteSink, ByteSource, IoError};

use crate::config::NfsConfig;
use crate::storage::SnapshotStorage;

/// Which NFS write path to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NfsMode {
    /// Stock NFS mount.
    Plain,
    /// Kernel-level write coalescing (modified BLCR module).
    BufferedKernel,
    /// User-level write coalescing (stdout redirection utility).
    BufferedUser,
}

impl NfsMode {
    /// Benchmark label.
    pub fn label(self) -> &'static str {
        match self {
            NfsMode::Plain => "NFS",
            NfsMode::BufferedKernel => "NFS-buffered (kernel)",
            NfsMode::BufferedUser => "NFS-buffered (user)",
        }
    }
}

struct NfsInner {
    server: PhiServer,
    config: NfsConfig,
    mode: NfsMode,
    /// One RPC pipe per SCIF node (the per-mount transport).
    mounts: SimMutex<Vec<Option<BandwidthResource>>>,
}

/// An NFS mount of the host file system on every coprocessor.
#[derive(Clone)]
pub struct Nfs {
    inner: Arc<NfsInner>,
}

impl Nfs {
    /// Create the mount model.
    pub fn new(server: &PhiServer, config: NfsConfig, mode: NfsMode) -> Nfs {
        let slots = server.num_devices() + 1;
        Nfs {
            inner: Arc::new(NfsInner {
                server: server.clone(),
                config,
                mode,
                mounts: SimMutex::new("nfs mounts", (0..slots).map(|_| None).collect()),
            }),
        }
    }

    /// The write-path mode.
    pub fn mode(&self) -> NfsMode {
        self.inner.mode
    }

    /// Consume any due chaos-plane NFS faults before `op`, modeling
    /// soft-mount retransmit semantics: each due
    /// [`FaultKind::NfsTimeout`] stalls the caller for the timeout
    /// window, then either retransmits (with exponential backoff, while
    /// the [`crate::config::RetryPolicy`] budget lasts) or surfaces
    /// [`IoError::Timeout`] to the caller.
    fn absorb_faults(&self, op: &str) -> Result<(), IoError> {
        let retry = self.inner.config.retry;
        // Label with the verb only ("write", not "write /path"): paths
        // would explode label cardinality.
        let verb = op.split_whitespace().next().unwrap_or(op);
        let mut attempt = 0u32;
        while let Some(fault) = self.inner.server.faults().take(FaultTarget::Nfs) {
            let stall = match fault {
                FaultKind::NfsTimeout(d) => d,
                // Other kinds aimed at the NFS target have no NFS
                // failure mode to model; consume them, but count the
                // drop so a misconfigured schedule is visible.
                other => {
                    obs::counter_add("chaos.nfs.ignored", 1);
                    obs::counter_add(&format!("chaos.nfs.ignored.{}", other.label()), 1);
                    continue;
                }
            };
            simkernel::sleep(stall);
            obs::counter_add("chaos.nfs.timeouts", 1);
            obs::counter_add_labeled("io.timeouts", &[("op", verb), ("transport", "nfs")], 1);
            if attempt >= retry.max_retries {
                obs::counter_add("chaos.surfaced", 1);
                obs::counter_add_labeled(
                    "io.errors_surfaced",
                    &[("op", verb), ("transport", "nfs")],
                    1,
                );
                return Err(IoError::Timeout(format!(
                    "nfs {op}: no server response after {} attempt(s)",
                    attempt + 1
                )));
            }
            obs::counter_add("chaos.retried", 1);
            obs::counter_add_labeled("io.retries", &[("op", verb), ("transport", "nfs")], 1);
            simkernel::sleep(retry.backoff_for(attempt));
            attempt += 1;
        }
        Ok(())
    }

    fn mount(&self, node: NodeId) -> BandwidthResource {
        let mut mounts = self.inner.mounts.lock();
        let slot = node.0 as usize;
        if mounts[slot].is_none() {
            mounts[slot] = Some(BandwidthResource::new(
                format!("nfs-mount-{node}"),
                self.inner.config.wire_bw,
                self.inner.config.rpc_latency,
            ));
        }
        mounts[slot].clone().unwrap()
    }
}

/// Sink writing `path` on the host through an NFS mount on `local`.
pub struct NfsSink {
    nfs: Nfs,
    local: NodeId,
    path: String,
    granularity: Option<u64>,
    closed: bool,
}

impl ByteSink for NfsSink {
    fn write(&mut self, data: Payload) -> Result<(), IoError> {
        // Typed error, not a panic: chaos repros replay error-path
        // double-writes, and the simulated world must survive them.
        if self.closed {
            return Err(IoError::Closed);
        }
        let cfg = &self.nfs.inner.config;
        let len = data.len();
        if len == 0 {
            return Ok(());
        }
        // Chaos plane: absorb (or surface) any due RPC timeout before
        // side effects, so a surfaced error leaves no partial append.
        self.nfs.absorb_faults(&format!("write {}", self.path))?;
        let t0 = simkernel::now();
        let server = &self.nfs.inner.server;
        let logical = self.granularity.unwrap_or(len).min(len).max(1);
        match self.nfs.inner.mode {
            NfsMode::Plain => {
                // Client-side per-write cost.
                let writes = len.div_ceil(logical);
                simkernel::sleep(cfg.write_syscall_cost * writes);
                // Sub-page writes: synchronous read-modify-write RPC pairs.
                // Page-or-larger sequential writes coalesce up to wsize.
                let ops = if logical < 4096 {
                    writes * 2
                } else {
                    len.div_ceil(cfg.wsize)
                };
                if !self.local.is_host() {
                    obs::counter_add("nfs.write_rpcs", ops);
                    self.nfs.mount(self.local).transfer_as_ops(len, ops);
                }
            }
            NfsMode::BufferedKernel | NfsMode::BufferedUser => {
                if self.nfs.inner.mode == NfsMode::BufferedUser {
                    // Extra copy through the buffering process's pipe.
                    let writes = len.div_ceil(logical);
                    simkernel::sleep(cfg.user_pipe_cost * writes);
                    server.node(self.local).memcpy(len);
                }
                // Coalesced, pipelined stream: wire-bound, one RPC latency
                // per buffered chunk.
                if !self.local.is_host() {
                    let chunk = match self.nfs.inner.mode {
                        NfsMode::BufferedKernel => cfg.kernel_buffer_chunk,
                        _ => cfg.user_buffer_chunk,
                    };
                    let ops = len.div_ceil(chunk.max(1)).max(1);
                    // Pipelined: latency amortized to one per chunk *batch*;
                    // approximate by charging the wire plus a single
                    // latency per call, independent of ops.
                    obs::counter_add("nfs.write_rpcs", ops);
                    self.nfs.mount(self.local).transfer(len);
                }
            }
        }
        // Server-side write-back (asynchronous, like any NFS server).
        server.host().fs().append_async(&self.path, data)?;
        obs::counter_add(&format!("io.{}.bytes_written", self.nfs.label()), len);
        if obs::is_enabled() {
            obs::sketch_observe_labeled(
                "io.write_ns",
                &[("op", "write"), ("transport", "nfs")],
                (simkernel::now() - t0).as_nanos(),
            );
        }
        Ok(())
    }

    fn close(&mut self) -> Result<(), IoError> {
        // Close-to-open consistency: an NFS close commits outstanding
        // writes to the server before returning. A timeout due at close
        // time still stalls (or surfaces), and the server's asynchronous
        // write-back is drained so the file really is durable when the
        // caller sees Ok.
        self.nfs.absorb_faults(&format!("close {}", self.path))?;
        self.nfs.inner.server.host().fs().sync();
        self.closed = true;
        Ok(())
    }

    fn set_write_granularity(&mut self, granularity: Option<u64>) {
        self.granularity = granularity;
    }
}

/// Source reading `path` on the host through an NFS mount on `local`.
pub struct NfsSource {
    nfs: Nfs,
    local: NodeId,
    path: String,
    offset: u64,
}

impl ByteSource for NfsSource {
    fn read(&mut self, max: u64) -> Result<Option<Payload>, IoError> {
        // Chaos plane: a due RPC timeout stalls (and may fail) the read
        // before any data moves — the offset only advances on success.
        self.nfs.absorb_faults(&format!("read {}", self.path))?;
        let cfg = &self.nfs.inner.config;
        let fs = self.nfs.inner.server.host().fs();
        let size = fs.len(&self.path)?;
        if self.offset >= size {
            return Ok(None);
        }
        let take = max.min(size - self.offset);
        let chunk = fs.read(&self.path, self.offset, take)?;
        self.offset += take;
        if !self.local.is_host() {
            simkernel::sleep(cfg.read_call_cost);
            let ops = take.div_ceil(cfg.rsize).max(1);
            obs::counter_add("nfs.read_rpcs", ops);
            self.nfs.mount(self.local).transfer_as_ops(take, ops);
        }
        obs::counter_add(&format!("io.{}.bytes_read", self.nfs.label()), take);
        Ok(Some(chunk))
    }
}

impl SnapshotStorage for Nfs {
    fn sink(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSink>, IoError> {
        self.inner.server.host().fs().create_or_truncate(path);
        Ok(Box::new(NfsSink {
            nfs: self.clone(),
            local,
            path: path.to_string(),
            granularity: None,
            closed: false,
        }))
    }

    fn source(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSource>, IoError> {
        if !self.inner.server.host().fs().exists(path) {
            return Err(IoError::Fs(phi_platform::FsError::NotFound(
                path.to_string(),
            )));
        }
        Ok(Box::new(NfsSource {
            nfs: self.clone(),
            local,
            path: path.to_string(),
            offset: 0,
        }))
    }

    fn label(&self) -> &'static str {
        self.inner.mode.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::{GB, MB};
    use simkernel::{now, Kernel};

    fn write_with(nfs: &Nfs, data: &Payload, granularity: Option<u64>) -> f64 {
        let mut sink = nfs.sink(NodeId::device(0), "/snap/f").unwrap();
        sink.set_write_granularity(granularity);
        let t0 = now();
        for chunk in data.chunks(8 << 20) {
            sink.write(chunk).unwrap();
        }
        sink.close().unwrap();
        (now() - t0).as_secs_f64()
    }

    #[test]
    fn plain_write_is_rpc_bound() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let nfs = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            let t = write_with(&nfs, &Payload::synthetic(1, GB), None);
            // ~170 MB/s → roughly 5.5–7.5 s per GiB.
            assert!(t > 4.5 && t < 8.5, "t = {t}");
        });
    }

    #[test]
    fn page_granular_writes_hurt_plain_nfs() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let nfs = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            let big = write_with(&nfs, &Payload::synthetic(1, 256 * MB), None);
            let paged = write_with(&nfs, &Payload::synthetic(2, 256 * MB), Some(4096));
            assert!(paged > big * 1.2, "paged={paged} big={big}");
        });
    }

    #[test]
    fn kernel_buffering_beats_plain_for_paged_writes() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let plain = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            let kbuf = Nfs::new(&server, NfsConfig::default(), NfsMode::BufferedKernel);
            let ubuf = Nfs::new(&server, NfsConfig::default(), NfsMode::BufferedUser);
            let data = Payload::synthetic(1, 256 * MB);
            let t_plain = write_with(&plain, &data, Some(4096));
            let t_kbuf = write_with(&kbuf, &data, Some(4096));
            let t_ubuf = write_with(&ubuf, &data, Some(4096));
            // Paper: kernel buffering boosts NFS "to a large degree",
            // user-space buffering "to a lesser degree".
            assert!(t_kbuf < t_plain / 2.0, "kbuf={t_kbuf} plain={t_plain}");
            assert!(t_ubuf < t_plain, "ubuf={t_ubuf} plain={t_plain}");
            assert!(t_kbuf < t_ubuf, "kbuf={t_kbuf} ubuf={t_ubuf}");
        });
    }

    #[test]
    fn sub_page_writes_degenerate_to_sync_rpcs() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let nfs = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            let mut sink = nfs.sink(NodeId::device(0), "/snap/meta").unwrap();
            let t0 = now();
            for _ in 0..96 {
                sink.write(Payload::synthetic(0, 256)).unwrap();
            }
            sink.close().unwrap();
            let t = (now() - t0).as_secs_f64();
            // 96 × 2 sync RPCs at 270 us ≈ 52 ms.
            assert!(t > 0.04 && t < 0.09, "t = {t}");
        });
    }

    #[test]
    fn read_is_identical_across_modes() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let plain = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            let kbuf = Nfs::new(&server, NfsConfig::default(), NfsMode::BufferedKernel);
            server
                .host()
                .fs()
                .append("/snap/r", Payload::synthetic(1, 64 * MB))
                .unwrap();
            let read_time = |nfs: &Nfs| {
                let mut src = nfs.source(NodeId::device(0), "/snap/r").unwrap();
                let t0 = now();
                while src.read(8 << 20).unwrap().is_some() {}
                (now() - t0).as_secs_f64()
            };
            let t1 = read_time(&plain);
            let t2 = read_time(&kbuf);
            assert!((t1 - t2).abs() / t1 < 0.05, "t1={t1} t2={t2}");
        });
    }

    #[test]
    fn roundtrip_preserves_content() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let nfs = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            let data = Payload::bytes((0..200u8).collect::<Vec<_>>());
            let mut sink = nfs.sink(NodeId::device(0), "/snap/rt").unwrap();
            sink.write(data.clone()).unwrap();
            sink.close().unwrap();
            let mut src = nfs.source(NodeId::device(0), "/snap/rt").unwrap();
            let mut out = Payload::empty();
            while let Some(c) = src.read(64).unwrap() {
                out.append(c);
            }
            assert_eq!(out.to_bytes(), data.to_bytes());
        });
    }

    #[test]
    fn missing_file_read_fails() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let nfs = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            assert!(nfs.source(NodeId::device(0), "/nope").is_err());
        });
    }

    #[test]
    fn nfs_timeout_is_retried_transparently() {
        use phi_platform::{FaultSchedule, PlatformParams};
        use simkernel::time::{ms, SimTime};
        Kernel::run_root(|| {
            let schedule = FaultSchedule::none().with(
                SimTime::ZERO,
                FaultTarget::Nfs,
                FaultKind::NfsTimeout(ms(50)),
            );
            let server = PhiServer::new_with_faults(PlatformParams::default(), schedule);
            let nfs = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            let data = Payload::synthetic(7, MB);
            let t0 = now();
            let mut sink = nfs.sink(NodeId::device(0), "/snap/retry").unwrap();
            sink.write(data.clone()).unwrap();
            sink.close().unwrap();
            // The one-shot timeout stalled us at least the timeout window.
            assert!((now() - t0).as_secs_f64() >= 0.05);
            assert_eq!(server.faults().fired_count(), 1);
            // No silent corruption: the round trip is intact.
            let mut src = nfs.source(NodeId::device(0), "/snap/retry").unwrap();
            let mut out = Payload::empty();
            while let Some(c) = src.read(1 << 20).unwrap() {
                out.append(c);
            }
            assert_eq!(out.digest(), data.digest());
        });
    }

    #[test]
    fn nfs_timeout_surfaces_typed_error_when_budget_exhausted() {
        use crate::config::RetryPolicy;
        use phi_platform::{FaultSchedule, PlatformParams};
        use simkernel::time::{ms, SimTime};
        Kernel::run_root(|| {
            let schedule = FaultSchedule::none().with(
                SimTime::ZERO,
                FaultTarget::Nfs,
                FaultKind::NfsTimeout(ms(50)),
            );
            let server = PhiServer::new_with_faults(PlatformParams::default(), schedule);
            let config = NfsConfig {
                retry: RetryPolicy::disabled(),
                ..NfsConfig::default()
            };
            let nfs = Nfs::new(&server, config, NfsMode::Plain);
            let mut sink = nfs.sink(NodeId::device(0), "/snap/hard").unwrap();
            let err = sink.write(Payload::synthetic(7, MB)).unwrap_err();
            assert!(matches!(err, IoError::Timeout(_)), "got {err}");
            assert!(err.is_transient());
            // Failed before side effects: nothing was appended.
            let fs = server.host().fs();
            assert_eq!(fs.len("/snap/hard").unwrap(), 0);
        });
    }

    #[test]
    fn write_after_close_is_typed_error() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let nfs = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            let mut sink = nfs.sink(NodeId::device(0), "/snap/wc").unwrap();
            sink.write(Payload::synthetic(1, MB)).unwrap();
            sink.close().unwrap();
            let err = sink.write(Payload::synthetic(1, MB)).unwrap_err();
            assert_eq!(err, IoError::Closed);
        });
    }

    #[test]
    fn non_timeout_faults_are_consumed_and_counted() {
        use phi_platform::{FaultSchedule, PlatformParams};
        use simkernel::time::SimTime;
        Kernel::run_root(|| {
            // An Oom aimed at the NFS target has no NFS failure mode to
            // model. It must be consumed (not left due forever) and the
            // drop recorded under chaos.nfs.ignored, not swallowed.
            let schedule =
                FaultSchedule::none().with(SimTime::ZERO, FaultTarget::Nfs, FaultKind::Oom);
            let server = PhiServer::new_with_faults(PlatformParams::default(), schedule);
            let nfs = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            let data = Payload::synthetic(7, MB);
            let mut sink = nfs.sink(NodeId::device(0), "/snap/ig").unwrap();
            sink.write(data.clone()).unwrap();
            sink.close().unwrap();
            assert_eq!(server.faults().fired_count(), 1, "fault was consumed");
            // The write itself was unaffected.
            assert_eq!(server.host().fs().len("/snap/ig").unwrap(), data.len());
        });
    }

    #[test]
    fn timeout_between_last_write_and_close_surfaces() {
        use crate::config::RetryPolicy;
        use phi_platform::{FaultSchedule, PlatformParams};
        use simkernel::time::{ms, SimTime};
        Kernel::run_root(|| {
            // Same durability window as the scp sink: the old no-op close
            // ignored faults due after the last write, reporting the file
            // durable with the server unreachable.
            let schedule = FaultSchedule::none().with(
                SimTime(ms(500).as_nanos()),
                FaultTarget::Nfs,
                FaultKind::NfsTimeout(ms(50)),
            );
            let server = PhiServer::new_with_faults(PlatformParams::default(), schedule);
            let config = NfsConfig {
                retry: RetryPolicy::disabled(),
                ..NfsConfig::default()
            };
            let nfs = Nfs::new(&server, config, NfsMode::Plain);
            let mut sink = nfs.sink(NodeId::device(0), "/snap/latec").unwrap();
            sink.write(Payload::synthetic(7, MB)).unwrap();
            simkernel::sleep(ms(600));
            let err = sink.close().unwrap_err();
            assert!(matches!(err, IoError::Timeout(_)), "got {err}");
            assert_eq!(server.faults().fired_count(), 1, "close saw the timeout");
        });
    }

    #[test]
    fn nfs_read_timeout_does_not_advance_offset() {
        use phi_platform::{FaultSchedule, PlatformParams};
        use simkernel::time::{us, SimTime};
        Kernel::run_root(|| {
            // Four back-to-back timeouts exhaust the default 3-retry
            // budget on the first read; the next read call then succeeds
            // from the same offset.
            let mut schedule = FaultSchedule::none();
            for _ in 0..4 {
                schedule = schedule.with(
                    SimTime::ZERO,
                    FaultTarget::Nfs,
                    FaultKind::NfsTimeout(us(100)),
                );
            }
            let server = PhiServer::new_with_faults(PlatformParams::default(), schedule);
            let data = Payload::synthetic(3, MB);
            server.host().fs().append("/snap/ro", data.clone()).unwrap();
            let nfs = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            let mut src = nfs.source(NodeId::device(0), "/snap/ro").unwrap();
            let err = src.read(1 << 20).unwrap_err();
            assert!(matches!(err, IoError::Timeout(_)), "got {err}");
            let mut out = Payload::empty();
            while let Some(c) = src.read(1 << 20).unwrap() {
                out.append(c);
            }
            assert_eq!(out.digest(), data.digest(), "retry resumed cleanly");
        });
    }
}
