//! # snapify-io — the RDMA remote file access service and its baselines
//!
//! Section 6 of the paper: Snapify stores every snapshot on the host file
//! system, and this crate provides all the ways of getting bytes there
//! (and back) that the evaluation compares:
//!
//! | method | write path | bottleneck |
//! |---|---|---|
//! | [`SnapifyIo`] | socket copy → 4 MB RDMA staging buffer → DMA → async host append | device memcpy + PCIe DMA |
//! | [`Nfs`] ([`NfsMode::Plain`]) | serial `wsize` RPCs, per-write client cost | RPC latency |
//! | [`Nfs`] ([`NfsMode::BufferedKernel`]) | kernel-coalesced, pipelined stream | wire bandwidth |
//! | [`Nfs`] ([`NfsMode::BufferedUser`]) | user-coalesced (+1 copy, pipe costs) | wire bandwidth + copy |
//! | [`Scp`] | ssh stream | single-core cipher (~34 MB/s) |
//! | [`LocalStorage`] | node's own (RAM) fs | device memory capacity |
//!
//! All of them implement [`SnapshotStorage`], the seam COI's Snapify
//! machinery writes local stores and BLCR images through — so Table 3
//! (raw file copies), Table 4 (BLCR checkpoints of native apps), and the
//! full Snapify experiments all exercise the same code.

#![warn(missing_docs)]

pub mod config;
pub mod local;
pub mod nfs;
pub mod scp;
pub mod service;
pub mod storage;

use phi_platform::NodeId;
use simproc::{ByteSink, ByteSource, IoError};

pub use config::{NfsConfig, RetryPolicy, ScpConfig, SnapifyIoConfig};
pub use local::LocalStorage;
pub use nfs::{Nfs, NfsMode, NfsSink, NfsSource};
pub use scp::Scp;
pub use service::{SnapifyIo, SnapifyIoSink, SnapifyIoSource};
pub use storage::SnapshotStorage;

impl SnapshotStorage for SnapifyIo {
    fn sink(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSink>, IoError> {
        Ok(Box::new(self.open_write(local, NodeId::HOST, path)?))
    }

    fn source(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSource>, IoError> {
        Ok(Box::new(self.open_read(local, NodeId::HOST, path)?))
    }

    fn label(&self) -> &'static str {
        "Snapify-IO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::{Payload, PhiServer, GB, MB};
    use simkernel::{now, Kernel};
    use std::sync::Arc;

    fn all_methods(server: &PhiServer) -> Vec<Arc<dyn SnapshotStorage>> {
        vec![
            Arc::new(SnapifyIo::new_default(server)),
            Arc::new(Nfs::new(server, NfsConfig::default(), NfsMode::Plain)),
            Arc::new(Nfs::new(
                server,
                NfsConfig::default(),
                NfsMode::BufferedKernel,
            )),
            Arc::new(Nfs::new(
                server,
                NfsConfig::default(),
                NfsMode::BufferedUser,
            )),
            Arc::new(Scp::new(server, ScpConfig::default())),
            Arc::new(LocalStorage::new(server)),
        ]
    }

    #[test]
    fn every_method_roundtrips_content() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            for (i, method) in all_methods(&server).into_iter().enumerate() {
                let data = Payload::synthetic(i as u64 + 1, 8 * MB);
                let path = format!("/snap/rt_{i}");
                let mut sink = method.sink(NodeId::device(0), &path).unwrap();
                for chunk in data.chunks(1 << 20) {
                    sink.write(chunk).unwrap();
                }
                sink.close().unwrap();
                let mut src = method.source(NodeId::device(0), &path).unwrap();
                let mut out = Payload::empty();
                while let Some(c) = src.read(1 << 20).unwrap() {
                    out.append(c);
                }
                assert_eq!(out.digest(), data.digest(), "method {}", method.label());
            }
        });
    }

    #[test]
    fn table3_shape_write_ordering_at_1gb() {
        // Snapify-IO < NFS < scp for 1 GiB writes (Table 3).
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let time_write = |method: &dyn SnapshotStorage, tag: u64| {
                let t0 = now();
                let mut sink = method.sink(NodeId::device(0), "/snap/t3").unwrap();
                for chunk in Payload::synthetic(tag, GB).chunks(8 << 20) {
                    sink.write(chunk).unwrap();
                }
                sink.close().unwrap();
                (now() - t0).as_secs_f64()
            };
            let sio = SnapifyIo::new_default(&server);
            let nfs = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            let scp = Scp::new(&server, ScpConfig::default());
            let t_sio = time_write(&sio, 1);
            let t_nfs = time_write(&nfs, 2);
            let t_scp = time_write(&scp, 3);
            // Paper: ≈6× vs NFS, ≈30× vs scp at 1 GB.
            let vs_nfs = t_nfs / t_sio;
            let vs_scp = t_scp / t_sio;
            assert!(vs_nfs > 3.0 && vs_nfs < 12.0, "vs_nfs = {vs_nfs:.1}");
            assert!(vs_scp > 15.0 && vs_scp < 50.0, "vs_scp = {vs_scp:.1}");
        });
    }

    #[test]
    fn table3_shape_nfs_wins_at_1mb() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let time_write = |method: &dyn SnapshotStorage, tag: u64| {
                let t0 = now();
                let mut sink = method.sink(NodeId::device(0), "/snap/t3s").unwrap();
                sink.write(Payload::synthetic(tag, MB)).unwrap();
                sink.close().unwrap();
                (now() - t0).as_secs_f64()
            };
            let sio = SnapifyIo::new_default(&server);
            let nfs = Nfs::new(&server, NfsConfig::default(), NfsMode::Plain);
            let t_sio = time_write(&sio, 1);
            let t_nfs = time_write(&nfs, 2);
            assert!(
                t_nfs < t_sio,
                "NFS should win at 1MB: nfs={t_nfs} sio={t_sio}"
            );
        });
    }

    #[test]
    fn labels_are_distinct() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let labels: Vec<&str> = all_methods(&server).iter().map(|m| m.label()).collect();
            let mut dedup = labels.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), labels.len());
        });
    }
}
