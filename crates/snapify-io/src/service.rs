//! The Snapify-IO remote file access service (§6).
//!
//! Snapify-IO gives a process on any SCIF node a plain file descriptor
//! that reads or writes a file on another node, moving the bytes with
//! SCIF RDMA through a reusable registered staging buffer:
//!
//! * **write** (device → host): the user's bytes are copied through the
//!   UNIX socket into the staging buffer (one device-side memcpy); when
//!   the buffer fills, the local daemon notifies the remote daemon
//!   (`scif_send`), which pulls the data with `scif_vreadfrom` (PCIe DMA)
//!   and appends it to the target file **asynchronously** — the host-side
//!   file write overlaps the next chunk's staging, which is why this
//!   direction is the fastest (§7);
//! * **read** (host → device): the remote daemon reads the file
//!   (synchronously — it cannot RDMA data it has not read), pushes it into
//!   the staging buffer with `scif_vwriteto`, and the local daemon copies
//!   it to the user's socket.
//!
//! The staging buffer is charged against *both* nodes' physical memory
//! for the lifetime of the descriptor, and the per-open cost (socket +
//! SCIF connect + buffer registration) is what lets NFS win at 1 MB in
//! Table 3.

use std::sync::Arc;

use phi_platform::{FaultKind, FaultTarget, MemAlloc, NodeId, Payload, PhiServer};
use simkernel::obs;
use simproc::{ByteSink, ByteSource, IoError};

use crate::config::SnapifyIoConfig;

/// The Snapify-IO service for one server (conceptually: one daemon per
/// SCIF node). Cheap to clone.
#[derive(Clone)]
pub struct SnapifyIo {
    inner: Arc<IoInner>,
}

struct IoInner {
    server: PhiServer,
    config: SnapifyIoConfig,
}

impl SnapifyIo {
    /// Start the service on `server` with the given configuration.
    pub fn new(server: &PhiServer, config: SnapifyIoConfig) -> SnapifyIo {
        SnapifyIo {
            inner: Arc::new(IoInner {
                server: server.clone(),
                config,
            }),
        }
    }

    /// Start with the default (paper) configuration.
    pub fn new_default(server: &PhiServer) -> SnapifyIo {
        SnapifyIo::new(server, SnapifyIoConfig::default())
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SnapifyIoConfig {
        &self.inner.config
    }

    /// `snapifyio_open` in write mode: returns a sink writing `path` on
    /// `target`'s file system, callable from `local`.
    pub fn open_write(
        &self,
        local: NodeId,
        target: NodeId,
        path: &str,
    ) -> Result<SnapifyIoSink, IoError> {
        let (local_buf, remote_buf) = self.open_common(local, target)?;
        let fs = self.inner.server.node(target).fs();
        fs.create_or_truncate(path);
        Ok(SnapifyIoSink {
            io: self.clone(),
            local,
            target,
            path: path.to_string(),
            _local_buf: local_buf,
            _remote_buf: remote_buf,
            closed: false,
        })
    }

    /// `snapifyio_open` in read mode: returns a source reading `path` on
    /// `target`'s file system, callable from `local`.
    pub fn open_read(
        &self,
        local: NodeId,
        target: NodeId,
        path: &str,
    ) -> Result<SnapifyIoSource, IoError> {
        let fs = self.inner.server.node(target).fs();
        if !fs.exists(path) {
            return Err(IoError::Fs(phi_platform::FsError::NotFound(
                path.to_string(),
            )));
        }
        let (local_buf, remote_buf) = self.open_common(local, target)?;
        Ok(SnapifyIoSource {
            io: self.clone(),
            local,
            target,
            path: path.to_string(),
            offset: 0,
            _local_buf: local_buf,
            _remote_buf: remote_buf,
        })
    }

    /// Socket + SCIF connection setup and staging-buffer registration on
    /// both daemons. The sequence mirrors `snapifyio_open`: UNIX socket
    /// to the local daemon, local staging buffer, SCIF connect to the
    /// remote daemon, remote staging buffer. Any failure after the local
    /// registration must release the charged memory on the way out —
    /// each allocation is held in a [`MemAlloc`] RAII guard, so every
    /// `?` below unwinds to baseline instead of leaking node memory.
    fn open_common(
        &self,
        local: NodeId,
        target: NodeId,
    ) -> Result<(Option<MemAlloc>, Option<MemAlloc>), IoError> {
        simkernel::sleep(self.inner.config.open_overhead);
        let alloc = |node: NodeId| -> Result<Option<MemAlloc>, IoError> {
            MemAlloc::new(
                self.inner.server.node(node).mem(),
                self.inner.config.buffer_size,
            )
            .map(Some)
            .map_err(|e| IoError::Other(e.to_string()))
        };
        let local_buf = alloc(local)?;
        if local != target {
            // The socket is up and the local buffer is registered; the
            // SCIF connect is the step the chaos plane can fault.
            self.scif_connect(local, target)?;
        }
        let remote_buf = alloc(target)?;
        Ok((local_buf, remote_buf))
    }

    /// The SCIF connect leg of an open, consulting the chaos plane on
    /// the PCIe link it crosses: a CRC error replays the handshake (the
    /// link-level contract — callers only see latency), a delay spike
    /// stalls it, and a connection reset surfaces as a typed error (the
    /// remote daemon never picked up).
    fn scif_connect(&self, local: NodeId, target: NodeId) -> Result<(), IoError> {
        let device_end = if local.is_host() { target } else { local };
        let idx = device_end
            .device_index()
            .expect("one end of a cross-node open is a device");
        match self.inner.server.faults().take(FaultTarget::Bus(idx)) {
            Some(FaultKind::ConnReset) => {
                obs::counter_add("chaos.snapify_io.connect_resets", 1);
                obs::counter_add("chaos.surfaced", 1);
                Err(IoError::ConnReset(format!(
                    "snapify-io open {local}->{target}: scif connect reset"
                )))
            }
            Some(FaultKind::BusError) => {
                obs::counter_add("chaos.bus.replays", 1);
                simkernel::sleep(self.inner.config.open_overhead);
                Ok(())
            }
            Some(FaultKind::BusDelay(d)) => {
                obs::counter_add("chaos.bus.delays", 1);
                simkernel::sleep(d);
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Bytes a `len`-byte staged chunk puts on the DMA once the in-line
    /// compressor has run (all of them when compression is off).
    fn shipped_len(&self, len: u64) -> u64 {
        let ratio = self.inner.config.compression_ratio;
        if ratio >= 1.0 {
            len
        } else {
            (len as f64 * ratio).ceil() as u64
        }
    }

    /// Compressor time for a `len`-byte chunk; zero when compression is
    /// off.
    fn compress_cost(&self, len: u64) {
        if self.inner.config.compression_ratio < 1.0 {
            simkernel::sleep(self.inner.config.compress_bw.time_for(len));
        }
    }

    /// One write-path chunk cycle: local staging copy, notification, DMA,
    /// asynchronous remote file append.
    fn write_chunk(
        &self,
        local: NodeId,
        target: NodeId,
        path: &str,
        chunk: Payload,
    ) -> Result<(), IoError> {
        let server = &self.inner.server;
        let t0 = simkernel::now();
        // Copy through the UNIX socket into the registered buffer.
        server
            .node(local)
            .memcpy((chunk.len() as f64 * self.inner.config.socket_copies) as u64);
        if local != target {
            // Compress in the staging buffer (device CPU), then the
            // chunk-ready notification + DMA pull by the remote daemon
            // move only the compressed bytes.
            self.compress_cost(chunk.len());
            server
                .link_between(local, target)
                .message_transfer(self.inner.config.notify_bytes);
            server.rdma_between(local, target, self.shipped_len(chunk.len()));
        }
        // The remote daemon appends asynchronously; the writer does not
        // wait for the file system (§7: the host flush runs in parallel).
        obs::counter_add("io.Snapify-IO.bytes_written", chunk.len());
        obs::counter_add("io.Snapify-IO.chunks_written", 1);
        server.node(target).fs().append_async(path, chunk)?;
        if obs::is_enabled() {
            obs::sketch_observe_labeled(
                "io.chunk_ns",
                &[("op", "write"), ("transport", "snapify-io")],
                (simkernel::now() - t0).as_nanos(),
            );
        }
        Ok(())
    }

    /// One read-path chunk cycle: synchronous remote file read, DMA push,
    /// local socket copy.
    fn read_chunk(
        &self,
        local: NodeId,
        target: NodeId,
        path: &str,
        offset: u64,
        len: u64,
    ) -> Result<Payload, IoError> {
        let server = &self.inner.server;
        let t0 = simkernel::now();
        let chunk = server.node(target).fs().read(path, offset, len)?;
        if local != target {
            // Mirror of the write path: the remote daemon compresses,
            // the DMA pushes the compressed bytes, the local daemon
            // decompresses into the socket.
            self.compress_cost(chunk.len());
            server
                .link_between(local, target)
                .message_transfer(self.inner.config.notify_bytes);
            server.rdma_between(target, local, self.shipped_len(chunk.len()));
        }
        server
            .node(local)
            .memcpy((chunk.len() as f64 * self.inner.config.socket_copies) as u64);
        obs::counter_add("io.Snapify-IO.bytes_read", chunk.len());
        obs::counter_add("io.Snapify-IO.chunks_read", 1);
        if obs::is_enabled() {
            obs::sketch_observe_labeled(
                "io.chunk_ns",
                &[("op", "read"), ("transport", "snapify-io")],
                (simkernel::now() - t0).as_nanos(),
            );
        }
        Ok(chunk)
    }
}

/// Writable Snapify-IO descriptor (the fd handed to BLCR for a capture).
pub struct SnapifyIoSink {
    io: SnapifyIo,
    local: NodeId,
    target: NodeId,
    path: String,
    _local_buf: Option<MemAlloc>,
    _remote_buf: Option<MemAlloc>,
    closed: bool,
}

impl ByteSink for SnapifyIoSink {
    fn write(&mut self, data: Payload) -> Result<(), IoError> {
        // Typed error, not a panic: chaos repros replay error-path
        // double-writes, and the simulated world must survive them.
        if self.closed {
            return Err(IoError::Closed);
        }
        for chunk in data.chunks(self.io.inner.config.buffer_size) {
            self.io
                .write_chunk(self.local, self.target, &self.path, chunk)?;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<(), IoError> {
        // Intentionally does NOT drain the remote append queue: §7's
        // measured asymmetry (writes beat reads) comes from the host
        // flush overlapping the next operation, and the capture protocol
        // has its own completion barrier. This differs from the scp/NFS
        // sinks, whose transports promise durability at close.
        self.closed = true;
        Ok(())
    }
    // Write granularity is irrelevant: the socket buffers the stream.
}

/// Readable Snapify-IO descriptor (the fd BLCR restores from).
pub struct SnapifyIoSource {
    io: SnapifyIo,
    local: NodeId,
    target: NodeId,
    path: String,
    offset: u64,
    _local_buf: Option<MemAlloc>,
    _remote_buf: Option<MemAlloc>,
}

impl ByteSource for SnapifyIoSource {
    fn read(&mut self, max: u64) -> Result<Option<Payload>, IoError> {
        let fs = self.io.inner.server.node(self.target).fs();
        let size = fs.len(&self.path)?;
        if self.offset >= size {
            return Ok(None);
        }
        let take = max
            .min(size - self.offset)
            .min(self.io.inner.config.buffer_size);
        let chunk = self
            .io
            .read_chunk(self.local, self.target, &self.path, self.offset, take)?;
        self.offset += take;
        Ok(Some(chunk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::{GB, MB};
    use simkernel::{now, Kernel};

    fn setup() -> (SnapifyIo, PhiServer) {
        let server = PhiServer::default_server();
        (SnapifyIo::new_default(&server), server)
    }

    fn write_all(io: &SnapifyIo, from: NodeId, to: NodeId, path: &str, data: &Payload) {
        let mut sink = io.open_write(from, to, path).unwrap();
        for chunk in data.chunks(8 << 20) {
            sink.write(chunk).unwrap();
        }
        sink.close().unwrap();
    }

    fn read_all(io: &SnapifyIo, from: NodeId, to: NodeId, path: &str) -> Payload {
        let mut src = io.open_read(from, to, path).unwrap();
        let mut out = Payload::empty();
        while let Some(c) = src.read(8 << 20).unwrap() {
            out.append(c);
        }
        out
    }

    #[test]
    fn roundtrip_preserves_content() {
        Kernel::run_root(|| {
            let (io, _) = setup();
            let dev = NodeId::device(0);
            let data = Payload::synthetic(7, 64 * MB);
            write_all(&io, dev, NodeId::HOST, "/snap/f", &data);
            let back = read_all(&io, dev, NodeId::HOST, "/snap/f");
            assert_eq!(back.digest(), data.digest());
        });
    }

    #[test]
    fn roundtrip_real_bytes() {
        Kernel::run_root(|| {
            let (io, _) = setup();
            let dev = NodeId::device(0);
            let data = Payload::bytes((0..=255u8).cycle().take(10_000).collect::<Vec<_>>());
            write_all(&io, dev, NodeId::HOST, "/snap/b", &data);
            let back = read_all(&io, dev, NodeId::HOST, "/snap/b");
            assert_eq!(back.to_bytes(), data.to_bytes());
        });
    }

    #[test]
    fn write_is_faster_than_read_at_1gb() {
        Kernel::run_root(|| {
            let (io, _) = setup();
            let dev = NodeId::device(0);
            let data = Payload::synthetic(1, GB);
            let t0 = now();
            write_all(&io, dev, NodeId::HOST, "/snap/w", &data);
            let write_time = now() - t0;
            let t1 = now();
            let _ = read_all(&io, dev, NodeId::HOST, "/snap/w");
            let read_time = now() - t1;
            // The asynchronous host-side flush makes writes faster (§7).
            assert!(
                write_time < read_time,
                "write {write_time} vs read {read_time}"
            );
            // Both land around 1 GB/s (0.7–1.6s for 1 GiB).
            assert!(write_time.as_secs_f64() > 0.5 && write_time.as_secs_f64() < 1.6);
            assert!(read_time.as_secs_f64() < 2.5);
        });
    }

    #[test]
    fn compression_ships_fewer_pcie_bytes_and_wins_on_a_slow_link() {
        use phi_platform::{FaultSchedule, PlatformParams};
        use simkernel::Bandwidth;
        Kernel::run_root(|| {
            // A congested link (0.5 GB/s effective RDMA): the wire, not
            // the compressor core, is the bottleneck, so spending CPU to
            // shrink the shipped bytes pays off.
            let run = |ratio: f64| {
                let params = PlatformParams {
                    pcie_rdma_bw: Bandwidth::gb_per_sec(0.5),
                    ..PlatformParams::default()
                };
                let server = PhiServer::new_with_faults(params, FaultSchedule::none());
                let io = SnapifyIo::new(
                    &server,
                    SnapifyIoConfig {
                        compression_ratio: ratio,
                        ..SnapifyIoConfig::default()
                    },
                );
                let dev = NodeId::device(0);
                let data = Payload::synthetic(5, GB);
                let t0 = now();
                write_all(&io, dev, NodeId::HOST, "/snap/comp", &data);
                let elapsed = now() - t0;
                let shipped = server.link(0).rdma_stats().0;
                // The transport knob never changes the logical file.
                assert_eq!(
                    read_all(&io, dev, NodeId::HOST, "/snap/comp").digest(),
                    data.digest()
                );
                (elapsed, shipped)
            };
            let (plain_t, plain_b) = run(1.0);
            let (comp_t, comp_b) = run(0.3);
            assert!(
                comp_b * 3 <= plain_b,
                "the DMA moves only compressed bytes: comp={comp_b} plain={plain_b}"
            );
            assert!(
                comp_t < plain_t,
                "compression wins on a slow link: comp={comp_t} plain={plain_t}"
            );
        });
    }

    #[test]
    fn open_overhead_dominates_tiny_files() {
        Kernel::run_root(|| {
            let (io, _) = setup();
            let dev = NodeId::device(0);
            let t0 = now();
            write_all(
                &io,
                dev,
                NodeId::HOST,
                "/snap/tiny",
                &Payload::synthetic(1, MB),
            );
            let elapsed = now() - t0;
            // Mostly the 9 ms open overhead, not the 1 MB of data.
            assert!(elapsed.as_millis_f64() > 8.0);
            assert!(elapsed.as_millis_f64() < 15.0);
        });
    }

    #[test]
    fn staging_buffers_charge_both_nodes() {
        Kernel::run_root(|| {
            let (io, server) = setup();
            let dev = NodeId::device(0);
            let sink = io.open_write(dev, NodeId::HOST, "/snap/f").unwrap();
            assert_eq!(server.device(0).mem().used(), 4 << 20);
            assert_eq!(server.host().mem().used(), 4 << 20);
            drop(sink);
            assert_eq!(server.device(0).mem().used(), 0);
            assert_eq!(server.host().mem().used(), 0);
        });
    }

    #[test]
    fn faulted_scif_connect_fails_open_and_releases_staging_memory() {
        use phi_platform::{FaultKind, FaultSchedule, FaultTarget, PlatformParams};
        use simkernel::time::SimTime;
        Kernel::run_root(|| {
            // Socket ok, local buffer registered, then the SCIF connect
            // is reset. The open must fail typed and the already-charged
            // local staging buffer must be released — before the fix the
            // open never consulted the fault plane at all, so this
            // schedule produced a successful open.
            let schedule = FaultSchedule::none().with(
                SimTime::ZERO,
                FaultTarget::Bus(0),
                FaultKind::ConnReset,
            );
            let server = PhiServer::new_with_faults(PlatformParams::default(), schedule);
            let io = SnapifyIo::new_default(&server);
            let dev = NodeId::device(0);
            let err = io.open_write(dev, NodeId::HOST, "/snap/f").err().unwrap();
            assert!(matches!(err, IoError::ConnReset(_)), "got {err}");
            assert_eq!(server.faults().fired_count(), 1);
            assert_eq!(server.device(0).mem().used(), 0, "local buffer leaked");
            assert_eq!(server.host().mem().used(), 0);
        });
    }

    #[test]
    fn oom_on_remote_buffer_releases_local_buffer() {
        Kernel::run_root(|| {
            let (io, server) = setup();
            let dev = NodeId::device(0);
            // Fill the host so the remote staging buffer cannot register.
            let baseline_dev = server.device(0).mem().used();
            let _filler = MemAlloc::new(server.host().mem(), server.host().mem().available());
            let err = io.open_write(dev, NodeId::HOST, "/snap/f").err().unwrap();
            assert!(matches!(err, IoError::Other(_)), "got {err}");
            assert_eq!(
                server.device(0).mem().used(),
                baseline_dev,
                "local buffer must be released when the remote alloc fails"
            );
        });
    }

    #[test]
    fn bus_error_during_connect_is_transparent() {
        use phi_platform::{FaultKind, FaultSchedule, FaultTarget, PlatformParams};
        use simkernel::time::SimTime;
        Kernel::run_root(|| {
            let schedule =
                FaultSchedule::none().with(SimTime::ZERO, FaultTarget::Bus(0), FaultKind::BusError);
            let server = PhiServer::new_with_faults(PlatformParams::default(), schedule);
            let io = SnapifyIo::new_default(&server);
            let dev = NodeId::device(0);
            let data = Payload::synthetic(7, MB);
            let t0 = now();
            write_all(&io, dev, NodeId::HOST, "/snap/f", &data);
            // The replayed handshake pays the open overhead twice.
            assert!((now() - t0).as_millis_f64() > 17.0);
            assert_eq!(server.faults().fired_count(), 1);
            let back = read_all(&io, dev, NodeId::HOST, "/snap/f");
            assert_eq!(back.digest(), data.digest());
        });
    }

    #[test]
    fn write_after_close_is_typed_error() {
        Kernel::run_root(|| {
            let (io, _) = setup();
            let mut sink = io
                .open_write(NodeId::device(0), NodeId::HOST, "/snap/wc")
                .unwrap();
            sink.write(Payload::synthetic(1, MB)).unwrap();
            sink.close().unwrap();
            let err = sink.write(Payload::synthetic(1, MB)).unwrap_err();
            assert_eq!(err, IoError::Closed);
        });
    }

    #[test]
    fn read_missing_file_fails() {
        Kernel::run_root(|| {
            let (io, _) = setup();
            assert!(io
                .open_read(NodeId::device(0), NodeId::HOST, "/nope")
                .is_err());
        });
    }

    #[test]
    fn device_to_device_transfer_works() {
        Kernel::run_root(|| {
            let (io, server) = setup();
            let data = Payload::synthetic(3, 32 * MB);
            write_all(&io, NodeId::device(0), NodeId::device(1), "/tmp/p2p", &data);
            // Stored on device 1's RAM fs, charging its memory.
            assert!(server.device(1).mem().used() >= 32 * MB);
            let back = read_all(&io, NodeId::device(0), NodeId::device(1), "/tmp/p2p");
            assert_eq!(back.digest(), data.digest());
        });
    }

    #[test]
    fn host_local_access_skips_pcie() {
        Kernel::run_root(|| {
            let (io, server) = setup();
            let data = Payload::synthetic(9, 16 * MB);
            write_all(&io, NodeId::HOST, NodeId::HOST, "/snap/l", &data);
            assert_eq!(server.link(0).rdma_stats().0, 0);
            assert_eq!(server.link(1).rdma_stats().0, 0);
        });
    }
}
