//! Re-export of the storage seam shared with COI.

pub use simproc::SnapshotStorage;
