//! Local storage baseline: snapshots saved on the node's *own* file
//! system (Table 4's `Local` column).
//!
//! On a coprocessor this is the RAM file system, so the snapshot competes
//! with live processes for the card's physical memory — fast when it fits,
//! impossible at 4 GB (§7).

use phi_platform::NodeId;
use phi_platform::{Payload, PhiServer};
use simkernel::obs;
use simproc::{ByteSink, ByteSource, FsSink, FsSource, IoError};

use crate::storage::SnapshotStorage;

/// [`FsSink`] wrapper that feeds the per-backend byte counters.
struct CountedSink(FsSink);

impl ByteSink for CountedSink {
    fn write(&mut self, data: Payload) -> Result<(), IoError> {
        obs::counter_add("io.Local.bytes_written", data.len());
        self.0.write(data)
    }

    fn close(&mut self) -> Result<(), IoError> {
        self.0.close()
    }

    fn set_write_granularity(&mut self, granularity: Option<u64>) {
        self.0.set_write_granularity(granularity);
    }

    fn mark_boundary(&mut self) {
        self.0.mark_boundary();
    }
}

/// [`FsSource`] wrapper that feeds the per-backend byte counters.
struct CountedSource(FsSource);

impl ByteSource for CountedSource {
    fn read(&mut self, max: u64) -> Result<Option<Payload>, IoError> {
        let chunk = self.0.read(max)?;
        if let Some(c) = &chunk {
            obs::counter_add("io.Local.bytes_read", c.len());
        }
        Ok(chunk)
    }
}

/// Storage on the calling node's own file system.
#[derive(Clone)]
pub struct LocalStorage {
    server: PhiServer,
}

impl LocalStorage {
    /// Local storage over `server`'s nodes.
    pub fn new(server: &PhiServer) -> LocalStorage {
        LocalStorage {
            server: server.clone(),
        }
    }
}

impl SnapshotStorage for LocalStorage {
    fn sink(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSink>, IoError> {
        Ok(Box::new(CountedSink(FsSink::create(
            self.server.node(local).fs(),
            path,
        ))))
    }

    fn source(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSource>, IoError> {
        Ok(Box::new(CountedSource(FsSource::open(
            self.server.node(local).fs(),
            path,
        )?)))
    }

    fn label(&self) -> &'static str {
        "Local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::{Payload, GB};
    use simkernel::Kernel;

    #[test]
    fn local_write_charges_device_memory() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let storage = LocalStorage::new(&server);
            let mut sink = storage.sink(NodeId::device(0), "/tmp/snap").unwrap();
            sink.write(Payload::synthetic(1, GB)).unwrap();
            sink.close().unwrap();
            assert_eq!(server.device(0).mem().used(), GB);
        });
    }

    #[test]
    fn local_write_fails_when_card_is_full() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            // A 4 GB process on an 8 GB card: its 4 GB snapshot + the
            // process itself exceed physical memory.
            server.device(0).mem().alloc(5 * GB).unwrap();
            let storage = LocalStorage::new(&server);
            let mut sink = storage.sink(NodeId::device(0), "/tmp/snap").unwrap();
            let err = sink.write(Payload::synthetic(1, 4 * GB)).unwrap_err();
            assert!(matches!(err, IoError::Fs(_)));
        });
    }

    #[test]
    fn injected_disk_full_mid_snapshot_surfaces_typed_error() {
        use phi_platform::{FaultKind, FaultSchedule, FaultTarget, FsError, PlatformParams};
        use simkernel::time::{ms, SimTime};
        Kernel::run_root(|| {
            // A disk-full fault due 100 ms in hits the second write of a
            // two-chunk snapshot: the first chunk stands, the failing
            // chunk leaves no bytes behind, and a retry completes.
            let schedule = FaultSchedule::none().with(
                SimTime(ms(100).as_nanos()),
                FaultTarget::Fs(NodeId::device(0)),
                FaultKind::DiskFull,
            );
            let server = PhiServer::new_with_faults(PlatformParams::default(), schedule);
            let storage = LocalStorage::new(&server);
            let mut sink = storage.sink(NodeId::device(0), "/tmp/snap").unwrap();
            let first = Payload::synthetic(1, GB);
            let second = Payload::synthetic(2, GB);
            sink.write(first.clone()).unwrap();
            let err = sink.write(second.clone()).unwrap_err();
            assert!(
                matches!(&err, IoError::Fs(FsError::DiskFull { .. })),
                "got {err}"
            );
            let fs = server.device(0).fs();
            assert_eq!(
                fs.len("/tmp/snap").unwrap(),
                GB,
                "failed write left no bytes"
            );
            // One-shot fault: the retry completes the snapshot intact.
            sink.write(second.clone()).unwrap();
            sink.close().unwrap();
            let expected = {
                let mut p = first;
                p.append(second);
                p
            };
            let mut src = storage.source(NodeId::device(0), "/tmp/snap").unwrap();
            let mut out = Payload::empty();
            while let Some(c) = src.read(256 << 20).unwrap() {
                out.append(c);
            }
            assert_eq!(out.digest(), expected.digest(), "no silent corruption");
        });
    }

    #[test]
    fn local_is_fast() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let storage = LocalStorage::new(&server);
            let mut sink = storage.sink(NodeId::device(0), "/tmp/snap").unwrap();
            let t0 = simkernel::now();
            sink.write(Payload::synthetic(1, GB)).unwrap();
            sink.close().unwrap();
            let t = (simkernel::now() - t0).as_secs_f64();
            // RAM fs at 1.5 GB/s: ~0.7 s per GiB; no PCIe crossing.
            assert!(t < 1.0, "t = {t}");
            assert_eq!(server.link(0).rdma_stats().0, 0);
        });
    }
}
