//! Local storage baseline: snapshots saved on the node's *own* file
//! system (Table 4's `Local` column).
//!
//! On a coprocessor this is the RAM file system, so the snapshot competes
//! with live processes for the card's physical memory — fast when it fits,
//! impossible at 4 GB (§7).

use phi_platform::NodeId;
use phi_platform::{Payload, PhiServer};
use simkernel::obs;
use simproc::{ByteSink, ByteSource, FsSink, FsSource, IoError};

use crate::storage::SnapshotStorage;

/// [`FsSink`] wrapper that feeds the per-backend byte counters.
struct CountedSink(FsSink);

impl ByteSink for CountedSink {
    fn write(&mut self, data: Payload) -> Result<(), IoError> {
        obs::counter_add("io.Local.bytes_written", data.len());
        self.0.write(data)
    }

    fn close(&mut self) -> Result<(), IoError> {
        self.0.close()
    }

    fn set_write_granularity(&mut self, granularity: Option<u64>) {
        self.0.set_write_granularity(granularity);
    }
}

/// [`FsSource`] wrapper that feeds the per-backend byte counters.
struct CountedSource(FsSource);

impl ByteSource for CountedSource {
    fn read(&mut self, max: u64) -> Result<Option<Payload>, IoError> {
        let chunk = self.0.read(max)?;
        if let Some(c) = &chunk {
            obs::counter_add("io.Local.bytes_read", c.len());
        }
        Ok(chunk)
    }
}

/// Storage on the calling node's own file system.
#[derive(Clone)]
pub struct LocalStorage {
    server: PhiServer,
}

impl LocalStorage {
    /// Local storage over `server`'s nodes.
    pub fn new(server: &PhiServer) -> LocalStorage {
        LocalStorage {
            server: server.clone(),
        }
    }
}

impl SnapshotStorage for LocalStorage {
    fn sink(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSink>, IoError> {
        Ok(Box::new(CountedSink(FsSink::create(
            self.server.node(local).fs(),
            path,
        ))))
    }

    fn source(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSource>, IoError> {
        Ok(Box::new(CountedSource(FsSource::open(
            self.server.node(local).fs(),
            path,
        )?)))
    }

    fn label(&self) -> &'static str {
        "Local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::{Payload, GB};
    use simkernel::Kernel;

    #[test]
    fn local_write_charges_device_memory() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let storage = LocalStorage::new(&server);
            let mut sink = storage.sink(NodeId::device(0), "/tmp/snap").unwrap();
            sink.write(Payload::synthetic(1, GB)).unwrap();
            sink.close().unwrap();
            assert_eq!(server.device(0).mem().used(), GB);
        });
    }

    #[test]
    fn local_write_fails_when_card_is_full() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            // A 4 GB process on an 8 GB card: its 4 GB snapshot + the
            // process itself exceed physical memory.
            server.device(0).mem().alloc(5 * GB).unwrap();
            let storage = LocalStorage::new(&server);
            let mut sink = storage.sink(NodeId::device(0), "/tmp/snap").unwrap();
            let err = sink.write(Payload::synthetic(1, 4 * GB)).unwrap_err();
            assert!(matches!(err, IoError::Fs(_)));
        });
    }

    #[test]
    fn local_is_fast() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let storage = LocalStorage::new(&server);
            let mut sink = storage.sink(NodeId::device(0), "/tmp/snap").unwrap();
            let t0 = simkernel::now();
            sink.write(Payload::synthetic(1, GB)).unwrap();
            sink.close().unwrap();
            let t = (simkernel::now() - t0).as_secs_f64();
            // RAM fs at 1.5 GB/s: ~0.7 s per GiB; no PCIe crossing.
            assert!(t < 1.0, "t = {t}");
            assert_eq!(server.link(0).rdma_stats().0, 0);
        });
    }
}
