//! Calibrated cost-model parameters for the snapshot transports.

use simkernel::time::{ms, us};
use simkernel::{Bandwidth, SimDuration};

/// Retry policy for transient transport faults (NFS timeouts, scp
/// connection resets — injected by the chaos plane or, on real
/// hardware, just Tuesday).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries allowed after the initial attempt. `0` surfaces the
    /// first transient error to the caller.
    pub max_retries: u32,
    /// Backoff slept before the first retry; doubles on each further
    /// retry (capped at `backoff * 1024`).
    pub backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff: ms(5),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (chaos-explorer bug-demo knob).
    pub fn disabled() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff: SimDuration::ZERO,
        }
    }

    /// Exponential backoff before retry number `attempt` (0-based).
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        self.backoff * (1u64 << attempt.min(10))
    }
}

/// Snapify-IO configuration (§6).
#[derive(Clone, Debug)]
pub struct SnapifyIoConfig {
    /// Size of the registered RDMA staging buffer per connection. "To
    /// balance between the requirement of minimizing memory footprint and
    /// the need of shorter transfer latency, the buffer size is set at
    /// 4 MB" (§6).
    pub buffer_size: u64,
    /// One-time cost of `snapifyio_open`: UNIX-socket connect, SCIF
    /// connect, and registering the staging buffer (page pinning).
    pub open_overhead: SimDuration,
    /// Size of the chunk-ready notification message (`scif_send`).
    pub notify_bytes: u64,
    /// Effective number of device-side copies per byte (user↔socket and
    /// socket↔staging buffer; the second copy partially overlaps the DMA,
    /// hence the fractional default).
    pub socket_copies: f64,
    /// On-the-fly compression of the staged chunks, modeled as a cost
    /// knob on shipped bytes: the DMA moves `compression_ratio × len`
    /// while a compressor core pays `len / compress_bw` per chunk on
    /// the device side of the transfer. `1.0` disables compression
    /// (the paper's transport, and the default). The logical file is
    /// unchanged either way — compression only trades compressor CPU
    /// for PCIe bytes.
    pub compression_ratio: f64,
    /// Single-core throughput of the in-line compressor (an in-order
    /// Phi core running lz-class compression).
    pub compress_bw: Bandwidth,
}

impl Default for SnapifyIoConfig {
    fn default() -> SnapifyIoConfig {
        SnapifyIoConfig {
            buffer_size: 4 << 20,
            open_overhead: ms(9),
            notify_bytes: 64,
            socket_copies: 1.5,
            compression_ratio: 1.0,
            compress_bw: Bandwidth::gb_per_sec(4.0),
        }
    }
}

/// NFS mount configuration (the host fs exported to the coprocessors).
#[derive(Clone, Debug)]
pub struct NfsConfig {
    /// Maximum bytes per write RPC.
    pub wsize: u64,
    /// Maximum bytes per read RPC.
    pub rsize: u64,
    /// Per-RPC overhead (request/response processing + round trip).
    pub rpc_latency: SimDuration,
    /// Wire bandwidth of the NFS transport (virtio network over PCIe).
    pub wire_bw: Bandwidth,
    /// Per-logical-`write(2)` client-side cost (syscall + NFS client page
    /// handling) — the "high latency of small writes" (§6): a checkpointer
    /// writing 4 KiB pages pays this for every page unless a buffering
    /// layer coalesces first.
    pub write_syscall_cost: SimDuration,
    /// Coalescing chunk of the modified-BLCR kernel buffer.
    pub kernel_buffer_chunk: u64,
    /// Coalescing chunk of the user-space buffering utility.
    pub user_buffer_chunk: u64,
    /// Per-logical-write cost of the user-space utility (pipe copy
    /// overhead; much cheaper than an NFS RPC but not free).
    pub user_pipe_cost: SimDuration,
    /// Per-`read(2)`-call client cost (attribute revalidation, readahead
    /// miss). Dominant for BLCR's small restart reads; negligible for the
    /// large reads of a file copy.
    pub read_call_cost: SimDuration,
    /// Retry policy for RPC timeouts (soft-mount semantics with bounded
    /// retransmits).
    pub retry: RetryPolicy,
}

impl Default for NfsConfig {
    fn default() -> NfsConfig {
        NfsConfig {
            wsize: 64 << 10,
            rsize: 96 << 10,
            rpc_latency: us(270),
            wire_bw: Bandwidth::mb_per_sec(600.0),
            write_syscall_cost: us(9),
            kernel_buffer_chunk: 1 << 20,
            user_buffer_chunk: 1 << 20,
            user_pipe_cost: us(2),
            read_call_cost: us(400),
            retry: RetryPolicy::default(),
        }
    }
}

/// scp (ssh streaming copy) configuration.
#[derive(Clone, Debug)]
pub struct ScpConfig {
    /// Cipher + protocol throughput on a single in-order Phi core — the
    /// bottleneck that makes scp 20–30× slower than Snapify-IO.
    pub cipher_bw: Bandwidth,
    /// Connection setup (ssh handshake).
    pub setup: SimDuration,
    /// Stream chunking.
    pub chunk: u64,
    /// Retry policy for connection resets. A retry reconnects (paying
    /// `setup` again) and resumes from the last fully-shipped chunk.
    pub retry: RetryPolicy,
}

impl Default for ScpConfig {
    fn default() -> ScpConfig {
        ScpConfig {
            cipher_bw: Bandwidth::mb_per_sec(34.0),
            setup: ms(180),
            chunk: 256 << 10,
            retry: RetryPolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = SnapifyIoConfig::default();
        assert_eq!(c.buffer_size, 4 << 20, "the paper fixes the buffer at 4MB");
        let n = NfsConfig::default();
        assert!(n.wsize >= 32 << 10);
        let s = ScpConfig::default();
        assert!(s.cipher_bw.0 < 100e6, "scp must be cipher-bound");
    }
}
