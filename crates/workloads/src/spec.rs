//! The OpenMP offload benchmark suite (the paper's Table 5 workloads).
//!
//! The exact contents of Table 5 are not recoverable from the paper text
//! (the table is an image); the names MD, MC, SS and SG appear in the
//! figures and prose. The suite below substitutes eight kernels whose
//! *size profiles* reproduce the figure shapes the paper reports:
//! snapshot files spanning ~8 MB to ~1.3 GB, SS/SG dominated by their
//! local stores, MC smallest and fastest to migrate, MD with the most
//! frequent offload regions (hence the worst Snapify runtime overhead,
//! Fig 9).

use phi_platform::{KB, MB};

/// Parameters of one offload benchmark.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Short name as used in the paper's figures (e.g. "MD").
    pub name: &'static str,
    /// What the kernel models (documentation).
    pub description: &'static str,
    /// Host-process data (regions captured in the host snapshot).
    pub host_bytes: u64,
    /// Offload-process private memory (text/heap — the device snapshot).
    pub device_resident_bytes: u64,
    /// Device binary size shipped over PCIe at load.
    pub binary_bytes: u64,
    /// Per-iteration input buffer (host→device each iteration).
    pub in_bytes: u64,
    /// Per-iteration output buffer (device→host when `read_back`).
    pub out_bytes: u64,
    /// Resident COI store buffer written once at setup (the bulk of the
    /// local store for SS/SG).
    pub store_bytes: u64,
    /// Number of offload-region invocations.
    pub iterations: u64,
    /// Steps per offload region (snapshot granularity inside a kernel).
    pub steps_per_iter: u64,
    /// FLOPs per step (per offload region = steps × this).
    pub flops_per_step: f64,
    /// Whether the host reads the output buffer back each iteration.
    pub read_back: bool,
}

impl WorkloadSpec {
    /// Total local store (all COI buffers).
    pub fn local_store_bytes(&self) -> u64 {
        self.in_bytes + self.out_bytes + self.store_bytes
    }

    /// The device binary name for this workload.
    pub fn binary_name(&self) -> String {
        format!("{}.so", self.name.to_lowercase())
    }

    /// A size/duration-scaled copy for fast tests: data divided by
    /// `size_div`, iterations divided by `iter_div` (minimum 2).
    pub fn scaled(&self, size_div: u64, iter_div: u64) -> WorkloadSpec {
        let mut s = self.clone();
        s.host_bytes = (s.host_bytes / size_div).max(4 * KB);
        s.device_resident_bytes = (s.device_resident_bytes / size_div).max(64 * KB);
        s.binary_bytes = (s.binary_bytes / size_div).max(64 * KB);
        s.in_bytes = (s.in_bytes / size_div).max(KB);
        s.out_bytes = (s.out_bytes / size_div).max(KB);
        s.store_bytes /= size_div;
        s.iterations = (s.iterations / iter_div).max(2);
        s
    }
}

/// The eight-workload suite with paper-shape sizes.
pub fn suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "MD",
            description: "Lennard-Jones molecular dynamics; many short offload regions",
            host_bytes: 60 * MB,
            device_resident_bytes: 200 * MB,
            binary_bytes: 6 * MB,
            in_bytes: 64 * KB,
            out_bytes: 64 * KB,
            store_bytes: 48 * MB,
            iterations: 2500,
            steps_per_iter: 1,
            flops_per_step: 4.5e8, // ~0.45 ms per region
            read_back: true,
        },
        WorkloadSpec {
            name: "MC",
            description: "Monte Carlo option pricing; few long regions, tiny state",
            host_bytes: 24 * MB,
            device_resident_bytes: 32 * MB,
            binary_bytes: 2 * MB,
            in_bytes: 256 * KB,
            out_bytes: 8 * MB,
            store_bytes: 0,
            iterations: 20,
            steps_per_iter: 64,
            flops_per_step: 3e9, // ~3 ms per step, ~190 ms per region
            read_back: true,
        },
        WorkloadSpec {
            name: "SS",
            description: "sample sort; huge in/out buffers and host arrays",
            host_bytes: 1100 * MB,
            device_resident_bytes: 100 * MB,
            binary_bytes: 3 * MB,
            in_bytes: 256 * MB,
            out_bytes: 256 * MB,
            store_bytes: 800 * MB,
            iterations: 10,
            steps_per_iter: 32,
            flops_per_step: 8e9,
            read_back: true,
        },
        WorkloadSpec {
            name: "SG",
            description: "scatter-gather sparse update; large index+value store",
            host_bytes: 780 * MB,
            device_resident_bytes: 72 * MB,
            binary_bytes: 3 * MB,
            in_bytes: 128 * MB,
            out_bytes: 128 * MB,
            store_bytes: 650 * MB,
            iterations: 12,
            steps_per_iter: 24,
            flops_per_step: 6e9,
            read_back: true,
        },
        WorkloadSpec {
            name: "JAC",
            description: "Jacobi 2-D stencil; per-sweep offload regions",
            host_bytes: 90 * MB,
            device_resident_bytes: 330 * MB,
            binary_bytes: 4 * MB,
            in_bytes: 256 * KB,
            out_bytes: 256 * KB,
            store_bytes: 128 * MB,
            iterations: 800,
            steps_per_iter: 1,
            flops_per_step: 1.4e9, // ~1.4 ms per sweep
            read_back: true,
        },
        WorkloadSpec {
            name: "KM",
            description: "k-means clustering; per-pass centroid exchange",
            host_bytes: 130 * MB,
            device_resident_bytes: 250 * MB,
            binary_bytes: 4 * MB,
            in_bytes: MB,
            out_bytes: 64 * KB,
            store_bytes: 160 * MB,
            iterations: 800,
            steps_per_iter: 1,
            flops_per_step: 1.5e9,
            read_back: true,
        },
        WorkloadSpec {
            name: "FFT",
            description: "batched 1-D FFT; medium buffers, medium regions",
            host_bytes: 200 * MB,
            device_resident_bytes: 410 * MB,
            binary_bytes: 5 * MB,
            in_bytes: 8 * MB,
            out_bytes: 8 * MB,
            store_bytes: 240 * MB,
            iterations: 400,
            steps_per_iter: 4,
            flops_per_step: 1.25e9,
            read_back: true,
        },
        WorkloadSpec {
            name: "NB",
            description: "direct n-body; long compute-bound regions",
            host_bytes: 40 * MB,
            device_resident_bytes: 510 * MB,
            binary_bytes: 3 * MB,
            in_bytes: 128 * KB,
            out_bytes: 128 * KB,
            store_bytes: 24 * MB,
            iterations: 30,
            steps_per_iter: 64,
            flops_per_step: 3e9,
            read_back: true,
        },
    ]
}

/// Look up a suite workload by name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    suite().into_iter().find(|s| s.name == name)
}

/// Function-sized tenant classes for the FaaS-style serving scenario:
/// three suite workloads scaled down to serverless-function images
/// (megabytes, not gigabytes), ordered smallest to largest. A serving
/// run packs 1k+ of these behind a handful of coprocessors, so the
/// per-tenant state must be small enough that swap-ins are fast and the
/// host can hold every parked image.
pub fn serving_classes() -> Vec<WorkloadSpec> {
    vec![
        by_name("MC").unwrap().scaled(16, 10),   // ~2 MB snapshot
        by_name("MD").unwrap().scaled(32, 1000), // ~6 MB snapshot
        by_name("FFT").unwrap().scaled(64, 200), // ~6 MB + store
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::GB;

    #[test]
    fn suite_has_eight_named_workloads() {
        let s = suite();
        assert_eq!(s.len(), 8);
        let names: Vec<&str> = s.iter().map(|w| w.name).collect();
        for n in ["MD", "MC", "SS", "SG"] {
            assert!(names.contains(&n), "figure-named workload {n} missing");
        }
    }

    #[test]
    fn ss_and_sg_are_local_store_dominated() {
        // The Fig 10 shape driver: SS/SG local store ≫ device snapshot.
        for name in ["SS", "SG"] {
            let w = by_name(name).unwrap();
            assert!(w.local_store_bytes() > 4 * w.device_resident_bytes);
        }
    }

    #[test]
    fn size_profile_spans_paper_range() {
        let s = suite();
        let min_snap = s.iter().map(|w| w.device_resident_bytes).min().unwrap();
        let max_store = s.iter().map(|w| w.local_store_bytes()).max().unwrap();
        assert!(min_snap <= 40 * MB, "MC-class small snapshot expected");
        assert!(max_store > GB, "SS-class 1.3 GB local store expected");
    }

    #[test]
    fn md_has_most_frequent_regions() {
        let s = suite();
        let md = by_name("MD").unwrap();
        for w in &s {
            assert!(md.iterations >= w.iterations);
        }
    }

    #[test]
    fn everything_fits_on_a_card() {
        for w in suite() {
            assert!(
                w.device_resident_bytes + w.local_store_bytes() < 7 * GB,
                "{} exceeds the 8 GB card",
                w.name
            );
        }
    }

    #[test]
    fn scaled_keeps_minimums() {
        let w = by_name("SS").unwrap().scaled(1024, 100);
        assert!(w.in_bytes >= KB);
        assert!(w.iterations >= 2);
        assert!(w.local_store_bytes() < by_name("SS").unwrap().local_store_bytes());
    }

    #[test]
    fn serving_classes_are_function_sized() {
        let classes = serving_classes();
        assert_eq!(classes.len(), 3);
        for c in &classes {
            assert!(
                c.device_resident_bytes + c.local_store_bytes() <= 64 * MB,
                "{} serving image too large for 1k-tenant packing",
                c.name
            );
            assert!(c.iterations >= 2);
        }
    }

    #[test]
    fn binary_names() {
        assert_eq!(by_name("MD").unwrap().binary_name(), "md.so");
        assert!(by_name("NOPE").is_none());
    }
}
