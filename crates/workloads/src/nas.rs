//! NAS multi-zone MPI benchmarks (LU-MZ, SP-MZ, BT-MZ), class C — the
//! Fig 11 workloads.
//!
//! Each benchmark partitions a set of solver zones over the MPI ranks;
//! every iteration performs a ring halo exchange with the neighbouring
//! ranks, offloads the zone sweep to the rank's coprocessor, and ends in
//! a barrier. Per-rank memory (host arrays, device-resident zone data,
//! COI buffers) is the class-C total divided by the rank count — which is
//! why Fig 11(c)'s per-rank checkpoint size, and with it Fig 11(a)/(b)'s
//! CR time, shrink as ranks are added.

use coi_sim::{CoiBuffer, FunctionRegistry};
use mpi_sim::{checkpoint_all, restart_all, Comm, MpiWorld, RankApp};
use phi_platform::{Payload, PlatformParams, GB, MB};
use simkernel::SimDuration;
use snapify::{CheckpointReport, RestartReport, SnapifyError};
use std::sync::Arc;

use crate::kernel::out_tag;
use crate::spec::WorkloadSpec;

/// One NAS-MZ benchmark configuration (class C totals, split over ranks).
#[derive(Clone, Debug)]
pub struct MzSpec {
    /// Benchmark name ("LU-MZ", "SP-MZ", "BT-MZ").
    pub name: &'static str,
    /// Problem class (the paper uses C).
    pub class: char,
    /// Host-side solver arrays, total across ranks.
    pub total_host_bytes: u64,
    /// Offload-private zone data, total.
    pub total_device_bytes: u64,
    /// COI buffer (local store) bytes, total.
    pub total_store_bytes: u64,
    /// Halo exchanged with each neighbour per iteration, per rank.
    pub halo_bytes: u64,
    /// Solver iterations.
    pub iterations: u64,
    /// FLOPs per iteration, total across ranks.
    pub flops_per_iter: f64,
}

impl MzSpec {
    /// The per-rank workload spec for an `n`-rank run.
    pub fn per_rank(&self, n: usize) -> WorkloadSpec {
        let n = n as u64;
        WorkloadSpec {
            name: self.name,
            description: "NAS multi-zone rank",
            host_bytes: self.total_host_bytes / n,
            device_resident_bytes: self.total_device_bytes / n,
            binary_bytes: 8 * MB,
            in_bytes: self.halo_bytes,
            out_bytes: self.halo_bytes,
            store_bytes: self.total_store_bytes / n,
            iterations: self.iterations,
            steps_per_iter: 16,
            flops_per_step: self.flops_per_iter / n as f64 / 16.0,
            read_back: true,
        }
    }

    /// The device binary name (shared by all ranks).
    pub fn binary_name(&self) -> String {
        format!("{}.so", self.name.to_lowercase().replace('-', "_"))
    }
}

/// The three class-C multi-zone benchmarks.
pub fn nas_suite() -> Vec<MzSpec> {
    vec![
        MzSpec {
            name: "LU-MZ",
            class: 'C',
            total_host_bytes: 1200 * MB,
            total_device_bytes: 900 * MB,
            total_store_bytes: 1100 * MB,
            halo_bytes: 24 * MB,
            iterations: 40,
            flops_per_iter: 3.6e12, // ≈3.6 s/iter at one rank → ~2.4 min
        },
        MzSpec {
            name: "SP-MZ",
            class: 'C',
            total_host_bytes: 1400 * MB,
            total_device_bytes: 1000 * MB,
            total_store_bytes: 1200 * MB,
            halo_bytes: 32 * MB,
            iterations: 40,
            flops_per_iter: 3.0e12,
        },
        MzSpec {
            name: "BT-MZ",
            class: 'C',
            total_host_bytes: 2400 * MB,
            total_device_bytes: 1800 * MB,
            total_store_bytes: 2 * GB + 600 * MB,
            halo_bytes: 48 * MB,
            iterations: 40,
            flops_per_iter: 4.2e12,
        },
    ]
}

/// Look up a multi-zone benchmark by name.
pub fn nas_by_name(name: &str) -> Option<MzSpec> {
    nas_suite().into_iter().find(|s| s.name == name)
}

/// Register the per-rank binary of a multi-zone run.
pub fn register_nas(registry: &FunctionRegistry, spec: &MzSpec, ranks: usize) {
    registry.register(crate::kernel::build_binary(&spec.per_rank(ranks)));
}

/// One rank of a running multi-zone application.
pub struct MzRank {
    comm: Comm,
    spec: WorkloadSpec,
    handle: coi_sim::CoiProcessHandle,
    host_proc: simproc::SimProcess,
    in_buf: Arc<CoiBuffer>,
    out_buf: Arc<CoiBuffer>,
    _store_buf: Arc<CoiBuffer>,
    next_iteration: u64,
}

impl MzRank {
    fn launch(world: &MpiWorld, mz: &MzSpec, rank: usize) -> Result<MzRank, SnapifyError> {
        let spec = mz.per_rank(world.size());
        let coi = world.world(rank).coi();
        let host_proc = coi.create_host_process(&format!("{}:rank{rank}", mz.name));
        host_proc
            .memory()
            .map_region(
                "solver_arrays",
                Payload::synthetic(out_tag(mz.name, rank as u64), spec.host_bytes),
            )
            .map_err(|e| SnapifyError::Io(e.to_string()))?;
        let handle = coi.create_process(&host_proc, 0, &spec.binary_name())?;
        let in_buf = handle.create_buffer(spec.in_bytes)?;
        let store_buf = handle.create_buffer(spec.store_bytes.max(1))?;
        handle.buffer_write(
            &store_buf,
            Payload::synthetic(out_tag(mz.name, 1 << 41), spec.store_bytes.max(1)),
        )?;
        let out_buf = handle.create_buffer(spec.out_bytes)?;
        Ok(MzRank {
            comm: world.comm(rank),
            spec,
            handle,
            host_proc,
            in_buf,
            out_buf,
            _store_buf: store_buf,
            next_iteration: 0,
        })
    }

    /// One solver iteration: halo exchange, offload sweep, barrier.
    fn iteration(&mut self, i: u64) -> Result<(), SnapifyError> {
        let n = self.comm.size();
        let r = self.comm.rank();
        if n > 1 {
            // Ring halo exchange: send to the right, receive from the left
            // (even ranks send first to avoid head-of-line deadlock).
            let right = (r + 1) % n;
            let left = (r + n - 1) % n;
            let halo = Payload::synthetic(out_tag(self.spec.name, i), self.spec.in_bytes);
            let received = if r.is_multiple_of(2) {
                self.comm.send(right, halo.clone());
                self.comm.recv(left)
            } else {
                let got = self.comm.recv(left);
                self.comm.send(right, halo.clone());
                got
            };
            // Every rank sends the same deterministic halo for iteration
            // `i`; a corrupted exchange would change the digest.
            debug_assert_eq!(received.digest(), halo.digest(), "halo corrupted in flight");
        }
        // Offload the zone sweep.
        self.handle.buffer_write(
            &self.in_buf,
            Payload::synthetic(out_tag(self.spec.name, i) ^ 0x77, self.spec.in_bytes),
        )?;
        self.handle.run_sync(
            "kernel",
            i.to_le_bytes().to_vec(),
            &[&self.in_buf, &self._store_buf, &self.out_buf],
        )?;
        self.handle.buffer_read(&self.out_buf)?;
        self.comm.barrier();
        self.next_iteration = i + 1;
        Ok(())
    }

    fn run_iterations(&mut self, from: u64, count: u64) -> Result<(), SnapifyError> {
        let until = (from + count).min(self.spec.iterations);
        for i in from..until {
            self.iteration(i)?;
        }
        Ok(())
    }
}

/// Timing summary of one coordinated MPI checkpoint/restart experiment.
#[derive(Clone, Debug)]
pub struct MzCrResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Number of ranks.
    pub ranks: usize,
    /// Wall (virtual) time of the coordinated checkpoint.
    pub checkpoint_time: SimDuration,
    /// Wall (virtual) time of the coordinated restart.
    pub restart_time: SimDuration,
    /// Per-rank checkpoint size (host + device + local store of rank 0).
    pub per_rank_checkpoint_bytes: u64,
    /// Per-rank reports from the checkpoint.
    pub reports: Vec<CheckpointReport>,
    /// Per-rank restart reports.
    pub restart_reports: Vec<RestartReport>,
}

/// Run the Fig 11 experiment for one benchmark at one rank count: execute
/// `warmup_iterations`, take a coordinated checkpoint, kill everything,
/// restart, run one more iteration to prove liveness.
pub fn run_mz_cr_experiment(
    mz: &MzSpec,
    ranks: usize,
    warmup_iterations: u64,
) -> Result<MzCrResult, SnapifyError> {
    let registry = FunctionRegistry::new();
    registry.register(crate::kernel::build_binary(&mz.per_rank(ranks)));
    let world = MpiWorld::new(ranks, PlatformParams::default(), registry);

    // Launch and warm up every rank concurrently.
    let mut joins = Vec::new();
    for r in 0..ranks {
        let world2 = world.clone();
        let mz2 = mz.clone();
        joins.push(simkernel::spawn(format!("mz-rank{r}"), move || {
            let mut rank = MzRank::launch(&world2, &mz2, r)?;
            rank.run_iterations(0, warmup_iterations)?;
            Ok::<MzRank, SnapifyError>(rank)
        }));
    }
    let ranks_running: Vec<MzRank> = joins
        .into_iter()
        .map(|j| j.join())
        .collect::<Result<_, _>>()?;

    // Coordinated checkpoint at the (quiesced) iteration boundary.
    let apps: Vec<RankApp> = ranks_running
        .iter()
        .map(|r| RankApp {
            handle: r.handle.clone(),
            host_state: r.next_iteration.to_le_bytes().to_vec(),
        })
        .collect();
    let t0 = simkernel::now();
    let reports = checkpoint_all(&world, &apps, &format!("/snap/{}", mz.name))?;
    let checkpoint_time = simkernel::now() - t0;
    let per_rank_checkpoint_bytes = reports[0].host_snapshot_bytes
        + reports[0].device_snapshot_bytes
        + reports[0].local_store_bytes;

    // Fail everything.
    for r in &ranks_running {
        r.handle.destroy()?;
        r.host_proc.exit();
    }
    drop(ranks_running);

    // Coordinated restart.
    let binary = mz.per_rank(ranks).binary_name();
    let t1 = simkernel::now();
    let restarted = restart_all(&world, &binary, &format!("/snap/{}", mz.name))?;
    let restart_time = simkernel::now() - t1;
    let restart_reports: Vec<RestartReport> = restarted.iter().map(|a| a.report.clone()).collect();

    // Prove the restarted ranks are alive: run one more iteration each.
    let mut joins = Vec::new();
    for (r, app) in restarted.into_iter().enumerate() {
        let world2 = world.clone();
        let mz2 = mz.clone();
        joins.push(simkernel::spawn(format!("mz-resume{r}"), move || {
            let iter = u64::from_le_bytes(app.host_state[..8].try_into().unwrap());
            let bufs = app.handle.buffers();
            let mut rank = MzRank {
                comm: world2.comm(r),
                spec: mz2.per_rank(world2.size()),
                handle: app.handle.clone(),
                host_proc: app.host_proc.clone(),
                in_buf: bufs[0].clone(),
                _store_buf: bufs[1].clone(),
                out_buf: bufs[2].clone(),
                next_iteration: iter,
            };
            rank.run_iterations(iter, 1)?;
            rank.handle.destroy()?;
            Ok::<u64, SnapifyError>(rank.next_iteration)
        }));
    }
    for j in joins {
        let next = j.join()?;
        assert_eq!(
            next,
            warmup_iterations + 1,
            "rank resumed at wrong iteration"
        );
    }

    Ok(MzCrResult {
        name: mz.name,
        ranks,
        checkpoint_time,
        restart_time,
        per_rank_checkpoint_bytes,
        reports,
        restart_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::Kernel;

    fn tiny(mz: &MzSpec) -> MzSpec {
        let mut m = mz.clone();
        m.total_host_bytes /= 128;
        m.total_device_bytes /= 128;
        m.total_store_bytes /= 128;
        m.halo_bytes /= 128;
        m.iterations = 4;
        m.flops_per_iter /= 1000.0;
        m
    }

    #[test]
    fn nas_suite_has_three_class_c_benchmarks() {
        let s = nas_suite();
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|m| m.class == 'C'));
        assert!(nas_by_name("BT-MZ").is_some());
        assert!(nas_by_name("XX-MZ").is_none());
    }

    #[test]
    fn per_rank_sizes_shrink_with_ranks() {
        let mz = nas_by_name("LU-MZ").unwrap();
        let one = mz.per_rank(1);
        let four = mz.per_rank(4);
        assert_eq!(one.host_bytes, 4 * four.host_bytes);
        assert_eq!(one.store_bytes, 4 * four.store_bytes);
    }

    #[test]
    fn mz_cr_experiment_roundtrips_two_ranks() {
        Kernel::run_root(|| {
            let mz = tiny(&nas_by_name("LU-MZ").unwrap());
            let result = run_mz_cr_experiment(&mz, 2, 2).unwrap();
            assert_eq!(result.ranks, 2);
            assert!(result.checkpoint_time.as_nanos() > 0);
            assert!(result.restart_time.as_nanos() > 0);
            assert!(result.per_rank_checkpoint_bytes > 0);
        });
    }

    #[test]
    fn mz_cr_single_rank_works() {
        Kernel::run_root(|| {
            let mz = tiny(&nas_by_name("SP-MZ").unwrap());
            let result = run_mz_cr_experiment(&mz, 1, 1).unwrap();
            assert_eq!(result.ranks, 1);
        });
    }

    #[test]
    fn per_rank_checkpoint_shrinks_with_more_ranks() {
        Kernel::run_root(|| {
            let mz = tiny(&nas_by_name("BT-MZ").unwrap());
            let one = run_mz_cr_experiment(&mz, 1, 1).unwrap();
            let four = run_mz_cr_experiment(&mz, 4, 1).unwrap();
            assert!(
                four.per_rank_checkpoint_bytes < one.per_rank_checkpoint_bytes,
                "Fig 11(c): per-rank size must shrink with ranks"
            );
            assert!(
                four.checkpoint_time < one.checkpoint_time,
                "Fig 11(a): checkpoint time must shrink with ranks"
            );
        });
    }
}
