//! # workloads — the paper's benchmark applications
//!
//! * [`spec`] — the eight OpenMP-style offload benchmarks (the Table 5
//!   substitute, size profiles matched to the paper's figures);
//! * [`kernel`] — the resumable device kernels and registry builder;
//! * [`driver`] — the host-side iteration loop with checkpointable
//!   control state;
//! * [`nas`] — the NAS multi-zone MPI benchmarks (LU-MZ, SP-MZ, BT-MZ)
//!   used in Fig 11 (built on `mpi-sim`).

#![warn(missing_docs)]

pub mod driver;
pub mod kernel;
pub mod nas;
pub mod spec;

pub use driver::{WorkloadResult, WorkloadRun};
pub use kernel::{build_binary, out_tag, register_suite};
pub use spec::{by_name, serving_classes, suite, WorkloadSpec};
