//! The host-side workload driver: the "sequential part" of an offload
//! application.
//!
//! A [`WorkloadRun`] owns the offload process and its buffers, executes
//! the iteration loop, and — crucially for checkpoint/restart — exposes
//! its control state as a serializable phase counter, the simulated
//! equivalent of the host stack BLCR would capture mid-callback.

use coi_sim::{CoiBuffer, CoiProcessHandle, CoiWorld};
use phi_platform::Payload;
use simkernel::{SimDuration, SimMutex};
use simproc::SimProcess;
use snapify::SnapifyError;
use std::sync::Arc;

use crate::kernel::out_tag;
use crate::spec::WorkloadSpec;

/// Outcome of a completed workload run.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Virtual runtime of the iteration loop (excludes setup).
    pub runtime: SimDuration,
    /// Iterations executed in this run (a restarted run reports the
    /// remainder).
    pub iterations_run: u64,
    /// Whether the final output digest matched the expected value.
    pub verified: bool,
}

/// A running (or resumable) workload instance.
pub struct WorkloadRun {
    spec: WorkloadSpec,
    handle: CoiProcessHandle,
    host_proc: SimProcess,
    in_buf: Option<Arc<CoiBuffer>>,
    out_buf: Option<Arc<CoiBuffer>>,
    store_buf: Option<Arc<CoiBuffer>>,
    /// The resumable phase counter (next iteration to execute). Shared so
    /// a checkpoint observer can serialize it while the loop runs.
    next_iteration: Arc<SimMutex<u64>>,
}

impl WorkloadRun {
    /// Launch the workload on `device`: create the host process, the
    /// offload process, the buffers, and the host data region.
    pub fn launch(
        coi: &CoiWorld,
        spec: &WorkloadSpec,
        device: usize,
    ) -> Result<WorkloadRun, SnapifyError> {
        let host_proc = coi.create_host_process(&format!("host:{}", spec.name));
        host_proc
            .memory()
            .map_region(
                "app_data",
                Payload::synthetic(out_tag(spec.name, u64::MAX), spec.host_bytes),
            )
            .map_err(|e| SnapifyError::Io(e.to_string()))?;
        let handle = coi.create_process(&host_proc, device, &spec.binary_name())?;
        let run = WorkloadRun {
            spec: spec.clone(),
            handle,
            host_proc,
            in_buf: None,
            out_buf: None,
            store_buf: None,
            next_iteration: Arc::new(SimMutex::new(format!("{} iter", spec.name), 0)),
        };
        let run = run.create_buffers()?;
        Ok(run)
    }

    fn create_buffers(mut self) -> Result<WorkloadRun, SnapifyError> {
        let spec = &self.spec;
        if spec.in_bytes > 0 {
            self.in_buf = Some(self.handle.create_buffer(spec.in_bytes)?);
        }
        if spec.store_bytes > 0 {
            let store = self.handle.create_buffer(spec.store_bytes)?;
            // Populate the resident store once (part of the local store a
            // snapshot must preserve).
            self.handle.buffer_write(
                &store,
                Payload::synthetic(out_tag(spec.name, 1 << 40), spec.store_bytes),
            )?;
            self.store_buf = Some(store);
        }
        if spec.out_bytes > 0 {
            self.out_buf = Some(self.handle.create_buffer(spec.out_bytes)?);
        }
        Ok(self)
    }

    /// The offload process handle (for snapshots, swaps, migrations).
    pub fn handle(&self) -> &CoiProcessHandle {
        &self.handle
    }

    /// The host process.
    pub fn host_proc(&self) -> &SimProcess {
        &self.host_proc
    }

    /// The workload spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The next iteration to execute (the resumable host control state).
    pub fn host_state(&self) -> Vec<u8> {
        let mut v = self.next_iteration.lock().to_le_bytes().to_vec();
        v.extend_from_slice(self.spec.name.as_bytes());
        v
    }

    /// Parse a host-state blob back into an iteration counter.
    pub fn parse_host_state(state: &[u8]) -> u64 {
        u64::from_le_bytes(state[..8].try_into().expect("bad host state"))
    }

    /// Execute one iteration of the offload loop.
    fn iteration(&self, i: u64) -> Result<(), SnapifyError> {
        let spec = &self.spec;
        if let Some(in_buf) = &self.in_buf {
            self.handle.buffer_write(
                in_buf,
                Payload::synthetic(out_tag(spec.name, i) ^ 0xA5, spec.in_bytes),
            )?;
        }
        let buffers: Vec<&CoiBuffer> = [&self.in_buf, &self.store_buf, &self.out_buf]
            .iter()
            .filter_map(|b| b.as_deref())
            .collect();
        self.handle
            .run_sync("kernel", i.to_le_bytes().to_vec(), &buffers)?;
        if spec.read_back {
            if let Some(out) = &self.out_buf {
                self.handle.buffer_read(out)?;
            }
        }
        Ok(())
    }

    /// Run the iteration loop to completion (from wherever the phase
    /// counter stands), then verify the final output.
    pub fn run_to_completion(&self) -> Result<WorkloadResult, SnapifyError> {
        let t0 = simkernel::now();
        let start = *self.next_iteration.lock();
        for i in start..self.spec.iterations {
            self.iteration(i)?;
            *self.next_iteration.lock() = i + 1;
        }
        let runtime = simkernel::now() - t0;
        Ok(WorkloadResult {
            runtime,
            iterations_run: self.spec.iterations - start,
            verified: self.verify()?,
        })
    }

    /// Check that the output buffer holds exactly the last iteration's
    /// deterministic content — the end-to-end integrity predicate used
    /// after checkpoints, restores, swaps and migrations.
    pub fn verify(&self) -> Result<bool, SnapifyError> {
        let Some(out) = &self.out_buf else {
            return Ok(true);
        };
        let got = self.handle.buffer_read(out)?;
        let expect = Payload::synthetic(
            out_tag(self.spec.name, self.spec.iterations - 1),
            self.spec.out_bytes,
        );
        Ok(got.digest() == expect.digest())
    }

    /// Tear down the offload process.
    pub fn destroy(&self) -> Result<(), SnapifyError> {
        self.handle.destroy()?;
        Ok(())
    }

    /// Rebuild a run after a checkpoint/restart: the restored host
    /// process, the rewired handle (with adopted buffers), and the
    /// restart-time host state.
    pub fn resume_after_restart(
        spec: &WorkloadSpec,
        handle: &CoiProcessHandle,
        host_proc: &SimProcess,
        host_state: &[u8],
    ) -> WorkloadRun {
        let next = Self::parse_host_state(host_state);
        let bufs = handle.buffers();
        // Buffers were created in order: in, store, out (ids ascending).
        let mut iter = bufs.into_iter();
        let in_buf = if spec.in_bytes > 0 { iter.next() } else { None };
        let store_buf = if spec.store_bytes > 0 {
            iter.next()
        } else {
            None
        };
        let out_buf = if spec.out_bytes > 0 {
            iter.next()
        } else {
            None
        };
        WorkloadRun {
            spec: spec.clone(),
            handle: handle.clone(),
            host_proc: host_proc.clone(),
            in_buf,
            out_buf,
            store_buf,
            next_iteration: Arc::new(SimMutex::new(format!("{} iter", spec.name), next)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::register_suite;
    use crate::spec::{by_name, suite};
    use coi_sim::FunctionRegistry;
    use simkernel::Kernel;
    use snapify::SnapifyWorld;

    fn small_world() -> (SnapifyWorld, Vec<WorkloadSpec>) {
        let specs: Vec<WorkloadSpec> = suite().iter().map(|s| s.scaled(256, 50)).collect();
        let registry = FunctionRegistry::new();
        register_suite(&registry, &specs);
        (SnapifyWorld::boot(registry), specs)
    }

    #[test]
    fn every_workload_runs_and_verifies() {
        Kernel::run_root(|| {
            let (world, specs) = small_world();
            for spec in &specs {
                let run = WorkloadRun::launch(world.coi(), spec, 0).unwrap();
                let result = run.run_to_completion().unwrap();
                assert!(result.verified, "{} failed verification", spec.name);
                assert_eq!(result.iterations_run, spec.iterations);
                assert!(result.runtime.as_nanos() > 0);
                run.destroy().unwrap();
            }
        });
    }

    #[test]
    fn workload_survives_mid_run_migration() {
        Kernel::run_root(|| {
            let (world, _) = small_world();
            let spec = by_name("JAC").unwrap().scaled(256, 50);
            let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
            let handle = run.handle().clone();
            // Drive the loop on a separate thread; migrate mid-run.
            let h = run.host_proc().clone().spawn_thread("driver", move || {
                run.run_to_completion().map(|r| r.verified)
            });
            simkernel::sleep(simkernel::time::ms(10));
            snapify::snapify_migrate(&handle, 1).unwrap();
            assert_eq!(handle.device(), 1);
            assert!(h.join().unwrap());
        });
    }

    #[test]
    fn host_state_roundtrip() {
        Kernel::run_root(|| {
            let (world, specs) = small_world();
            let run = WorkloadRun::launch(world.coi(), &specs[0], 0).unwrap();
            let st = run.host_state();
            assert_eq!(WorkloadRun::parse_host_state(&st), 0);
            run.destroy().unwrap();
        });
    }
}
