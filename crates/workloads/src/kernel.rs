//! The device-side kernel used by every suite workload.
//!
//! [`BenchKernel`] is a resumable step machine: each step charges the
//! modeled parallel compute time; the final step writes a deterministic
//! output into the last buffer (so end-to-end verification survives
//! checkpoints, swaps and migrations) and updates the offload process's
//! private state (so the snapshot really carries offload-private data,
//! §3).

use std::sync::Arc;

use coi_sim::{DeviceBinary, FunctionRegistry, OffloadCtx, OffloadFn, StepOutcome};
use phi_platform::Payload;

use crate::spec::WorkloadSpec;

/// Deterministic content tag for workload output at a given iteration.
pub fn out_tag(name: &str, iteration: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^ iteration.wrapping_mul(0x9e3779b97f4a7c15)
}

/// The kernel of one suite workload.
pub struct BenchKernel {
    name: String,
    steps: u64,
    flops_per_step: f64,
    threads: u32,
}

impl OffloadFn for BenchKernel {
    fn step(&self, ctx: &mut OffloadCtx<'_>, cursor: u64) -> StepOutcome {
        ctx.compute(self.flops_per_step, self.threads);
        if cursor + 1 < self.steps {
            return StepOutcome::Yield;
        }
        // Final step: produce the iteration's output and update private
        // offload state.
        let iteration = u64::from_le_bytes(ctx.args[..8].try_into().unwrap());
        if ctx.buffer_count() > 0 {
            let out = ctx.buffer_count() - 1;
            let len = ctx.buffer_len(out);
            ctx.write_buffer(out, Payload::synthetic(out_tag(&self.name, iteration), len));
        }
        ctx.set_private(
            "last_iteration",
            Payload::bytes(iteration.to_le_bytes().to_vec()),
        );
        ctx.log(format!("{}: iteration {} done", self.name, iteration).into_bytes());
        StepOutcome::Done(iteration.to_le_bytes().to_vec())
    }
}

/// Build the device binary for a workload spec.
pub fn build_binary(spec: &WorkloadSpec) -> DeviceBinary {
    DeviceBinary::new(
        spec.binary_name(),
        spec.binary_bytes,
        spec.device_resident_bytes,
    )
    .function(
        "kernel",
        Arc::new(BenchKernel {
            name: spec.name.to_string(),
            steps: spec.steps_per_iter.max(1),
            flops_per_step: spec.flops_per_step,
            threads: 240, // 4 hardware threads per core, capped at cores
        }),
    )
}

/// Register every workload in `specs` into `registry`.
pub fn register_suite(registry: &FunctionRegistry, specs: &[WorkloadSpec]) {
    for spec in specs {
        registry.register(build_binary(spec));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_tags_differ_by_workload_and_iteration() {
        assert_ne!(out_tag("MD", 0), out_tag("MD", 1));
        assert_ne!(out_tag("MD", 3), out_tag("MC", 3));
        assert_eq!(out_tag("SS", 7), out_tag("SS", 7));
    }

    #[test]
    fn binaries_register() {
        let reg = FunctionRegistry::new();
        register_suite(&reg, &crate::spec::suite());
        for spec in crate::spec::suite() {
            let bin = reg.get(&spec.binary_name()).unwrap();
            assert!(bin.get("kernel").is_some());
            assert_eq!(bin.resident_bytes, spec.device_resident_bytes);
        }
    }
}
