//! # mpi-sim — a minimal MPI runtime over the simulated cluster
//!
//! The Fig 11 experiments run NAS multi-zone benchmarks with 1–4 MPI
//! ranks, one rank per cluster node, each node carrying one Xeon Phi.
//! This crate provides exactly what those experiments need:
//!
//! * [`MpiWorld`] — `n` simulated Xeon Phi servers (each with its own
//!   Snapify-enabled COI world) joined by a network;
//! * [`Comm`] — rank-to-rank messages (charged to both NICs), barriers,
//!   and allreduce;
//! * [`checkpoint_all`] / [`restart_all`] — BLCR-style *coordinated*
//!   checkpointing: ranks quiesce at a barrier (the LAM/MPI
//!   system-initiated model the paper's §5 refers to), then every rank
//!   checkpoints its host + offload pair concurrently via Snapify.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Arc;

use coi_sim::{CoiConfig, CoiProcessHandle, FunctionRegistry};
use phi_platform::{Cluster, Payload, PlatformParams};
use simkernel::{Barrier, SimChannel, SimDuration, SimMutex};
use snapify::{
    checkpoint_application, restart_application, CheckpointReport, RestartedApp, SnapifyError,
    SnapifyWorld,
};

/// A cluster of Snapify-enabled Xeon Phi servers, one MPI rank each.
#[derive(Clone)]
pub struct MpiWorld {
    inner: Arc<MpiInner>,
}

struct MpiInner {
    cluster: Cluster,
    worlds: Vec<SnapifyWorld>,
    /// Point-to-point message queues, keyed by (src, dst).
    channels: SimMutex<HashMap<(usize, usize), SimChannel<Payload>>>,
    barrier: Barrier,
    net_latency: SimDuration,
}

impl MpiWorld {
    /// Build an `n`-rank world. Each rank's server gets one coprocessor
    /// (as in the paper's 4-node cluster, one Phi per node) and its own
    /// COI world booted from `registry`.
    pub fn new(n: usize, mut params: PlatformParams, registry: FunctionRegistry) -> MpiWorld {
        assert!(n > 0);
        params.num_devices = 1;
        let cluster = Cluster::new(n, params.clone());
        let worlds = (0..n)
            .map(|i| {
                SnapifyWorld::boot_on_server(
                    cluster.server(i).clone(),
                    CoiConfig::default(),
                    registry.clone(),
                )
            })
            .collect();
        MpiWorld {
            inner: Arc::new(MpiInner {
                net_latency: cluster.net_latency(),
                cluster,
                worlds,
                channels: SimMutex::new("mpi channels", HashMap::new()),
                barrier: Barrier::new("mpi", n),
            }),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.inner.worlds.len()
    }

    /// The Snapify world of rank `r`.
    pub fn world(&self, r: usize) -> &SnapifyWorld {
        &self.inner.worlds[r]
    }

    /// The communicator handle for rank `r`.
    pub fn comm(&self, r: usize) -> Comm {
        assert!(r < self.size());
        Comm {
            world: self.clone(),
            rank: r,
        }
    }

    fn channel(&self, src: usize, dst: usize) -> SimChannel<Payload> {
        let mut chans = self.inner.channels.lock();
        chans
            .entry((src, dst))
            .or_insert_with(|| SimChannel::unbounded(format!("mpi {src}->{dst}")))
            .clone()
    }

    /// True if no rank-to-rank message is queued or in flight — the
    /// quiescence predicate coordinated checkpointing relies on.
    pub fn network_drained(&self) -> bool {
        self.inner.channels.lock().values().all(|c| c.is_drained())
    }
}

/// The per-rank communicator.
#[derive(Clone)]
pub struct Comm {
    world: MpiWorld,
    rank: usize,
}

impl Comm {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// Blocking send to `dst` (charges both NICs).
    pub fn send(&self, dst: usize, data: Payload) {
        assert_ne!(dst, self.rank, "send to self");
        self.world
            .inner
            .cluster
            .net_transfer(self.rank, dst, data.len().max(1));
        self.world
            .channel(self.rank, dst)
            .send(data)
            .expect("mpi channel closed");
    }

    /// Blocking receive from `src`.
    pub fn recv(&self, src: usize) -> Payload {
        assert_ne!(src, self.rank, "recv from self");
        self.world
            .channel(src, self.rank)
            .recv()
            .expect("mpi channel closed")
    }

    /// Barrier across all ranks (costs one network round trip).
    pub fn barrier(&self) {
        if self.size() > 1 {
            simkernel::sleep(self.world.inner.net_latency * 2);
        }
        self.world.inner.barrier.wait();
    }

    /// Sum-allreduce of one `u64` (tree not modeled; costs one gather +
    /// broadcast round).
    pub fn allreduce_sum(&self, value: u64) -> u64 {
        if self.size() == 1 {
            return value;
        }
        if self.rank == 0 {
            let mut total = value;
            for src in 1..self.size() {
                let p = self.recv(src);
                total += u64::from_le_bytes(p.to_bytes().try_into().unwrap());
            }
            for dst in 1..self.size() {
                self.send(dst, Payload::bytes(total.to_le_bytes().to_vec()));
            }
            total
        } else {
            self.send(0, Payload::bytes(value.to_le_bytes().to_vec()));
            let p = self.recv(0);
            u64::from_le_bytes(p.to_bytes().try_into().unwrap())
        }
    }
}

/// One rank's application state for coordinated CR.
pub struct RankApp {
    /// The rank's offload process handle.
    pub handle: CoiProcessHandle,
    /// The rank's host control state (phase counter blob).
    pub host_state: Vec<u8>,
}

/// Coordinated checkpoint of every rank (the LAM/MPI-style
/// system-initiated flow of §5): verifies the network is drained, then
/// checkpoints every rank's host+offload pair concurrently. Returns the
/// per-rank reports.
pub fn checkpoint_all(
    world: &MpiWorld,
    apps: &[RankApp],
    path_prefix: &str,
) -> Result<Vec<CheckpointReport>, SnapifyError> {
    assert!(
        world.network_drained(),
        "coordinated checkpoint requires quiesced MPI channels"
    );
    assert_eq!(apps.len(), world.size());
    let mut joins = Vec::new();
    for (r, app) in apps.iter().enumerate() {
        let w = world.world(r).clone();
        let handle = app.handle.clone();
        let host_state = app.host_state.clone();
        let path = format!("{path_prefix}/rank{r}");
        joins.push(simkernel::spawn(format!("ckpt-rank{r}"), move || {
            checkpoint_application(&w, &handle, &host_state, &path).map(|(_, report)| report)
        }));
    }
    joins.into_iter().map(|j| j.join()).collect()
}

/// Coordinated restart of every rank from `path_prefix` onto each rank's
/// device 0. Returns the restarted applications, in rank order.
pub fn restart_all(
    world: &MpiWorld,
    binary: &str,
    path_prefix: &str,
) -> Result<Vec<RestartedApp>, SnapifyError> {
    let mut joins = Vec::new();
    for r in 0..world.size() {
        let w = world.world(r).clone();
        let path = format!("{path_prefix}/rank{r}");
        let binary = binary.to_string();
        joins.push(simkernel::spawn(format!("restart-rank{r}"), move || {
            restart_application(&w, &path, &binary, 0)
        }));
    }
    joins.into_iter().map(|j| j.join()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coi_sim::DeviceBinary;
    use phi_platform::MB;
    use simkernel::Kernel;

    fn registry() -> FunctionRegistry {
        let reg = FunctionRegistry::new();
        reg.register(
            DeviceBinary::new("mz.so", MB, 8 * MB).simple_function("kernel", |ctx| {
                ctx.compute(1e9, 60);
                let n = ctx.buffer_len(0);
                ctx.write_buffer(0, Payload::synthetic(0x42, n));
                Vec::new()
            }),
        );
        reg
    }

    #[test]
    fn point_to_point_roundtrip() {
        Kernel::run_root(|| {
            let world = MpiWorld::new(2, PlatformParams::default(), registry());
            let c1 = world.comm(1);
            let h = simkernel::spawn("rank1", move || c1.recv(0).to_bytes());
            let c0 = world.comm(0);
            c0.send(1, Payload::bytes(vec![1, 2, 3]));
            assert_eq!(h.join(), vec![1, 2, 3]);
            assert!(world.network_drained());
        });
    }

    #[test]
    fn network_transfer_takes_time() {
        Kernel::run_root(|| {
            let world = MpiWorld::new(2, PlatformParams::default(), registry());
            let c1 = world.comm(1);
            let h = simkernel::spawn("rank1", move || c1.recv(0));
            let c0 = world.comm(0);
            let t0 = simkernel::now();
            c0.send(1, Payload::synthetic(1, 1_250_000_000)); // 1 s per NIC
            h.join();
            let elapsed = (simkernel::now() - t0).as_secs_f64();
            assert!(elapsed >= 2.0, "two NIC crossings expected, got {elapsed}");
        });
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        Kernel::run_root(|| {
            let world = MpiWorld::new(3, PlatformParams::default(), registry());
            let mut joins = Vec::new();
            for r in 0..3u64 {
                let c = world.comm(r as usize);
                joins.push(simkernel::spawn(format!("rank{r}"), move || {
                    simkernel::sleep(simkernel::time::ms(10 * (r + 1)));
                    c.barrier();
                    simkernel::now()
                }));
            }
            let times: Vec<_> = joins.into_iter().map(|j| j.join()).collect();
            assert!(times.iter().all(|t| *t == times[0]));
        });
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        Kernel::run_root(|| {
            let world = MpiWorld::new(4, PlatformParams::default(), registry());
            let mut joins = Vec::new();
            for r in 0..4 {
                let c = world.comm(r);
                joins.push(simkernel::spawn(format!("rank{r}"), move || {
                    c.allreduce_sum((r as u64 + 1) * 10)
                }));
            }
            for j in joins {
                assert_eq!(j.join(), 100);
            }
        });
    }

    #[test]
    fn coordinated_checkpoint_and_restart() {
        Kernel::run_root(|| {
            let world = MpiWorld::new(2, PlatformParams::default(), registry());
            let mut apps = Vec::new();
            for r in 0..2 {
                let coi = world.world(r).coi();
                let host = coi.create_host_process(&format!("rank{r}"));
                host.memory()
                    .map_region("rank_data", Payload::bytes(vec![r as u8; 512]))
                    .unwrap();
                let handle = coi.create_process(&host, 0, "mz.so").unwrap();
                let buf = handle.create_buffer(4 * MB).unwrap();
                handle
                    .buffer_write(&buf, Payload::synthetic(r as u64, 4 * MB))
                    .unwrap();
                handle.run_sync("kernel", Vec::new(), &[&buf]).unwrap();
                apps.push(RankApp {
                    handle,
                    host_state: format!("rank{r}:iter=5").into_bytes(),
                });
            }
            let reports = checkpoint_all(&world, &apps, "/snap/mpi").unwrap();
            assert_eq!(reports.len(), 2);
            for rep in &reports {
                assert!(rep.device_snapshot_bytes > MB);
                assert_eq!(rep.local_store_bytes, 4 * MB);
            }
            // Kill everything, restart.
            for app in &apps {
                app.handle.destroy().unwrap();
                app.handle.host_proc().exit();
            }
            let restarted = restart_all(&world, "mz.so", "/snap/mpi").unwrap();
            assert_eq!(restarted.len(), 2);
            for (r, app) in restarted.iter().enumerate() {
                assert_eq!(app.host_state, format!("rank{r}:iter=5").into_bytes());
                assert_eq!(
                    app.host_proc
                        .memory()
                        .region("rank_data")
                        .unwrap()
                        .to_bytes(),
                    vec![r as u8; 512]
                );
                let bufs = app.handle.buffers();
                // Buffer content is the kernel's deterministic output.
                assert_eq!(
                    app.handle.buffer_read(&bufs[0]).unwrap().digest(),
                    Payload::synthetic(0x42, 4 * MB).digest()
                );
                app.handle.destroy().unwrap();
            }
        });
    }

    #[test]
    #[should_panic(expected = "quiesced")]
    fn checkpoint_with_in_flight_messages_refused() {
        let k = Kernel::new();
        k.spawn("root", || {
            let world = MpiWorld::new(2, PlatformParams::default(), registry());
            // Leave a message in flight.
            world.comm(0).send(1, Payload::bytes(vec![1]));
            let _ = checkpoint_all(&world, &[], "/snap/x");
        });
        k.run();
        unreachable!("test must panic inside the simulation");
    }
}
