//! Content-addressed snapshot store with dedup and pipelined shipping.
//!
//! The paper's evaluation (§7, Fig 10/Table 4) shows snapshot time is
//! dominated by moving image bytes off the card, and the swap scheduler
//! (§5 Remark) re-ships a near-identical image every time-slice. This
//! crate stops resending bytes the store already holds: it sits between
//! BLCR's stream framing and a [`SnapshotStorage`] backend, cuts the
//! capture stream into fixed-size, boundary-aligned chunks, digests each
//! with the platform's deterministic hash, and ships only chunks the
//! refcounted index has never seen. The ordered chunk references plus the
//! final image digest form a small *manifest*, which is what the backend
//! durably stores under the snapshot path — the manifest is the snapshot
//! artifact.
//!
//! Capture is *pipelined*: the writer digests and deduplicates chunk
//! `k+1` while a dedicated shipper thread pushes chunk `k` through the
//! backend transport, so hashing overlaps the transfer instead of
//! serializing with it.
//!
//! Restore reverses the path: fetch the manifest through the backend,
//! verify the reassembled image against the manifest digest (the
//! `incremental.rs` chain-verification discipline — corruption is
//! rejected, never silently restored), then serve the stream through a
//! **restore fast path**: chunks still *warm* on the restoring node
//! (they survived there since the last swap-out, tracked by a bounded,
//! refcount-aware per-node cache) are satisfied with a local memcpy and
//! never cross the transport again; cold chunks are staged and fetched
//! through the backend, with fetch of chunk `k+1` pipelined against the
//! BLCR stream replay of chunk `k` — the mirror image of the capture
//! pipeline. Cold chunks are digest-verified on arrival and then enter
//! the restoring node's warm cache.
//!
//! Garbage collection is refcount-based: deleting a snapshot releases
//! its manifest's references; chunks that hit zero are dropped (and
//! evicted from every warm cache) and pack files whose chunks are all
//! dead are deleted from the backing fs.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use phi_platform::{FaultKind, FaultTarget, NodeId, Payload, PhiServer, SimFs};
use simkernel::obs;
use simkernel::{now, Bandwidth, BandwidthResource, SimChannel, SimDuration, SimTime};
use simproc::{ByteSink, ByteSource, IoError, SnapshotStorage};

pub mod pool;

pub use pool::{ClusterPool, PoolManifestInfo, PoolStats};

/// Identity of a chunk: (content digest, length). The length guards the
/// (already unlikely) digest collision across different-size chunks.
pub type ChunkKey = (u64, u64);

/// Eviction policy of the per-node warm chunk caches. Ticks are unique
/// per cache, so every policy's victim choice is deterministic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// Evict the least-recently-touched chunk (capture, restore hit and
    /// cold arrival all count as touches).
    #[default]
    Lru,
    /// Evict the least-touched chunk; ties fall back to LRU. Keeps the
    /// chunks hot tenants restore over and over, even when a burst of
    /// one-off captures sweeps the cache.
    Popularity,
    /// Evict the chunk whose retention avoids the least transport:
    /// touches × size, ties falling back to LRU. A big chunk restored
    /// twice outranks a small chunk restored three times.
    CostAware,
}

/// Store configuration.
#[derive(Clone, Debug)]
pub struct DedupConfig {
    /// Fixed chunk size the capture stream is cut into (boundary marks
    /// from the frame writer cut shorter chunks early, keeping regions
    /// aligned across snapshots).
    pub chunk_size: u64,
    /// Digest throughput of one capture-side core (the FNV pass the
    /// store pays per chunk).
    pub hash_bw: Bandwidth,
    /// Whether novel chunks ship on a dedicated sim thread, overlapping
    /// the digest/lookup of the next chunk. `false` = ship inline
    /// (serial baseline, used by the bench to measure the overlap gain).
    pub pipelined: bool,
    /// Bounded depth of the capture → shipper queue.
    pub pipeline_depth: usize,
    /// Whether the wrapped backend stores files on the opening node's
    /// own fs (`LocalStorage`) rather than the host fs. Decides where
    /// pack files live and where restore staging is materialized.
    pub local_fs: bool,
    /// Byte budget of each node's warm chunk cache (restore fast path).
    /// Chunks a node captured or restored stay "warm" there until
    /// evicted (LRU) or collected; a warm chunk is restored with a
    /// local memcpy instead of crossing the transport. `0` disables the
    /// cache — every restore is cold.
    pub restore_cache_bytes: u64,
    /// Whether cold chunks are prefetched on a dedicated sim thread so
    /// the transport of chunk `k+1` overlaps the digest/replay of chunk
    /// `k`. `false` = fetch inline (serial baseline for the bench).
    pub restore_pipelined: bool,
    /// Bounded depth of the prefetch → replay queue.
    pub restore_prefetch_depth: usize,
    /// Which chunks the warm caches keep when over budget.
    pub cache_policy: CachePolicy,
    /// Rebase period of the *incremental capture* fast path. An
    /// incremental capture (driven by the caller through
    /// [`ByteSink::write_cached_record`]) reconstructs clean regions
    /// from the previous snapshot's chunks at the same path, skipping
    /// the read + chunk + digest work entirely. Every such reuse
    /// lengthens the logical delta chain; every `incremental_rebase_every`
    /// captures the store withholds the prior snapshot's region ledger,
    /// forcing a full re-stream that resets the chain. `1` makes every
    /// capture full (the no-incremental baseline); `0` never rebases.
    pub incremental_rebase_every: u32,
}

impl Default for DedupConfig {
    fn default() -> DedupConfig {
        DedupConfig {
            chunk_size: 4 << 20,
            hash_bw: Bandwidth::gb_per_sec(2.0),
            pipelined: true,
            pipeline_depth: 4,
            local_fs: false,
            restore_cache_bytes: 4 << 30,
            restore_pipelined: true,
            restore_prefetch_depth: 4,
            cache_policy: CachePolicy::default(),
            incremental_rebase_every: 16,
        }
    }
}

/// A point-in-time copy of the store's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Chunks satisfied by the index (not shipped).
    pub chunks_hit: u64,
    /// Novel chunks shipped through the backend.
    pub chunks_miss: u64,
    /// Bytes the index absorbed (would have shipped without dedup).
    pub bytes_deduped: u64,
    /// Bytes that actually crossed the backend transport (novel chunks
    /// plus manifests).
    pub bytes_shipped: u64,
    /// Live (referenced) chunk bytes currently held by the store.
    pub bytes_stored: u64,
    /// Manifests currently live.
    pub manifests: u64,
    /// Chunks freed by GC so far.
    pub chunks_freed: u64,
    /// Pack files deleted by GC so far.
    pub packs_deleted: u64,
    /// Restored chunks satisfied by a node's warm cache (local memcpy,
    /// no transport).
    pub restore_chunks_warm: u64,
    /// Restored chunks fetched cold through the backend transport.
    pub restore_chunks_cold: u64,
    /// Restore bytes that never crossed the transport (warm hits).
    pub restore_bytes_avoided: u64,
    /// Restore bytes that crossed the transport (cold fetches).
    pub restore_bytes_fetched: u64,
    /// Capture bytes that entered the chunk/digest pipeline (the dirty
    /// portion of incremental captures; everything, for full captures).
    pub capture_dirty_bytes: u64,
    /// Capture bytes reconstructed from the prior snapshot's ledger
    /// without being read, chunked or digested (clean regions of
    /// incremental captures).
    pub capture_clean_bytes: u64,
}

struct ChunkEntry {
    content: Payload,
    refs: u64,
    pack: u64,
}

struct PackInfo {
    path: String,
    node: NodeId,
    live: u64,
}

struct ManifestRecord {
    chunks: Vec<ChunkKey>,
    node: NodeId,
}

/// One record's slice of a snapshot stream, as cut by the capture-side
/// `begin_record` boundaries: every chunk from the record's cut to the
/// next one (name header, length prefix and payload — a deterministic
/// function of the record's name and content). `digest`/`len` identify
/// the record *content* the caller advertised, which is what a later
/// capture matches against before replaying the chunks.
#[derive(Clone)]
struct RegionSpan {
    digest: u64,
    len: u64,
    chunks: Vec<ChunkKey>,
}

/// Per-path record ledger: which spans the snapshot currently stored at
/// a path is made of, plus how many consecutive incremental captures
/// led to it (the logical delta-chain length, reset by a rebase).
struct Ledger {
    age: u64,
    spans: HashMap<String, RegionSpan>,
}

/// One warm chunk's bookkeeping: recency for LRU, touch count for the
/// popularity/cost policies.
#[derive(Clone, Copy)]
struct WarmEntry {
    tick: u64,
    hits: u64,
}

/// Which chunks are still materialized on one node since it last
/// captured or restored them. Holds *keys only* (plus per-entry ticks
/// and touch counts) — the content lives in the refcounted chunk index,
/// and no node memory is charged for cache membership.
#[derive(Default)]
struct WarmCache {
    chunks: HashMap<ChunkKey, WarmEntry>,
    bytes: u64,
    tick: u64,
}

impl WarmCache {
    /// Touch or insert `key`, then evict the policy's victims until the
    /// cache fits `cap`. Ticks are unique, so every policy's eviction
    /// order is deterministic (ties break toward least-recently-used).
    fn insert(&mut self, key: ChunkKey, cap: u64, policy: CachePolicy) {
        if key.1 > cap {
            return;
        }
        self.tick += 1;
        let entry = self.chunks.entry(key).or_insert_with(|| {
            self.bytes += key.1;
            WarmEntry { tick: 0, hits: 0 }
        });
        entry.tick = self.tick;
        entry.hits += 1;
        while self.bytes > cap {
            let victim = *self
                .chunks
                .iter()
                .min_by_key(|(key, e)| WarmCache::score(key, e, policy))
                .expect("bytes > 0 implies entries")
                .0;
            self.chunks.remove(&victim);
            self.bytes -= victim.1;
        }
    }

    /// Eviction rank — the smallest score goes first. The tick
    /// tie-break makes the choice total and deterministic.
    fn score(key: &ChunkKey, e: &WarmEntry, policy: CachePolicy) -> (u128, u64) {
        match policy {
            CachePolicy::Lru => (0, e.tick),
            CachePolicy::Popularity => (e.hits as u128, e.tick),
            CachePolicy::CostAware => (e.hits as u128 * key.1 as u128, e.tick),
        }
    }

    fn remove(&mut self, key: &ChunkKey) {
        if self.chunks.remove(key).is_some() {
            self.bytes -= key.1;
        }
    }
}

#[derive(Default)]
struct Index {
    chunks: HashMap<ChunkKey, ChunkEntry>,
    packs: HashMap<u64, PackInfo>,
    manifests: HashMap<String, ManifestRecord>,
    /// Per-path record ledgers (incremental capture fast path).
    ledgers: HashMap<String, Ledger>,
    next_pack: u64,
    stats: StoreStats,
    /// Per-node warm chunk caches (restore fast path).
    warm: HashMap<NodeId, WarmCache>,
}

impl Index {
    /// Mark `key` warm on `node`: the node holds a verified copy of the
    /// chunk's content right now (it just captured or restored it).
    fn warm_insert(&mut self, node: NodeId, key: ChunkKey, config: &DedupConfig) {
        let cap = config.restore_cache_bytes;
        if cap == 0 {
            return;
        }
        debug_assert!(self.chunks.contains_key(&key), "warm chunk must be live");
        self.warm
            .entry(node)
            .or_default()
            .insert(key, cap, config.cache_policy);
    }

    fn is_warm(&self, node: NodeId, key: &ChunkKey) -> bool {
        self.warm
            .get(&node)
            .is_some_and(|c| c.chunks.contains_key(key))
    }

    /// A chunk died (refcount hit zero): no warm cache may keep serving
    /// it — its backing content is gone from the store.
    fn warm_evict_all(&mut self, key: &ChunkKey) {
        for cache in self.warm.values_mut() {
            cache.remove(key);
        }
    }
}

/// Membership of this store in a fleet: the shared pool, this node's
/// fleet index, and the cluster NIC the imports are priced on.
struct PoolAttachment {
    pool: ClusterPool,
    node: usize,
    nic: BandwidthResource,
}

struct StoreInner {
    server: PhiServer,
    backend: Arc<dyn SnapshotStorage>,
    config: DedupConfig,
    /// Metadata only — never held across a simulated-time operation.
    index: Mutex<Index>,
    /// Per-node digest engines, created lazily.
    hashers: Mutex<HashMap<NodeId, BandwidthResource>>,
    /// Shared cross-node pool, if this store joined a fleet.
    pool: OnceLock<PoolAttachment>,
}

/// The content-addressed store, wrapping a [`SnapshotStorage`] backend.
/// Cheap to clone; all clones share one chunk index.
#[derive(Clone)]
pub struct Dedup {
    inner: Arc<StoreInner>,
}

impl Dedup {
    /// Wrap `backend` with dedup on `server`.
    pub fn new(
        server: &PhiServer,
        backend: Arc<dyn SnapshotStorage>,
        config: DedupConfig,
    ) -> Dedup {
        assert!(config.chunk_size > 0);
        Dedup {
            inner: Arc::new(StoreInner {
                server: server.clone(),
                backend,
                config,
                index: Mutex::new(Index::default()),
                hashers: Mutex::new(HashMap::new()),
                pool: OnceLock::new(),
            }),
        }
    }

    /// Join a fleet: every manifest this store commits is published to
    /// `pool` under fleet node `cluster_node`, deletions release the
    /// node's pool holds, and a restore that misses locally imports the
    /// snapshot from the pool — paying the cluster network only for
    /// chunks this store has never seen. Must be called from a sim
    /// thread (it builds the cluster NIC), at most once per store.
    pub fn attach_pool(&self, pool: &ClusterPool, cluster_node: usize) {
        let params = self.inner.server.params();
        let nic = BandwidthResource::new(
            format!("snapstore-nic{cluster_node}"),
            params.net_bw,
            params.net_latency,
        );
        let ok = self
            .inner
            .pool
            .set(PoolAttachment {
                pool: pool.clone(),
                node: cluster_node,
                nic,
            })
            .is_ok();
        assert!(ok, "cluster pool already attached to this store");
    }

    /// The store configuration.
    pub fn config(&self) -> &DedupConfig {
        &self.inner.config
    }

    /// A snapshot of the store's counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.index.lock().unwrap().stats
    }

    /// The server this store runs on.
    pub fn server(&self) -> &PhiServer {
        &self.inner.server
    }

    /// The fs the wrapped backend materializes files on for streams
    /// opened from `node`.
    fn storage_fs(&self, node: NodeId) -> SimFs {
        if self.inner.config.local_fs {
            self.inner.server.node(node).fs().clone()
        } else {
            self.inner.server.host().fs().clone()
        }
    }

    fn hasher(&self, node: NodeId) -> BandwidthResource {
        let mut hashers = self.inner.hashers.lock().unwrap();
        hashers
            .entry(node)
            .or_insert_with(|| {
                BandwidthResource::new(
                    format!("snapstore-hash-{node}"),
                    self.inner.config.hash_bw,
                    SimDuration::ZERO,
                )
            })
            .clone()
    }

    fn has_chunk(&self, key: &ChunkKey) -> bool {
        self.inner.index.lock().unwrap().chunks.contains_key(key)
    }

    fn note_hit(&self, node: NodeId, len: u64) {
        let mut idx = self.inner.index.lock().unwrap();
        idx.stats.chunks_hit += 1;
        idx.stats.bytes_deduped += len;
        idx.stats.capture_dirty_bytes += len;
        drop(idx);
        obs::counter_add("store.chunks_hit", 1);
        obs::counter_add("store.bytes_deduped", len);
        if obs::is_enabled() {
            let n = node.to_string();
            obs::counter_add_labeled("store.chunks_hit", &[("node", &n)], 1);
            obs::counter_add_labeled("store.bytes_deduped", &[("node", &n)], len);
        }
    }

    fn note_miss(&self, node: NodeId, len: u64) {
        let mut idx = self.inner.index.lock().unwrap();
        idx.stats.chunks_miss += 1;
        idx.stats.bytes_shipped += len;
        idx.stats.capture_dirty_bytes += len;
        drop(idx);
        obs::counter_add("store.chunks_miss", 1);
        obs::counter_add("store.bytes_shipped", len);
        if obs::is_enabled() {
            let n = node.to_string();
            obs::counter_add_labeled("store.chunks_miss", &[("node", &n)], 1);
            obs::counter_add_labeled("store.bytes_shipped", &[("node", &n)], len);
        }
    }

    /// Reserve a pack id + path for a snapshot's novel chunks.
    fn new_pack(&self, manifest_path: &str, node: NodeId) -> (u64, String) {
        let mut idx = self.inner.index.lock().unwrap();
        let id = idx.next_pack;
        idx.next_pack += 1;
        let path = format!("{manifest_path}.pack{id}");
        idx.packs.insert(
            id,
            PackInfo {
                path: path.clone(),
                node,
                live: 0,
            },
        );
        (id, path)
    }

    /// Drop a pack whose shipping failed: forget it and best-effort
    /// delete the partial file.
    fn discard_pack(&self, id: u64) {
        let info = self.inner.index.lock().unwrap().packs.remove(&id);
        if let Some(info) = info {
            let _ = self.storage_fs(info.node).delete(&info.path);
        }
    }

    /// Commit a completed snapshot: install novel chunks, bump refs for
    /// every manifest entry, and (if the path is being re-snapshotted)
    /// release the manifest it replaces. In a fleet, the committed
    /// manifest is then published to the shared cross-node pool.
    #[allow(clippy::too_many_arguments)]
    fn commit(
        &self,
        path: &str,
        node: NodeId,
        pack: Option<u64>,
        refs: &[ChunkKey],
        fresh: &mut HashMap<ChunkKey, Payload>,
        manifest_len: u64,
        total: u64,
        image_digest: u64,
        spans: HashMap<String, RegionSpan>,
        reused: bool,
    ) {
        let mut dead_files = Vec::new();
        let mut pool_contents: Vec<Payload> = Vec::new();
        {
            let mut idx = self.inner.index.lock().unwrap();
            // Install the new manifest's references BEFORE releasing the
            // one it replaces: re-snapshotting unchanged content to the
            // same path dedups against the old manifest's chunks, and
            // releasing first would free exactly the chunks the new
            // manifest is about to reference.
            let old = idx.manifests.remove(path);
            for key in refs {
                if let Some(entry) = idx.chunks.get_mut(key) {
                    entry.refs += 1;
                    continue;
                }
                let content = fresh
                    .remove(key)
                    .expect("novel chunk content retained until commit");
                let pack = pack.expect("novel chunks imply a pack");
                idx.chunks.insert(
                    *key,
                    ChunkEntry {
                        content: content.normalize(),
                        refs: 1,
                        pack,
                    },
                );
                idx.packs.get_mut(&pack).expect("pack registered").live += 1;
                idx.stats.bytes_stored += key.1;
            }
            // Everything the capture just streamed is materialized on
            // the capturing node right now: warm it for the swap-in.
            for key in refs {
                idx.warm_insert(node, *key, &self.inner.config);
            }
            if let Some(old) = old {
                release_manifest(&mut idx, old, &mut dead_files);
            }
            // A pack that ended up with no surviving novel chunks (every
            // "fresh" chunk was committed by a concurrent capture first)
            // is dead on arrival.
            if let Some(pack) = pack {
                if idx.packs.get(&pack).map(|p| p.live) == Some(0) {
                    let info = idx.packs.remove(&pack).unwrap();
                    dead_files.push((info.node, info.path));
                }
            }
            idx.manifests.insert(
                path.to_string(),
                ManifestRecord {
                    chunks: refs.to_vec(),
                    node,
                },
            );
            // Install the new ledger: a capture that reused prior spans
            // lengthens the logical delta chain; one that streamed
            // everything is a fresh base. A capture with no record
            // boundaries at all leaves no ledger (and drops any stale
            // one) — the next capture at this path streams in full.
            let prior_age = idx.ledgers.get(path).map_or(0, |l| l.age);
            if spans.is_empty() {
                idx.ledgers.remove(path);
            } else {
                let age = if reused { prior_age + 1 } else { 0 };
                idx.ledgers.insert(path.to_string(), Ledger { age, spans });
            }
            idx.stats.manifests = idx.manifests.len() as u64;
            idx.stats.bytes_shipped += manifest_len;
            if self.inner.pool.get().is_some() {
                pool_contents = refs.iter().map(|k| idx.chunks[k].content.clone()).collect();
            }
        }
        obs::counter_add("store.bytes_shipped", manifest_len);
        self.delete_files(dead_files);
        if let Some(att) = self.inner.pool.get() {
            att.pool
                .publish(path, att.node, refs, &pool_contents, total, image_digest);
        }
    }

    /// Delete one snapshot's manifest from the store, releasing its
    /// chunk references. Returns `true` if the manifest existed.
    pub fn delete_snapshot(&self, path: &str) -> bool {
        let mut dead_files = Vec::new();
        let existed = {
            let mut idx = self.inner.index.lock().unwrap();
            match idx.manifests.remove(path) {
                Some(old) => {
                    idx.ledgers.remove(path);
                    dead_files.push((old.node, path.to_string()));
                    release_manifest(&mut idx, old, &mut dead_files);
                    idx.stats.manifests = idx.manifests.len() as u64;
                    true
                }
                None => false,
            }
        };
        self.delete_files(dead_files);
        if existed {
            if let Some(att) = self.inner.pool.get() {
                att.pool.release(path, att.node);
            }
        }
        existed
    }

    /// Delete every snapshot whose manifest path starts with `prefix`
    /// (a swap directory, say). Returns how many manifests were dropped.
    pub fn delete_prefix(&self, prefix: &str) -> usize {
        let mut paths: Vec<String> = {
            let idx = self.inner.index.lock().unwrap();
            idx.manifests
                .keys()
                .filter(|p| p.starts_with(prefix))
                .cloned()
                .collect()
        };
        // HashMap iteration order is unstable; keep fs operations (and
        // thus the simulated world) deterministic.
        paths.sort();
        let n = paths.len();
        for p in &paths {
            self.delete_snapshot(p);
        }
        n
    }

    fn delete_files(&self, files: Vec<(NodeId, String)>) {
        for (node, path) in files {
            let _ = self.storage_fs(node).delete(&path);
        }
    }

    fn backend(&self) -> &Arc<dyn SnapshotStorage> {
        &self.inner.backend
    }

    /// Bytes currently tracked by `node`'s warm cache (test hook).
    #[cfg(test)]
    fn warm_bytes(&self, node: NodeId) -> u64 {
        let idx = self.inner.index.lock().unwrap();
        idx.warm.get(&node).map_or(0, |c| c.bytes)
    }
}

/// Release one manifest's references; dead chunks and dead packs are
/// removed from the index and the packs' files queued on `dead_files`.
fn release_manifest(idx: &mut Index, old: ManifestRecord, dead_files: &mut Vec<(NodeId, String)>) {
    for key in &old.chunks {
        let entry = idx.chunks.get_mut(key).expect("referenced chunk exists");
        entry.refs -= 1;
        if entry.refs > 0 {
            continue;
        }
        let entry = idx.chunks.remove(key).unwrap();
        idx.warm_evict_all(key);
        idx.stats.bytes_stored -= key.1;
        idx.stats.chunks_freed += 1;
        obs::counter_add("store.gc.chunks_freed", 1);
        let pack = idx.packs.get_mut(&entry.pack).expect("chunk's pack exists");
        pack.live -= 1;
        if pack.live == 0 {
            let info = idx.packs.remove(&entry.pack).unwrap();
            idx.stats.packs_deleted += 1;
            obs::counter_add("store.gc.packs_deleted", 1);
            dead_files.push((info.node, info.path));
        }
    }
}

impl SnapshotStorage for Dedup {
    fn sink(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSink>, IoError> {
        // Offer the prior snapshot's record ledger to the new capture —
        // unless the delta chain is due for a rebase, in which case the
        // ledger is withheld and every record streams in full.
        let prior_spans = {
            let idx = self.inner.index.lock().unwrap();
            idx.ledgers.get(path).and_then(|ledger| {
                let rebase = u64::from(self.inner.config.incremental_rebase_every);
                if rebase > 0 && ledger.age + 1 >= rebase {
                    None
                } else {
                    Some(ledger.spans.clone())
                }
            })
        };
        Ok(Box::new(DedupSink {
            store: self.clone(),
            local,
            path: path.to_string(),
            pending: Payload::empty(),
            refs: Vec::new(),
            fresh: HashMap::new(),
            image: Payload::empty(),
            ship: None,
            failed: None,
            closed: false,
            prior_spans,
            next_spans: HashMap::new(),
            current_span: None,
            reused: false,
        }))
    }

    fn source(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSource>, IoError> {
        self.open_source(local, path)
    }

    fn label(&self) -> &'static str {
        "dedup"
    }
}

impl Dedup {
    fn open_source(&self, local: NodeId, path: &str) -> Result<Box<dyn ByteSource>, IoError> {
        // 1. Fetch the manifest through the backend (missing snapshot =
        //    backend's NotFound; a non-manifest file = typed corruption).
        //    A local miss in a fleet falls back to the shared pool:
        //    import the snapshot from whichever nodes hold it, then
        //    retry.
        let mut msrc = match self.backend().source(local, path) {
            Ok(s) => s,
            Err(e) => {
                if self.pool_import(local, path)? {
                    self.backend().source(local, path)?
                } else {
                    return Err(e);
                }
            }
        };
        let mut bytes = Vec::new();
        while let Some(c) = msrc.read(64 << 10)? {
            bytes.extend_from_slice(&c.to_bytes());
        }
        let manifest = Manifest::decode(&bytes)
            .map_err(|e| IoError::Other(format!("snapstore {path}: {e}")))?;

        // 2. Build the restore plan under the index lock: for each
        //    chunk, decide warm (still materialized on `local` — serve
        //    with a memcpy) vs cold (must cross the transport again),
        //    and reassemble the image for structural verification.
        let mut image = Payload::empty();
        let mut plan = Vec::with_capacity(manifest.chunks.len());
        let mut warm_bytes = 0u64;
        let mut cold = Vec::new();
        {
            let idx = self.inner.index.lock().unwrap();
            for key in &manifest.chunks {
                let entry = idx.chunks.get(key).ok_or_else(|| {
                    IoError::Other(format!(
                        "snapstore {path}: chunk {:#x}+{} missing from store (collected?)",
                        key.0, key.1
                    ))
                })?;
                image.append(entry.content.clone());
                if idx.is_warm(local, key) {
                    warm_bytes += key.1;
                    plan.push(RestoreStep {
                        key: *key,
                        warm: Some(entry.content.clone()),
                    });
                } else {
                    cold.push(entry.content.clone());
                    plan.push(RestoreStep {
                        key: *key,
                        warm: None,
                    });
                }
            }
        }
        let cold_bytes = manifest.total - warm_bytes;

        // 3. Verify the reassembled image against the manifest before
        //    handing out a single byte (the incremental-chain
        //    discipline: reject, never silently restore). This is the
        //    free structural check; the metered digest pass is paid per
        //    cold chunk on arrival — warm chunks were verified when
        //    they entered the cache.
        if image.len() != manifest.total {
            return Err(IoError::Other(format!(
                "snapstore {path}: image length mismatch: manifest says {}, rebuilt {}",
                manifest.total,
                image.len()
            )));
        }
        let got = image.digest();
        if got != manifest.image_digest {
            return Err(IoError::Other(format!(
                "snapstore {path}: image digest mismatch: manifest says {:#x}, rebuilt {got:#x}",
                manifest.image_digest
            )));
        }
        let _g = obs::span!(
            "snapify.restore.fetch",
            chunks = plan.len(),
            warm_bytes = warm_bytes,
            cold_bytes = cold_bytes,
        );

        // 4. Cold chunks cross the transport: materialize a staging
        //    file holding ONLY the cold bytes (content lands
        //    immediately, the write-back overlaps the reads) and fetch
        //    it back through the wrapped backend — pipelined on a
        //    dedicated prefetch thread so the transport of chunk `k+1`
        //    overlaps the replay of chunk `k`. The staging file dies
        //    with the source. A fully-warm restore opens no stream at
        //    all.
        let fs = self.storage_fs(local);
        let mut staging = None;
        let fetch = if cold_bytes == 0 {
            ColdFetch::None
        } else {
            let spath = format!("{path}.restore");
            fs.create_or_truncate(&spath);
            for content in &cold {
                for chunk in content.chunks(self.inner.config.chunk_size) {
                    fs.append_async(&spath, chunk)?;
                }
            }
            staging = Some(spath.clone());
            if self.inner.config.restore_pipelined {
                let tx: SimChannel<Payload> = SimChannel::bounded(
                    format!("snapstore-restore-pipe:{path}"),
                    self.inner.config.restore_prefetch_depth.max(1),
                );
                let rx = tx.clone();
                let store = self.clone();
                let cold_lens: Vec<u64> = cold.iter().map(|c| c.len()).collect();
                let handle = simkernel::spawn(format!("snapstore-restore:{path}"), move || {
                    let run = || -> Result<(), IoError> {
                        let mut src = store.backend().source(local, &spath)?;
                        for len in cold_lens {
                            let chunk = read_exact(src.as_mut(), len, &spath)?;
                            if tx.send(chunk).is_err() {
                                // The reader went away mid-restore.
                                return Ok(());
                            }
                        }
                        Ok(())
                    };
                    let out = run();
                    // Done or dead: unblock the reader either way.
                    tx.close();
                    out
                });
                ColdFetch::Pipelined {
                    rx,
                    handle: Some(handle),
                }
            } else {
                ColdFetch::Serial {
                    inner: self.backend().source(local, &spath)?,
                }
            }
        };
        Ok(Box::new(DedupSource {
            store: self.clone(),
            local,
            path: path.to_string(),
            fs,
            staging,
            steps: plan.into_iter(),
            fetch,
            pending: Payload::empty(),
            opened_at: now(),
            stalled: SimDuration::ZERO,
        }))
    }

    /// Import `path` from the shared cross-node pool into this store:
    /// pin the manifest's chunks for the duration of the transfer (so
    /// no other node's GC can collect them mid-flight), fetch the
    /// chunks this store has never seen over the cluster NIC, install
    /// everything locally (manifest artifact, chunk index entries,
    /// warm-cache membership for the bytes that just landed), and
    /// register this node as a pool holder so the content outlives the
    /// original publisher. Returns `Ok(false)` when there is no pool or
    /// the pool has no visible manifest at `path` — the caller's local
    /// miss then stands.
    fn pool_import(&self, local: NodeId, path: &str) -> Result<bool, IoError> {
        let Some(att) = self.inner.pool.get() else {
            return Ok(false);
        };
        let Some(pm) = att.pool.manifest(path) else {
            return Ok(false);
        };
        let _span = obs::span!(
            "snapstore.pool.import",
            path = path,
            chunks = pm.chunks.len(),
        );
        // The satellite GC-race fix: pins keep every referenced chunk
        // alive for the whole import, however long the transfer takes
        // and whoever releases the manifest meanwhile.
        let pins = att.pool.pin(&pm.chunks).map_err(|key| {
            IoError::Other(format!(
                "snapstore {path}: cluster pool chunk {:#x}+{} collected before import",
                key.0, key.1
            ))
        })?;
        let mut unique: Vec<ChunkKey> = Vec::new();
        for key in &pm.chunks {
            if !unique.contains(key) {
                unique.push(*key);
            }
        }
        let mut fetched: HashMap<ChunkKey, Payload> = HashMap::new();
        let mut fetched_bytes = 0u64;
        let mut avoided_bytes = 0u64;
        for key in &unique {
            if self.inner.index.lock().unwrap().chunks.contains_key(key) {
                // This node already holds the content — the whole point
                // of a content-addressed fleet pool: nothing ships.
                avoided_bytes += key.1;
                continue;
            }
            // The transfer rides this node's cluster NIC; the chaos
            // plane can fault it like any other transport.
            match self.inner.server.faults().take(FaultTarget::Net(att.node)) {
                Some(FaultKind::ConnReset) => {
                    return Err(IoError::Other(format!(
                        "snapstore {path}: cluster fetch reset by peer (net{})",
                        att.node
                    )));
                }
                Some(FaultKind::NfsTimeout(d)) => {
                    simkernel::sleep(d);
                    return Err(IoError::Other(format!(
                        "snapstore {path}: cluster fetch timed out (net{})",
                        att.node
                    )));
                }
                Some(FaultKind::BusDelay(d)) => simkernel::sleep(d),
                _ => {}
            }
            att.nic.transfer(key.1);
            let content = att.pool.chunk(key).ok_or_else(|| {
                IoError::Other(format!(
                    "snapstore {path}: cluster pool chunk {:#x}+{} vanished while pinned",
                    key.0, key.1
                ))
            })?;
            fetched_bytes += key.1;
            fetched.insert(*key, content);
        }
        // The manifest artifact itself crosses the network too, and
        // becomes this node's durable copy through the backend.
        let manifest = Manifest {
            chunks: pm.chunks.clone(),
            total: pm.total,
            image_digest: pm.image_digest,
        };
        let bytes = manifest.encode();
        fetched_bytes += bytes.len() as u64;
        let mut msink = self.backend().sink(local, path)?;
        msink
            .write(Payload::bytes(bytes))
            .and_then(|_| msink.close())?;
        // Install into the local index, mirroring `commit`.
        let pack = if fetched.is_empty() {
            None
        } else {
            Some(self.new_pack(path, local).0)
        };
        let mut dead_files = Vec::new();
        {
            let mut idx = self.inner.index.lock().unwrap();
            let old = idx.manifests.remove(path);
            for key in &pm.chunks {
                if let Some(entry) = idx.chunks.get_mut(key) {
                    entry.refs += 1;
                    continue;
                }
                let content = fetched.get(key).expect("novel chunk fetched").clone();
                let pack = pack.expect("novel chunks imply a pack");
                idx.chunks.insert(
                    *key,
                    ChunkEntry {
                        content: content.normalize(),
                        refs: 1,
                        pack,
                    },
                );
                idx.packs.get_mut(&pack).expect("pack registered").live += 1;
                idx.stats.bytes_stored += key.1;
            }
            // Fetched bytes just landed on the importing node: they are
            // warm for the restore about to replay them. Chunks the
            // node merely indexes elsewhere stay cold.
            for key in &pm.chunks {
                if fetched.contains_key(key) {
                    idx.warm_insert(local, *key, &self.inner.config);
                }
            }
            if let Some(old) = old {
                release_manifest(&mut idx, old, &mut dead_files);
            }
            if let Some(pack) = pack {
                if idx.packs.get(&pack).map(|p| p.live) == Some(0) {
                    let info = idx.packs.remove(&pack).unwrap();
                    dead_files.push((info.node, info.path));
                }
            }
            idx.manifests.insert(
                path.to_string(),
                ManifestRecord {
                    chunks: pm.chunks.clone(),
                    node: local,
                },
            );
            idx.stats.manifests = idx.manifests.len() as u64;
        }
        self.delete_files(dead_files);
        // This node now holds the manifest: its pool references keep
        // the chunks alive after the publisher releases its own.
        att.pool.add_holder(path, att.node);
        att.pool.note_import(fetched_bytes, avoided_bytes);
        drop(pins);
        obs::counter_add("snapstore.pool.bytes_fetched", fetched_bytes);
        obs::counter_add("snapstore.pool.bytes_avoided", avoided_bytes);
        Ok(true)
    }
}

/// Read exactly `len` bytes from `src` (backends may return short
/// reads); fewer means the staging stream was truncated underneath us.
fn read_exact(src: &mut dyn ByteSource, len: u64, path: &str) -> Result<Payload, IoError> {
    let mut got = Payload::empty();
    while got.len() < len {
        match src.read(len - got.len())? {
            Some(c) => got.append(c),
            None => {
                return Err(IoError::Other(format!(
                    "snapstore {path}: staging truncated at {}/{len}",
                    got.len()
                )))
            }
        }
    }
    Ok(got)
}

// ---------------------------------------------------------------------------
// Capture side
// ---------------------------------------------------------------------------

enum Shipper {
    /// Dedicated sim thread pulling novel chunks off a bounded queue.
    Pipelined {
        tx: SimChannel<Payload>,
        handle: simkernel::JoinHandle<Result<u64, IoError>>,
        pack: u64,
    },
    /// Inline shipping (serial baseline).
    Serial {
        sink: Box<dyn ByteSink>,
        pack: u64,
        shipped: u64,
    },
}

/// Capture-side sink: chunks, digests, dedups and ships the stream.
pub struct DedupSink {
    store: Dedup,
    local: NodeId,
    path: String,
    /// Bytes accumulated toward the next chunk cut.
    pending: Payload,
    /// Ordered chunk references — the manifest body.
    refs: Vec<ChunkKey>,
    /// Chunks novel in this snapshot, held until commit.
    fresh: HashMap<ChunkKey, Payload>,
    /// The whole stream (cheap handles), for the final image digest.
    image: Payload,
    ship: Option<Shipper>,
    /// A failure recorded by the infallible `mark_boundary` hint,
    /// surfaced by the next fallible call.
    failed: Option<IoError>,
    closed: bool,
    /// The prior snapshot's record ledger at this path, if one exists
    /// and the delta chain is not due for a rebase. What
    /// `write_cached_record` replays from.
    prior_spans: Option<HashMap<String, RegionSpan>>,
    /// The ledger this capture is building (installed at commit).
    next_spans: HashMap<String, RegionSpan>,
    /// The record currently being streamed: name, advertised content
    /// digest/len, and where in `refs` its chunks start.
    current_span: Option<(String, u64, u64, usize)>,
    /// Whether any record was replayed from the prior ledger (decides
    /// whether the committed ledger extends the delta chain).
    reused: bool,
}

impl DedupSink {
    fn process_chunk(&mut self, chunk: Payload) -> Result<(), IoError> {
        let len = chunk.len();
        // The digest pass occupies a capture-side core; the shipper
        // thread (if any) moves the previous chunk meanwhile.
        self.store.hasher(self.local).transfer(len);
        let key = (chunk.digest(), len);
        self.refs.push(key);
        self.image.append(chunk.clone());
        if self.fresh.contains_key(&key) || self.store.has_chunk(&key) {
            self.store.note_hit(self.local, len);
            return Ok(());
        }
        self.store.note_miss(self.local, len);
        self.fresh.insert(key, chunk.clone());
        self.ship_chunk(chunk)
    }

    fn ship_chunk(&mut self, chunk: Payload) -> Result<(), IoError> {
        if self.ship.is_none() {
            self.ship = Some(self.start_shipper()?);
        }
        match self.ship.as_mut().unwrap() {
            Shipper::Pipelined { tx, .. } => {
                if tx.send(chunk).is_err() {
                    // The shipper died mid-stream; surface its error.
                    return Err(self
                        .finish_shipper()
                        .expect_err("dead shipper has an error"));
                }
                Ok(())
            }
            Shipper::Serial { sink, shipped, .. } => {
                let len = chunk.len();
                sink.write(chunk)?;
                *shipped += len;
                Ok(())
            }
        }
    }

    /// Open the pack stream (lazily: a fully-warm snapshot never opens
    /// one). Pipelined mode hands the backend sink to a dedicated
    /// thread fed by a bounded queue.
    fn start_shipper(&mut self) -> Result<Shipper, IoError> {
        let (pack, pack_path) = self.store.new_pack(&self.path, self.local);
        if !self.store.inner.config.pipelined {
            match self.store.backend().sink(self.local, &pack_path) {
                Ok(sink) => {
                    return Ok(Shipper::Serial {
                        sink,
                        pack,
                        shipped: 0,
                    })
                }
                Err(e) => {
                    self.store.discard_pack(pack);
                    return Err(e);
                }
            }
        }
        let tx: SimChannel<Payload> = SimChannel::bounded(
            format!("snapstore-pipe:{}", self.path),
            self.store.inner.config.pipeline_depth.max(1),
        );
        let rx = tx.clone();
        let store = self.store.clone();
        let local = self.local;
        let handle = simkernel::spawn(format!("snapstore-ship:{}", self.path), move || {
            let run = || -> Result<u64, IoError> {
                let mut sink = store.backend().sink(local, &pack_path)?;
                let mut shipped = 0u64;
                while let Ok(chunk) = rx.recv() {
                    let len = chunk.len();
                    sink.write(chunk)?;
                    shipped += len;
                }
                sink.close()?;
                Ok(shipped)
            };
            let out = run();
            if out.is_err() {
                // Unblock a sender stuck on the bounded queue.
                rx.close();
            }
            out
        });
        Ok(Shipper::Pipelined { tx, handle, pack })
    }

    /// Close the pack stream and collect how many bytes it shipped.
    /// On error the partial pack is discarded.
    fn finish_shipper(&mut self) -> Result<(Option<u64>, u64), IoError> {
        match self.ship.take() {
            None => Ok((None, 0)),
            Some(Shipper::Serial {
                mut sink,
                pack,
                shipped,
            }) => match sink.close() {
                Ok(()) => Ok((Some(pack), shipped)),
                Err(e) => {
                    self.store.discard_pack(pack);
                    Err(e)
                }
            },
            Some(Shipper::Pipelined { tx, handle, pack }) => {
                tx.close();
                match handle.join() {
                    Ok(shipped) => Ok((Some(pack), shipped)),
                    Err(e) => {
                        self.store.discard_pack(pack);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Terminate the record in progress: cut the pending tail so the
    /// record's bytes occupy whole chunks, then (if the capture named
    /// the record) remember its chunk run in the ledger being built.
    fn close_span(&mut self) -> Result<(), IoError> {
        self.cut_pending(true)?;
        if let Some((name, digest, len, start)) = self.current_span.take() {
            if !name.is_empty() && start <= self.refs.len() {
                self.next_spans.insert(
                    name,
                    RegionSpan {
                        digest,
                        len,
                        chunks: self.refs[start..].to_vec(),
                    },
                );
            }
        }
        Ok(())
    }

    fn cut_pending(&mut self, boundary: bool) -> Result<(), IoError> {
        let chunk_size = self.store.inner.config.chunk_size;
        while self.pending.len() >= chunk_size {
            let chunk = self.pending.slice(0, chunk_size);
            self.pending = self
                .pending
                .slice(chunk_size, self.pending.len() - chunk_size);
            self.process_chunk(chunk)?;
        }
        if boundary && !self.pending.is_empty() {
            let tail = std::mem::replace(&mut self.pending, Payload::empty());
            self.process_chunk(tail)?;
        }
        Ok(())
    }
}

impl ByteSink for DedupSink {
    fn write(&mut self, data: Payload) -> Result<(), IoError> {
        if self.closed {
            return Err(IoError::Closed);
        }
        if let Some(e) = self.failed.take() {
            return Err(e);
        }
        self.pending.append(data);
        self.cut_pending(false)
    }

    fn mark_boundary(&mut self) {
        // A record boundary: cut the tail so the next record starts a
        // fresh chunk, keeping identical regions aligned even when
        // earlier content shifted. The hint is infallible, so a failure
        // is remembered and surfaced by the next write or close.
        if self.closed || self.failed.is_some() {
            return;
        }
        if let Err(e) = self.cut_pending(true) {
            self.failed = Some(e);
        }
    }

    fn begin_record(&mut self, name: &str, digest: u64, len: u64) {
        if self.closed || self.failed.is_some() {
            return;
        }
        if let Err(e) = self.close_span() {
            self.failed = Some(e);
            return;
        }
        if !name.is_empty() {
            self.current_span = Some((name.to_string(), digest, len, self.refs.len()));
        }
    }

    fn write_cached_record(&mut self, name: &str, digest: u64, len: u64) -> Result<bool, IoError> {
        if self.closed {
            return Err(IoError::Closed);
        }
        if let Some(e) = self.failed.take() {
            return Err(e);
        }
        self.close_span()?;
        let span = match self.prior_spans.as_ref().and_then(|s| s.get(name)) {
            Some(s) if s.digest == digest && s.len == len => s.clone(),
            _ => return Ok(false),
        };
        // Replay the prior snapshot's chunk run for this record. Every
        // chunk must still be live in the index — the prior manifest at
        // this path pins them until commit, but a ledger can outlive
        // content in edge cases (concurrent deletes), and a stale span
        // must fall back to streaming, never fabricate bytes.
        {
            let mut idx = self.store.inner.index.lock().unwrap();
            if !span.chunks.iter().all(|k| idx.chunks.contains_key(k)) {
                return Ok(false);
            }
            let mut bytes = 0u64;
            for key in &span.chunks {
                let entry = &idx.chunks[key];
                self.image.append(entry.content.clone());
                self.refs.push(*key);
                bytes += key.1;
            }
            idx.stats.capture_clean_bytes += bytes;
        }
        // No read, no chunking, no digest pass, no transport: the whole
        // record costs index metadata only. That is the O(dirty) claim.
        self.next_spans.insert(name.to_string(), span);
        self.reused = true;
        Ok(true)
    }

    fn close(&mut self) -> Result<(), IoError> {
        if self.closed {
            return Ok(());
        }
        if let Some(e) = self.failed.take() {
            return Err(e);
        }
        self.close_span()?;
        let (pack, _shipped) = self.finish_shipper()?;
        // The manifest is the durable artifact the backend stores under
        // the snapshot path.
        let manifest = Manifest {
            chunks: self.refs.clone(),
            total: self.image.len(),
            image_digest: self.image.digest(),
        };
        let bytes = manifest.encode();
        let manifest_len = bytes.len() as u64;
        let mut msink = match self.store.backend().sink(self.local, &self.path) {
            Ok(s) => s,
            Err(e) => {
                if let Some(pack) = pack {
                    self.store.discard_pack(pack);
                }
                return Err(e);
            }
        };
        if let Err(e) = msink
            .write(Payload::bytes(bytes))
            .and_then(|_| msink.close())
        {
            if let Some(pack) = pack {
                self.store.discard_pack(pack);
            }
            return Err(e);
        }
        self.store.commit(
            &self.path,
            self.local,
            pack,
            &self.refs,
            &mut self.fresh,
            manifest_len,
            manifest.total,
            manifest.image_digest,
            std::mem::take(&mut self.next_spans),
            self.reused,
        );
        self.closed = true;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Restore side
// ---------------------------------------------------------------------------

/// One chunk of the restore plan: warm chunks carry their content
/// (served with a local memcpy); cold chunks are fetched in plan order.
struct RestoreStep {
    key: ChunkKey,
    warm: Option<Payload>,
}

/// How cold chunks reach the restoring node.
enum ColdFetch {
    /// Dedicated prefetch thread pushing cold chunks through a bounded
    /// queue — transport of chunk `k+1` overlaps the replay of `k`.
    Pipelined {
        rx: SimChannel<Payload>,
        handle: Option<simkernel::JoinHandle<Result<(), IoError>>>,
    },
    /// Inline fetch (serial baseline).
    Serial { inner: Box<dyn ByteSource> },
    /// Fully-warm restore: nothing crosses the transport.
    None,
}

/// Restore-side source: replays the manifest's chunk sequence, serving
/// warm chunks from the restoring node's cache and cold chunks through
/// the backend transport. Deletes its staging file when dropped.
struct DedupSource {
    store: Dedup,
    local: NodeId,
    path: String,
    fs: SimFs,
    staging: Option<String>,
    steps: std::vec::IntoIter<RestoreStep>,
    fetch: ColdFetch,
    /// Bytes from completed steps not yet handed to the caller.
    pending: Payload,
    opened_at: SimTime,
    /// Time spent waiting on the prefetch queue (the un-overlapped
    /// remainder of the cold transport).
    stalled: SimDuration,
}

impl DedupSource {
    /// Complete the next plan step, appending its bytes to `pending`.
    fn replay_step(&mut self, step: RestoreStep) -> Result<(), IoError> {
        let (digest, len) = step.key;
        if let Some(content) = step.warm {
            // Warm hit: the store still holds a pinned, verified copy
            // of these bytes — one host memcpy feeds them into the
            // replay stream; no backend transport, no re-hash (the
            // cached copy was verified when it entered the cache).
            self.store.server().host().memcpy(len);
            let mut idx = self.store.inner.index.lock().unwrap();
            idx.warm_insert(self.local, step.key, &self.store.inner.config);
            idx.stats.restore_chunks_warm += 1;
            idx.stats.restore_bytes_avoided += len;
            drop(idx);
            obs::counter_add("snapify.restore.cache_hits", 1);
            obs::counter_add("snapify.restore.bytes_avoided", len);
            if obs::is_enabled() {
                let n = self.local.to_string();
                obs::counter_add_labeled("snapify.restore.cache_hits", &[("node", &n)], 1);
                obs::counter_add_labeled("snapify.restore.bytes_avoided", &[("node", &n)], len);
            }
            self.pending.append(content);
            return Ok(());
        }
        let chunk = match &mut self.fetch {
            ColdFetch::Pipelined { rx, handle } => {
                let t0 = now();
                let got = rx.recv();
                self.stalled += now() - t0;
                match got {
                    Ok(c) => c,
                    Err(_) => {
                        // The prefetcher closed the queue with cold
                        // steps outstanding: surface its error.
                        return Err(match handle.take() {
                            Some(h) => match h.join() {
                                Err(e) => e,
                                Ok(()) => IoError::Other(format!(
                                    "snapstore {}: restore prefetch ended early",
                                    self.path
                                )),
                            },
                            None => IoError::Closed,
                        });
                    }
                }
            }
            ColdFetch::Serial { inner } => {
                let staging = self.staging.as_deref().unwrap_or(&self.path);
                read_exact(inner.as_mut(), len, staging)?
            }
            ColdFetch::None => {
                return Err(IoError::Other(format!(
                    "snapstore {}: cold chunk in a fully-warm plan",
                    self.path
                )))
            }
        };
        // Verify on arrival (the digest pass runs on the restoring
        // node's core, overlapping the prefetch of the next chunk),
        // then the chunk is warm here.
        self.store.hasher(self.local).transfer(len);
        if chunk.len() != len || chunk.digest() != digest {
            return Err(IoError::Other(format!(
                "snapstore {}: cold chunk {digest:#x}+{len} corrupted in transit",
                self.path
            )));
        }
        let mut idx = self.store.inner.index.lock().unwrap();
        if idx.chunks.contains_key(&step.key) {
            idx.warm_insert(self.local, step.key, &self.store.inner.config);
        }
        idx.stats.restore_chunks_cold += 1;
        idx.stats.restore_bytes_fetched += len;
        drop(idx);
        obs::counter_add("snapify.restore.bytes_fetched", len);
        if obs::is_enabled() {
            let n = self.local.to_string();
            obs::counter_add_labeled("snapify.restore.bytes_fetched", &[("node", &n)], len);
        }
        self.pending.append(chunk);
        Ok(())
    }
}

impl ByteSource for DedupSource {
    fn read(&mut self, max: u64) -> Result<Option<Payload>, IoError> {
        while self.pending.is_empty() {
            match self.steps.next() {
                Some(step) => self.replay_step(step)?,
                None => return Ok(None),
            }
        }
        let n = max.min(self.pending.len());
        let out = self.pending.slice(0, n);
        self.pending = self.pending.slice(n, self.pending.len() - n);
        Ok(Some(out))
    }
}

impl Drop for DedupSource {
    fn drop(&mut self) {
        if let ColdFetch::Pipelined { rx, handle } = &mut self.fetch {
            // Unblock a prefetcher stuck on the bounded queue, then
            // wait it out so the staging file is not deleted while it
            // still reads.
            rx.close();
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
            let elapsed = now() - self.opened_at;
            if elapsed.as_secs_f64() > 0.0 {
                let overlap_pct = 100u64.saturating_sub(
                    (100.0 * self.stalled.as_secs_f64() / elapsed.as_secs_f64()) as u64,
                );
                obs::histogram_observe("snapify.restore.overlap_pct", overlap_pct);
            }
        }
        if let Some(staging) = &self.staging {
            let _ = self.fs.delete(staging);
        }
    }
}

// ---------------------------------------------------------------------------
// Manifest format
// ---------------------------------------------------------------------------

const MANIFEST_MAGIC: &[u8; 8] = b"SNAPSTO1";

/// The durable snapshot artifact: ordered chunk references plus the
/// final image digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Ordered chunk references.
    pub chunks: Vec<ChunkKey>,
    /// Total image length in bytes.
    pub total: u64,
    /// Digest of the whole reassembled image.
    pub image_digest: u64,
}

impl Manifest {
    /// Serialize: magic, chunk count, (digest, len) pairs, total length,
    /// image digest — all u64 little-endian.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 + self.chunks.len() * 16 + 16);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&(self.chunks.len() as u64).to_le_bytes());
        for (digest, len) in &self.chunks {
            out.extend_from_slice(&digest.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        out.extend_from_slice(&self.total.to_le_bytes());
        out.extend_from_slice(&self.image_digest.to_le_bytes());
        out
    }

    /// Parse a serialized manifest; rejects anything malformed.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, String> {
        let mut off = 0usize;
        let take = |off: &mut usize, n: usize| -> Result<&[u8], String> {
            let s = bytes
                .get(*off..*off + n)
                .ok_or_else(|| format!("manifest truncated at byte {}", *off))?;
            *off += n;
            Ok(s)
        };
        let u64_at = |off: &mut usize| -> Result<u64, String> {
            Ok(u64::from_le_bytes(take(off, 8)?.try_into().unwrap()))
        };
        if take(&mut off, 8)? != MANIFEST_MAGIC {
            return Err("bad manifest magic".into());
        }
        let n = u64_at(&mut off)?;
        if n > (bytes.len() as u64) / 16 {
            return Err(format!("manifest chunk count {n} exceeds file size"));
        }
        let mut chunks = Vec::with_capacity(n as usize);
        let mut sum = 0u64;
        for _ in 0..n {
            let digest = u64_at(&mut off)?;
            let len = u64_at(&mut off)?;
            sum += len;
            chunks.push((digest, len));
        }
        let total = u64_at(&mut off)?;
        let image_digest = u64_at(&mut off)?;
        if off != bytes.len() {
            return Err(format!(
                "{} trailing bytes after manifest",
                bytes.len() - off
            ));
        }
        if sum != total {
            return Err(format!(
                "manifest chunk lengths sum to {sum}, header says {total}"
            ));
        }
        Ok(Manifest {
            chunks,
            total,
            image_digest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_platform::MB;
    use simkernel::{now, Kernel};
    use simproc::{FsSink, FsSource};

    /// Minimal backend: files on the host fs, no transport cost beyond
    /// the fs model itself.
    struct HostFs(PhiServer);

    impl SnapshotStorage for HostFs {
        fn sink(&self, _local: NodeId, path: &str) -> Result<Box<dyn ByteSink>, IoError> {
            Ok(Box::new(FsSink::create(self.0.host().fs(), path)))
        }
        fn source(&self, _local: NodeId, path: &str) -> Result<Box<dyn ByteSource>, IoError> {
            Ok(Box::new(FsSource::open(self.0.host().fs(), path)?))
        }
        fn label(&self) -> &'static str {
            "hostfs"
        }
    }

    fn store(server: &PhiServer, config: DedupConfig) -> Dedup {
        Dedup::new(server, Arc::new(HostFs(server.clone())), config)
    }

    fn write_stream(store: &Dedup, path: &str, parts: &[Payload]) {
        let mut sink = store.sink(NodeId::device(0), path).unwrap();
        for p in parts {
            sink.mark_boundary();
            for chunk in p.chunks(8 << 20) {
                sink.write(chunk).unwrap();
            }
        }
        sink.close().unwrap();
    }

    fn read_stream(store: &Dedup, path: &str) -> Payload {
        read_stream_from(store, NodeId::device(0), path)
    }

    fn read_stream_from(store: &Dedup, local: NodeId, path: &str) -> Payload {
        let mut src = store.source(local, path).unwrap();
        let mut out = Payload::empty();
        while let Some(c) = src.read(8 << 20).unwrap() {
            out.append(c);
        }
        out
    }

    #[test]
    fn roundtrip_preserves_content() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let data = Payload::synthetic(3, 20 * MB);
            write_stream(&st, "/snap/rt", std::slice::from_ref(&data));
            assert_eq!(read_stream(&st, "/snap/rt").digest(), data.digest());
        });
    }

    #[test]
    fn roundtrip_real_bytes() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let data = Payload::bytes((0..=255u8).cycle().take(10_000).collect::<Vec<_>>());
            write_stream(&st, "/snap/rb", std::slice::from_ref(&data));
            assert_eq!(read_stream(&st, "/snap/rb").to_bytes(), data.to_bytes());
        });
    }

    #[test]
    fn second_identical_snapshot_ships_almost_nothing() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let data = Payload::synthetic(7, 64 * MB);
            write_stream(&st, "/snap/a", std::slice::from_ref(&data));
            let cold = st.stats().bytes_shipped;
            write_stream(&st, "/snap/b", std::slice::from_ref(&data));
            let warm = st.stats().bytes_shipped - cold;
            assert!(cold >= 64 * MB, "cold run ships the image: {cold}");
            assert!(
                warm * 5 < cold,
                "warm run ships only the manifest: warm={warm} cold={cold}"
            );
            assert_eq!(st.stats().chunks_hit, st.stats().chunks_miss);
            // Both snapshots restore bit-identically.
            assert_eq!(read_stream(&st, "/snap/a").digest(), data.digest());
            assert_eq!(read_stream(&st, "/snap/b").digest(), data.digest());
        });
    }

    #[test]
    fn boundary_marks_keep_shifted_regions_aligned() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            // Snapshot 2 prepends a small header before the same two big
            // regions. With boundary cuts the big regions dedup even
            // though their byte offsets shifted.
            let big1 = Payload::synthetic(1, 16 * MB);
            let big2 = Payload::synthetic(2, 16 * MB);
            write_stream(&st, "/snap/s1", &[big1.clone(), big2.clone()]);
            let cold = st.stats().bytes_shipped;
            let header = Payload::bytes(vec![9u8; 4096]);
            write_stream(&st, "/snap/s2", &[header, big1, big2]);
            let warm = st.stats().bytes_shipped - cold;
            assert!(
                warm < MB,
                "only the header and manifest ship on the shifted snapshot: {warm}"
            );
        });
    }

    #[test]
    fn resnapshot_to_same_path_releases_old_refs() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let v1 = Payload::synthetic(1, 16 * MB);
            let v2 = Payload::synthetic(2, 16 * MB);
            write_stream(&st, "/snap/r", std::slice::from_ref(&v1));
            assert_eq!(st.stats().bytes_stored, 16 * MB);
            write_stream(&st, "/snap/r", std::slice::from_ref(&v2));
            // v1's chunks died with the manifest they belonged to.
            assert_eq!(st.stats().bytes_stored, 16 * MB);
            assert!(st.stats().chunks_freed > 0);
            assert_eq!(st.stats().manifests, 1);
            assert_eq!(read_stream(&st, "/snap/r").digest(), v2.digest());
        });
    }

    #[test]
    fn resnapshot_same_path_same_content_keeps_chunks_live() {
        Kernel::run_root(|| {
            // The warm-swap shape: a tenant swaps out twice to the same
            // path with unchanged state. The second commit must bump refs
            // before releasing the manifest it replaces, or it would free
            // the very chunks it dedup'd against.
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let data = Payload::synthetic(6, 32 * MB);
            write_stream(&st, "/snap/rs", std::slice::from_ref(&data));
            let cold = st.stats().bytes_shipped;
            write_stream(&st, "/snap/rs", std::slice::from_ref(&data));
            let warm = st.stats().bytes_shipped - cold;
            assert!(warm * 5 < cold, "warm={warm} cold={cold}");
            assert_eq!(st.stats().bytes_stored, 32 * MB);
            assert_eq!(read_stream(&st, "/snap/rs").digest(), data.digest());
        });
    }

    #[test]
    fn gc_frees_unshared_chunks_and_keeps_shared_ones() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let shared = Payload::synthetic(1, 16 * MB);
            let only_a = Payload::synthetic(2, 8 * MB);
            write_stream(&st, "/snap/ga", &[shared.clone(), only_a]);
            write_stream(&st, "/snap/gb", std::slice::from_ref(&shared));
            assert_eq!(st.stats().bytes_stored, 24 * MB);
            assert!(st.delete_snapshot("/snap/ga"));
            // The shared region survives for /snap/gb.
            assert_eq!(st.stats().bytes_stored, 16 * MB);
            assert_eq!(read_stream(&st, "/snap/gb").digest(), shared.digest());
            assert!(st.delete_snapshot("/snap/gb"));
            assert_eq!(st.stats().bytes_stored, 0);
            assert!(!st.delete_snapshot("/snap/gb"), "second delete is a no-op");
            // Manifest and pack files are gone from the fs.
            assert!(!server.host().fs().exists("/snap/ga"));
            assert!(st.stats().packs_deleted >= 1);
        });
    }

    #[test]
    fn delete_prefix_collects_a_whole_snapshot_directory() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            write_stream(
                &st,
                "/swap/job1/device_snapshot",
                &[Payload::synthetic(1, 8 * MB)],
            );
            write_stream(
                &st,
                "/swap/job1/local_store/buf_0",
                &[Payload::synthetic(2, 8 * MB)],
            );
            write_stream(
                &st,
                "/swap/job2/device_snapshot",
                &[Payload::synthetic(3, 8 * MB)],
            );
            assert_eq!(st.delete_prefix("/swap/job1/"), 2);
            assert_eq!(st.stats().bytes_stored, 8 * MB);
            assert_eq!(st.stats().manifests, 1);
        });
    }

    /// Capture `records` through the incremental record API: a record
    /// flagged clean tries the prior snapshot's ledger first, anything
    /// else streams. `trailer` rides after the final record cut (the
    /// stream's image-digest position). Returns which records were
    /// replayed from the ledger.
    fn write_records(
        st: &Dedup,
        path: &str,
        records: &[(&str, Payload, bool)],
        trailer: &[u8],
    ) -> Vec<bool> {
        let mut sink = st.sink(NodeId::device(0), path).unwrap();
        let mut cached = Vec::new();
        for (name, content, clean) in records {
            let hit = *clean
                && sink
                    .write_cached_record(name, content.digest(), content.len())
                    .unwrap();
            if !hit {
                sink.begin_record(name, content.digest(), content.len());
                for chunk in content.chunks(8 << 20) {
                    sink.write(chunk).unwrap();
                }
            }
            cached.push(hit);
        }
        sink.begin_record("", 0, 0);
        sink.write(Payload::bytes(trailer.to_vec())).unwrap();
        sink.close().unwrap();
        cached
    }

    /// The image `write_records` produces for `records` + `trailer`.
    fn image_of(records: &[(&str, Payload, bool)], trailer: &[u8]) -> Payload {
        let mut p = Payload::empty();
        for (_, content, _) in records {
            p.append(content.clone());
        }
        p.append(Payload::bytes(trailer.to_vec()));
        p
    }

    #[test]
    fn incremental_capture_reuses_clean_records_and_restores_identically() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let a = Payload::synthetic(1, 32 * MB);
            let b1 = Payload::synthetic(2, 32 * MB);
            let b2 = Payload::synthetic(3, 32 * MB);
            let v1 = [("a", a.clone(), false), ("b", b1, false)];
            write_records(&st, "/snap/inc", &v1, b"t1");
            let s1 = st.stats();
            assert_eq!(s1.capture_dirty_bytes, 64 * MB + 2);
            assert_eq!(s1.capture_clean_bytes, 0);
            assert_eq!(
                read_stream(&st, "/snap/inc").digest(),
                image_of(&v1, b"t1").digest()
            );

            // Second capture: `a` untouched, `b` rewritten. Only `b` and
            // the new trailer enter the chunk/digest pipeline; `a` is
            // rebuilt from the prior snapshot's chunks.
            let v2 = [("a", a, true), ("b", b2, false)];
            let hits = write_records(&st, "/snap/inc", &v2, b"t2");
            assert_eq!(hits, vec![true, false]);
            let s2 = st.stats();
            assert_eq!(s2.capture_clean_bytes, 32 * MB);
            assert_eq!(s2.capture_dirty_bytes - s1.capture_dirty_bytes, 32 * MB + 2);
            assert_eq!(
                read_stream(&st, "/snap/inc").digest(),
                image_of(&v2, b"t2").digest()
            );
        });
    }

    #[test]
    fn cached_record_with_changed_content_falls_back_to_streaming() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let v1 = [("a", Payload::synthetic(1, 16 * MB), false)];
            write_records(&st, "/snap/chg", &v1, b"t");
            // Same name, different bytes: the ledger's digest check
            // rejects the replay and the record streams in full.
            let v2 = [("a", Payload::synthetic(2, 16 * MB), true)];
            assert_eq!(write_records(&st, "/snap/chg", &v2, b"t"), vec![false]);
            assert_eq!(
                read_stream(&st, "/snap/chg").digest(),
                image_of(&v2, b"t").digest()
            );
        });
    }

    #[test]
    fn rebase_period_forces_a_full_restream() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(
                &server,
                DedupConfig {
                    incremental_rebase_every: 2,
                    ..DedupConfig::default()
                },
            );
            let recs = [("a", Payload::synthetic(4, 16 * MB), true)];
            // Base, delta, rebase (ledger withheld), delta again.
            assert_eq!(write_records(&st, "/snap/rb", &recs, b"t"), vec![false]);
            assert_eq!(write_records(&st, "/snap/rb", &recs, b"t"), vec![true]);
            assert_eq!(write_records(&st, "/snap/rb", &recs, b"t"), vec![false]);
            assert_eq!(write_records(&st, "/snap/rb", &recs, b"t"), vec![true]);
        });
    }

    #[test]
    fn failed_incremental_capture_leaves_prior_snapshot_restorable() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(
                &server,
                DedupConfig {
                    pipelined: false,
                    ..DedupConfig::default()
                },
            );
            let a = Payload::synthetic(5, 16 * MB);
            let b = Payload::synthetic(6, 16 * MB);
            let v1 = [("a", a.clone(), false), ("b", b.clone(), false)];
            write_records(&st, "/snap/fail", &v1, b"t1");

            // A capture that dies after replaying the clean record and
            // streaming half the dirty one: nothing was committed, so
            // the prior manifest, its chunks and its ledger survive.
            {
                let mut sink = st.sink(NodeId::device(0), "/snap/fail").unwrap();
                assert!(sink.write_cached_record("a", a.digest(), a.len()).unwrap());
                sink.begin_record("b", 7, 8 * MB);
                sink.write(Payload::synthetic(7, 8 * MB)).unwrap();
                // Dropped without close(): the failure path.
            }
            assert_eq!(st.stats().manifests, 1);
            assert_eq!(
                read_stream(&st, "/snap/fail").digest(),
                image_of(&v1, b"t1").digest()
            );

            // The chain was not corrupted: the next capture still goes
            // O(dirty) and restores bit-identically.
            let v2 = [("a", a, true), ("b", b, true)];
            assert_eq!(
                write_records(&st, "/snap/fail", &v2, b"t1"),
                vec![true, true]
            );
            assert_eq!(
                read_stream(&st, "/snap/fail").digest(),
                image_of(&v2, b"t1").digest()
            );
        });
    }

    #[test]
    fn plain_capture_at_a_path_drops_its_ledger() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let a = Payload::synthetic(8, 16 * MB);
            write_records(&st, "/snap/pl", &[("a", a.clone(), false)], b"t");
            // A capture with no record boundaries (old-style stream)
            // invalidates the ledger: the next cached attempt must fall
            // back rather than resurrect records of a replaced snapshot.
            write_stream(&st, "/snap/pl", std::slice::from_ref(&a));
            assert_eq!(
                write_records(&st, "/snap/pl", &[("a", a, true)], b"t"),
                vec![false]
            );
        });
    }

    #[test]
    fn delete_snapshot_purges_the_ledger() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let a = Payload::synthetic(9, 16 * MB);
            write_records(&st, "/snap/dl", &[("a", a.clone(), false)], b"t");
            assert!(st.delete_snapshot("/snap/dl"));
            assert_eq!(
                write_records(&st, "/snap/dl", &[("a", a, true)], b"t"),
                vec![false]
            );
        });
    }

    #[test]
    fn collected_chunk_is_a_typed_restore_error() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let data = Payload::synthetic(4, 8 * MB);
            write_stream(&st, "/snap/gone", std::slice::from_ref(&data));
            // Corrupt the store: drop the manifest's refs behind its back
            // by deleting it, then re-write only the manifest file.
            let manifest_bytes = server.host().fs().read_all("/snap/gone").unwrap();
            st.delete_snapshot("/snap/gone");
            server.host().fs().create_or_truncate("/snap/gone");
            server
                .host()
                .fs()
                .append("/snap/gone", manifest_bytes)
                .unwrap();
            let err = st.source(NodeId::device(0), "/snap/gone").err().unwrap();
            assert!(err.to_string().contains("missing from store"), "{err}");
        });
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            server
                .host()
                .fs()
                .append("/snap/junk", Payload::bytes(vec![0x5a; 64]))
                .unwrap();
            let err = st.source(NodeId::device(0), "/snap/junk").err().unwrap();
            assert!(err.to_string().contains("bad manifest magic"), "{err}");
        });
    }

    #[test]
    fn missing_snapshot_propagates_backend_not_found() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            assert!(st.source(NodeId::device(0), "/snap/nope").is_err());
        });
    }

    #[test]
    fn write_after_close_is_typed_error() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let mut sink = st.sink(NodeId::device(0), "/snap/wc").unwrap();
            sink.write(Payload::synthetic(1, MB)).unwrap();
            sink.close().unwrap();
            let err = sink.write(Payload::synthetic(1, MB)).unwrap_err();
            assert_eq!(err, IoError::Closed);
        });
    }

    #[test]
    fn pipelining_overlaps_digest_with_shipping() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let data = Payload::synthetic(11, 128 * MB);
            let timed = |pipelined: bool, path: &str| {
                let st = store(
                    &server,
                    DedupConfig {
                        pipelined,
                        ..DedupConfig::default()
                    },
                );
                let t0 = now();
                write_stream(&st, path, std::slice::from_ref(&data));
                (now() - t0).as_secs_f64()
            };
            let serial = timed(false, "/snap/serial");
            let piped = timed(true, "/snap/piped");
            assert!(
                piped < serial,
                "pipelined capture overlaps hash and transfer: piped={piped} serial={serial}"
            );
        });
    }

    #[test]
    fn warm_restore_avoids_the_transport() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let data = Payload::synthetic(21, 64 * MB);
            // Capture from device 0 warms device 0's cache.
            write_stream(&st, "/snap/warm", std::slice::from_ref(&data));
            assert_eq!(read_stream(&st, "/snap/warm").digest(), data.digest());
            let s = st.stats();
            assert_eq!(s.restore_bytes_avoided, 64 * MB, "{s:?}");
            assert_eq!(s.restore_bytes_fetched, 0, "{s:?}");
            // A different node holds nothing warm: same manifest, all
            // cold — and the fetch warms *that* node for next time.
            let d1 = NodeId::device(1);
            assert_eq!(
                read_stream_from(&st, d1, "/snap/warm").digest(),
                data.digest()
            );
            assert_eq!(st.stats().restore_bytes_fetched, 64 * MB);
            assert_eq!(
                read_stream_from(&st, d1, "/snap/warm").digest(),
                data.digest()
            );
            assert_eq!(
                st.stats().restore_bytes_fetched,
                64 * MB,
                "second read is warm"
            );
        });
    }

    #[test]
    fn disabled_cache_restores_everything_cold() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(
                &server,
                DedupConfig {
                    restore_cache_bytes: 0,
                    ..DedupConfig::default()
                },
            );
            let data = Payload::synthetic(22, 32 * MB);
            write_stream(&st, "/snap/cold", std::slice::from_ref(&data));
            assert_eq!(read_stream(&st, "/snap/cold").digest(), data.digest());
            let s = st.stats();
            assert_eq!(s.restore_bytes_avoided, 0, "{s:?}");
            assert_eq!(s.restore_bytes_fetched, 32 * MB, "{s:?}");
        });
    }

    #[test]
    fn warm_cache_respects_its_byte_budget() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(
                &server,
                DedupConfig {
                    restore_cache_bytes: 8 * MB,
                    ..DedupConfig::default()
                },
            );
            let data = Payload::synthetic(23, 32 * MB);
            write_stream(&st, "/snap/lru", std::slice::from_ref(&data));
            assert!(st.warm_bytes(NodeId::device(0)) <= 8 * MB);
            // However the restore goes, at most the budget is avoided.
            assert_eq!(read_stream(&st, "/snap/lru").digest(), data.digest());
            assert!(st.stats().restore_bytes_avoided <= 8 * MB);
            assert!(st.warm_bytes(NodeId::device(0)) <= 8 * MB);
        });
    }

    #[test]
    fn gc_evicts_dead_chunks_from_warm_caches() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let data = Payload::synthetic(24, 16 * MB);
            write_stream(&st, "/snap/wgc", std::slice::from_ref(&data));
            assert_eq!(st.warm_bytes(NodeId::device(0)), 16 * MB);
            assert!(st.delete_snapshot("/snap/wgc"));
            // The chunks died with their last reference; no cache may
            // keep accounting for them.
            assert_eq!(st.warm_bytes(NodeId::device(0)), 0);
        });
    }

    #[test]
    fn cache_policies_pick_distinct_deterministic_victims() {
        let keys = |c: &WarmCache| {
            let mut v: Vec<ChunkKey> = c.chunks.keys().copied().collect();
            v.sort_unstable();
            v
        };
        // Three 4-byte chunks under a 8-byte budget: A touched three
        // times long ago, B touched once recently, then C arrives.
        let fill = |policy: CachePolicy| {
            let mut c = WarmCache::default();
            for _ in 0..3 {
                c.insert((0xa, 4), 8, policy);
            }
            c.insert((0xb, 4), 8, policy);
            c.insert((0xc, 4), 8, policy);
            c
        };
        // LRU keeps the two most recent (B, C)...
        assert_eq!(keys(&fill(CachePolicy::Lru)), vec![(0xb, 4), (0xc, 4)]);
        // ...popularity keeps thrice-touched A and evicts B (C survives
        // its own insert: one touch like B, but a later tick).
        assert_eq!(
            keys(&fill(CachePolicy::Popularity)),
            vec![(0xa, 4), (0xc, 4)]
        );
        // Cost-aware weighs touches by size: a big once-touched chunk
        // outranks a small twice-touched one.
        let mut c = WarmCache::default();
        c.insert((0xd, 2), 10, CachePolicy::CostAware);
        c.insert((0xd, 2), 10, CachePolicy::CostAware); // 2 hits × 2 B = 4
        c.insert((0xe, 6), 10, CachePolicy::CostAware); // 1 hit × 6 B = 6
        c.insert((0xf, 4), 10, CachePolicy::CostAware); // evicts D, not E
        assert_eq!(keys(&c), vec![(0xe, 6), (0xf, 4)]);
        // An entry re-inserted after eviction starts its count over —
        // and when that insert itself overflows the budget, ties on the
        // fresh count spare the newcomer (later tick).
        let mut c = fill(CachePolicy::Popularity);
        c.insert((0xb, 4), 8, CachePolicy::Popularity);
        assert_eq!(c.chunks[&(0xb, 4)].hits, 1);
        assert_eq!(keys(&c), vec![(0xa, 4), (0xb, 4)]);
        // Replayed histories land in the same state (determinism).
        assert_eq!(
            keys(&fill(CachePolicy::Popularity)),
            keys(&fill(CachePolicy::Popularity))
        );
    }

    #[test]
    fn restore_pipelining_overlaps_fetch_with_replay() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let data = Payload::synthetic(25, 128 * MB);
            let timed = |restore_pipelined: bool, path: &str| {
                let st = store(
                    &server,
                    DedupConfig {
                        restore_cache_bytes: 0,
                        restore_pipelined,
                        ..DedupConfig::default()
                    },
                );
                write_stream(&st, path, std::slice::from_ref(&data));
                let t0 = now();
                assert_eq!(read_stream(&st, path).digest(), data.digest());
                (now() - t0).as_secs_f64()
            };
            let serial = timed(false, "/snap/rserial");
            let piped = timed(true, "/snap/rpiped");
            assert!(
                piped < serial,
                "pipelined restore overlaps fetch and replay: piped={piped} serial={serial}"
            );
        });
    }

    #[test]
    fn warm_restore_is_faster_than_cold() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            let data = Payload::synthetic(26, 128 * MB);
            write_stream(&st, "/snap/wf", std::slice::from_ref(&data));
            let t0 = now();
            assert_eq!(read_stream(&st, "/snap/wf").digest(), data.digest());
            let warm = (now() - t0).as_secs_f64();
            let t0 = now();
            assert_eq!(
                read_stream_from(&st, NodeId::device(1), "/snap/wf").digest(),
                data.digest()
            );
            let cold = (now() - t0).as_secs_f64();
            assert!(
                warm * 2.0 < cold,
                "warm restore skips the transport: warm={warm} cold={cold}"
            );
        });
    }

    /// Two fleet stores sharing one pool: node 1 restores a snapshot it
    /// never held by importing it from the pool, paying the cluster
    /// network for the bytes.
    #[test]
    fn pool_import_restores_across_nodes() {
        Kernel::run_root(|| {
            use simkernel::time::{ms, us};
            let server_a = PhiServer::default_server();
            let server_b = PhiServer::default_server();
            let pool = ClusterPool::new(us(50));
            let sa = store(&server_a, DedupConfig::default());
            let sb = store(&server_b, DedupConfig::default());
            sa.attach_pool(&pool, 0);
            sb.attach_pool(&pool, 1);
            let data = Payload::synthetic(31, 32 * MB);
            write_stream(&sa, "/fleet/t0/img", std::slice::from_ref(&data));
            simkernel::sleep(ms(1)); // past the publication delay
            let t0 = now();
            assert_eq!(read_stream(&sb, "/fleet/t0/img").digest(), data.digest());
            assert!(now() > t0);
            let st = pool.stats();
            assert!(
                st.bytes_fetched_remote >= 32 * MB,
                "a cold import ships the image: {}",
                st.bytes_fetched_remote
            );
            // A second import-shaped restore on node 1 is free: the
            // content is local now.
            assert_eq!(read_stream(&sb, "/fleet/t0/img").digest(), data.digest());
            assert_eq!(pool.stats().bytes_fetched_remote, st.bytes_fetched_remote);
        });
    }

    /// A node that already holds most of a snapshot's content (the
    /// shared base image) imports only the novel chunks.
    #[test]
    fn pool_import_ships_only_chunks_the_node_lacks() {
        Kernel::run_root(|| {
            use simkernel::time::ms;
            use simkernel::time::us;
            let server_a = PhiServer::default_server();
            let server_b = PhiServer::default_server();
            let pool = ClusterPool::new(us(50));
            let sa = store(&server_a, DedupConfig::default());
            let sb = store(&server_b, DedupConfig::default());
            sa.attach_pool(&pool, 0);
            sb.attach_pool(&pool, 1);
            let base = Payload::synthetic(0xBA5E, 48 * MB);
            let unique = Payload::synthetic(41, 4 * MB);
            // Node 1 captures its own tenant sharing the base region…
            write_stream(&sb, "/fleet/warm/seed", std::slice::from_ref(&base));
            // …and node 0 captures the tenant about to migrate.
            write_stream(&sa, "/fleet/t1/img", &[base.clone(), unique.clone()]);
            simkernel::sleep(ms(1));
            let mut want = base.clone();
            want.append(unique);
            assert_eq!(read_stream(&sb, "/fleet/t1/img").digest(), want.digest());
            let st = pool.stats();
            assert!(
                st.bytes_avoided_remote >= 48 * MB,
                "the shared base never ships: avoided={}",
                st.bytes_avoided_remote
            );
            assert!(
                st.bytes_fetched_remote < 5 * MB,
                "only the unique region ships: fetched={}",
                st.bytes_fetched_remote
            );
            assert!(st.saved_fraction() > 0.8, "{:?}", st);
        });
    }

    /// Regression (cross-node GC race): node 0 deletes its manifest
    /// while node 1's import is still streaming the chunks. Before
    /// restore pins, the release collected the pool entries mid-flight
    /// and node 1's restore died with "collected before import" /
    /// "missing from store (collected?)"; the pins now hold every
    /// referenced chunk for the whole transfer.
    #[test]
    fn cross_node_release_does_not_collect_an_in_flight_import() {
        Kernel::run_root(|| {
            use simkernel::time::{ms, us};
            let server_a = PhiServer::default_server();
            let server_b = PhiServer::default_server();
            let pool = ClusterPool::new(us(50));
            let sa = store(&server_a, DedupConfig::default());
            let sb = store(&server_b, DedupConfig::default());
            sa.attach_pool(&pool, 0);
            sb.attach_pool(&pool, 1);
            let data = Payload::synthetic(51, 64 * MB);
            write_stream(&sa, "/fleet/race/img", std::slice::from_ref(&data));
            simkernel::sleep(ms(1));
            // 64 MB over a 1.25 GB/s NIC ≈ 50 ms of transfer: plenty of
            // window for the race.
            let sb2 = sb.clone();
            let restore = simkernel::spawn("import-b", move || {
                read_stream_from(&sb2, NodeId::device(0), "/fleet/race/img").digest()
            });
            simkernel::sleep(ms(5));
            // Mid-transfer, the publisher deletes the only snapshot
            // referencing these chunks — far more than one grace period
            // before the import finishes.
            assert!(sa.delete_snapshot("/fleet/race/img"));
            assert_eq!(restore.join(), data.digest());
            // Node 1's imported copy holds the chunks now…
            assert!(pool.live_chunks() > 0, "importer's holds keep chunks live");
            assert_eq!(pool.live_manifests(), 1);
            // …and releasing it really does collect them.
            assert!(sb.delete_snapshot("/fleet/race/img"));
            assert_eq!(pool.live_chunks(), 0);
            assert_eq!(pool.live_manifests(), 0);
        });
    }

    /// A pool-less store behaves exactly as before (no publications, no
    /// import fallback).
    #[test]
    fn store_without_pool_misses_stay_misses() {
        Kernel::run_root(|| {
            let server = PhiServer::default_server();
            let st = store(&server, DedupConfig::default());
            assert!(st.source(NodeId::device(0), "/nope").is_err());
        });
    }

    #[test]
    fn manifest_encoding_round_trips() {
        let m = Manifest {
            chunks: vec![(0xdead, 4096), (0xbeef, 123)],
            total: 4219,
            image_digest: 0x1234_5678,
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        assert!(Manifest::decode(b"short").is_err());
        let mut trailing = m.encode();
        trailing.push(0);
        assert!(Manifest::decode(&trailing).is_err());
        let mut bad_sum = m.encode();
        let n = bad_sum.len();
        bad_sum[n - 17] ^= 1; // flip a bit in `total`
        assert!(Manifest::decode(&bad_sum).is_err());
    }
}
