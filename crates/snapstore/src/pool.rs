//! Shared cross-node snapstore pool: the cluster chunk directory.
//!
//! A fleet of Phi servers each runs its own [`Dedup`] store, but tenants
//! migrate between servers — and a migrated tenant's snapshot is mostly
//! chunks some node already holds (the shared base image, the common
//! process image). The [`ClusterPool`] is the fleet-wide rendezvous for
//! that content: every store attached to the pool publishes the
//! manifests it commits (chunk references plus cheap content handles),
//! and a store that misses a snapshot locally imports it from the pool,
//! paying the cluster network only for chunks its own index has never
//! seen. The pool is thus a *directory with teeth*: it both locates
//! content and hands it over.
//!
//! # Determinism under parallel time domains
//!
//! The pool is shared mutable state reached from several time domains
//! at once, so it is guarded by a plain `std::sync::Mutex` (sim
//! primitives cannot cross kernels) and every observable answer must be
//! a pure function of *virtual* time, never of wall-clock lock order.
//! Three rules make that hold, given the conservative-sync invariant
//! that concurrently-executing domains are always within one lookahead
//! window `L` of each other:
//!
//! 1. **Publication delay.** An entry published at virtual time `T`
//!    becomes visible at `T + L`; queries only see entries with
//!    `visible_at <= now()`. A publish racing a query in the same
//!    window can never newly satisfy the filter (its `visible_at`
//!    lands strictly past the window), and re-publication merges with
//!    `min`, which is order-independent. Any node that learns of a
//!    snapshot through a cluster-link message (delay >= `L`) finds it
//!    visible.
//! 2. **Grace period.** When an entry's last reference dies at `T` it
//!    stays fetchable until `T + L`. A release racing a query in the
//!    same window therefore cannot change the query's answer — both
//!    lock orders say "alive".
//! 3. **Restore pins.** An importer pins the chunks it is about to
//!    fetch for the whole transfer (which takes far longer than `L`);
//!    a pinned chunk is never collected no matter who releases it.
//!    This is also the cross-node GC-race fix: without pins, one
//!    node's `delete_snapshot` could free chunks another node's
//!    in-flight restore was still streaming.
//!
//! [`Dedup`]: crate::Dedup

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use phi_platform::Payload;
use simkernel::{now, SimDuration, SimTime};

use crate::ChunkKey;

/// A point-in-time copy of the pool's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Manifests published (initial publishes and re-publishes).
    pub manifests_published: u64,
    /// Manifest holds released by nodes.
    pub manifests_released: u64,
    /// Chunk entries the pool saw for the first time.
    pub chunks_published: u64,
    /// Chunk contents handed to importers.
    pub chunk_hits: u64,
    /// Chunks whose cluster-wide refcount hit zero.
    pub chunks_dead: u64,
    /// Import bytes that crossed the cluster network (chunks the
    /// importing node did not hold).
    pub bytes_fetched_remote: u64,
    /// Import bytes the importing node already held locally — the
    /// traffic the shared pool saved versus a cold transfer.
    pub bytes_avoided_remote: u64,
}

impl PoolStats {
    /// Fraction of import bytes the pool kept off the network.
    pub fn saved_fraction(&self) -> f64 {
        let total = self.bytes_fetched_remote + self.bytes_avoided_remote;
        if total == 0 {
            0.0
        } else {
            self.bytes_avoided_remote as f64 / total as f64
        }
    }
}

struct PoolChunk {
    content: Payload,
    /// Manifest references across every holder node.
    refs: u64,
    /// In-flight restore pins (see module docs, rule 3).
    pins: u64,
    /// When this chunk became cluster-visible (min over publishes).
    visible_at: SimTime,
    /// Set while `refs == 0 && pins == 0`: the start of the grace
    /// period after which the chunk is no longer fetchable.
    zero_since: Option<SimTime>,
}

impl PoolChunk {
    fn alive(&self, now: SimTime, grace: SimDuration) -> bool {
        self.refs > 0 || self.pins > 0 || self.zero_since.is_some_and(|t| now < t + grace)
    }

    fn fetchable(&self, now: SimTime, grace: SimDuration) -> bool {
        self.visible_at <= now && self.alive(now, grace)
    }

    /// Re-derive `zero_since` after a refs/pins mutation.
    fn restamp(&mut self, now: SimTime, stats: &mut PoolStats) {
        if self.refs == 0 && self.pins == 0 {
            if self.zero_since.is_none() {
                self.zero_since = Some(now);
                stats.chunks_dead += 1;
            }
        } else {
            self.zero_since = None;
        }
    }
}

struct PoolManifest {
    /// Ordered chunk references (latest publish wins).
    chunks: Vec<ChunkKey>,
    total: u64,
    image_digest: u64,
    /// The node that last published this path.
    owner: usize,
    visible_at: SimTime,
    /// Nodes holding this manifest, each with the chunk reference list
    /// it contributed to the cluster-wide refcounts.
    holders: BTreeMap<usize, Vec<ChunkKey>>,
    zero_since: Option<SimTime>,
}

impl PoolManifest {
    fn alive(&self, now: SimTime, grace: SimDuration) -> bool {
        !self.holders.is_empty() || self.zero_since.is_some_and(|t| now < t + grace)
    }
}

/// A visible manifest, as seen by an importer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolManifestInfo {
    /// Ordered chunk references.
    pub chunks: Vec<ChunkKey>,
    /// Total image length in bytes.
    pub total: u64,
    /// Digest of the reassembled image.
    pub image_digest: u64,
    /// The node that last published the manifest.
    pub owner: usize,
}

#[derive(Default)]
struct PoolInner {
    chunks: HashMap<ChunkKey, PoolChunk>,
    manifests: HashMap<String, PoolManifest>,
    stats: PoolStats,
}

/// The shared cross-node pool. Cheap to clone; all clones share state.
/// Safe to create outside any kernel (it holds no sim primitives).
#[derive(Clone)]
pub struct ClusterPool {
    /// Conservative-sync lookahead: publication delay and GC grace.
    lookahead: SimDuration,
    inner: Arc<Mutex<PoolInner>>,
}

impl ClusterPool {
    /// A pool for a cluster whose conservative-sync lookahead is
    /// `lookahead` (`phi_platform::cluster_lookahead`).
    pub fn new(lookahead: SimDuration) -> ClusterPool {
        ClusterPool {
            lookahead,
            inner: Arc::new(Mutex::new(PoolInner::default())),
        }
    }

    /// The publication delay / GC grace this pool was built with.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().unwrap().stats
    }

    /// Chunks with live references or pins (grace-period corpses do
    /// not count).
    pub fn live_chunks(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .chunks
            .values()
            .filter(|c| c.refs > 0 || c.pins > 0)
            .count()
    }

    /// Manifests some node still holds.
    pub fn live_manifests(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .manifests
            .values()
            .filter(|m| !m.holders.is_empty())
            .count()
    }

    /// Publish (or re-publish) `node`'s manifest at `path`. `refs` is
    /// the ordered chunk list and `contents` the parallel content
    /// handles. Replaces the node's previous hold on this path, if any.
    pub fn publish(
        &self,
        path: &str,
        node: usize,
        refs: &[ChunkKey],
        contents: &[Payload],
        total: u64,
        image_digest: u64,
    ) {
        debug_assert_eq!(refs.len(), contents.len());
        let t = now();
        let visible = t + self.lookahead;
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        inner.stats.manifests_published += 1;
        // Install the new references BEFORE releasing the hold they
        // replace (the same discipline as the local store's commit).
        for (key, content) in refs.iter().zip(contents) {
            let entry = inner.chunks.entry(*key).or_insert_with(|| {
                inner.stats.chunks_published += 1;
                PoolChunk {
                    content: content.normalize(),
                    refs: 0,
                    pins: 0,
                    visible_at: visible,
                    zero_since: None,
                }
            });
            // `min` merge keeps re-publication order-independent.
            entry.visible_at = entry.visible_at.min(visible);
            entry.refs += 1;
            entry.zero_since = None;
        }
        let m = inner
            .manifests
            .entry(path.to_string())
            .or_insert_with(|| PoolManifest {
                chunks: Vec::new(),
                total: 0,
                image_digest: 0,
                owner: node,
                visible_at: visible,
                holders: BTreeMap::new(),
                zero_since: None,
            });
        m.visible_at = m.visible_at.min(visible);
        m.chunks = refs.to_vec();
        m.total = total;
        m.image_digest = image_digest;
        m.owner = node;
        m.zero_since = None;
        let old = m.holders.insert(node, refs.to_vec());
        if let Some(old) = old {
            for key in &old {
                dec_chunk(inner, key, t);
            }
        }
    }

    /// Release `node`'s hold on `path`. Chunk references drop; chunks
    /// nobody references enter the grace period (and are then gone,
    /// unless pinned by an in-flight import). Returns whether the node
    /// held the manifest.
    pub fn release(&self, path: &str, node: usize) -> bool {
        let t = now();
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let Some(m) = inner.manifests.get_mut(path) else {
            return false;
        };
        let Some(old) = m.holders.remove(&node) else {
            return false;
        };
        inner.stats.manifests_released += 1;
        if m.holders.is_empty() && m.zero_since.is_none() {
            m.zero_since = Some(t);
        }
        for key in &old {
            dec_chunk(inner, key, t);
        }
        true
    }

    /// Register `node` as a holder of `path` using the manifest's own
    /// chunk list — an importer calls this after installing the
    /// snapshot locally, so its copy keeps the chunks referenced even
    /// after the original publisher releases. The chunks must still
    /// exist (the importer's pins guarantee it).
    pub fn add_holder(&self, path: &str, node: usize) -> bool {
        let t = now();
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let Some(m) = inner.manifests.get_mut(path) else {
            return false;
        };
        let refs = m.chunks.clone();
        for key in &refs {
            let entry = inner
                .chunks
                .get_mut(key)
                .expect("holder's chunks exist (pinned by the importer)");
            entry.refs += 1;
            entry.zero_since = None;
        }
        m.zero_since = None;
        let old = m.holders.insert(node, refs);
        if let Some(old) = old {
            for key in &old {
                dec_chunk(inner, key, t);
            }
        }
        true
    }

    /// Look up a visible, alive manifest.
    pub fn manifest(&self, path: &str) -> Option<PoolManifestInfo> {
        let t = now();
        let inner = self.inner.lock().unwrap();
        let m = inner.manifests.get(path)?;
        if m.visible_at > t || !m.alive(t, self.lookahead) {
            return None;
        }
        Some(PoolManifestInfo {
            chunks: m.chunks.clone(),
            total: m.total,
            image_digest: m.image_digest,
            owner: m.owner,
        })
    }

    /// Atomically pin every chunk in `keys` for an in-flight import:
    /// either all are fetchable and pinned, or none are and the first
    /// offender is returned. Pins are released by dropping the guard.
    pub fn pin(&self, keys: &[ChunkKey]) -> Result<PoolPins, ChunkKey> {
        let t = now();
        let mut inner = self.inner.lock().unwrap();
        let mut unique: Vec<ChunkKey> = Vec::new();
        for key in keys {
            if !unique.contains(key) {
                unique.push(*key);
            }
        }
        for key in &unique {
            match inner.chunks.get(key) {
                Some(c) if c.fetchable(t, self.lookahead) => {}
                _ => return Err(*key),
            }
        }
        for key in &unique {
            let c = inner.chunks.get_mut(key).unwrap();
            c.pins += 1;
            c.zero_since = None;
        }
        Ok(PoolPins {
            pool: self.clone(),
            keys: unique,
            released: false,
        })
    }

    /// Fetch a fetchable chunk's content.
    pub fn chunk(&self, key: &ChunkKey) -> Option<Payload> {
        let t = now();
        let mut inner = self.inner.lock().unwrap();
        let grace = self.lookahead;
        let inner = &mut *inner;
        let c = inner.chunks.get(key)?;
        if !c.fetchable(t, grace) {
            return None;
        }
        inner.stats.chunk_hits += 1;
        Some(c.content.clone())
    }

    /// Account one import's traffic split (called by the importing
    /// store).
    pub(crate) fn note_import(&self, fetched: u64, avoided: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.stats.bytes_fetched_remote += fetched;
        inner.stats.bytes_avoided_remote += avoided;
    }
}

/// Decrement one chunk reference at virtual time `t`.
fn dec_chunk(inner: &mut PoolInner, key: &ChunkKey, t: SimTime) {
    let entry = inner
        .chunks
        .get_mut(key)
        .expect("released chunk exists in the pool");
    entry.refs -= 1;
    entry.restamp(t, &mut inner.stats);
}

/// Pins held by an in-flight import. Dropping the guard releases them;
/// chunks whose references are already gone then enter the grace
/// period.
pub struct PoolPins {
    pool: ClusterPool,
    keys: Vec<ChunkKey>,
    released: bool,
}

impl PoolPins {
    fn unpin(&mut self) {
        if self.released {
            return;
        }
        self.released = true;
        let t = now();
        let mut inner = self.pool.inner.lock().unwrap();
        let inner = &mut *inner;
        for key in &self.keys {
            let c = inner
                .chunks
                .get_mut(key)
                .expect("pinned chunk cannot be removed");
            c.pins -= 1;
            c.restamp(t, &mut inner.stats);
        }
    }
}

impl Drop for PoolPins {
    fn drop(&mut self) {
        self.unpin();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::time::{ms, us};
    use simkernel::Kernel;

    const L: SimDuration = us(50);

    fn key(tag: u64) -> ChunkKey {
        (tag, 4096)
    }

    fn publish_one(pool: &ClusterPool, path: &str, node: usize, tag: u64) {
        let content = Payload::synthetic(tag, 4096);
        pool.publish(path, node, &[key(tag)], &[content], 4096, tag);
    }

    #[test]
    fn entries_become_visible_one_lookahead_after_publication() {
        Kernel::run_root(|| {
            let pool = ClusterPool::new(L);
            publish_one(&pool, "/p/a", 0, 1);
            assert!(pool.manifest("/p/a").is_none(), "not visible yet");
            assert!(pool.chunk(&key(1)).is_none(), "chunk not visible yet");
            simkernel::sleep(L);
            let m = pool.manifest("/p/a").expect("visible after one lookahead");
            assert_eq!(m.owner, 0);
            assert_eq!(m.chunks, vec![key(1)]);
            assert_eq!(
                pool.chunk(&key(1)).unwrap().digest(),
                Payload::synthetic(1, 4096).digest()
            );
        });
    }

    #[test]
    fn release_leaves_a_grace_period_then_collects() {
        Kernel::run_root(|| {
            let pool = ClusterPool::new(L);
            publish_one(&pool, "/p/g", 0, 2);
            simkernel::sleep(ms(1));
            assert!(pool.release("/p/g", 0));
            // Within the grace window the chunk is still fetchable
            // (a same-window reader must not observe the release).
            assert!(pool.chunk(&key(2)).is_some(), "grace period");
            simkernel::sleep(L + us(1));
            assert!(pool.chunk(&key(2)).is_none(), "grace expired");
            assert!(pool.manifest("/p/g").is_none());
            assert_eq!(pool.live_chunks(), 0);
            assert_eq!(pool.stats().chunks_dead, 1);
        });
    }

    #[test]
    fn pins_defer_collection_past_the_grace_period() {
        Kernel::run_root(|| {
            let pool = ClusterPool::new(L);
            publish_one(&pool, "/p/pin", 0, 3);
            simkernel::sleep(ms(1));
            let pins = pool.pin(&[key(3)]).expect("fetchable, so pinnable");
            assert!(pool.release("/p/pin", 0));
            simkernel::sleep(ms(10)); // far past the grace period
            assert!(
                pool.chunk(&key(3)).is_some(),
                "pinned chunk survives a cross-node release indefinitely"
            );
            drop(pins);
            simkernel::sleep(L + us(1));
            assert!(pool.chunk(&key(3)).is_none(), "unpinned corpse collects");
        });
    }

    #[test]
    fn pin_is_all_or_nothing() {
        Kernel::run_root(|| {
            let pool = ClusterPool::new(L);
            publish_one(&pool, "/p/ao", 0, 4);
            simkernel::sleep(ms(1));
            let missing = key(99);
            assert_eq!(pool.pin(&[key(4), missing]).err(), Some(missing));
            // The failed pin left nothing pinned: releasing the
            // manifest collects the chunk on schedule.
            assert!(pool.release("/p/ao", 0));
            simkernel::sleep(L + us(1));
            assert!(pool.chunk(&key(4)).is_none());
        });
    }

    #[test]
    fn shared_chunks_survive_one_holders_release() {
        Kernel::run_root(|| {
            let pool = ClusterPool::new(L);
            // Two nodes publish manifests sharing chunk 5.
            let shared = Payload::synthetic(5, 4096);
            pool.publish(
                "/p/n0",
                0,
                &[key(5)],
                std::slice::from_ref(&shared),
                4096,
                5,
            );
            pool.publish(
                "/p/n1",
                1,
                &[key(5), key(6)],
                &[shared, Payload::synthetic(6, 4096)],
                8192,
                56,
            );
            simkernel::sleep(ms(1));
            assert!(pool.release("/p/n0", 0));
            simkernel::sleep(L + us(1));
            assert!(
                pool.chunk(&key(5)).is_some(),
                "node 1's manifest still references the shared chunk"
            );
            assert!(pool.release("/p/n1", 1));
            simkernel::sleep(L + us(1));
            assert!(pool.chunk(&key(5)).is_none());
            assert_eq!(pool.live_manifests(), 0);
        });
    }

    #[test]
    fn add_holder_keeps_content_alive_after_the_publisher_leaves() {
        Kernel::run_root(|| {
            let pool = ClusterPool::new(L);
            publish_one(&pool, "/p/h", 0, 7);
            simkernel::sleep(ms(1));
            let pins = pool.pin(&[key(7)]).unwrap();
            assert!(pool.add_holder("/p/h", 1));
            drop(pins);
            assert!(pool.release("/p/h", 0));
            simkernel::sleep(ms(10));
            assert!(
                pool.chunk(&key(7)).is_some(),
                "node 1's hold outlives node 0's release"
            );
            assert_eq!(pool.live_manifests(), 1);
            assert!(pool.release("/p/h", 1));
            simkernel::sleep(L + us(1));
            assert_eq!(pool.live_chunks(), 0);
        });
    }

    #[test]
    fn republication_resurrects_a_collected_chunk() {
        Kernel::run_root(|| {
            let pool = ClusterPool::new(L);
            publish_one(&pool, "/p/r", 0, 8);
            simkernel::sleep(ms(1));
            pool.release("/p/r", 0);
            simkernel::sleep(ms(1));
            assert!(pool.chunk(&key(8)).is_none());
            publish_one(&pool, "/p/r", 1, 8);
            simkernel::sleep(L);
            assert!(pool.chunk(&key(8)).is_some());
            assert_eq!(pool.manifest("/p/r").unwrap().owner, 1);
        });
    }
}
