//! # snapify-bench — shared reporting helpers for the paper harnesses
//!
//! Each table and figure of the paper's evaluation has its own bench
//! target under `benches/` (custom harnesses — run with `cargo bench`).
//! This crate holds the formatting and measurement plumbing they share.

#![warn(missing_docs)]

use phi_platform::PlatformParams;
use simkernel::SimDuration;

/// Format a virtual duration as seconds with 3 decimals.
pub fn secs(d: SimDuration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format a byte count in human units.
pub fn bytes(n: u64) -> String {
    if n >= 1 << 30 {
        format!("{:.2} GiB", n as f64 / (1u64 << 30) as f64)
    } else if n >= 1 << 20 {
        format!("{:.1} MiB", n as f64 / (1u64 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1} KiB", n as f64 / 1024.0)
    } else {
        format!("{n} B")
    }
}

/// A simple fixed-width text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("{}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Print the standard experiment header (benchmark name + the Table 2
/// configuration the run used).
pub fn header(title: &str, params: &PlatformParams) {
    println!();
    println!("==================================================================");
    println!("{title}");
    println!("==================================================================");
    println!("{}", params.table2());
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::time::ms;

    #[test]
    fn formatting() {
        assert_eq!(secs(ms(1500)), "1.500");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(4 << 10), "4.0 KiB");
        assert_eq!(bytes(3 << 20), "3.0 MiB");
        assert_eq!(bytes(2 << 30), "2.00 GiB");
    }

    #[test]
    fn table_renders_without_panic() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "two"]);
        t.print();
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1"]);
    }
}
