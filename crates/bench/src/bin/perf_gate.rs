//! **perf_gate** — fail CI when the swap plane's key paper metrics
//! regress more than 10% from the committed baselines.
//!
//! The bench harnesses report *virtual* time and byte counts from the
//! deterministic simulation, so run-to-run values are exact and a
//! relative gate is sound (no noise margin needed beyond real
//! regressions). Guarded metrics:
//!
//! * `BENCH_dedup.json` — `warm_shipped_bytes` per tenant row must not
//!   grow above baseline × 1.10 (the dedup store's warm swap-out must
//!   keep shipping only dirty chunks).
//! * `BENCH_swapin.json` — `speedup` per tenant row must not drop below
//!   baseline × 0.90 (the warm restore fast path must keep its edge
//!   over cold fetches).
//! * `BENCH_incremental.json` — `speedup` per tenant row must not drop
//!   below baseline × 0.90 (the O(dirty) warm capture must keep its
//!   edge over the always-full baseline).
//! * `BENCH_serving.json` — `warm_speedup_p99` per scenario row must
//!   not drop below baseline × 0.90 (warm time-to-first-compute must
//!   keep its edge over cold demand swap-ins). The committed baseline
//!   carries both the full rows and the `zipf1k-quick-*` rows, so the
//!   gate is non-vacuous in either bench mode.
//! * `BENCH_cluster.json` — `saved_fraction` per fleet row must not
//!   drop below baseline × 0.95 (cross-node warm migration must keep
//!   shipping only the chunks the destination does not already hold).
//!   Quick rows live under their own `fleet-quick-*` names, so the
//!   gate is non-vacuous in either bench mode.
//! * `BENCH_simkernel.json` — `events_per_sec` per scenario must not
//!   drop below baseline × 0.35. Unlike the virtual-time metrics above
//!   this one is *wall clock*, so the margin is deliberately generous:
//!   it only catches order-of-magnitude collapses of the dispatch hot
//!   path (an accidental O(n) scan, a lost fast path), not machine or
//!   scheduler noise. Because wall-clock rates also depend on workload
//!   size, the comparison is skipped (with a note) when the run's
//!   top-level `"quick"` flag differs from the baseline's.
//!
//! Rows are matched by `name`; quick-mode runs produce a subset of the
//! baseline rows (same deterministic values), which is fine — but a run
//! that matches *no* baseline row fails, so the gate can never pass
//! vacuously. (A wall-clock file skipped for quick-flag mismatch counts
//! as intentionally skipped, not vacuous.)
//!
//! Usage (paths relative to the invoking directory):
//!
//! ```text
//! perf_gate [--baselines <dir>] [--dedup <json>] [--swapin <json>]
//!           [--incremental <json>] [--serving <json>] [--cluster <json>]
//!           [--simkernel <json>]
//! ```
//!
//! With no selection flags all six files are checked from the
//! baselines' sibling directory layout (`crates/bench/BENCH_*.json`).

use std::process::ExitCode;

/// Split the `"benches": [...]` array of a `BENCH_*.json` into one
/// string per row object. The dumps are flat (one `{...}` per row, no
/// nested objects), so brace counting is enough.
fn rows(json: &str) -> Vec<String> {
    let Some(start) = json
        .find("\"benches\"")
        .and_then(|i| json[i..].find('[').map(|j| i + j))
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut row_start = 0usize;
    for (i, c) in json[start..].char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    row_start = start + i;
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    out.push(json[row_start..=start + i].to_string());
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    out
}

/// Extract a string field (`"key": "value"`) from a flat row object.
fn str_field(row: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = &row[row.find(&pat)? + pat.len()..];
    let rest = &rest[rest.find('"')? + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extract a numeric field (`"key": 123.4`) from a flat row object.
fn num_field(row: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = row[row.find(&pat)? + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Look up `metric` for the row named `name`.
fn metric_for(rows: &[String], name: &str, metric: &str) -> Option<f64> {
    rows.iter()
        .find(|r| str_field(r, "name").as_deref() == Some(name))
        .and_then(|r| num_field(r, metric))
}

/// The direction a guarded metric is allowed to move, with the factor
/// of the baseline it must stay within. Deterministic virtual-time
/// metrics use tight 10% factors; wall-clock metrics use wide ones.
enum Bound {
    /// Regression = the value grew; fail when `current > baseline * f`.
    NoGrowthPast(f64),
    /// Regression = the value shrank; fail when `current < baseline * f`.
    NoDropPast(f64),
}

/// Compare every current row against the baseline; returns the number
/// of comparisons made (0 = nothing matched) and records failures.
fn check(
    label: &str,
    metric: &str,
    bound: Bound,
    baseline_json: &str,
    current_json: &str,
    failures: &mut Vec<String>,
) -> usize {
    let base_rows = rows(baseline_json);
    let cur_rows = rows(current_json);
    let mut compared = 0;
    for row in &cur_rows {
        let Some(name) = str_field(row, "name") else {
            continue;
        };
        let Some(current) = num_field(row, metric) else {
            continue;
        };
        let Some(baseline) = metric_for(&base_rows, &name, metric) else {
            println!("{label}/{name}: no baseline row, skipping");
            continue;
        };
        compared += 1;
        let (ok, limit) = match bound {
            Bound::NoGrowthPast(f) => (current <= baseline * f, baseline * f),
            Bound::NoDropPast(f) => (current >= baseline * f, baseline * f),
        };
        let verdict = if ok { "ok" } else { "REGRESSION" };
        println!(
            "{label}/{name}: {metric} {current} vs baseline {baseline} (limit {limit:.1}) {verdict}"
        );
        if !ok {
            failures.push(format!(
                "{label}/{name}: {metric} regressed past limit {limit:.1}: \
                 {current} vs baseline {baseline}"
            ));
        }
    }
    compared
}

/// The top-level `"quick"` flag of a `BENCH_*.json` dump (outside the
/// `"benches"` array, so a plain search on the tail is safe).
fn quick_flag(json: &str) -> Option<bool> {
    let tail = &json[json.rfind(']')?..];
    let rest = tail[tail.find("\"quick\"")?..].trim_start_matches("\"quick\"");
    let rest = rest.trim_start_matches(':').trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let baselines = flag("--baselines").unwrap_or_else(|| "crates/bench/baselines".to_string());
    let explicit = flag("--dedup").is_some()
        || flag("--swapin").is_some()
        || flag("--incremental").is_some()
        || flag("--serving").is_some()
        || flag("--cluster").is_some()
        || flag("--simkernel").is_some();
    let dedup = flag("--dedup")
        .or_else(|| (!explicit).then(|| "crates/bench/BENCH_dedup.json".to_string()));
    let swapin = flag("--swapin")
        .or_else(|| (!explicit).then(|| "crates/bench/BENCH_swapin.json".to_string()));
    let incremental = flag("--incremental")
        .or_else(|| (!explicit).then(|| "crates/bench/BENCH_incremental.json".to_string()));
    let serving = flag("--serving")
        .or_else(|| (!explicit).then(|| "crates/bench/BENCH_serving.json".to_string()));
    let cluster = flag("--cluster")
        .or_else(|| (!explicit).then(|| "crates/bench/BENCH_cluster.json".to_string()));
    let simkernel = flag("--simkernel")
        .or_else(|| (!explicit).then(|| "crates/bench/BENCH_simkernel.json".to_string()));

    let mut failures = Vec::new();
    let mut compared = 0;
    let mut quick_skips = 0;
    let mut run =
        |label: &str, metric: &str, bound: Bound, current: Option<&String>, wall_clock: bool| {
            let Some(current) = current else {
                return Ok(());
            };
            let baseline = read(&format!("{baselines}/BENCH_{label}.json"))?;
            let current = read(current)?;
            if wall_clock && quick_flag(&baseline) != quick_flag(&current) {
                println!(
                    "{label}: quick flag differs from baseline ({:?} vs {:?}) — wall-clock rates \
                 are not comparable across workload sizes, skipping",
                    quick_flag(&current),
                    quick_flag(&baseline)
                );
                quick_skips += 1;
                return Ok(());
            }
            compared += check(label, metric, bound, &baseline, &current, &mut failures);
            Ok::<(), String>(())
        };
    let result = run(
        "dedup",
        "warm_shipped_bytes",
        Bound::NoGrowthPast(1.10),
        dedup.as_ref(),
        false,
    )
    .and_then(|()| {
        run(
            "swapin",
            "speedup",
            Bound::NoDropPast(0.90),
            swapin.as_ref(),
            false,
        )
    })
    .and_then(|()| {
        run(
            "incremental",
            "speedup",
            Bound::NoDropPast(0.90),
            incremental.as_ref(),
            false,
        )
    })
    .and_then(|()| {
        run(
            "serving",
            "warm_speedup_p99",
            Bound::NoDropPast(0.90),
            serving.as_ref(),
            false,
        )
    })
    .and_then(|()| {
        run(
            "cluster",
            "saved_fraction",
            Bound::NoDropPast(0.95),
            cluster.as_ref(),
            false,
        )
    })
    .and_then(|()| {
        run(
            "simkernel",
            "events_per_sec",
            Bound::NoDropPast(0.35),
            simkernel.as_ref(),
            true,
        )
    });
    if let Err(e) = result {
        eprintln!("perf gate error: {e}");
        return ExitCode::FAILURE;
    }
    if compared == 0 && quick_skips == 0 {
        eprintln!("perf gate error: no rows matched any baseline — gate would be vacuous");
        return ExitCode::FAILURE;
    }
    if compared == 0 {
        println!("perf gate passed (all files skipped for quick-flag mismatch)");
        return ExitCode::SUCCESS;
    }
    if failures.is_empty() {
        println!("perf gate passed ({compared} comparisons)");
        ExitCode::SUCCESS
    } else {
        eprintln!("perf gate FAILED:\n  {}", failures.join("\n  "));
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benches": [
    {"name": "tenant-512M", "warm_shipped_bytes": 27088, "speedup": 3.0394},
    {"name": "tenant-1G", "warm_shipped_bytes": 29136, "speedup": 4.1002}
  ],
  "quick": false
}"#;

    #[test]
    fn parses_rows_and_fields() {
        let r = rows(SAMPLE);
        assert_eq!(r.len(), 2);
        assert_eq!(str_field(&r[0], "name").as_deref(), Some("tenant-512M"));
        assert_eq!(num_field(&r[0], "warm_shipped_bytes"), Some(27088.0));
        assert_eq!(metric_for(&r, "tenant-1G", "speedup"), Some(4.1002));
        assert_eq!(metric_for(&r, "tenant-2G", "speedup"), None);
    }

    #[test]
    fn growth_and_drop_bounds() {
        let mut failures = Vec::new();
        // 10% growth allowed: 29000 vs 27088 passes, 31000 fails.
        let current = SAMPLE.replace("27088", "31000");
        let n = check(
            "dedup",
            "warm_shipped_bytes",
            Bound::NoGrowthPast(1.10),
            SAMPLE,
            &current,
            &mut failures,
        );
        assert_eq!(n, 2);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("tenant-512M"));

        failures.clear();
        // 10% drop allowed: 2.8 passes, 2.6 fails against 3.0394.
        let current = SAMPLE.replace("3.0394", "2.6");
        check(
            "swapin",
            "speedup",
            Bound::NoDropPast(0.90),
            SAMPLE,
            &current,
            &mut failures,
        );
        assert_eq!(failures.len(), 1);
    }

    #[test]
    fn wall_clock_factor_is_generous() {
        const WALL: &str = r#"{
  "benches": [
    {"name": "ping_pong_64", "events": 128000, "wall_secs": 0.1, "events_per_sec": 1280000.0}
  ],
  "quick": true
}"#;
        // A 50% drop passes the 0.35 factor; a 75% drop fails it.
        let mut failures = Vec::new();
        let halved = WALL.replace("1280000.0", "640000.0");
        let n = check(
            "simkernel",
            "events_per_sec",
            Bound::NoDropPast(0.35),
            WALL,
            &halved,
            &mut failures,
        );
        assert_eq!(n, 1);
        assert!(failures.is_empty(), "50% wall-clock drop must be tolerated");
        let collapsed = WALL.replace("1280000.0", "320000.0");
        check(
            "simkernel",
            "events_per_sec",
            Bound::NoDropPast(0.35),
            WALL,
            &collapsed,
            &mut failures,
        );
        assert_eq!(failures.len(), 1, "4x collapse must be caught");
    }

    #[test]
    fn quick_flag_parses_outside_rows() {
        assert_eq!(quick_flag(SAMPLE), Some(false));
        assert_eq!(quick_flag(&SAMPLE.replace("false", "true")), Some(true));
        assert_eq!(quick_flag("{\"benches\": []}"), None);
    }

    #[test]
    fn quick_subset_matches_baseline_superset() {
        let quick = r#"{"benches": [
            {"name": "tenant-512M", "warm_shipped_bytes": 27088}
        ], "quick": true}"#;
        let mut failures = Vec::new();
        let n = check(
            "dedup",
            "warm_shipped_bytes",
            Bound::NoGrowthPast(1.10),
            SAMPLE,
            quick,
            &mut failures,
        );
        assert_eq!(n, 1);
        assert!(failures.is_empty());
    }
}
