//! Ablations of Snapify's design choices (beyond the paper's figures):
//!
//! 1. **Snapify-IO staging-buffer size** — the paper fixes it at 4 MB "to
//!    balance between ... memory footprint and ... transfer latency" (§6);
//!    the sweep shows the knee.
//! 2. **Asynchronous host-side flush** — §7 credits the write-direction
//!    advantage to the host daemon flushing asynchronously; disabling the
//!    overlap quantifies it.
//! 3. **Snapify hook cost** — Fig 9's overhead as a function of the
//!    per-crossing cost of the drain locks.
//! 4. **Incremental checkpointing** (extension) — full-image vs
//!    dirty-region checkpoints for an iterative application that mutates
//!    a small fraction of its memory per step.

use blcr_sim::{BlcrConfig, IncrementalCheckpointer};
use coi_sim::{CoiConfig, FunctionRegistry};
use phi_platform::{NodeId, Payload, PhiServer, PlatformParams, GB, MB};
use simkernel::{Kernel, SimDuration};
use simproc::{PidAllocator, SimProcess, VecSink};
use snapify::SnapifyWorld;
use snapify_bench::{bytes, header, secs, Table};
use snapify_io::{SnapifyIo, SnapifyIoConfig};
use workloads::{by_name, register_suite, WorkloadRun};

fn buffer_size_sweep() {
    println!("Ablation 1: Snapify-IO staging-buffer size (1 GiB write, phi->host)");
    let mut t = Table::new(vec!["buffer", "write (s)", "device mem held"]);
    for shift in [18u32, 20, 22, 24, 26] {
        let buffer_size = 1u64 << shift;
        let d = Kernel::run_root(move || {
            let server = PhiServer::new(PlatformParams::default());
            let io = SnapifyIo::new(
                &server,
                SnapifyIoConfig {
                    buffer_size,
                    ..SnapifyIoConfig::default()
                },
            );
            let t0 = simkernel::now();
            let mut sink = io
                .open_write(NodeId::device(0), NodeId::HOST, "/ab/f")
                .unwrap();
            use simproc::ByteSink;
            for chunk in Payload::synthetic(1, GB).chunks(32 << 20) {
                sink.write(chunk).unwrap();
            }
            sink.close().unwrap();
            simkernel::now() - t0
        });
        t.row(vec![bytes(buffer_size), secs(d), bytes(2 * buffer_size)]);
    }
    t.print();
    println!("(the paper's 4 MiB sits at the knee: bigger buffers buy little time\n and hold more pinned memory on an 8 GiB card)\n");
}

fn async_flush_ablation() {
    println!("Ablation 2: asynchronous host-side flush (1 GiB, phi->host)");
    let mut t = Table::new(vec!["host file write", "write (s)"]);
    for (label, sync_after_each) in [("asynchronous (paper)", false), ("synchronous", true)] {
        let d = Kernel::run_root(move || {
            let server = PhiServer::new(PlatformParams::default());
            let io = SnapifyIo::new_default(&server);
            let t0 = simkernel::now();
            let mut sink = io
                .open_write(NodeId::device(0), NodeId::HOST, "/ab/g")
                .unwrap();
            use simproc::ByteSink;
            for chunk in Payload::synthetic(1, GB).chunks(4 << 20) {
                sink.write(chunk).unwrap();
                if sync_after_each {
                    // Force the daemon to wait for the file system before
                    // reusing the staging buffer.
                    server.host().fs().sync();
                }
            }
            sink.close().unwrap();
            simkernel::now() - t0
        });
        t.row(vec![label.to_string(), secs(d)]);
    }
    t.print();
    println!();
}

fn hook_cost_sweep() {
    println!("Ablation 3: Fig 9 overhead vs per-hook cost (MD benchmark)");
    let mut t = Table::new(vec!["hook cost", "runtime (s)", "overhead (%)"]);
    let run_md = |hook_us: u64| -> f64 {
        Kernel::run_root(move || {
            let spec = by_name("MD").unwrap().scaled(8, 4);
            let registry = FunctionRegistry::new();
            register_suite(&registry, std::slice::from_ref(&spec));
            let config = if hook_us == u64::MAX {
                CoiConfig::stock()
            } else {
                CoiConfig {
                    hook_cost: SimDuration::from_micros(hook_us),
                    ..CoiConfig::default()
                }
            };
            let world = SnapifyWorld::boot_with(PlatformParams::default(), config, registry);
            let run = WorkloadRun::launch(world.coi(), &spec, 0).unwrap();
            let r = run.run_to_completion().unwrap();
            assert!(r.verified);
            run.destroy().unwrap();
            r.runtime.as_secs_f64()
        })
    };
    let base = run_md(u64::MAX); // stock MPSS
    t.row(vec![
        "(stock)".to_string(),
        format!("{base:.3}"),
        "0.00".to_string(),
    ]);
    for us in [2u64, 4, 7, 12, 20] {
        let r = run_md(us);
        t.row(vec![
            format!("{us} us"),
            format!("{r:.3}"),
            format!("{:.2}", (r - base) / base * 100.0),
        ]);
    }
    t.print();
    println!();
}

fn incremental_ablation() {
    println!("Ablation 4 (extension): full vs incremental checkpoints");
    println!("(app with 512 MiB resident memory, mutating one 16 MiB region per phase)");
    let mut t = Table::new(vec![
        "checkpoint",
        "full (s / bytes)",
        "incremental (s / bytes)",
    ]);
    let rows = Kernel::run_root(|| {
        let server = PhiServer::new(PlatformParams::default());
        let node = server.device(0).clone();
        let pids = PidAllocator::new();
        let cfg = BlcrConfig::default();
        let proc = SimProcess::new(pids.alloc(), "iterative-app", &node);
        proc.memory()
            .map_region("base", Payload::synthetic(0, 512 * MB))
            .unwrap();
        proc.memory()
            .map_region("hot", Payload::synthetic(1, 16 * MB))
            .unwrap();

        let mut inc = IncrementalCheckpointer::new(cfg.clone());
        let mut out = Vec::new();
        for phase in 0..4u64 {
            // The app mutates its hot region each phase.
            proc.memory()
                .update_region("hot", Payload::synthetic(100 + phase, 16 * MB))
                .unwrap();
            // Full checkpoint.
            let t0 = simkernel::now();
            let mut sink = VecSink::new();
            let full = blcr_sim::checkpoint(&cfg, &proc, &phase.to_le_bytes(), &mut sink).unwrap();
            let full_t = simkernel::now() - t0;
            // Incremental checkpoint.
            let t1 = simkernel::now();
            let mut sink = VecSink::new();
            let delta = inc
                .checkpoint(&proc, &phase.to_le_bytes(), &mut sink, &|_| true)
                .unwrap();
            let inc_t = simkernel::now() - t1;
            out.push((
                phase,
                full_t,
                full.snapshot_bytes,
                inc_t,
                delta.stats.snapshot_bytes,
            ));
        }
        out
    });
    for (phase, full_t, full_b, inc_t, inc_b) in rows {
        t.row(vec![
            format!("#{phase}"),
            format!("{} / {}", secs(full_t), bytes(full_b)),
            format!("{} / {}", secs(inc_t), bytes(inc_b)),
        ]);
    }
    t.print();
    println!("(after the base image, deltas carry only the 16 MiB hot region)");
}

fn main() {
    let params = PlatformParams::default();
    header("Ablations: Snapify design choices", &params);
    buffer_size_sweep();
    async_flush_ablation();
    hook_cost_sweep();
    incremental_ablation();
}
