//! **multidomain** — wall-clock scaling of the multi-domain parallel
//! simkernel. An 8-node cluster workload (per-node channel churn plus a
//! cross-node ping ring) is run at 1, 2, 4 and 8 time domains; every
//! configuration simulates the *identical* virtual-time schedule, so
//! the only thing that changes is how many host cores the conservative
//! window-sync engine can keep busy.
//!
//! Reported per configuration: aggregate simulation events/sec and the
//! speedup over the single-domain (serial) run. On hosts with enough
//! cores the full run enforces the scaling floor (≥2× at 4 domains,
//! ≥4× at 8 domains); on smaller hosts the numbers are recorded but
//! not gated, and `host_cores` lands in the JSON so downstream tooling
//! can tell the difference.
//!
//! Pass `--quick` (or `BENCH_QUICK=1`) for a fast smoke run (CI).
//! Dumps `BENCH_multidomain.json` next to the other artifacts.

use std::hint::black_box;
use std::time::Instant;

use phi_platform::{cluster_lookahead, DomainPlacement, PlatformParams};
use simkernel::domain::{MultiDomainConfig, MultiKernel};
use simkernel::time::us;
use simkernel::SimChannel;

const NODES: usize = 8;
const PAIRS: usize = 4;

/// One measured configuration.
struct Row {
    domains: u32,
    events: u64,
    secs: f64,
}

impl Row {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs
    }
}

/// The 8-node cluster workload on `domains` time domains. Every node
/// runs `PAIRS` request/response pairs (client sleeps 1µs per round, so
/// each 50µs sync window holds ~`PAIRS * 50 * 2` local events) and a
/// ping sender/drainer pair on a cross-node ring whose links carry the
/// platform network latency. Returns the number of simulation events
/// (messages delivered).
fn cluster_churn(domains: u32, rounds: u64) -> u64 {
    let params = PlatformParams::default();
    let lookahead = cluster_lookahead(&params);
    let mk = MultiKernel::new(MultiDomainConfig::new(domains, lookahead));
    let placement = DomainPlacement::new(domains);
    let pings = rounds / 16;

    let (txs, mut rxs): (Vec<_>, Vec<_>) = (0..NODES)
        .map(|n| {
            mk.port::<u64>(
                format!("ring{n}"),
                placement.node_domain(n),
                placement.node_domain((n + 1) % NODES),
                lookahead,
            )
        })
        .unzip();
    rxs.rotate_right(1); // rxs[n] receives the (n-1) → n link

    for (n, (tx, rx)) in txs.into_iter().zip(rxs).enumerate() {
        let k = mk.domain(placement.node_domain(n));
        for p in 0..PAIRS {
            let req: SimChannel<u64> = SimChannel::unbounded(format!("n{n}req{p}"));
            let rsp: SimChannel<u64> = SimChannel::unbounded(format!("n{n}rsp{p}"));
            let (req2, rsp2) = (req.clone(), rsp.clone());
            k.spawn(format!("n{n}:srv{p}"), move || {
                while let Ok(v) = req2.recv() {
                    rsp2.send(v).unwrap();
                }
            });
            k.spawn(format!("n{n}:cli{p}"), move || {
                for i in 0..rounds {
                    simkernel::sleep(us(1));
                    req.send(i).unwrap();
                    black_box(rsp.recv().unwrap());
                }
                req.close();
            });
        }
        k.spawn(format!("n{n}:csend"), move || {
            for p in 0..pings {
                simkernel::sleep(us(16));
                tx.send(p).unwrap();
            }
            tx.close();
        });
        k.spawn(format!("n{n}:crecv"), move || {
            let mut got = 0u64;
            while rx.recv().is_ok() {
                got += 1;
            }
            assert_eq!(got, pings, "ring pings lost");
        });
    }

    mk.run();
    (NODES * PAIRS) as u64 * rounds * 2 + NODES as u64 * pings
}

fn measure(domains: u32, rounds: u64, warmups: u32, batches: u32) -> Row {
    for _ in 0..warmups {
        black_box(cluster_churn(domains, rounds));
    }
    let mut best = Row {
        domains,
        events: 0,
        secs: f64::INFINITY,
    };
    for _ in 0..batches {
        let t0 = Instant::now();
        let events = cluster_churn(domains, rounds);
        let secs = t0.elapsed().as_secs_f64();
        if best.events == 0 || events as f64 / secs > best.events_per_sec() {
            best = Row {
                domains,
                events,
                secs,
            };
        }
    }
    println!(
        "domains={:<2} {:>12} events {:>9.3} ms {:>12.0} events/sec",
        best.domains,
        best.events,
        best.secs * 1e3,
        best.events_per_sec()
    );
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let (warmups, batches) = if quick { (1, 2) } else { (2, 5) };
    let rounds: u64 = if quick { 256 } else { 4096 };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!();
    println!(
        "multi-domain parallel simkernel scaling{} — {NODES} nodes, {host_cores} host cores",
        if quick { " (quick)" } else { "" }
    );
    println!("{}", "-".repeat(70));

    let rows: Vec<Row> = [1u32, 2, 4, 8]
        .iter()
        .map(|&d| measure(d, rounds, warmups, batches))
        .collect();

    let serial = rows[0].events_per_sec();
    for r in &rows[1..] {
        println!(
            "domains={:<2} speedup over serial: {:.2}x",
            r.domains,
            r.events_per_sec() / serial
        );
    }

    dump_json("BENCH_multidomain.json", &rows, host_cores, quick);

    // Scaling floors from the issue: only enforceable when the host has
    // the cores to parallelize onto, and only on full (non-quick) runs
    // where the workload is big enough to amortize startup noise.
    if !quick {
        let speedup = |d: u32| {
            rows.iter()
                .find(|r| r.domains == d)
                .unwrap()
                .events_per_sec()
                / serial
        };
        if host_cores >= 4 {
            let s = speedup(4);
            assert!(s >= 2.0, "4-domain speedup {s:.2}x below the 2x floor");
        }
        if host_cores >= 8 {
            let s = speedup(8);
            assert!(s >= 4.0, "8-domain speedup {s:.2}x below the 4x floor");
        }
        if host_cores < 4 {
            println!("(host has {host_cores} cores; scaling floors not enforced)");
        }
    }
}

fn dump_json(path: &str, rows: &[Row], host_cores: usize, quick: bool) {
    let serial = rows[0].events_per_sec();
    let mut out = String::from("{\n  \"benches\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"domains_{}\", \"domains\": {}, \"events\": {}, \
             \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}, \"speedup\": {:.3}}}",
            r.domains,
            r.domains,
            r.events,
            r.secs,
            r.events_per_sec(),
            r.events_per_sec() / serial
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"host_cores\": {host_cores},\n  \"quick\": {quick}\n}}\n"
    ));
    match std::fs::write(path, out) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
